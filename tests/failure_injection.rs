//! Failure injection: constraint changes mid-run must steer the system
//! (the paper's states make bandwidth and power first-class signals).

use mamut::prelude::*;
use mamut::transcode::homogeneous_sessions;

/// Trains MAMUT controllers for `mix` under `normal` and then `tightened`
/// constraints so the measured phase has Q-values for both regimes (a
/// deployment would have seen both over its lifetime).
fn train_dual_regime(
    mix: MixSpec,
    seed: u64,
    normal: Constraints,
    tightened: Constraints,
) -> Vec<Box<dyn Controller>> {
    let mut trainer = ServerSim::with_default_platform();
    for (i, cfg) in homogeneous_sessions(mix, 30_000, seed + 50_000)
        .into_iter()
        .enumerate()
    {
        let is_hr = cfg
            .playlist
            .get(0)
            .expect("non-empty")
            .resolution()
            .is_high_resolution();
        let mcfg = if is_hr {
            MamutConfig::paper_hr()
        } else {
            MamutConfig::paper_lr()
        }
        .with_seed(seed + i as u64)
        .with_constraints(normal);
        trainer.add_session(
            cfg.with_constraints(normal),
            Box::new(MamutController::new(mcfg).expect("valid")),
        );
    }
    // First half under the normal regime…
    trainer.run_frames(15_000, 100_000_000).expect("phase 1");
    // …second half under the tightened constraints.
    trainer.set_constraints_all(tightened);
    trainer.run_to_completion(100_000_000).expect("phase 2");
    trainer.into_controllers()
}

#[test]
fn bandwidth_drop_raises_qp_and_lowers_bitrate() {
    // Constraint plumbing through the rule-based controller (whose QP rule
    // is explicit and deterministic): an LR stream chasing the 40 dB
    // set-point sits at low QP / ≈2.5–3.5 Mb/s; once the user's bandwidth
    // drops to 1.5 Mb/s the bitrate rule must drive QP up and the output
    // rate down toward the budget.
    let mix = MixSpec::new(0, 1);
    let tight = Constraints {
        bandwidth_mbps: 1.0,
        ..Constraints::paper_defaults()
    };

    let mut server = ServerSim::with_default_platform();
    for cfg in homogeneous_sessions(mix, 800, 21) {
        let hcfg = HeuristicConfig::paper_lr();
        server.add_session(
            cfg.with_trace(),
            Box::new(HeuristicController::new(hcfg).expect("valid")),
        );
    }
    server.run_frames(400, 100_000_000).expect("normal segment");
    server.set_constraints_all(tight);
    server
        .run_to_completion(100_000_000)
        .expect("tight segment");

    let trace = server.session(0).expect("session").trace();
    let rows = trace.rows();
    let (normal_rows, tight_rows) = rows.split_at(400.min(rows.len()));
    let mean = |rs: &[mamut::metrics::TraceRow], f: &dyn Fn(&mamut::metrics::TraceRow) -> f64| {
        rs.iter().map(f).sum::<f64>() / rs.len().max(1) as f64
    };
    // Skip the adaptation transient after the event.
    let settled = &tight_rows[tight_rows.len().min(150)..];
    let br_before = mean(normal_rows, &|r| r.bitrate_mbps);
    let br_after = mean(settled, &|r| r.bitrate_mbps);
    let qp_before = mean(normal_rows, &|r| f64::from(r.qp));
    let qp_after = mean(settled, &|r| f64::from(r.qp));
    assert!(
        br_before > 1.2,
        "premise: normal-regime bitrate should exceed the tight budget, got {br_before:.2}"
    );
    assert!(
        br_after < 1.1,
        "bitrate must fall toward the 1 Mb/s budget: {br_before:.2} -> {br_after:.2} Mb/s"
    );
    // The heuristic moves QP in whole steps and stops as soon as the rate
    // is under budget; a settle exactly one 2-unit step up is a pass, so
    // the margin sits between "no move" (0) and the minimal rise (2).
    assert!(
        qp_after > qp_before + 1.5,
        "QP must rise after the bandwidth drop: {qp_before:.1} -> {qp_after:.1}"
    );
}

#[test]
fn power_cap_drop_reduces_draw() {
    // A single HR stream draws ≈65–75 W; a 62 W cap binds firmly.
    let normal = Constraints::paper_defaults();
    let tight = Constraints {
        power_cap_w: 62.0,
        ..Constraints::paper_defaults()
    };
    let controllers = train_dual_regime(MixSpec::new(1, 0), 22, normal, tight);

    let mut server = ServerSim::with_default_platform();
    for (cfg, ctl) in homogeneous_sessions(MixSpec::new(1, 0), 900, 22)
        .into_iter()
        .zip(controllers)
    {
        server.add_session(cfg.with_trace(), ctl);
    }
    server.run_frames(400, 100_000_000).expect("normal segment");
    server.set_constraints_all(tight);
    server
        .run_to_completion(100_000_000)
        .expect("capped segment");

    let trace = server.session(0).expect("session").trace();
    let rows = trace.rows();
    let before = &rows[..400.min(rows.len())];
    let after = &rows[rows.len().saturating_sub(200)..];
    let mean_p = |rs: &[mamut::metrics::TraceRow]| {
        rs.iter().map(|r| r.power_w).sum::<f64>() / rs.len().max(1) as f64
    };
    let p_before = mean_p(before);
    let p_after = mean_p(after);
    assert!(
        p_after < p_before - 1.0,
        "power must fall under the tighter cap: {p_before:.1} -> {p_after:.1} W"
    );
}

#[test]
fn heuristic_backs_off_frequency_under_a_tight_power_cap() {
    // The rule-based baseline has an explicit power rule. Because its
    // throughput rule pushes frequency right back up, the observable
    // effect of a binding cap is a mean frequency pulled visibly below
    // the 3.2 GHz it would otherwise peg, and bounded average power.
    let run = |cap: f64, seed: u64| {
        let mut server = ServerSim::with_default_platform();
        let constraints = Constraints {
            power_cap_w: cap,
            ..Constraints::paper_defaults()
        };
        for cfg in homogeneous_sessions(MixSpec::new(2, 0), 600, seed) {
            let hcfg = HeuristicConfig::paper_hr();
            server.add_session(
                cfg.with_constraints(constraints),
                Box::new(HeuristicController::new(hcfg).expect("valid")),
            );
        }
        server
            .run_to_completion(100_000_000)
            .expect("run completes")
    };
    let uncapped = run(140.0, 9);
    let capped = run(85.0, 9);
    assert!(
        uncapped.mean_freq_ghz() > 3.15,
        "uncapped heuristic pegs 3.2 GHz"
    );
    assert!(
        capped.mean_freq_ghz() < uncapped.mean_freq_ghz() - 0.05,
        "capped {:.2} GHz vs uncapped {:.2} GHz",
        capped.mean_freq_ghz(),
        uncapped.mean_freq_ghz()
    );
    assert!(
        capped.mean_power_w < uncapped.mean_power_w,
        "capped {:.1} W vs uncapped {:.1} W",
        capped.mean_power_w,
        uncapped.mean_power_w
    );
}
