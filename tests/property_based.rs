//! Cross-crate property tests: invariants that must hold for *any* valid
//! input, checked with proptest.

use mamut::control::{reward, Constraints, Observation, State};
use mamut::encoder::{wpp, HevcEncoder, Preset};
use mamut::platform::{Platform, SessionLoad};
use mamut::prelude::*;
use mamut::video::{ContentModel, ContentParams, FrameInfo};
use proptest::prelude::*;

fn arb_observation() -> impl Strategy<Value = Observation> {
    (0.0f64..200.0, 20.0f64..60.0, 0.0f64..30.0, 40.0f64..200.0).prop_map(
        |(fps, psnr_db, bitrate_mbps, power_w)| Observation {
            fps,
            psnr_db,
            bitrate_mbps,
            power_w,
        },
    )
}

proptest! {
    #[test]
    fn state_index_is_always_in_range(obs in arb_observation()) {
        let c = Constraints::paper_defaults();
        let s = State::from_observation(&obs, &c);
        prop_assert!(s.index() < mamut::control::STATE_COUNT);
        prop_assert_eq!(State::from_index(s.index()), Some(s));
    }

    #[test]
    fn total_reward_is_bounded(obs in arb_observation()) {
        let c = Constraints::paper_defaults();
        let w = reward::RewardWeights::default();
        let r = reward::total_reward(&obs, &c, &w);
        // Four terms, each in [-4, 1].
        prop_assert!((-16.0..=4.0).contains(&r), "reward {} out of range", r);
    }

    #[test]
    fn fps_reward_is_maximal_exactly_at_target(
        target in 10.0f64..60.0,
        fps in 0.0f64..200.0,
    ) {
        let at_target = reward::fps_reward(target, target);
        let elsewhere = reward::fps_reward(fps, target);
        prop_assert!(elsewhere <= at_target + 1e-12);
    }

    #[test]
    fn encoder_outputs_are_monotone_in_qp(
        qp_lo in 0u8..50,
        complexity in 0.25f64..3.0,
    ) {
        let qp_hi = qp_lo + 1;
        let enc = HevcEncoder::new(Resolution::FULL_HD, Preset::Ultrafast);
        let frame = FrameInfo { index: 0, complexity, scene_cut: false };
        let lo = enc.encode(qp_lo, &frame).unwrap();
        let hi = enc.encode(qp_hi, &frame).unwrap();
        prop_assert!(hi.bitrate_mbps < lo.bitrate_mbps);
        prop_assert!(hi.psnr_db <= lo.psnr_db);
        prop_assert!(hi.cycles < lo.cycles);
    }

    #[test]
    fn encoder_costs_more_for_busier_content(
        qp in 10u8..45,
        c_lo in 0.25f64..1.4,
        bump in 0.1f64..1.5,
    ) {
        let c_hi = (c_lo + bump).min(3.0);
        let enc = HevcEncoder::new(Resolution::WVGA, Preset::Slow);
        let lo = enc.encode(qp, &FrameInfo { index: 0, complexity: c_lo, scene_cut: false }).unwrap();
        let hi = enc.encode(qp, &FrameInfo { index: 0, complexity: c_hi, scene_cut: false }).unwrap();
        prop_assert!(hi.cycles > lo.cycles);
        prop_assert!(hi.bitrate_mbps > lo.bitrate_mbps);
        prop_assert!(hi.psnr_db <= lo.psnr_db);
    }

    #[test]
    fn wpp_speedup_is_bounded_by_thread_count(
        rows in 1u32..40,
        cols in 1u32..60,
        threads in 1u32..48,
    ) {
        let s = wpp::speedup(rows, cols, threads);
        // Positive and never superlinear. (It *can* dip below 1.0 for
        // narrow frames where the wavefront ramp dominates — spawning more
        // threads than the frame can feed genuinely hurts.)
        prop_assert!(s > 0.0, "non-positive speedup {}", s);
        prop_assert!(s <= f64::from(threads.min(rows)) + 1e-9, "superlinear speedup {}", s);
        // One thread is always exactly serial.
        let s1 = wpp::speedup(rows, cols, 1);
        prop_assert!((s1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_draw_is_bounded_and_above_idle(
        threads in 1u32..64,
        freq in 1.2f64..3.2,
    ) {
        let p = Platform::xeon_e5_2667_v4();
        let draw = p.power_draw(&[SessionLoad::new(threads, freq)]);
        prop_assert!(draw >= p.idle_power_w());
        prop_assert!(draw < 200.0, "implausible draw {}", draw);
    }

    #[test]
    fn contention_scale_is_a_fraction(total in 0u32..200) {
        let p = Platform::xeon_e5_2667_v4();
        let s = p.throughput_scale(total);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn content_streams_stay_in_bounds(seed in 0u64..1000) {
        let mut m = ContentModel::new(ContentParams::busy(), seed);
        for _ in 0..300 {
            let f = m.next_frame();
            prop_assert!(f.complexity >= mamut::video::MIN_COMPLEXITY);
            prop_assert!(f.complexity <= mamut::video::MAX_COMPLEXITY);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Heavier end-to-end property: any fixed operating point from the
    // action space yields a consistent simulation (time advances, energy
    // integrates, every frame completes).
    #[test]
    fn simulator_is_consistent_for_any_operating_point(
        qp_idx in 0usize..7,
        threads in 1u32..13,
        freq_idx in 0usize..6,
        seed in 0u64..50,
    ) {
        let qp = [22u8, 25, 27, 29, 32, 35, 37][qp_idx];
        let freq = [1.6, 1.9, 2.3, 2.6, 2.9, 3.2][freq_idx];
        let spec = catalog::by_name("ParkScene").unwrap().with_frame_count(30).unwrap();
        let mut server = ServerSim::with_default_platform();
        server.add_session(
            SessionConfig::single_video(spec, seed),
            Box::new(FixedController::new(KnobSettings::new(qp, threads, freq))),
        );
        let summary = server.run_to_completion(1_000_000).unwrap();
        prop_assert_eq!(summary.sessions[0].frames, 30);
        prop_assert!(summary.duration_s > 0.0);
        prop_assert!(summary.mean_power_w >= Platform::xeon_e5_2667_v4().idle_power_w() - 1e-9);
        prop_assert!(summary.sessions[0].mean_fps > 0.0);
    }
}
