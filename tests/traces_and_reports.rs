//! Trace recording and report plumbing across the full stack.

use mamut::metrics::{Align, Table};
use mamut::prelude::*;

#[test]
fn traces_capture_every_frame_with_sane_values() {
    let spec = catalog::by_name("ParkScene")
        .expect("catalog")
        .with_frame_count(100)
        .expect("frames");
    let mut server = ServerSim::with_default_platform();
    server.add_session(
        SessionConfig::single_video(spec, 4).with_trace(),
        Box::new(FixedController::new(KnobSettings::new(32, 10, 2.9))),
    );
    server.run_to_completion(1_000_000).expect("run completes");

    let trace = server.session(0).expect("session").trace();
    assert_eq!(trace.len(), 100);
    let mut last_t = 0.0;
    for row in trace.rows() {
        assert!(row.time_s > last_t, "time must strictly increase");
        last_t = row.time_s;
        assert!(row.fps > 0.0 && row.fps < 500.0);
        assert!(row.psnr_db > 20.0 && row.psnr_db < 60.0);
        assert!(row.bitrate_mbps > 0.0);
        assert_eq!(row.qp, 32);
        assert_eq!(row.threads, 10);
        assert!((row.freq_ghz - 2.9).abs() < 1e-9);
        assert!(row.power_w > 40.0);
    }
}

#[test]
fn trace_csv_is_parseable() {
    let spec = catalog::by_name("BQMall")
        .expect("catalog")
        .with_frame_count(20)
        .expect("frames");
    let mut server = ServerSim::with_default_platform();
    server.add_session(
        SessionConfig::single_video(spec, 4).with_trace(),
        Box::new(FixedController::new(KnobSettings::new(27, 4, 3.2))),
    );
    server.run_to_completion(1_000_000).expect("run completes");

    let csv = server.session(0).expect("session").trace().to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 21, "header + 20 rows");
    let header_cols = lines[0].split(',').count();
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), header_cols);
        // Every numeric field parses.
        for (i, field) in line.split(',').enumerate() {
            assert!(
                field.parse::<f64>().is_ok(),
                "column {i} not numeric: {field}"
            );
        }
    }
}

#[test]
fn untraced_sessions_stay_empty() {
    let spec = catalog::by_name("BQMall")
        .expect("catalog")
        .with_frame_count(10)
        .expect("frames");
    let mut server = ServerSim::with_default_platform();
    server.add_session(
        SessionConfig::single_video(spec, 4),
        Box::new(FixedController::new(KnobSettings::new(27, 4, 3.2))),
    );
    server.run_to_completion(1_000_000).expect("run completes");
    assert!(server.session(0).expect("session").trace().is_empty());
}

#[test]
fn summaries_render_into_tables() {
    let spec = catalog::by_name("Kimono")
        .expect("catalog")
        .with_frame_count(30)
        .expect("frames");
    let mut server = ServerSim::with_default_platform();
    server.add_session(
        SessionConfig::single_video(spec, 2),
        Box::new(FixedController::new(KnobSettings::new(32, 8, 2.6))),
    );
    let summary = server.run_to_completion(1_000_000).expect("run completes");

    let mut table = Table::new(
        ["session", "fps", "delta%"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    table.set_alignments(vec![Align::Left, Align::Right, Align::Right]);
    for s in &summary.sessions {
        table.add_row(vec![
            s.name.clone(),
            format!("{:.1}", s.mean_fps),
            format!("{:.1}", s.violation_percent),
        ]);
    }
    let md = table.to_markdown();
    assert!(md.contains("Kimono"));
    assert!(table.to_csv().lines().count() == 2);
    assert!(!table.to_plain().is_empty());
}

#[test]
fn energy_is_power_times_time() {
    let spec = catalog::by_name("Cactus")
        .expect("catalog")
        .with_frame_count(50)
        .expect("frames");
    let mut server = ServerSim::with_default_platform();
    server.add_session(
        SessionConfig::single_video(spec, 2),
        Box::new(FixedController::new(KnobSettings::new(32, 8, 2.6))),
    );
    let summary = server.run_to_completion(1_000_000).expect("run completes");
    assert!(
        (summary.energy_j - summary.mean_power_w * summary.duration_s).abs()
            < 1e-6 * summary.energy_j,
        "energy accounting inconsistent"
    );
}
