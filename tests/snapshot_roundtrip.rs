//! Portable-snapshot invariants: the binary codec must round-trip
//! byte-identically for arbitrary learned state, and a restored
//! controller must be indistinguishable from the original.

use mamut::control::snapshot::{AgentSnapshot, PolicySnapshot, SnapshotError, TransitionRecord};
use mamut::control::{AgentKind, STATE_COUNT};
use mamut::prelude::*;
use proptest::prelude::*;

/// Builds a pseudo-random agent table from proptest-drawn scalars. The
/// generator mixes the drawn seed so every case explores a different
/// table, while staying a pure function of the inputs.
fn synth_agent(seed: u64, n_states: usize, n_actions: usize, fill: usize) -> AgentSnapshot {
    let mut x = seed | 1;
    let mut next = move || {
        // SplitMix64 step: cheap, deterministic, well mixed.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let q = (0..n_states * n_actions)
        .map(|_| (next() as i64 as f64) / (1u64 << 40) as f64)
        .collect();
    let action_counts = (0..n_actions).map(|_| (next() % 500) as u32).collect();
    let transitions = (0..fill)
        .map(|_| TransitionRecord {
            state: (next() % n_states as u64) as u32,
            action: (next() % n_actions as u64) as u32,
            next_state: (next() % n_states as u64) as u32,
            count: (next() % 200 + 1) as u32,
        })
        .collect();
    AgentSnapshot {
        kind: AgentKind::Qp,
        n_states: n_states as u32,
        n_actions: n_actions as u32,
        q,
        action_counts,
        transitions,
    }
}

proptest! {
    #[test]
    fn encode_decode_encode_is_byte_identical(
        seed in 0u64..u64::MAX,
        n_states in 1usize..40,
        n_actions in 1usize..16,
        fill in 0usize..64,
        qp in 0u8..52,
        threads in 1u32..16,
    ) {
        let snap = PolicySnapshot {
            controller: "prop".into(),
            knobs: KnobSettings::new(qp, threads, 2.6),
            exploration_decisions: seed % 10_000,
            exploitation_decisions: seed % 7_777,
            agents: vec![
                synth_agent(seed, n_states, n_actions, fill),
                synth_agent(seed ^ 0xABCD, n_actions, n_states, fill / 2),
            ],
            extra: seed.to_le_bytes().to_vec(),
        };
        let bytes = snap.to_bytes();
        let decoded = PolicySnapshot::from_bytes(&bytes).unwrap();
        let reencoded = decoded.to_bytes();
        prop_assert_eq!(&bytes, &reencoded);
        // And a second decode sees the very same structure.
        prop_assert_eq!(decoded, PolicySnapshot::from_bytes(&reencoded).unwrap());
    }

    #[test]
    fn truncated_streams_never_decode(
        seed in 0u64..u64::MAX,
        fill in 0usize..32,
        cut_back in 1usize..48,
    ) {
        let snap = PolicySnapshot {
            controller: "prop".into(),
            knobs: KnobSettings::new(32, 4, 2.6),
            exploration_decisions: 1,
            exploitation_decisions: 2,
            agents: vec![synth_agent(seed, 12, 5, fill)],
            extra: vec![7; (seed % 9) as usize],
        };
        let bytes = snap.to_bytes();
        let cut = bytes.len().saturating_sub(cut_back);
        prop_assert!(PolicySnapshot::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn trained_mamut_snapshot_round_trips_exactly(
        seed in 0u64..1_000,
        frames in 100u64..1_500,
    ) {
        let cfg = MamutConfig::paper_hr().with_seed(seed);
        let mut ctl = MamutController::new(cfg).unwrap();
        let c = Constraints::paper_defaults();
        for f in 0..frames {
            let o = Observation {
                fps: 20.0 + (f % 11) as f64,
                psnr_db: 30.0 + (f % 7) as f64,
                bitrate_mbps: 2.0 + (f % 5) as f64,
                power_w: 70.0 + (f % 13) as f64,
            };
            ctl.begin_frame(f, &o, &c);
            ctl.end_frame(f, &o, &c);
        }
        let snap = Controller::snapshot(&ctl);
        let bytes = snap.to_bytes();
        let decoded = PolicySnapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded.to_bytes(), bytes);
        prop_assert_eq!(decoded.agents.len(), 3);
        for agent in &decoded.agents {
            prop_assert_eq!(agent.n_states as usize, STATE_COUNT);
        }
    }
}

/// The restored-controller equivalence the tentpole hangs on, end to
/// end through the byte codec: identical decisions from the cut frame
/// onward, driven through a full transcoding session rather than
/// synthetic observations.
#[test]
fn restored_controller_is_indistinguishable_inside_a_server() {
    let spec = catalog::by_name("Kimono")
        .unwrap()
        .with_frame_count(600)
        .unwrap();
    let run = |controller: Box<dyn Controller>| {
        let mut server = ServerSim::with_default_platform();
        let id = server.add_session(SessionConfig::single_video(spec.clone(), 4), controller);
        server.run_to_completion(1_000_000).unwrap();
        let summary = server.summary();
        (
            summary.sessions[id].mean_fps,
            summary.sessions[id].mean_psnr_db,
            summary.duration_s,
            server.into_controllers().remove(0).snapshot().to_bytes(),
        )
    };

    // Train a controller over the first half of the stream.
    let mut trainer = ServerSim::with_default_platform();
    let half = catalog::by_name("Kimono")
        .unwrap()
        .with_frame_count(300)
        .unwrap();
    let cfg = MamutConfig::paper_hr().with_seed(8);
    trainer.add_session(
        SessionConfig::single_video(half, 4),
        Box::new(MamutController::new(cfg.clone()).unwrap()),
    );
    trainer.run_to_completion(1_000_000).unwrap();
    let trained = trainer.into_controllers().remove(0);
    let bytes = trained.snapshot().to_bytes();

    // Clone it through the codec and race the two over the same video.
    let revive = || {
        let snap = PolicySnapshot::from_bytes(&bytes).unwrap();
        let mut ctl = MamutController::new(cfg.clone()).unwrap();
        ctl.restore(&snap).unwrap();
        Box::new(ctl) as Box<dyn Controller>
    };
    assert_eq!(run(revive()), run(revive()));
}

#[test]
fn decode_rejects_garbage_and_wrong_versions() {
    assert_eq!(
        PolicySnapshot::from_bytes(b"garbage"),
        Err(SnapshotError::BadMagic)
    );
    let good = PolicySnapshot::tableless("fixed", KnobSettings::new(32, 4, 2.6)).to_bytes();
    let mut versioned = good.clone();
    versioned[8] = 0x7F; // inflate the version field past SNAPSHOT_VERSION
    assert!(matches!(
        PolicySnapshot::from_bytes(&versioned),
        Err(SnapshotError::UnsupportedVersion(_))
    ));
    assert!(PolicySnapshot::from_bytes(&good).is_ok());
}
