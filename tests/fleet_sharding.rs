//! Sharded-coordinator edge cases exercised through the public facade:
//! cross-shard session overflow landing in a shard that is itself
//! draining a node, the single-shard degenerate configuration, and the
//! idle-node fast path all have to compose without changing the physics.

use mamut::fleet::{Autoscaler, ScaleDecision, ScaleSignals, SessionRequest};
use mamut::prelude::*;

fn factory() -> mamut::fleet::ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

fn request(id: u64, arrival_s: f64, hr: bool, frames: u64) -> SessionRequest {
    SessionRequest {
        id,
        arrival_s,
        hr,
        live: false,
        frames,
        seed: id,
    }
}

/// Retires one node at a fixed epoch — the smallest policy that puts a
/// shard mid-drain at a chosen moment.
struct ShrinkOnce {
    at_epoch: u64,
    done: bool,
}

impl Autoscaler for ShrinkOnce {
    fn name(&self) -> &'static str {
        "shrink-once"
    }

    fn plan(&mut self, signals: &ScaleSignals) -> ScaleDecision {
        if !self.done && signals.epoch == self.at_epoch {
            self.done = true;
            ScaleDecision::Shrink(1)
        } else {
            ScaleDecision::Hold
        }
    }
}

/// Hot shard: one node buried under long HR sessions, utilization far
/// above the overflow high watermark for many epochs.
fn hot_shard(workers: usize, idle_fast_path: bool) -> FleetSim {
    let arrivals = (0..8).map(|i| request(i, 0.0, true, 600)).collect();
    let mut sim = FleetSim::new(
        FleetConfig::default()
            .with_worker_threads(workers)
            .with_idle_fast_path(idle_fast_path),
        Box::new(LeastLoaded::new()),
        Workload::replay(arrivals),
    );
    sim.add_node(factory());
    sim
}

/// Cold shard: three lightly loaded nodes, with one retired mid-run
/// while it still holds a live session — overflow from the hot shard
/// keeps arriving during and after the drain.
fn cold_shard(workers: usize, idle_fast_path: bool) -> FleetSim {
    let arrivals = (100..103).map(|i| request(i, 0.0, false, 400)).collect();
    let mut sim = FleetSim::new(
        FleetConfig::default()
            .with_worker_threads(workers)
            .with_idle_fast_path(idle_fast_path),
        Box::new(LeastLoaded::new()),
        Workload::replay(arrivals),
    );
    for _ in 0..3 {
        sim.add_node(factory());
    }
    sim.set_autoscaler(
        Box::new(ShrinkOnce {
            at_epoch: 2,
            done: false,
        }),
        Box::new(|| (Platform::xeon_e5_2667_v4(), factory())),
    );
    sim
}

fn run(workers: usize, idle_fast_path: bool) -> ShardedFleetSummary {
    let mut sharded =
        ShardedFleetSim::new(ShardConfig::default().with_overflow_watermarks(0.5, 0.9));
    sharded.add_shard("hot", hot_shard(workers, idle_fast_path));
    sharded.add_shard("cold", cold_shard(workers, idle_fast_path));
    sharded.run().expect("sharded run completes")
}

#[test]
fn overflow_lands_in_a_draining_shard_without_losing_work() {
    let summary = run(2, true);
    let (_, hot) = &summary.shards[0];
    let (_, cold) = &summary.shards[1];

    // The hot/cold imbalance overflowed sessions into the cold shard...
    assert!(
        summary.inter_shard_migrations > 0,
        "no overflow happened:\n{summary}"
    );
    let cold_in: u64 = cold.nodes.iter().map(|n| n.migrated_in).sum();
    assert!(
        cold_in >= summary.inter_shard_migrations,
        "cold shard saw {cold_in} inbound migrations, expected at least {}",
        summary.inter_shard_migrations
    );

    // ...while the cold shard was retiring a node that held a session.
    assert_eq!(cold.scale_downs, 1, "the shrink never happened:\n{cold}");
    assert!(
        cold.drained_sessions >= 1,
        "the retired node was empty — the drain path went unexercised:\n{cold}"
    );
    assert!(cold.nodes.iter().any(|n| n.retired));

    // Conservation: every frame of every arrival ran exactly once.
    let expected_frames = 8 * 600 + 3 * 400;
    assert_eq!(summary.total_frames(), expected_frames);
    assert_eq!(summary.total_sessions(), 11);
    assert_eq!(hot.total_sessions + cold.total_sessions, 11);
}

#[test]
fn overflow_into_draining_shard_is_deterministic() {
    let reference = run(1, true).to_string();
    for workers in [2, 8] {
        assert_eq!(reference, run(workers, true).to_string());
    }
    // The idle-node fast path is an execution detail: skipping dormant
    // nodes must not change a single byte, even with overflow waking
    // parked nodes mid-run.
    assert_eq!(reference, run(2, false).to_string());
}

#[test]
fn single_shard_config_matches_the_unsharded_fleet() {
    let mut sharded = ShardedFleetSim::new(ShardConfig::default());
    sharded.add_shard("only", hot_shard(2, true));
    let sharded_summary = sharded.run().expect("single-shard run completes");
    let plain = hot_shard(2, true).run().expect("plain run completes");
    assert_eq!(sharded_summary.shards[0].1.to_string(), plain.to_string());
    assert_eq!(sharded_summary.inter_shard_migrations, 0);
    assert_eq!(sharded_summary.knowledge_syncs, 0);
}
