//! Steady-state stepping must not touch the allocator.
//!
//! The incremental event engine owns persistent buffers (rate SoA,
//! deadline heap, due-list, power-sensor window) that reach a fixed
//! capacity during warm-up; from then on every event is pops, pushes and
//! arithmetic on existing storage. A counting global allocator pins that
//! down: after warm-up, thousands of events must perform **zero** heap
//! allocations.
//!
//! This test lives alone in its own binary so no concurrent test can
//! allocate while the hot loop is being measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mamut::prelude::*;

/// Counts every allocation path; frees are not counted (a steady state
/// is allowed to drop nothing, and counting both would hide an
/// alloc/free churn pair).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_stepping_performs_zero_allocations() {
    // Eight long-lived sessions under fixed knobs: no knob churn, no
    // session churn — the pure steady-state regime.
    let mut srv = ServerSim::with_default_platform();
    for i in 0..8usize {
        let name = if i.is_multiple_of(2) {
            "Kimono"
        } else {
            "BQMall"
        };
        let spec = catalog::by_name(name)
            .unwrap()
            .with_frame_count(20_000)
            .unwrap();
        let knobs = if i.is_multiple_of(2) {
            KnobSettings::new(32, 8, 2.9)
        } else {
            KnobSettings::new(34, 4, 2.6)
        };
        srv.add_session(
            SessionConfig::single_video(spec, i as u64),
            Box::new(FixedController::new(knobs)),
        );
    }

    // Warm-up: first rate-epoch build, power-sensor window fill, buffer
    // capacity growth all happen here.
    for _ in 0..2_000 {
        assert!(srv.step(), "sessions must stay live through warm-up");
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10_000 {
        assert!(srv.step(), "sessions must stay live while measured");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state events must not allocate ({} allocations over 10k events)",
        after - before
    );
    assert!(
        srv.rate_epochs() <= 10,
        "steady state must also mean no rate-epoch churn, saw {}",
        srv.rate_epochs()
    );
}
