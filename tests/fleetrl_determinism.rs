//! Fleet-RL determinism: offline training and greedy evaluation are
//! pure functions of the training configuration — the learned policy's
//! snapshot bytes and the evaluation summary must be identical for any
//! fleet worker count, and a snapshot restored into a fresh trainer
//! must continue exactly like the original.
//!
//! Like `tests/fleet_determinism.rs`, the worker counts exercised
//! against the 1-worker reference come from `MAMUT_FLEET_WORKERS` when
//! set (comma-separated); CI runs this file as a matrix over 1, 2 and
//! 8 workers.

use mamut::fleetrl::{TrainConfig, Trainer};
use mamut::scenario::catalog;

fn worker_counts(default: &[usize]) -> Vec<usize> {
    match std::env::var("MAMUT_FLEET_WORKERS") {
        Ok(list) => list
            .split(',')
            .map(|w| {
                w.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad MAMUT_FLEET_WORKERS entry {w:?}"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn quick_cfg(workers: usize) -> TrainConfig {
    TrainConfig {
        episodes_per_scenario: 2,
        replay_passes: 1,
        workers,
        ..TrainConfig::default()
    }
}

/// Train on two contrasting presets and evaluate a third; return the
/// policy bytes and the rendered evaluation summary.
fn train_and_eval(workers: usize) -> (Vec<u8>, String) {
    let mut trainer = Trainer::new(quick_cfg(workers));
    trainer.train_scenario(&catalog::daily_vod());
    trainer.train_scenario(&catalog::flash_mob());
    let summary = trainer.evaluate(&catalog::live_final());
    (trainer.snapshot(), summary.to_string())
}

#[test]
fn training_and_evaluation_are_identical_across_worker_counts() {
    let (reference_policy, reference_summary) = train_and_eval(1);
    for workers in worker_counts(&[2, 8]) {
        let (policy, summary) = train_and_eval(workers);
        assert_eq!(
            reference_policy, policy,
            "trained policy diverged at {workers} workers"
        );
        assert_eq!(
            reference_summary, summary,
            "evaluation diverged at {workers} workers"
        );
    }
    // The evaluation run carries learned-policy provenance.
    assert!(
        reference_summary.contains("policy:"),
        "policy counters missing:\n{reference_summary}"
    );
}

#[test]
fn a_restored_trainer_continues_exactly_like_the_original() {
    let mut original = Trainer::new(quick_cfg(4));
    original.train_scenario(&catalog::daily_vod());
    let checkpoint = original.snapshot();

    let mut resumed = Trainer::new(quick_cfg(4));
    resumed
        .warm_start(&checkpoint)
        .expect("checkpoint restores");

    // Same future training on both: byte-identical policies after.
    let a = original.train_scenario(&catalog::live_final());
    let b = resumed.train_scenario(&catalog::live_final());
    assert_eq!(a, b, "training reports diverged after restore");
    assert_eq!(
        original.snapshot(),
        resumed.snapshot(),
        "policies diverged after identical post-restore training"
    );
    assert_eq!(
        original.evaluate(&catalog::flash_mob()).to_string(),
        resumed.evaluate(&catalog::flash_mob()).to_string()
    );
}
