//! Chaos runs: deterministic fault injection, checkpoint/recovery and
//! graceful degradation. A multi-crash plan must conserve every frame
//! (re-done work is accounted, never silently lost) and the whole run
//! must stay byte-identical across worker thread counts — CI executes
//! this file in the same 1/2/8-worker `MAMUT_FLEET_WORKERS` matrix as
//! `fleet_determinism.rs`.

use mamut::fleet::{ControllerFactory, SessionRequest};
use mamut::prelude::*;
use mamut::transcode::TranscodeSession;
use proptest::prelude::*;

/// Worker counts to compare against the sequential reference: the
/// `MAMUT_FLEET_WORKERS` env list when present, `default` otherwise.
fn worker_counts(default: &[usize]) -> Vec<usize> {
    match std::env::var("MAMUT_FLEET_WORKERS") {
        Ok(list) => list
            .split(',')
            .map(|w| {
                w.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad MAMUT_FLEET_WORKERS entry {w:?}"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn factory() -> ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

/// Sessions long enough that mid-ramp crashes always interrupt live
/// work (short VOD clips would finish before the first fault fires).
fn workload(seed: u64) -> Workload {
    Workload::try_generate(&WorkloadConfig {
        seed,
        sessions: 16,
        mean_interarrival_s: 0.5,
        hr_ratio: 0.5,
        live_ratio: 0.4,
        vod_frames: (120, 300),
        live_frames: (300, 720),
    })
    .expect("valid workload config")
}

fn provisioner() -> mamut::fleet::NodeProvisioner {
    Box::new(|| {
        (
            Platform::xeon_e5_2667_v4(),
            Box::new(|req: &SessionRequest| {
                let threads = if req.hr { 10 } else { 4 };
                Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
                    as Box<dyn Controller>
            }) as ControllerFactory,
        )
    })
}

/// The multi-crash plan under test: two mid-run crashes, a thermal
/// throttle and a short replacement delay.
fn plan() -> FaultPlan {
    FaultPlan::new()
        .with_crash(3, 0)
        .with_throttle(4, 2, 1.8, 3)
        .with_crash(6, 1)
        .with_replacement_delay(2)
}

fn chaos_run(workers: usize, with_faults: bool, with_checkpoints: bool) -> FleetSummary {
    let mut fleet = FleetSim::new(
        FleetConfig::default().with_worker_threads(workers),
        Box::new(LeastLoaded::new()),
        workload(9),
    );
    for _ in 0..4 {
        fleet.add_node(factory());
    }
    fleet.set_autoscaler(
        Box::new(ThresholdScaler::new().with_limits(2, 8)),
        provisioner(),
    );
    if with_checkpoints {
        fleet.set_checkpoint_policy(CheckpointPolicy::every(2));
    }
    if with_faults {
        fleet.set_fault_plan(plan());
    }
    fleet.run().expect("chaos run completes")
}

#[test]
fn multi_crash_chaos_conserves_every_frame() {
    let expected_frames: u64 = workload(9).arrivals().iter().map(|r| r.frames).sum();
    let summary = chaos_run(2, true, true);
    assert_eq!(summary.crashes, 2);
    assert!(summary.sessions_recovered > 0, "{summary}");
    assert_eq!(summary.frames_lost, 0, "{summary}");
    assert_eq!(
        summary.total_frames, expected_frames,
        "crashes re-do work, they never lose frames: {summary}"
    );
    // Both crashed nodes were replaced after the configured delay.
    assert_eq!(summary.recoveries, 2);
    assert!((summary.mean_mttr_epochs - 2.0).abs() < 1e-12, "{summary}");
    assert!(summary.availability_percent < 100.0);
    assert!(summary.checkpoints > 0);
    let text = summary.to_string();
    assert!(text.contains("faults: 2 crashes"), "{text}");
    assert!(text.contains("resilience:"), "{text}");
    assert!(text.contains("[crash:n0@e3]"), "{text}");
}

#[test]
fn chaos_runs_are_byte_identical_across_worker_counts() {
    let render = |workers| chaos_run(workers, true, true).to_string();
    let sequential = render(1);
    for workers in worker_counts(&[2, 8]) {
        assert_eq!(
            sequential,
            render(workers),
            "chaos run diverged at {workers} workers"
        );
    }
    assert!(sequential.contains("faults:"), "{sequential}");
}

#[test]
fn an_empty_plan_and_no_checkpoints_change_nothing() {
    // The fault machinery must be pay-for-what-you-use: wiring an empty
    // plan (or none at all) yields the exact bytes of a plain run.
    let plain = chaos_run(2, false, false);
    let mut fleet = FleetSim::new(
        FleetConfig::default().with_worker_threads(2),
        Box::new(LeastLoaded::new()),
        workload(9),
    );
    for _ in 0..4 {
        fleet.add_node(factory());
    }
    fleet.set_autoscaler(
        Box::new(ThresholdScaler::new().with_limits(2, 8)),
        provisioner(),
    );
    fleet.set_fault_plan(FaultPlan::new());
    let empty_plan = fleet.run().expect("run completes");
    assert_eq!(empty_plan.to_string(), plain.to_string());
    assert_eq!(empty_plan, plain);
}

#[test]
fn seeded_chaos_plans_are_deterministic() {
    assert_eq!(FaultPlan::chaos(1, 20, 4, 3), FaultPlan::chaos(1, 20, 4, 3));
    assert_ne!(FaultPlan::chaos(1, 20, 4, 3), FaultPlan::chaos(2, 20, 4, 3));
    // And a generated plan runs to completion like a hand-written one.
    let mut fleet = FleetSim::new(
        FleetConfig::default().with_worker_threads(2),
        Box::new(LeastLoaded::new()),
        workload(9),
    );
    for _ in 0..4 {
        fleet.add_node(factory());
    }
    fleet.set_checkpoint_policy(CheckpointPolicy::every(3));
    fleet.set_fault_plan(FaultPlan::chaos(1, 12, 4, 2));
    let summary = fleet.run().expect("generated chaos completes");
    let expected_frames: u64 = workload(9).arrivals().iter().map(|r| r.frames).sum();
    assert_eq!(summary.total_frames, expected_frames);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cut a session mid-frame at an arbitrary point, checkpoint it,
    /// then detach the original: the session restored from the bytes
    /// and the detached original, each continuing on its own fresh
    /// clock-aligned server, must deliver bit-identical streams — the
    /// checkpoint codec is a lossless round trip of live session state.
    #[test]
    fn checkpoint_restore_continue_is_bit_identical(
        qp_idx in 0usize..7,
        threads in 1u32..13,
        freq_idx in 0usize..6,
        seed in 0u64..50,
        cut_s in 0.4f64..3.0,
    ) {
        let qp = [22u8, 25, 27, 29, 32, 35, 37][qp_idx];
        let freq = [1.6, 1.9, 2.3, 2.6, 2.9, 3.2][freq_idx];
        let spec = catalog::by_name("ParkScene")
            .unwrap()
            .with_frame_count(240)
            .unwrap();
        let config = SessionConfig::single_video(spec, seed);
        let controller =
            || Box::new(FixedController::new(KnobSettings::new(qp, threads, freq)));

        let mut origin = ServerSim::with_default_platform();
        let id = origin.add_session(config.clone(), controller());
        origin.run_epoch(cut_s, 1_000_000).unwrap();
        let bytes = origin
            .checkpoint_session(id)
            .expect("live session checkpoints");
        let original = origin.detach_session(id).expect("session detaches");
        let restored = TranscodeSession::restore_checkpoint(config, controller(), &bytes)
            .expect("checkpoint restores");

        let resume = |session: TranscodeSession| {
            let mut server = ServerSim::with_default_platform();
            server.align_clock(origin.time()).unwrap();
            server.attach_session(session);
            server.run_to_completion(1_000_000).unwrap()
        };
        let continued = resume(original);
        let resumed = resume(restored);

        let (lhs, rhs) = (&resumed.sessions[0], &continued.sessions[0]);
        prop_assert_eq!(lhs.frames, rhs.frames);
        prop_assert_eq!(lhs.mean_fps.to_bits(), rhs.mean_fps.to_bits());
        prop_assert_eq!(lhs.mean_psnr_db.to_bits(), rhs.mean_psnr_db.to_bits());
        prop_assert_eq!(lhs.mean_bitrate_mbps.to_bits(), rhs.mean_bitrate_mbps.to_bits());
        prop_assert_eq!(lhs.violations, rhs.violations);
        prop_assert_eq!(lhs.mean_threads.to_bits(), rhs.mean_threads.to_bits());
        prop_assert_eq!(resumed.energy_j.to_bits(), continued.energy_j.to_bits());
        prop_assert_eq!(resumed.duration_s.to_bits(), continued.duration_s.to_bits());
        // And nothing was lost relative to an uninterrupted twin: the
        // full clip is delivered either way.
        let mut twin = ServerSim::with_default_platform();
        twin.add_session(
            SessionConfig::single_video(
                catalog::by_name("ParkScene").unwrap().with_frame_count(240).unwrap(),
                seed,
            ),
            controller(),
        );
        let reference = twin.run_to_completion(1_000_000).unwrap();
        prop_assert_eq!(lhs.frames, reference.sessions[0].frames);
    }
}
