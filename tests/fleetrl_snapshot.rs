//! Fleet-policy snapshot invariants, property-tested: the `MAMUTFP`
//! codec round-trips byte-identically for arbitrarily trained tables,
//! a restored policy continues making exactly the decisions the
//! original would, and damaged streams never restore (or mutate the
//! target).

use mamut::fleetrl::{EpsilonSchedule, FleetPolicy};
use proptest::prelude::*;

/// Trains a policy with a proptest-drawn workout: `steps` ε-greedy
/// selections each followed by an update on a mixed state walk. A pure
/// function of its inputs, so both halves of an equivalence check can
/// rebuild the same policy.
fn workout(seed: u64, n_states: usize, steps: u64, alpha: f64, gamma: f64) -> FleetPolicy {
    let mut policy = FleetPolicy::new(n_states, seed)
        .with_learning(alpha, gamma)
        .with_schedule(EpsilonSchedule {
            start: 0.5,
            end: 0.05,
            decay_steps: steps / 2 + 1,
        });
    let mut x = seed | 1;
    let mut next = move || {
        // SplitMix64 step: cheap, deterministic, well mixed.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut state = 0usize;
    for _ in 0..steps {
        let (action, _) = policy.select(state);
        let next_state = (next() % n_states as u64) as usize;
        let reward = (next() as i64 as f64) / (1u64 << 40) as f64;
        policy.update(state, action, reward, next_state);
        state = next_state;
    }
    policy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_decode_encode_is_byte_identical(
        seed in 0u64..u64::MAX,
        n_states in 1usize..96,
        steps in 0u64..400,
    ) {
        let policy = workout(seed, n_states, steps, 0.2, 0.9);
        let bytes = policy.snapshot_state();
        let mut restored = FleetPolicy::new(n_states, 0);
        restored.restore_state(&bytes).unwrap();
        prop_assert_eq!(&restored.snapshot_state(), &bytes);
        prop_assert_eq!(restored.steps(), policy.steps());
    }

    #[test]
    fn restored_policy_continues_exactly_like_the_original(
        seed in 0u64..u64::MAX,
        n_states in 1usize..64,
        steps in 1u64..200,
        tail in 1u64..64,
    ) {
        let mut original = workout(seed, n_states, steps, 0.15, 0.92);
        let mut restored = FleetPolicy::new(n_states, seed ^ 0xABCD);
        restored.restore_state(&original.snapshot_state()).unwrap();

        // Same post-restore workout on both: identical selections
        // (ε draws included — the RNG state travels in the snapshot)
        // and identical bytes after.
        let mut state = 0usize;
        for step in 0..tail {
            let a = original.select(state);
            let b = restored.select(state);
            prop_assert_eq!(a, b, "selection diverged at step {}", step);
            let reward = (step as f64) / 7.0 - 3.0;
            let next_state = (seed.wrapping_add(step) % n_states as u64) as usize;
            original.update(state, a.0, reward, next_state);
            restored.update(state, a.0, reward, next_state);
            state = next_state;
        }
        prop_assert_eq!(original.snapshot_state(), restored.snapshot_state());
    }

    #[test]
    fn truncated_streams_never_restore_and_never_mutate(
        seed in 0u64..u64::MAX,
        n_states in 1usize..32,
        cut_back in 1usize..64,
    ) {
        let bytes = workout(seed, n_states, 40, 0.2, 0.9).snapshot_state();
        let cut = bytes.len().saturating_sub(cut_back);

        let pristine = workout(seed ^ 1, n_states, 8, 0.3, 0.8);
        let before = pristine.snapshot_state();
        let mut target = workout(seed ^ 1, n_states, 8, 0.3, 0.8);
        prop_assert!(target.restore_state(&bytes[..cut]).is_err());
        // A failed restore must leave the target untouched.
        prop_assert_eq!(target.snapshot_state(), before);
    }

    #[test]
    fn shape_mismatches_are_rejected(
        seed in 0u64..u64::MAX,
        n_states in 2usize..32,
    ) {
        let bytes = workout(seed, n_states, 20, 0.2, 0.9).snapshot_state();
        let mut smaller = FleetPolicy::new(n_states - 1, seed);
        prop_assert!(smaller.restore_state(&bytes).is_err());
        let mut bigger = FleetPolicy::new(n_states + 1, seed);
        prop_assert!(bigger.restore_state(&bytes).is_err());
    }
}

#[test]
fn garbage_and_foreign_magics_are_rejected() {
    use mamut::fleet::{Forecaster, HoltWinters};

    let mut policy = FleetPolicy::new(4, 1);
    assert!(policy.restore_state(b"garbage").is_err());
    assert!(policy.restore_state(b"").is_err());
    // A valid stream from a *different* MAMUT codec must not restore.
    let foreign = HoltWinters::new(8).snapshot_state();
    assert!(policy.restore_state(&foreign).is_err());
    // The policy still works after every rejection.
    let _ = policy.select(0);
    assert_eq!(policy.steps(), 1);
}
