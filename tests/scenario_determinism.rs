//! Scenario determinism: a `Scenario` value is a pure function — its
//! realization must be byte-identical across repeated runs, its trace
//! codec must round-trip exactly, and driving a realized scenario
//! through the full fleet stack (seasonal forecast autoscaler, phase
//! marks) must render the same summary for any worker count.
//!
//! Like `tests/fleet_determinism.rs`, the worker counts exercised
//! against the 1-worker reference come from `MAMUT_FLEET_WORKERS` when
//! set (comma-separated); CI runs this file as a matrix over 1, 2 and
//! 8 workers.

use mamut::fleet::ControllerFactory;
use mamut::prelude::*;
use mamut::scenario::catalog;
use mamut::scenario::sizing::{self, SWEEP_EPOCH_S};
use proptest::prelude::*;

fn worker_counts(default: &[usize]) -> Vec<usize> {
    match std::env::var("MAMUT_FLEET_WORKERS") {
        Ok(list) => list
            .split(',')
            .map(|w| {
                w.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad MAMUT_FLEET_WORKERS entry {w:?}"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// A scenario whose every phase parameter is drawn from proptest
/// scalars — arbitrary shapes, always structurally valid.
fn synth_scenario(
    seed: u64,
    steady_rate: f64,
    diurnal_amp: f64,
    peak: f64,
    shift: f64,
) -> Scenario {
    let mix = MixProfile {
        hr_ratio: (shift * 0.9).clamp(0.0, 1.0),
        live_ratio: (diurnal_amp * 0.8).clamp(0.0, 1.0),
        vod_frames: (24 + (seed % 48), 96 + (seed % 96)),
        live_frames: (120, 240 + (seed % 120)),
    };
    Scenario::new("synth", seed)
        .then(Phase::Steady {
            duration_s: 10.0 + steady_rate,
            rate_hz: steady_rate,
            mix,
        })
        .then(Phase::Diurnal {
            duration_s: 40.0,
            mean_rate_hz: steady_rate.max(0.2),
            amplitude: diurnal_amp.clamp(0.0, 1.0),
            period_s: 20.0,
            phase_offset_s: shift * 20.0,
            mix,
        })
        .then(Phase::FlashCrowd {
            duration_s: 30.0,
            base_rate_hz: steady_rate * 0.5,
            peak_rate_hz: steady_rate * 0.5 + peak,
            event_at_s: 5.0 + shift * 10.0,
            ramp_s: 1.0 + shift * 4.0,
            decay_s: 2.0 + peak,
            mix,
        })
        .then(Phase::RegionalShift {
            duration_s: 20.0,
            rate_hz: steady_rate,
            from: mix,
            to: MixProfile::live_heavy(),
        })
        .then(Phase::ContentDrift {
            duration_s: 20.0,
            rate_hz: steady_rate,
            mix,
            hr_from: (shift * 0.5).clamp(0.0, 1.0),
            hr_to: (0.5 + shift * 0.5).clamp(0.0, 1.0),
            length_scale_from: 0.5 + shift,
            length_scale_to: 1.5,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any scenario realizes byte-identically across repeated runs, and
    /// its trace codec round-trips exactly (same struct, same bytes).
    #[test]
    fn realization_and_trace_are_byte_identical(
        seed in 0u64..u64::MAX,
        steady_rate in 0.1f64..4.0,
        diurnal_amp in 0.0f64..1.0,
        peak in 0.5f64..8.0,
        shift in 0.0f64..1.0,
    ) {
        let scenario = synth_scenario(seed, steady_rate, diurnal_amp, peak, shift);
        let a = scenario.realize().expect("synth scenarios are valid");
        let b = scenario.realize().expect("synth scenarios are valid");
        prop_assert_eq!(&a, &b, "same value, different realization");
        let bytes = a.to_bytes();
        prop_assert_eq!(&bytes, &b.to_bytes(), "same trace, different bytes");
        let decoded = RealizedScenario::from_bytes(&bytes).expect("own bytes decode");
        prop_assert_eq!(&decoded, &a);
        prop_assert_eq!(decoded.to_bytes(), bytes, "re-encode drifted");
    }
}

fn fixed_factory() -> ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

/// The full scenario stack — realized preset, seasonal forecast
/// autoscaler, power/QoS rebalancing, phase marks — rendered to the
/// summary text the CI matrix compares across worker counts.
fn stack_summary_text(realized: &RealizedScenario, workers: usize) -> String {
    let mut fleet = FleetSim::new(
        FleetConfig::default()
            .with_epoch_s(SWEEP_EPOCH_S)
            .with_worker_threads(workers),
        Box::new(LeastLoaded::new()),
        realized.workload(),
    );
    fleet.add_node(fixed_factory());
    fleet.set_autoscaler(
        Box::new(sizing::seasonal_sweep_scaler(realized)),
        Box::new(|| (Platform::xeon_e5_2667_v4(), fixed_factory())),
    );
    fleet.set_rebalancer(Box::new(
        PowerQosBalance::new().with_min_gap(0.3).with_max_moves(2),
    ));
    fleet.set_phase_marks(realized.phase_marks(SWEEP_EPOCH_S));
    fleet.run().expect("fleet run completes").to_string()
}

#[test]
fn scenario_stack_is_deterministic_across_worker_counts() {
    // live_final exercises three phases (steady, flash crowd, tail) and
    // both scaling directions at a CI-friendly size.
    let realized = catalog::live_final().realize().unwrap();
    let reference = stack_summary_text(&realized, 1);
    for workers in worker_counts(&[2, 8]) {
        assert_eq!(
            reference,
            stack_summary_text(&realized, workers),
            "scenario stack diverged at {workers} workers"
        );
    }
    // The run exercised what it claims: elastic pool plus phase marks.
    assert!(reference.contains("[flash-crowd@e4]"), "{reference}");
    assert!(reference.contains("scale-ups"), "{reference}");
}

#[test]
fn catalog_presets_realize_identically_every_time() {
    for scenario in catalog::all() {
        let a = scenario.realize().unwrap();
        let b = scenario.realize().unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes(), "{} drifted", scenario.name());
    }
}

#[test]
fn replaying_a_decoded_trace_reproduces_the_run() {
    // Persist → restart → replay: the decoded trace must drive the
    // fleet to the very same summary as the fresh realization.
    let realized = catalog::flash_mob().realize().unwrap();
    let decoded = RealizedScenario::from_bytes(&realized.to_bytes()).unwrap();
    assert_eq!(
        stack_summary_text(&realized, 2),
        stack_summary_text(&decoded, 2)
    );
}

#[test]
fn forecaster_state_round_trip_is_exact_mid_run() {
    // Persisting the predictor between "days" must not change what it
    // forecasts — the chained-runs path of scenario persistence.
    let mut original = HoltWinters::new(16).with_smoothing(0.3, 0.05, 0.25);
    for epoch in 0..40u64 {
        original.observe((4 + (epoch % 16) * 2) as usize, 8.0);
    }
    let mut restored = HoltWinters::new(16);
    restored.restore_state(&original.snapshot_state()).unwrap();
    for epoch in 40..80u64 {
        original.observe((4 + (epoch % 16) * 2) as usize, 8.0);
        restored.observe((4 + (epoch % 16) * 2) as usize, 8.0);
    }
    for h in 1..=16 {
        assert_eq!(
            original.forecast_hz(h).to_bits(),
            restored.forecast_hz(h).to_bits(),
            "forecast diverged at horizon {h}"
        );
    }
    assert_eq!(original.snapshot_state(), restored.snapshot_state());
}
