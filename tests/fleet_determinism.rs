//! Fleet determinism: the same workload seed and dispatch policy must
//! yield a byte-identical `FleetSummary` across runs AND across worker
//! thread counts — the parallel epoch loop is an execution detail, not a
//! source of nondeterminism.

use std::sync::Arc;

use mamut::fleet::{warm_start_factory, KnowledgeStore, MergePolicy, UtilizationBalance};
use mamut::prelude::*;

fn factory() -> mamut::fleet::ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

fn mamut_factory() -> mamut::fleet::ControllerFactory {
    Box::new(|req| {
        let cfg = if req.hr {
            MamutConfig::paper_hr()
        } else {
            MamutConfig::paper_lr()
        };
        Box::new(MamutController::new(cfg.with_seed(req.seed)).expect("paper config is valid"))
    })
}

fn workload(seed: u64) -> Workload {
    Workload::generate(&WorkloadConfig {
        seed,
        sessions: 20,
        mean_interarrival_s: 0.5,
        hr_ratio: 0.5,
        live_ratio: 0.4,
        vod_frames: (30, 90),
        live_frames: (90, 240),
    })
}

fn dispatcher(name: &str) -> Box<dyn Dispatcher> {
    match name {
        "round-robin" => Box::new(RoundRobin::new()),
        "least-loaded" => Box::new(LeastLoaded::new()),
        "power-aware" => Box::new(PowerAware::new()),
        "admission-gated" => Box::new(AdmissionGated::new(
            Box::new(LeastLoaded::new()),
            Platform::xeon_e5_2667_v4(),
            24.0,
            GateMode::Queue,
        )),
        other => panic!("unknown policy {other}"),
    }
}

/// Runs a 4-node fleet and returns the rendered `FleetSummary` — the
/// byte representation the tests compare.
fn summary_text(policy: &str, workers: usize, seed: u64) -> String {
    let mut fleet = FleetSim::new(
        FleetConfig::default().with_worker_threads(workers),
        dispatcher(policy),
        workload(seed),
    );
    for _ in 0..4 {
        fleet.add_node(factory());
    }
    fleet.run().expect("fleet run completes").to_string()
}

const POLICIES: [&str; 4] = [
    "round-robin",
    "least-loaded",
    "power-aware",
    "admission-gated",
];

#[test]
fn repeated_runs_are_byte_identical() {
    for policy in POLICIES {
        let a = summary_text(policy, 4, 7);
        let b = summary_text(policy, 4, 7);
        assert_eq!(a, b, "policy {policy} not reproducible");
    }
}

#[test]
fn worker_thread_count_never_changes_the_summary() {
    for policy in POLICIES {
        let sequential = summary_text(policy, 1, 7);
        for workers in [2, 3, 8, 16] {
            assert_eq!(
                sequential,
                summary_text(policy, workers, 7),
                "policy {policy} diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Sanity check that the byte-comparison above is not vacuous.
    assert_ne!(
        summary_text("least-loaded", 4, 7),
        summary_text("least-loaded", 4, 8)
    );
}

/// A learning fleet with migration *and* knowledge sharing enabled: the
/// full tentpole stack must stay byte-identical across worker counts.
fn learning_summary_text(workers: usize, seed: u64) -> String {
    let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
    let mut fleet = FleetSim::new(
        FleetConfig::default().with_worker_threads(workers),
        dispatcher("least-loaded"),
        workload(seed),
    );
    for _ in 0..4 {
        fleet.add_node(warm_start_factory(Arc::clone(&store), mamut_factory()));
    }
    fleet.set_knowledge_store(Arc::clone(&store));
    fleet.set_rebalancer(Box::new(UtilizationBalance::new().with_min_gap(0.1)));
    let summary = fleet.run().expect("fleet run completes");
    format!(
        "{summary}migrations={} warm_starts={} store_publishes={}",
        summary.migrations,
        summary.warm_starts,
        store.lock().unwrap().publishes()
    )
}

#[test]
fn migration_and_warm_start_preserve_worker_count_determinism() {
    let sequential = learning_summary_text(1, 7);
    for workers in [2, 4, 16] {
        assert_eq!(
            sequential,
            learning_summary_text(workers, 7),
            "learning fleet diverged at {workers} workers"
        );
    }
    // Knowledge actually flowed: later sessions were seeded.
    assert!(
        sequential.contains("warm_starts=") && !sequential.contains("warm_starts=0 "),
        "no warm starts in {sequential}"
    );
}

#[test]
fn replayed_traces_are_as_deterministic_as_generated_ones() {
    let trace: Vec<_> = workload(7).arrivals().to_vec();
    let run = |workers: usize| {
        let mut fleet = FleetSim::new(
            FleetConfig::default().with_worker_threads(workers),
            dispatcher("least-loaded"),
            Workload::replay(trace.clone()),
        );
        for _ in 0..4 {
            fleet.add_node(factory());
        }
        fleet.run().expect("fleet run completes").to_string()
    };
    assert_eq!(run(1), run(6));
    // Replaying the generated trace reproduces the generated run.
    assert_eq!(run(4), summary_text("least-loaded", 4, 7));
}
