//! Fleet determinism: the same workload seed and dispatch policy must
//! yield a byte-identical `FleetSummary` across runs AND across worker
//! thread counts — the parallel epoch loop is an execution detail, not a
//! source of nondeterminism.
//!
//! The worker counts exercised against the 1-worker reference come from
//! `MAMUT_FLEET_WORKERS` when set (a comma-separated list, e.g.
//! `MAMUT_FLEET_WORKERS=8`); CI runs this file as a matrix over 1, 2 and
//! 8 workers so cross-worker byte-identity is pinned on real runners,
//! not just locally. Unset, the defaults below cover the same ground.

use std::sync::Arc;

use mamut::fleet::{
    warm_start_factory, KnowledgeStore, MergePolicy, PowerQosBalance, SessionRequest,
    ThresholdScaler, UtilizationBalance,
};
use mamut::prelude::*;

/// Worker counts to compare against the sequential reference: the
/// `MAMUT_FLEET_WORKERS` env list when present, `default` otherwise.
fn worker_counts(default: &[usize]) -> Vec<usize> {
    match std::env::var("MAMUT_FLEET_WORKERS") {
        Ok(list) => list
            .split(',')
            .map(|w| {
                w.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad MAMUT_FLEET_WORKERS entry {w:?}"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn factory() -> mamut::fleet::ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

fn mamut_factory() -> mamut::fleet::ControllerFactory {
    Box::new(|req| {
        let cfg = if req.hr {
            MamutConfig::paper_hr()
        } else {
            MamutConfig::paper_lr()
        };
        Box::new(MamutController::new(cfg.with_seed(req.seed)).expect("paper config is valid"))
    })
}

fn workload(seed: u64) -> Workload {
    Workload::generate(&WorkloadConfig {
        seed,
        sessions: 20,
        mean_interarrival_s: 0.5,
        hr_ratio: 0.5,
        live_ratio: 0.4,
        vod_frames: (30, 90),
        live_frames: (90, 240),
    })
}

fn dispatcher(name: &str) -> Box<dyn Dispatcher> {
    match name {
        "round-robin" => Box::new(RoundRobin::new()),
        "least-loaded" => Box::new(LeastLoaded::new()),
        "power-aware" => Box::new(PowerAware::new()),
        "admission-gated" => Box::new(AdmissionGated::new(
            Box::new(LeastLoaded::new()),
            Platform::xeon_e5_2667_v4(),
            24.0,
            GateMode::Queue,
        )),
        other => panic!("unknown policy {other}"),
    }
}

/// Runs a 4-node fleet and returns the rendered `FleetSummary` — the
/// byte representation the tests compare.
fn summary_text(policy: &str, workers: usize, seed: u64) -> String {
    let mut fleet = FleetSim::new(
        FleetConfig::default().with_worker_threads(workers),
        dispatcher(policy),
        workload(seed),
    );
    for _ in 0..4 {
        fleet.add_node(factory());
    }
    fleet.run().expect("fleet run completes").to_string()
}

const POLICIES: [&str; 4] = [
    "round-robin",
    "least-loaded",
    "power-aware",
    "admission-gated",
];

#[test]
fn repeated_runs_are_byte_identical() {
    for policy in POLICIES {
        let a = summary_text(policy, 4, 7);
        let b = summary_text(policy, 4, 7);
        assert_eq!(a, b, "policy {policy} not reproducible");
    }
}

#[test]
fn worker_thread_count_never_changes_the_summary() {
    for policy in POLICIES {
        let sequential = summary_text(policy, 1, 7);
        for workers in worker_counts(&[2, 3, 8, 16]) {
            assert_eq!(
                sequential,
                summary_text(policy, workers, 7),
                "policy {policy} diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Sanity check that the byte-comparison above is not vacuous.
    assert_ne!(
        summary_text("least-loaded", 4, 7),
        summary_text("least-loaded", 4, 8)
    );
}

/// A learning fleet with migration *and* knowledge sharing enabled: the
/// full tentpole stack must stay byte-identical across worker counts.
fn learning_summary_text(workers: usize, seed: u64) -> String {
    let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
    let mut fleet = FleetSim::new(
        FleetConfig::default().with_worker_threads(workers),
        dispatcher("least-loaded"),
        workload(seed),
    );
    for _ in 0..4 {
        fleet.add_node(warm_start_factory(Arc::clone(&store), mamut_factory()));
    }
    fleet.set_knowledge_store(Arc::clone(&store));
    fleet.set_rebalancer(Box::new(UtilizationBalance::new().with_min_gap(0.1)));
    let summary = fleet.run().expect("fleet run completes");
    format!(
        "{summary}migrations={} warm_starts={} store_publishes={}",
        summary.migrations,
        summary.warm_starts,
        store.lock().unwrap().publishes()
    )
}

#[test]
fn migration_and_warm_start_preserve_worker_count_determinism() {
    let sequential = learning_summary_text(1, 7);
    for workers in worker_counts(&[2, 4, 16]) {
        assert_eq!(
            sequential,
            learning_summary_text(workers, 7),
            "learning fleet diverged at {workers} workers"
        );
    }
    // Knowledge actually flowed: later sessions were seeded.
    assert!(
        sequential.contains("warm_starts=") && !sequential.contains("warm_starts=0 "),
        "no warm starts in {sequential}"
    );
}

/// The full PR 3 stack — elastic autoscaling (grow *and* drain/retire),
/// power/QoS-aware rebalancing, knowledge sharing and warm starts, all
/// at once — must stay byte-identical across worker counts: every
/// scaling and migration decision runs on the coordinator between
/// epochs.
fn elastic_summary_text(workers: usize) -> String {
    // Quiet start, hard burst, quiet tail: forces both directions of
    // scaling within one run.
    let burst: Vec<SessionRequest> = {
        let quiet = Workload::generate(&WorkloadConfig {
            seed: 7,
            sessions: 6,
            mean_interarrival_s: 2.5,
            hr_ratio: 0.5,
            live_ratio: 0.3,
            vod_frames: (60, 150),
            live_frames: (300, 600),
        });
        let spike = Workload::generate(&WorkloadConfig {
            seed: 8,
            sessions: 10,
            mean_interarrival_s: 0.2,
            hr_ratio: 0.5,
            live_ratio: 0.2,
            vod_frames: (60, 150),
            live_frames: (300, 600),
        });
        quiet
            .arrivals()
            .iter()
            .cloned()
            .chain(spike.arrivals().iter().cloned().map(|mut r| {
                r.arrival_s += 12.0;
                r
            }))
            .collect()
    };
    let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
    let mut fleet = FleetSim::new(
        FleetConfig::default().with_worker_threads(workers),
        dispatcher("least-loaded"),
        Workload::replay(burst),
    );
    for _ in 0..2 {
        fleet.add_node(warm_start_factory(Arc::clone(&store), mamut_factory()));
    }
    fleet.set_knowledge_store(Arc::clone(&store));
    fleet.set_rebalancer(Box::new(
        PowerQosBalance::new().with_min_gap(0.3).with_max_moves(2),
    ));
    fleet.set_autoscaler(
        Box::new(
            ThresholdScaler::new()
                .with_limits(2, 5)
                .with_watermarks(0.35, 0.75)
                .with_cooldown(1),
        ),
        Box::new(|| {
            (
                Platform::xeon_e5_2667_v4(),
                Box::new(|req: &SessionRequest| {
                    let cfg = if req.hr {
                        MamutConfig::paper_hr()
                    } else {
                        MamutConfig::paper_lr()
                    };
                    Box::new(MamutController::new(cfg.with_seed(req.seed)).unwrap())
                        as Box<dyn Controller>
                }),
            )
        }),
    );
    let summary = fleet.run().expect("fleet run completes");
    format!(
        "{summary}scale_ups={} scale_downs={} drained={} store_publishes={}",
        summary.scale_ups,
        summary.scale_downs,
        summary.drained_sessions,
        store.lock().unwrap().publishes()
    )
}

#[test]
fn autoscaling_with_migration_and_knowledge_preserves_determinism() {
    let sequential = elastic_summary_text(1);
    for workers in worker_counts(&[2, 4, 16]) {
        assert_eq!(
            sequential,
            elastic_summary_text(workers),
            "elastic fleet diverged at {workers} workers"
        );
    }
    // The run exercised what it claims to: the pool breathed.
    assert!(
        !sequential.contains("scale_ups=0"),
        "pool never grew: {sequential}"
    );
    assert!(
        !sequential.contains("scale_downs=0"),
        "pool never shrank: {sequential}"
    );
}

/// The sharded coordinator over a full catalog scenario — regional
/// workload split, per-shard elastic autoscaling, rebalancing, knowledge
/// shards with periodic inter-shard sync, cross-shard overflow and the
/// idle-node fast path — must stay byte-identical across worker counts:
/// every cross-shard decision runs on the coordinator between epochs,
/// and per-shard workers only advance independent nodes.
fn sharded_summary_text(workers: usize) -> String {
    let realized = mamut::scenario::catalog::regional_follow_the_sun()
        .realize()
        .expect("catalog preset realizes");
    let mut sharded = ShardedFleetSim::new(ShardConfig::default().with_sync_interval(2));
    for (region, workload) in realized.regional_workloads(3).into_iter().enumerate() {
        let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
        let mut sim = FleetSim::new(
            FleetConfig::default()
                .with_epoch_s(8.0)
                .with_worker_threads(workers),
            dispatcher("least-loaded"),
            workload,
        );
        sim.add_node(warm_start_factory(Arc::clone(&store), mamut_factory()));
        sim.set_knowledge_store(Arc::clone(&store));
        sim.set_rebalancer(Box::new(
            PowerQosBalance::new().with_min_gap(0.3).with_max_moves(2),
        ));
        sim.set_autoscaler(
            Box::new(
                ThresholdScaler::new()
                    .with_limits(1, 8)
                    .with_watermarks(0.45, 0.8)
                    .with_cooldown(1),
            ),
            Box::new(|| {
                (
                    Platform::xeon_e5_2667_v4(),
                    Box::new(|req: &SessionRequest| {
                        let cfg = if req.hr {
                            MamutConfig::paper_hr()
                        } else {
                            MamutConfig::paper_lr()
                        };
                        Box::new(MamutController::new(cfg.with_seed(req.seed)).unwrap())
                            as Box<dyn Controller>
                    }),
                )
            }),
        );
        sim.set_phase_marks(realized.phase_marks(8.0));
        sharded.add_shard(format!("region{region}"), sim);
    }
    let summary = sharded.run().expect("sharded run completes");
    format!(
        "{summary}overflow={} syncs={}",
        summary.inter_shard_migrations, summary.knowledge_syncs
    )
}

#[test]
fn sharded_full_stack_preserves_worker_count_determinism() {
    let sequential = sharded_summary_text(1);
    for workers in worker_counts(&[2, 8]) {
        assert_eq!(
            sequential,
            sharded_summary_text(workers),
            "sharded fleet diverged at {workers} workers"
        );
    }
    // The run exercised what it claims to: knowledge moved between
    // shards, and the whole regional trace was served.
    assert!(!sequential.contains("syncs=0"), "no syncs in {sequential}");
    assert!(
        sequential.contains("759 sessions"),
        "regional split lost arrivals: {sequential}"
    );
}

#[test]
fn replayed_traces_are_as_deterministic_as_generated_ones() {
    let trace: Vec<_> = workload(7).arrivals().to_vec();
    let run = |workers: usize| {
        let mut fleet = FleetSim::new(
            FleetConfig::default().with_worker_threads(workers),
            dispatcher("least-loaded"),
            Workload::replay(trace.clone()),
        );
        for _ in 0..4 {
            fleet.add_node(factory());
        }
        fleet.run().expect("fleet run completes").to_string()
    };
    assert_eq!(run(1), run(6));
    // Replaying the generated trace reproduces the generated run.
    assert_eq!(run(4), summary_text("least-loaded", 4, 7));
}
