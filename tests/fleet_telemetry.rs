//! Deterministic fleet telemetry: the structured event trace must be
//! byte-identical across worker thread counts (CI runs this file in the
//! same 1/2/8-worker `MAMUT_FLEET_WORKERS` matrix as
//! `fleet_determinism.rs`), recording must never perturb the simulation
//! itself, the `MAMUTTL` codec must round-trip losslessly, and the
//! flight recorder must surface the crash-site tail when a typed error
//! aborts a run.

use mamut::fleet::{
    ControllerFactory, DispatchDecision, Dispatcher, FleetError, NodeView, PolicySource,
    SessionRequest, TRACE_MAGIC,
};
use mamut::prelude::*;
use proptest::prelude::*;

/// Worker counts to compare against the sequential reference: the
/// `MAMUT_FLEET_WORKERS` env list when present, `default` otherwise.
fn worker_counts(default: &[usize]) -> Vec<usize> {
    match std::env::var("MAMUT_FLEET_WORKERS") {
        Ok(list) => list
            .split(',')
            .map(|w| {
                w.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad MAMUT_FLEET_WORKERS entry {w:?}"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn factory() -> ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

fn provisioner() -> mamut::fleet::NodeProvisioner {
    Box::new(|| {
        (
            Platform::xeon_e5_2667_v4(),
            Box::new(|req: &SessionRequest| {
                let threads = if req.hr { 10 } else { 4 };
                Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
                    as Box<dyn Controller>
            }) as ControllerFactory,
        )
    })
}

fn workload(seed: u64) -> Workload {
    Workload::try_generate(&WorkloadConfig {
        seed,
        sessions: 16,
        mean_interarrival_s: 0.5,
        hr_ratio: 0.5,
        live_ratio: 0.4,
        vod_frames: (120, 300),
        live_frames: (300, 720),
    })
    .expect("valid workload config")
}

/// A chaos fleet — crashes, a throttle, checkpoints and autoscaling —
/// so the trace exercises every event family at once.
fn chaos_fleet(workers: usize, telemetry: Option<TelemetryMode>) -> FleetSim {
    let mut fleet = FleetSim::new(
        FleetConfig::default().with_worker_threads(workers),
        Box::new(LeastLoaded::new()),
        workload(9),
    );
    for _ in 0..4 {
        fleet.add_node(factory());
    }
    fleet.set_autoscaler(
        Box::new(ThresholdScaler::new().with_limits(2, 8)),
        provisioner(),
    );
    fleet.set_checkpoint_policy(CheckpointPolicy::every(2));
    fleet.set_fault_plan(
        FaultPlan::new()
            .with_crash(3, 0)
            .with_throttle(4, 2, 1.8, 3)
            .with_crash(6, 1)
            .with_replacement_delay(2),
    );
    if let Some(mode) = telemetry {
        fleet.set_telemetry(mode);
    }
    fleet
}

#[test]
fn traces_are_byte_identical_across_worker_counts() {
    let trace_bytes = |workers| {
        let mut fleet = chaos_fleet(workers, Some(TelemetryMode::Full));
        fleet.run().expect("chaos run completes");
        fleet.trace().encode()
    };
    let sequential = trace_bytes(1);
    assert_eq!(&sequential[..TRACE_MAGIC.len()], TRACE_MAGIC);
    for workers in worker_counts(&[2, 8]) {
        assert_eq!(
            sequential,
            trace_bytes(workers),
            "trace diverged at {workers} workers"
        );
    }
}

#[test]
fn tracing_never_perturbs_the_simulation() {
    let plain = chaos_fleet(2, None).run().expect("plain run completes");
    let mut traced = chaos_fleet(2, Some(TelemetryMode::Full))
        .run()
        .expect("traced run completes");
    assert!(traced.trace_events > 0);
    assert!(traced.to_string().contains("telemetry:"), "{traced}");
    // Identical physics: only the event counter may differ.
    traced.trace_events = 0;
    assert_eq!(traced, plain);
    assert_eq!(traced.to_string(), plain.to_string());
}

#[test]
fn tracing_off_matches_a_never_configured_run() {
    let untouched = chaos_fleet(2, None).run().expect("run completes");
    let mut off = chaos_fleet(2, Some(TelemetryMode::Off));
    let summary = off.run().expect("run completes");
    assert_eq!(summary, untouched);
    assert_eq!(summary.to_string(), untouched.to_string());
    assert!(off.trace().is_empty());
    // Fault marks render either way — the collector is their single
    // source of truth in every mode.
    assert!(summary.to_string().contains("[crash:n0@e3]"), "{summary}");
}

#[test]
fn idle_fast_path_does_not_change_the_trace() {
    let trace_with = |fast_path| {
        let mut fleet = FleetSim::new(
            FleetConfig::default()
                .with_worker_threads(2)
                .with_idle_fast_path(fast_path),
            Box::new(LeastLoaded::new()),
            workload(17),
        );
        for _ in 0..3 {
            fleet.add_node(factory());
        }
        fleet.set_telemetry(TelemetryMode::Full);
        fleet.run().expect("run completes");
        fleet.trace().encode()
    };
    assert_eq!(trace_with(true), trace_with(false));
}

#[test]
fn a_chaos_trace_round_trips_and_conserves_events() {
    let mut fleet = chaos_fleet(2, Some(TelemetryMode::Full));
    let summary = fleet.run().expect("chaos run completes");
    let trace = fleet.trace();

    // Event conservation against the summary's own counters.
    assert_eq!(trace.count_kind("node-crash"), summary.crashes);
    assert_eq!(trace.count_kind("checkpoint"), summary.checkpoints);
    assert_eq!(trace.count_kind("dispatch-shed"), summary.shed_sessions);
    assert_eq!(
        trace.count_kind("session-recovered"),
        summary.sessions_recovered
    );
    assert_eq!(trace.count_kind("dispatch-assign"), summary.total_sessions);
    assert_eq!(trace.count_kind("session-end"), summary.total_sessions);
    assert_eq!(trace.count_kind("epoch-begin"), summary.epochs);
    assert_eq!(trace.count_kind("epoch-end"), summary.epochs);
    assert_eq!(trace.len() as u64, summary.trace_events);

    // Lossless codec: decode(encode) == trace, and re-encoding the
    // decoded trace reproduces the exact bytes.
    let bytes = trace.encode();
    let decoded = FleetTrace::decode(&bytes).expect("trace decodes");
    assert_eq!(decoded, trace);
    assert_eq!(decoded.encode(), bytes);

    // Truncation is rejected, not misread.
    assert!(FleetTrace::decode(&bytes[..bytes.len() - 1]).is_err());
    assert!(FleetTrace::decode(&bytes[..TRACE_MAGIC.len()]).is_err());
}

/// Dispatches normally until a late arrival shows up, then returns an
/// out-of-range node id — the smallest way to abort `run()` with a
/// typed error from deep inside the epoch loop.
struct FailingDispatch {
    inner: LeastLoaded,
    fail_after_s: f64,
}

impl Dispatcher for FailingDispatch {
    fn name(&self) -> &'static str {
        "failing-dispatch"
    }

    fn dispatch(&mut self, request: &SessionRequest, nodes: &[NodeView]) -> DispatchDecision {
        if request.arrival_s >= self.fail_after_s {
            return DispatchDecision::Assign(usize::MAX);
        }
        self.inner.dispatch(request, nodes)
    }
}

#[test]
fn flight_recorder_dumps_the_tail_on_a_typed_error() {
    // One arrival per second; the poisoned dispatch fires on the 9th,
    // well past the 3-epoch recorder window.
    let arrivals = (0..10)
        .map(|i| SessionRequest {
            id: i,
            arrival_s: i as f64,
            hr: false,
            live: false,
            frames: 60,
            seed: i,
        })
        .collect();
    let mut fleet = FleetSim::new(
        FleetConfig::default().with_worker_threads(2),
        Box::new(FailingDispatch {
            inner: LeastLoaded::new(),
            fail_after_s: 8.5,
        }),
        Workload::replay(arrivals),
    );
    for _ in 0..4 {
        fleet.add_node(factory());
    }
    fleet.set_telemetry(TelemetryMode::FlightRecorder { epochs: 3 });
    let err = fleet.run().expect_err("the poisoned dispatch must abort");
    assert!(matches!(err, FleetError::InvalidDispatch { .. }), "{err}");

    let dump = fleet.flight_dump().expect("flight recorder dumped");
    let trace = FleetTrace::decode(dump).expect("dump decodes");
    assert!(!trace.is_empty());
    assert!(
        trace.dropped_epochs > 0,
        "a 6-epoch run kept in a 3-epoch recorder must have dropped blocks"
    );
    // Only the tail survives: every retained event is recent.
    let first_epoch = trace.events.iter().map(|e| e.epoch).min().unwrap();
    assert!(first_epoch >= trace.dropped_epochs);
    // A successful re-run clears the dump.
    let mut healthy = chaos_fleet(2, Some(TelemetryMode::FlightRecorder { epochs: 4 }));
    healthy.run().expect("healthy run completes");
    assert!(healthy.flight_dump().is_none());
    assert!(healthy.trace().dropped_epochs > 0);
}

#[test]
fn sharded_traces_carry_coordinator_lane_events() {
    let learner_factory = || -> ControllerFactory {
        Box::new(|req| {
            let cfg = if req.hr {
                MamutConfig::paper_hr()
            } else {
                MamutConfig::paper_lr()
            };
            Box::new(MamutController::new(cfg.with_seed(req.seed)).unwrap())
        })
    };
    let build = || {
        let mut sharded = ShardedFleetSim::new(ShardConfig::default().with_sync_interval(2));
        for (i, name) in ["east", "west"].iter().enumerate() {
            let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
            let mut sim = FleetSim::new(
                FleetConfig::default().with_worker_threads(2),
                Box::new(LeastLoaded::new()),
                workload(31 + i as u64),
            );
            sim.add_node(learner_factory());
            sim.add_node(learner_factory());
            sim.set_knowledge_store(std::sync::Arc::clone(&store));
            sharded.add_shard(*name, sim);
        }
        sharded.set_telemetry(TelemetryMode::Full);
        sharded
    };
    let mut sharded = build();
    let summary = sharded.run().expect("sharded run completes");
    let trace = sharded.trace();

    assert_eq!(trace.count_kind("knowledge-sync"), summary.knowledge_syncs);
    assert!(summary.knowledge_syncs > 0, "sync cadence never fired");
    // Coordinator events live on their own lane; shard events on 0/1.
    let lanes: std::collections::BTreeSet<u32> = trace.events.iter().map(|e| e.shard).collect();
    assert!(lanes.contains(&0) && lanes.contains(&1));
    assert!(lanes.contains(&mamut::fleet::COORDINATOR_LANE));
    // Shard rows surface the tail ledgers for traced runs.
    let text = summary.to_string();
    assert!(text.contains("shard=east telemetry:"), "{text}");

    // The merged deployment trace round-trips like a flat one.
    let bytes = trace.encode();
    assert_eq!(FleetTrace::decode(&bytes).expect("decodes"), trace);

    // And the whole merged trace is deterministic across repeat runs.
    let mut again = build();
    again.run().expect("sharded run completes");
    assert_eq!(again.trace().encode(), bytes);
}

/// One representative event per sampled shape, covering every field
/// type the codec serializes (unsigned, signed, float, bool, strings
/// with separators and quotes).
fn arbitrary_event(pick: u64, a: u64, b: u64, f: f64) -> TelemetryEvent {
    let labels = ["", "crash:n0", "tail, \"quoted\"", "phase=flash_mob"];
    let label = labels[(b % labels.len() as u64) as usize].to_owned();
    let sources = [
        PolicySource::Heuristic,
        PolicySource::Greedy,
        PolicySource::Exploratory,
    ];
    match pick % 12 {
        0 => TelemetryEvent::EpochBegin {
            active_nodes: a as u32,
        },
        1 => TelemetryEvent::EpochEnd,
        2 => TelemetryEvent::DispatchAssign {
            session: a,
            node: b as u32,
        },
        3 => TelemetryEvent::Autoscale {
            delta: a as i64 - b as i64,
            source: sources[(a % 3) as usize],
            detail: label,
        },
        4 => TelemetryEvent::NodeCrash {
            node: a as u32,
            sessions_lost: b as u32,
        },
        5 => TelemetryEvent::ThrottleStart {
            node: a as u32,
            freq_cap_ghz: f,
            until_epoch: b,
        },
        6 => TelemetryEvent::SessionRecovered {
            session: a,
            node: b as u32,
            frames_redone: b,
            from_checkpoint: a.is_multiple_of(2),
        },
        7 => TelemetryEvent::CheckpointCaptured {
            sessions: a as u32,
            bytes: b,
        },
        8 => TelemetryEvent::SessionEnd {
            session: a,
            node: b as u32,
            frames: a.wrapping_mul(3),
        },
        9 => TelemetryEvent::OverflowMigration {
            session: a,
            from_shard: a as u32,
            to_shard: b as u32,
        },
        10 => TelemetryEvent::KnowledgeSync { stores: a as u32 },
        _ => TelemetryEvent::Mark { label },
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary event sequences survive the `MAMUTTL` codec bit-exactly
    /// — including the float payloads, which round-trip through bits,
    /// not decimal formatting.
    #[test]
    fn mamuttl_codec_round_trips_arbitrary_traces(
        seed in 0u64..1_000_000,
        len in 0usize..64,
        epoch_s in 0.25f64..4.0,
        dropped in 0u64..10,
    ) {
        let mut state = seed;
        let events: Vec<TracedEvent> = (0..len)
            .map(|i| {
                let (pick, a, b) =
                    (splitmix64(&mut state), splitmix64(&mut state), splitmix64(&mut state));
                TracedEvent {
                    epoch: i as u64 / 3,
                    at_us: (i as u64) * 250_000,
                    shard: (a % 3) as u32,
                    event: arbitrary_event(pick, a % 1000, b % 1000, (b % 50) as f64 * 0.1),
                }
            })
            .collect();
        let trace = FleetTrace { epoch_s, dropped_epochs: dropped, events };
        let bytes = trace.encode();
        prop_assert_eq!(&bytes[..TRACE_MAGIC.len()], TRACE_MAGIC);
        let decoded = FleetTrace::decode(&bytes)
            .map_err(|e| format!("decode failed: {e:?}"))?;
        prop_assert_eq!(&decoded, &trace);
        prop_assert_eq!(decoded.encode(), bytes);
        // Truncation anywhere is a typed error, never a bogus trace.
        if !trace.events.is_empty() {
            prop_assert!(FleetTrace::decode(&bytes[..bytes.len() - 1]).is_err());
        }
    }
}
