//! Multi-user behaviour of the simulator: contention, fairness, scaling.

use mamut::prelude::*;
use mamut::transcode::{homogeneous_sessions, scenario_ii_sessions};

fn fixed(threads: u32, freq: f64) -> Box<dyn Controller> {
    Box::new(FixedController::new(KnobSettings::new(32, threads, freq)))
}

#[test]
fn adding_sessions_increases_power_and_reduces_per_session_fps() {
    let run = |n_hr: usize| {
        let mut server = ServerSim::with_default_platform();
        for (i, cfg) in homogeneous_sessions(MixSpec::new(n_hr, 0), 60, 3)
            .into_iter()
            .enumerate()
        {
            server.add_session(cfg, fixed(12, 3.2));
            let _ = i;
        }
        server.run_to_completion(10_000_000).expect("run completes")
    };
    let one = run(1);
    let five = run(5);
    assert!(five.mean_power_w > one.mean_power_w + 10.0);
    assert!(five.mean_fps() < one.mean_fps());
}

#[test]
fn equal_sessions_get_equal_service() {
    // Four identical HR sessions with identical knobs must progress at
    // nearly identical rates (processor sharing is fair).
    let mut server = ServerSim::with_default_platform();
    let spec = catalog::by_name("Cactus")
        .expect("catalog")
        .with_frame_count(80)
        .expect("frames");
    for i in 0..4 {
        server.add_session(
            SessionConfig::single_video(spec.clone(), 9 + i),
            fixed(10, 2.9),
        );
    }
    let summary = server.run_to_completion(10_000_000).expect("run completes");
    let fps: Vec<f64> = summary.sessions.iter().map(|s| s.mean_fps).collect();
    let min = fps.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = fps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(max / min < 1.1, "fair sharing violated: fps spread {fps:?}");
}

#[test]
fn lr_streams_are_cheaper_than_hr_streams() {
    let run = |mix: MixSpec| {
        let mut server = ServerSim::with_default_platform();
        for cfg in homogeneous_sessions(mix, 60, 3) {
            server.add_session(cfg, fixed(5, 2.9));
        }
        server.run_to_completion(10_000_000).expect("run completes")
    };
    let hr = run(MixSpec::new(2, 0));
    let lr = run(MixSpec::new(0, 2));
    // Same knob settings: LR frames retire much faster.
    assert!(lr.mean_fps() > hr.mean_fps() * 1.5);
}

#[test]
fn scenario_ii_sessions_complete_their_whole_playlists() {
    let mut server = ServerSim::with_default_platform();
    let sessions = scenario_ii_sessions(MixSpec::new(1, 1), 2, 40, 11);
    let expected_frames: Vec<u64> = sessions.iter().map(|s| s.playlist.total_frames()).collect();
    for cfg in sessions {
        server.add_session(cfg, fixed(5, 3.2));
    }
    let summary = server.run_to_completion(10_000_000).expect("run completes");
    for (s, expect) in summary.sessions.iter().zip(expected_frames) {
        assert_eq!(s.frames, expect, "{} incomplete", s.name);
    }
}

#[test]
fn sessions_finish_independently() {
    // A short session must finish and free capacity while a long one runs.
    let short = catalog::by_name("BQMall")
        .expect("catalog")
        .with_frame_count(20)
        .expect("frames");
    let long = catalog::by_name("Cactus")
        .expect("catalog")
        .with_frame_count(200)
        .expect("frames");
    let mut server = ServerSim::with_default_platform();
    server.add_session(SessionConfig::single_video(short, 1), fixed(4, 2.9));
    server.add_session(SessionConfig::single_video(long, 2), fixed(10, 2.9));
    let summary = server.run_to_completion(10_000_000).expect("run completes");
    assert_eq!(summary.sessions[0].frames, 20);
    assert_eq!(summary.sessions[1].frames, 200);
    assert!(server.all_finished());
}
