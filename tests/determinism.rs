//! Reproducibility: identical seeds must give bit-identical results across
//! the whole stack (content, learning, event loop, metrics).

use mamut::prelude::*;
use mamut::transcode::homogeneous_sessions;

fn full_run(seed: u64) -> RunSummary {
    let mix = MixSpec::new(2, 1);
    let mut server = ServerSim::with_default_platform();
    for (i, cfg) in homogeneous_sessions(mix, 150, seed).into_iter().enumerate() {
        let is_hr = cfg
            .playlist
            .get(0)
            .expect("non-empty")
            .resolution()
            .is_high_resolution();
        let mcfg = if is_hr {
            MamutConfig::paper_hr()
        } else {
            MamutConfig::paper_lr()
        }
        .with_seed(seed + i as u64);
        server.add_session(cfg, Box::new(MamutController::new(mcfg).expect("valid")));
    }
    server.run_to_completion(10_000_000).expect("run completes")
}

#[test]
fn identical_seeds_are_bit_identical() {
    let a = full_run(77);
    let b = full_run(77);
    assert_eq!(a.duration_s, b.duration_s);
    assert_eq!(a.energy_j, b.energy_j);
    assert_eq!(a.sessions.len(), b.sessions.len());
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_differ() {
    let a = full_run(78);
    let b = full_run(79);
    assert_ne!(
        (a.duration_s, a.energy_j),
        (b.duration_s, b.energy_j),
        "different seeds should explore differently"
    );
}

#[test]
fn heuristic_is_deterministic_without_any_seed() {
    let run = || {
        let mut server = ServerSim::with_default_platform();
        for cfg in homogeneous_sessions(MixSpec::new(1, 1), 120, 5) {
            let is_hr = cfg
                .playlist
                .get(0)
                .expect("non-empty")
                .resolution()
                .is_high_resolution();
            let hcfg = if is_hr {
                HeuristicConfig::paper_hr()
            } else {
                HeuristicConfig::paper_lr()
            };
            server.add_session(
                cfg,
                Box::new(HeuristicController::new(hcfg).expect("valid")),
            );
        }
        server.run_to_completion(10_000_000).expect("run completes")
    };
    let a = run();
    let b = run();
    assert_eq!(a.sessions, b.sessions);
}
