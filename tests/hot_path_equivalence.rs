//! The incremental event engine against its naive oracle.
//!
//! The oracle (`ServerSim::set_naive_engine`, `oracle` feature) re-derives
//! the full rate vector, throughput scale, power draw and the earliest
//! completion from scratch on every event and scans linearly for the
//! minimum — no cache survives an event. The incremental engine may only
//! skip work its rate-epoch bookkeeping proves unchanged, so any missed
//! invalidation (a knob edit, a playlist resolution switch, a constraint
//! change, a migration, a boundary hit), stale aggregate, or
//! heap-vs-scan disagreement shows up here as a bit-level divergence.
//! Both modes share the anchored-work event semantics; the physics of
//! that arithmetic are pinned separately by the hand-computation,
//! epoch-slicing, migration and materialization tests in
//! `crates/transcode`.
//!
//! Every comparison is exact: f64s are compared through `to_bits`, whole
//! summaries through `PartialEq` — byte-identical, not approximately equal.

use mamut::prelude::*;
use proptest::prelude::*;

/// Sampled shape of one randomized workload.
#[derive(Debug, Clone)]
struct Scenario {
    sessions: usize,
    frames: u64,
    seed: u64,
    epoch_s: f64,
    /// Epoch index at which every session's constraints tighten.
    constraint_epoch: u64,
    /// Epoch index at which one live session migrates to a second server.
    migrate_epoch: u64,
    /// Lead-in frames driven through `run_frames` before epoch slicing.
    lead_frames: u64,
}

fn controller(i: usize, hr: bool, seed: u64) -> Box<dyn Controller> {
    match (seed as usize + i) % 3 {
        0 => {
            let cfg = if hr {
                MamutConfig::paper_hr()
            } else {
                MamutConfig::paper_lr()
            };
            Box::new(MamutController::new(cfg.with_seed(seed ^ i as u64)).expect("valid config"))
        }
        1 => {
            let cfg = if hr {
                HeuristicConfig::paper_hr()
            } else {
                HeuristicConfig::paper_lr()
            };
            Box::new(HeuristicController::new(cfg).expect("valid config"))
        }
        _ => {
            let knobs = if hr {
                KnobSettings::new(32, 8, 2.9)
            } else {
                KnobSettings::new(34, 4, 2.6)
            };
            Box::new(FixedController::new(knobs))
        }
    }
}

fn build_server(sc: &Scenario, naive: bool) -> ServerSim {
    let mut srv = ServerSim::with_default_platform();
    srv.set_naive_engine(naive);
    for i in 0..sc.sessions {
        let hr = (sc.seed >> i) & 1 == 0;
        let name = if hr { "Kimono" } else { "BQMall" };
        let spec = catalog::by_name(name)
            .expect("catalog sequence")
            .with_frame_count(sc.frames)
            .expect("positive frames");
        srv.add_session(
            SessionConfig::single_video(spec, sc.seed.wrapping_add(i as u64)),
            controller(i, hr, sc.seed),
        );
    }
    srv
}

/// Drives one engine flavour through the whole scenario: a `run_frames`
/// lead-in, epoch-sliced advancement across two servers, a mid-run
/// constraint change, and a mid-run migration. Returns everything
/// observable.
fn drive(sc: &Scenario, naive: bool) -> (RunSummary, RunSummary, u64, u64, u64) {
    let mut a = build_server(sc, naive);
    let mut b = ServerSim::with_default_platform();
    b.set_naive_engine(naive);

    if sc.lead_frames > 0 {
        a.run_frames(sc.lead_frames, 10_000_000).expect("lead-in");
    }
    // Bring b level with a before slicing (b idles the gap away).
    b.run_epoch(a.time(), 10_000_000).expect("align");

    let mut t = a.time();
    let mut epoch = 0u64;
    while !(a.all_finished() && b.all_finished()) {
        epoch += 1;
        assert!(epoch < 10_000, "scenario failed to converge");
        t += sc.epoch_s;
        a.run_epoch(t, 10_000_000).expect("epoch a");
        b.run_epoch(t, 10_000_000).expect("epoch b");
        if epoch == sc.constraint_epoch {
            let tight = Constraints {
                power_cap_w: 70.0,
                bandwidth_mbps: 2.0,
                ..Constraints::paper_defaults()
            };
            a.set_constraints_all(tight);
            if let Ok(s) = a.session(0) {
                let mut c = s.constraints();
                c.target_fps = 22.0;
                let _ = a.set_constraints(0, c);
            }
        }
        if epoch == sc.migrate_epoch {
            let migrant = a
                .sessions()
                .iter()
                .find(|s| !s.is_finished())
                .map(|s| s.id());
            if let Some(id) = migrant {
                let session = a.detach_session(id).expect("live session detaches");
                b.attach_session(session);
            }
        }
    }
    (
        a.summary(),
        b.summary(),
        a.time().to_bits(),
        b.time().to_bits(),
        a.sensor().total_energy_j().to_bits() ^ b.sensor().total_energy_j().to_bits(),
    )
}

/// Exact per-session fingerprint (every f64 through its bits).
fn fingerprint(summary: &RunSummary) -> Vec<(u64, u64, u64, u64, u64)> {
    summary
        .sessions
        .iter()
        .map(|s| {
            (
                s.frames,
                s.violations,
                s.mean_fps.to_bits(),
                s.mean_psnr_db.to_bits(),
                s.mean_bitrate_mbps.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_engine_is_bit_identical_to_the_naive_oracle(
        sessions in 1usize..5,
        frames in 25u64..90,
        seed in 0u64..1_000_000,
        epoch_ms in 80u64..900,
        constraint_epoch in 1u64..6,
        migrate_epoch in 1u64..6,
        lead_frames in 0u64..12,
    ) {
        let sc = Scenario {
            sessions,
            frames,
            seed,
            epoch_s: epoch_ms as f64 / 1_000.0,
            constraint_epoch,
            migrate_epoch,
            lead_frames,
        };
        let incremental = drive(&sc, false);
        let oracle = drive(&sc, true);
        prop_assert_eq!(&incremental.0, &oracle.0, "server A summaries diverge");
        prop_assert_eq!(&incremental.1, &oracle.1, "server B summaries diverge");
        prop_assert_eq!(fingerprint(&incremental.0), fingerprint(&oracle.0));
        prop_assert_eq!(fingerprint(&incremental.1), fingerprint(&oracle.1));
        prop_assert_eq!(incremental.2, oracle.2, "virtual clocks diverge");
        prop_assert_eq!(incremental.3, oracle.3, "virtual clocks diverge");
        prop_assert_eq!(incremental.4, oracle.4, "energy integrals diverge");
    }
}

/// The blunt single-server case on a longer horizon: pure
/// `run_to_completion`, no slicing, heavier learning churn.
#[test]
fn long_mamut_run_matches_oracle_exactly() {
    let run = |naive: bool| {
        let mut srv = ServerSim::with_default_platform();
        srv.set_naive_engine(naive);
        for i in 0..4usize {
            let hr = i.is_multiple_of(2);
            let name = if hr { "Kimono" } else { "BQMall" };
            let spec = catalog::by_name(name)
                .unwrap()
                .with_frame_count(400)
                .unwrap();
            let cfg = if hr {
                MamutConfig::paper_hr()
            } else {
                MamutConfig::paper_lr()
            };
            srv.add_session(
                SessionConfig::single_video(spec, i as u64),
                Box::new(MamutController::new(cfg.with_seed(7 + i as u64)).unwrap()),
            );
        }
        let summary = srv.run_to_completion(10_000_000).unwrap();
        (summary, srv.time().to_bits())
    };
    let (inc, t_inc) = run(false);
    let (ora, t_ora) = run(true);
    assert_eq!(inc, ora, "summaries must be byte-identical");
    assert_eq!(t_inc, t_ora, "clocks must be byte-identical");
}

/// The incremental engine must actually be incremental: under fixed
/// knobs the rate vector is rebuilt a handful of times while thousands
/// of events reuse it (the oracle rebuilds once per event).
#[test]
fn rate_epochs_stay_rare_in_steady_state() {
    let mut srv = ServerSim::with_default_platform();
    for i in 0..8usize {
        let spec = catalog::by_name(if i.is_multiple_of(2) {
            "Kimono"
        } else {
            "BQMall"
        })
        .unwrap()
        .with_frame_count(500)
        .unwrap();
        srv.add_session(
            SessionConfig::single_video(spec, i as u64),
            Box::new(FixedController::new(KnobSettings::new(32, 6, 2.9))),
        );
    }
    srv.run_to_completion(10_000_000).unwrap();
    assert!(
        srv.rate_epochs() <= 10,
        "fixed-knob run must reuse the rate cache, rebuilt {} times",
        srv.rate_epochs()
    );
}
