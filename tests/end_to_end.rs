//! End-to-end integration: MAMUT driving the full simulator stack.

use mamut::prelude::*;
use mamut::transcode::homogeneous_sessions;

fn mamut_controller(is_hr: bool, seed: u64) -> Box<dyn Controller> {
    let cfg = if is_hr {
        MamutConfig::paper_hr()
    } else {
        MamutConfig::paper_lr()
    }
    .with_seed(seed);
    Box::new(MamutController::new(cfg).expect("paper config is valid"))
}

/// Runs a mix with per-session MAMUT controllers: pretrain, then measure.
fn pretrained_run(mix: MixSpec, pretrain: u64, frames: u64, seed: u64) -> RunSummary {
    let warm = homogeneous_sessions(mix, pretrain, seed + 50_000);
    let mut trainer = ServerSim::with_default_platform();
    for (i, cfg) in warm.into_iter().enumerate() {
        let is_hr = cfg
            .playlist
            .get(0)
            .expect("non-empty")
            .resolution()
            .is_high_resolution();
        trainer.add_session(cfg, mamut_controller(is_hr, seed + i as u64));
    }
    trainer
        .run_to_completion(100_000_000)
        .expect("pretraining completes");
    let trained = trainer.into_controllers();

    let mut server = ServerSim::with_default_platform();
    for (cfg, ctl) in homogeneous_sessions(mix, frames, seed)
        .into_iter()
        .zip(trained)
    {
        server.add_session(cfg, ctl);
    }
    server
        .run_to_completion(100_000_000)
        .expect("measured run completes")
}

#[test]
fn trained_mamut_keeps_single_hr_stream_mostly_above_target() {
    let summary = pretrained_run(MixSpec::new(1, 0), 20_000, 400, 5);
    let s = &summary.sessions[0];
    assert_eq!(s.frames, 400);
    assert!(
        s.violation_percent < 25.0,
        "trained MAMUT should be well under 25% violations, got {:.1}%",
        s.violation_percent
    );
    assert!(s.mean_fps > 23.0, "mean fps {:.1}", s.mean_fps);
    // PSNR must stay in the acceptable band the reward enforces.
    assert!(s.mean_psnr_db > 30.0 && s.mean_psnr_db < 50.0);
}

#[test]
fn trained_mamut_prefers_more_threads_at_lower_frequency() {
    // The Table I signature: MAMUT runs HR streams on many threads below
    // the maximum frequency. Averaged over seeds, like the paper's
    // five-repetition protocol (individual seeds can settle elsewhere).
    let mut threads = 0.0;
    let mut freq = 0.0;
    let seeds = [6u64, 16, 26];
    for &seed in &seeds {
        let summary = pretrained_run(MixSpec::new(1, 0), 20_000, 400, seed);
        threads += summary.sessions[0].mean_threads;
        freq += summary.sessions[0].mean_freq_ghz;
    }
    let n = seeds.len() as f64;
    assert!(threads / n > 7.0, "threads {:.1}", threads / n);
    assert!(freq / n < 3.15, "freq {:.2}", freq / n);
}

#[test]
fn mamut_serves_mixed_load_within_constraints() {
    let summary = pretrained_run(MixSpec::new(1, 1), 20_000, 300, 7);
    assert_eq!(summary.sessions.len(), 2);
    for s in &summary.sessions {
        // Bitrate constraint: the learned QP must respect the 6 Mb/s band
        // on average.
        assert!(
            s.mean_bitrate_mbps < 6.5,
            "{}: bitrate {:.2}",
            s.name,
            s.mean_bitrate_mbps
        );
    }
    // Power stays under the paper-default cap.
    assert!(summary.mean_power_w < 140.0);
}

#[test]
fn learning_progresses_through_phases() {
    use mamut::control::MamutController as Ctl;
    let mut server = ServerSim::with_default_platform();
    let warm = homogeneous_sessions(MixSpec::new(1, 0), 25_000, 55_001);
    for cfg in warm {
        let c = MamutConfig::paper_hr().with_seed(1);
        server.add_session(cfg, Box::new(Ctl::new(c).expect("valid config")));
    }
    server
        .run_to_completion(100_000_000)
        .expect("run completes");
    let session = server.session(0).expect("session exists");
    let ctl = session
        .controller()
        .as_any()
        .downcast_ref::<Ctl>()
        .expect("MAMUT controller");
    assert!(
        ctl.exploitation_decisions() > ctl.exploration_decisions(),
        "after 25k frames exploitation should dominate: {} vs {}",
        ctl.exploitation_decisions(),
        ctl.exploration_decisions()
    );
    assert!(ctl.recent_exploitation_fraction() > 0.8);
}
