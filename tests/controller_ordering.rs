//! The paper's headline comparison, as an executable assertion: under a
//! saturating workload, MAMUT beats both baselines on QoS and power.

use mamut::prelude::*;
use mamut::transcode::homogeneous_sessions;

fn build(kind: &str, is_hr: bool, seed: u64) -> Box<dyn Controller> {
    match kind {
        "mamut" => {
            let cfg = if is_hr {
                MamutConfig::paper_hr()
            } else {
                MamutConfig::paper_lr()
            }
            .with_seed(seed);
            Box::new(MamutController::new(cfg).expect("valid")) as Box<dyn Controller>
        }
        "mono" => {
            let cfg = if is_hr {
                MonoAgentConfig::paper_hr()
            } else {
                MonoAgentConfig::paper_lr()
            }
            .with_seed(seed);
            Box::new(MonoAgentController::new(cfg).expect("valid"))
        }
        _ => {
            let cfg = if is_hr {
                HeuristicConfig::paper_hr()
            } else {
                HeuristicConfig::paper_lr()
            };
            Box::new(HeuristicController::new(cfg).expect("valid"))
        }
    }
}

fn run(kind: &str, mix: MixSpec, seed: u64) -> RunSummary {
    let pretrain = 25_000;
    let warm = homogeneous_sessions(mix, pretrain, seed + 50_000);
    let mut trainer = ServerSim::with_default_platform();
    for (i, cfg) in warm.into_iter().enumerate() {
        let is_hr = cfg
            .playlist
            .get(0)
            .expect("non-empty")
            .resolution()
            .is_high_resolution();
        trainer.add_session(cfg, build(kind, is_hr, seed + i as u64));
    }
    trainer.run_to_completion(100_000_000).expect("pretrain ok");
    let trained = trainer.into_controllers();

    let mut server = ServerSim::with_default_platform();
    for (cfg, ctl) in homogeneous_sessions(mix, 400, seed)
        .into_iter()
        .zip(trained)
    {
        server.add_session(cfg, ctl);
    }
    server.run_to_completion(100_000_000).expect("measure ok")
}

#[test]
fn mamut_beats_heuristic_on_power_at_saturation() {
    let mix = MixSpec::new(3, 3);
    let mamut = run("mamut", mix, 1_000);
    let heuristic = run("heuristic", mix, 1_000);
    assert!(
        mamut.mean_power_w < heuristic.mean_power_w * 0.9,
        "MAMUT {:.1} W should undercut heuristic {:.1} W by >10%",
        mamut.mean_power_w,
        heuristic.mean_power_w
    );
}

#[test]
fn mamut_beats_heuristic_on_qos_at_saturation() {
    let mix = MixSpec::new(3, 3);
    let mamut = run("mamut", mix, 2_000);
    let heuristic = run("heuristic", mix, 2_000);
    assert!(
        mamut.mean_violation_percent() < heuristic.mean_violation_percent(),
        "MAMUT ∆ {:.1}% should beat heuristic ∆ {:.1}%",
        mamut.mean_violation_percent(),
        heuristic.mean_violation_percent()
    );
}

#[test]
fn mamut_beats_mono_agent_on_qos_at_moderate_load() {
    let mix = MixSpec::new(1, 1);
    let mamut = run("mamut", mix, 3_000);
    let mono = run("mono", mix, 3_000);
    assert!(
        mamut.mean_violation_percent() < mono.mean_violation_percent(),
        "MAMUT ∆ {:.1}% should beat mono-agent ∆ {:.1}%",
        mamut.mean_violation_percent(),
        mono.mean_violation_percent()
    );
}

#[test]
fn heuristic_parks_at_max_frequency_ml_does_not() {
    // Table I shape, cross-controller.
    let mix = MixSpec::new(2, 0);
    let mamut = run("mamut", mix, 4_000);
    let heuristic = run("heuristic", mix, 4_000);
    assert!(
        heuristic.mean_freq_ghz() > 3.15,
        "heuristic should peg 3.2 GHz"
    );
    assert!(
        mamut.mean_freq_ghz() < heuristic.mean_freq_ghz(),
        "MAMUT {:.2} GHz vs heuristic {:.2} GHz",
        mamut.mean_freq_ghz(),
        heuristic.mean_freq_ghz()
    );
}
