//! Minimal, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The build environment has no crates.io registry, so the real `rand`
//! cannot be fetched; this shim keeps the workspace std-only while
//! preserving the call sites unchanged. The generator is xoshiro256**
//! seeded through SplitMix64 — high-quality, fast, and fully
//! deterministic for a given seed, which is all the simulator needs
//! (reproducible pseudo-randomness, not cryptographic strength).

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unit-interval double from the top 53 bits of a random word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Modulo reduction: negligible bias for the small spans
                // used in this workspace (all ≪ 2^32).
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    // 0..=u64::MAX — every word is admissible as-is.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's full internal state, for checkpoint/restore.
        ///
        /// Not part of the real `rand` API: the MAMUT workspace snapshots
        /// live controllers (RNG included) so a restored controller
        /// replays the exact same exploration sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured with
        /// [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        // 0..=u64::MAX has a span of 2^64: must not wrap to a zero divisor.
        let xs: Vec<u64> = (0..64).map(|_| rng.gen_range(0..=u64::MAX)).collect();
        assert!(xs.iter().any(|&x| x > u64::MAX / 2), "upper half reachable");
        assert!(xs.iter().any(|&x| x < u64::MAX / 2), "lower half reachable");
        let b = rng.gen_range(0u8..=u8::MAX);
        let _ = b; // full-width u8 also fine (span 256, no wrap)
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
