//! Minimal, dependency-free stand-in for the subset of `proptest` this
//! workspace uses: the `proptest!` macro, range strategies, tuple
//! strategies, `prop_map`, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.
//!
//! The build environment has no crates.io registry, so the real
//! `proptest` cannot be fetched. This shim samples each strategy with a
//! deterministic seeded RNG (seed derived from the test body's case
//! index) rather than doing true shrinking — a failing case panics with
//! the sampled inputs so it can still be reproduced and minimized by
//! hand.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Items a `proptest!` body needs in scope.
pub mod prelude {
    pub use crate::{__run_proptest_cases, prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Per-block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Runs `cases` sampled invocations of `body`, panicking on the first
/// failure with the case number so it can be reproduced (sampling is
/// deterministic in the case number). Not part of the public API of the
/// real proptest; used by this shim's `proptest!` expansion.
pub fn __run_proptest_cases(
    test_name: &str,
    cases: u32,
    body: &mut dyn FnMut(&mut StdRng) -> Result<(), String>,
) {
    use rand::SeedableRng;
    for case in 0..cases {
        // Stable per-test stream: name hash + case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(h.wrapping_add(u64::from(case)));
        if let Err(msg) = body(&mut rng) {
            panic!("proptest case {case}/{cases} failed: {msg}");
        }
    }
}

/// Asserts a condition inside a `proptest!` body, reporting the failure
/// as a normal proptest case failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        let holds: bool = $cond;
        if !holds {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let holds: bool = $cond;
        if !holds {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}: {} == {} ({:?} vs {:?})",
                format!($($fmt)+),
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Declares property tests: each `fn` becomes a `#[test]` running many
/// sampled cases of its body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::__run_proptest_cases(
                    stringify!($name),
                    config.cases,
                    &mut |__rng| {
                        $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, f64)> {
        (0u32..10, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn mapped_strategy_applies(p in arb_pair()) {
            prop_assert_eq!(p.0 % 2, 0);
            prop_assert!(p.1 < 1.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_cases_honoured(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        __run_proptest_cases("always_fails", 3, &mut |_rng| Err("boom".into()));
    }
}
