//! Minimal, dependency-free stand-in for the subset of `criterion` this
//! workspace uses: `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no crates.io registry, so the real
//! `criterion` cannot be fetched. This shim times each benchmark with
//! `std::time::Instant` over a fixed sample budget and prints mean
//! ns/iter — enough to sanity-check the paper's "overhead < 0.05 % of
//! the frame budget" claim, without statistical machinery.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not differentiated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives the measured closure of one benchmark.
pub struct Bencher {
    samples: u64,
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.iters += self.samples;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Benchmark registry/runner, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            total_ns: 0,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total_ns as f64 / b.iters as f64
        };
        println!(
            "bench {name:<40} {mean_ns:>12.1} ns/iter ({} iters)",
            b.iters
        );
        self
    }
}

/// Declares a benchmark group, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(3u64) * 3));
    }

    criterion_group!(
        name = group;
        config = Criterion::default().sample_size(10);
        targets = bench_square
    );

    #[test]
    fn group_runs() {
        group();
    }

    #[test]
    fn iter_batched_counts_iterations() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
