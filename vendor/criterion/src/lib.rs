//! Minimal, dependency-free stand-in for the subset of `criterion` this
//! workspace uses: `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no crates.io registry, so the real
//! `criterion` cannot be fetched. This shim times each benchmark with
//! `std::time::Instant` over a fixed sample budget and prints mean
//! ns/iter — enough to sanity-check the paper's "overhead < 0.05 % of
//! the frame budget" claim, without statistical machinery.
//!
//! # CI hooks
//!
//! Two environment variables wire the shim into the repo's bench
//! regression gate:
//!
//! * `MAMUT_BENCH_QUICK=1` tells the *bench binaries* to shrink their
//!   sweeps (the shim keeps its sample budget — timing noise, not
//!   sample count, is what threatens the gate);
//! * `MAMUT_BENCH_JSON=<path>` makes every `bench_function` merge its
//!   best-pass figure as `"<name>_ns"` into the flat JSON file at
//!   `<path>` (see [`benchjson`]), which `bench_gate` then compares
//!   against the committed baseline.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

pub mod benchjson;

/// How `iter_batched` amortizes setup cost (accepted, not differentiated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives the measured closure of one benchmark.
pub struct Bencher {
    samples: u64,
    total_ns: u128,
    iters: u64,
    /// Best (minimum) batch mean seen by [`Bencher::iter`], in ns/iter.
    /// `None` until a batch has run; the reported figure prefers this
    /// over the plain mean because a single descheduling blip otherwise
    /// poisons the whole measurement (and with it the CI gate).
    best_batch_ns: Option<f64>,
}

impl Bencher {
    /// Number of timing batches `iter` splits its sample budget into.
    const BATCHES: u64 = 10;

    /// Times `routine` over the sample budget, in batches; the reported
    /// time is the best batch mean (robust against scheduler noise).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let per_batch = (self.samples / Self::BATCHES).max(1);
        for _ in 0..Self::BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos();
            self.total_ns += elapsed;
            self.iters += per_batch;
            let batch_mean = elapsed as f64 / per_batch as f64;
            self.best_batch_ns = Some(self.best_batch_ns.map_or(batch_mean, |b| b.min(batch_mean)));
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    /// The figure to report: best batch mean when `iter` ran, plain mean
    /// otherwise.
    fn reported_ns(&self) -> f64 {
        match self.best_batch_ns {
            Some(best) => best,
            None if self.iters == 0 => 0.0,
            None => self.total_ns as f64 / self.iters as f64,
        }
    }
}

/// Benchmark registry/runner, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    /// 100 samples per benchmark. `MAMUT_BENCH_QUICK` deliberately does
    /// *not* shrink this: the per-iteration benches are already fast,
    /// and the CI regression gate needs enough batches that its
    /// tolerance reflects the code, not scheduler noise (quick mode's
    /// savings come from the benches shrinking their own sweeps).
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one named benchmark and prints its time per iteration. The
    /// routine is measured over three independent passes (each batched,
    /// see [`Bencher::iter`]) and the best figure wins — a pass that
    /// lost its CPU to another process reports slow *throughout*, so
    /// only the min across passes is robust against scheduler noise.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        const PASSES: usize = 3;
        let mut iters = 0;
        let mut mean_ns = f64::INFINITY;
        for _ in 0..PASSES {
            let mut b = Bencher {
                samples: self.sample_size,
                total_ns: 0,
                iters: 0,
                best_batch_ns: None,
            };
            f(&mut b);
            iters += b.iters;
            mean_ns = mean_ns.min(b.reported_ns());
        }
        if !mean_ns.is_finite() {
            mean_ns = 0.0;
        }
        println!("bench {name:<40} {mean_ns:>12.1} ns/iter ({iters} iters)");
        if let Ok(path) = std::env::var("MAMUT_BENCH_JSON") {
            if !path.is_empty() {
                benchjson::merge_into(std::path::Path::new(&path), &format!("{name}_ns"), mean_ns)
                    .unwrap_or_else(|e| eprintln!("bench json emission failed: {e}"));
            }
        }
        self
    }
}

/// Declares a benchmark group, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(3u64) * 3));
    }

    criterion_group!(
        name = group;
        config = Criterion::default().sample_size(10);
        targets = bench_square
    );

    #[test]
    fn group_runs() {
        group();
    }

    #[test]
    fn iter_batched_counts_iterations() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
