//! Flat `{"metric": number}` JSON read/merge/write helpers — the
//! interchange format between the benches (which emit metrics when
//! `MAMUT_BENCH_JSON` is set), the committed `ci/bench_baseline.json`,
//! and the `bench_gate` regression check. Std-only on purpose: the
//! format is one object of string keys to finite numbers, nothing more.

use std::collections::BTreeMap;
use std::path::Path;

/// Parses a flat JSON object of `"key": number` pairs.
///
/// # Errors
///
/// Returns a message for anything that is not a one-level object of
/// finite numbers (nested values, strings, malformed numbers).
pub fn parse(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let inner = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.trim_end().strip_suffix('}'))
        .ok_or_else(|| "expected a top-level JSON object".to_owned())?;
    let mut metrics = BTreeMap::new();
    for entry in inner.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("entry {entry:?} is not a \"key\": value pair"))?;
        let key = key.trim();
        let key = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("key {key:?} is not quoted"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("value for {key:?} is not a number: {e}"))?;
        if !value.is_finite() {
            return Err(format!("value for {key:?} is not finite"));
        }
        metrics.insert(key.to_owned(), value);
    }
    Ok(metrics)
}

/// Renders metrics as a stable, sorted, pretty-printed JSON object.
pub fn render(metrics: &BTreeMap<String, f64>) -> String {
    if metrics.is_empty() {
        return "{}\n".to_owned();
    }
    let body = metrics
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n{body}\n}}\n")
}

/// Loads the metrics file at `path`; a missing file is an empty set.
///
/// # Errors
///
/// Propagates read errors other than not-found, and parse failures.
pub fn load(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(BTreeMap::new()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Read-modify-writes one metric into the file at `path` (several bench
/// binaries run sequentially and share the file, each contributing its
/// own keys).
///
/// # Errors
///
/// Propagates load/parse/write failures.
pub fn merge_into(path: &Path, name: &str, value: f64) -> Result<(), String> {
    let mut metrics = load(path)?;
    metrics.insert(name.to_owned(), value);
    std::fs::write(path, render(&metrics))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        let text = "{\n  \"a_ns\": 12.5,\n  \"b_per_s\": 3e4\n}\n";
        let metrics = parse(text).unwrap();
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics["a_ns"], 12.5);
        assert_eq!(metrics["b_per_s"], 3e4);
        let rendered = render(&metrics);
        assert_eq!(parse(&rendered).unwrap(), metrics);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(parse("[]").is_err());
        assert!(parse("{\"a\": \"str\"}").is_err());
        assert!(parse("{a: 1}").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert_eq!(parse("{}").unwrap().len(), 0);
    }

    #[test]
    fn merge_accumulates_across_writers() {
        let dir = std::env::temp_dir().join(format!("benchjson-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        let _ = std::fs::remove_file(&path);
        merge_into(&path, "first_ns", 10.0).unwrap();
        merge_into(&path, "second_ns", 20.0).unwrap();
        merge_into(&path, "first_ns", 15.0).unwrap(); // overwrite
        let metrics = load(&path).unwrap();
        assert_eq!(metrics["first_ns"], 15.0);
        assert_eq!(metrics["second_ns"], 20.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
