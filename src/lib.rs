//! # MAMUT — Multi-Agent Reinforcement Learning for Efficient Real-Time
//! # Multi-User Video Transcoding
//!
//! A faithful, self-contained Rust reproduction of the DATE 2019 paper by
//! Costero et al. The paper's contribution — three cooperating Q-learning
//! agents tuning the HEVC quantization parameter, the WPP thread count and
//! the per-core DVFS frequency of every transcoding session — lives in
//! [`control`] ([`mamut_core`]); everything the original evaluation ran on
//! (Kvazaar, JCT-VC sequences, a dual-Xeon server with RAPL) is rebuilt as
//! calibrated simulation substrates in the sibling crates, re-exported
//! here under one roof:
//!
//! | module        | crate             | contents                                  |
//! |---------------|-------------------|-------------------------------------------|
//! | [`control`]   | `mamut-core`      | states, rewards, agents, Algorithm 1      |
//! | [`video`]     | `mamut-video`     | JCT-VC-like content models                |
//! | [`encoder`]   | `mamut-encoder`   | analytic HEVC encoder/decoder, WPP        |
//! | [`platform`]  | `mamut-platform`  | topology, DVFS, power, contention         |
//! | [`transcode`] | `mamut-transcode` | discrete-event multi-user server          |
//! | [`baselines`] | `mamut-baselines` | mono-agent QL + heuristic baselines       |
//! | [`metrics`]   | `mamut-metrics`   | QoS (∆), stats, traces, tables            |
//! | [`fleet`]     | `mamut-fleet`     | cluster, churn, dispatch, KaaS, migration |
//! | [`scenario`]  | `mamut-scenario`  | workload scenarios, seasonal forecasting  |
//! | [`fleetrl`]   | `mamut-fleetrl`   | learned fleet scaling & dispatch          |
//!
//! Learned state is portable: every [`prelude::Controller`] snapshots to
//! a versioned binary form (`control::snapshot`), fleets share knowledge
//! through a [`prelude::KnowledgeStore`] and migrate live sessions
//! between nodes — see `examples/warm_start.rs`.
//!
//! # Quickstart
//!
//! ```
//! use mamut::prelude::*;
//!
//! // One 1080p user served by MAMUT on the simulated server:
//! let spec = mamut::video::catalog::by_name("Kimono")
//!     .unwrap()
//!     .with_frame_count(48)
//!     .unwrap();
//! let config = MamutConfig::paper_hr();
//! let constraints = config.constraints;
//! let controller = MamutController::new(config).unwrap();
//!
//! let mut server = ServerSim::with_default_platform();
//! server.add_session(
//!     SessionConfig::single_video(spec, 1).with_constraints(constraints),
//!     Box::new(controller),
//! );
//! let summary = server.run_to_completion(1_000_000).unwrap();
//! assert_eq!(summary.sessions[0].frames, 48);
//! ```
//!
//! See `examples/` for multi-user scenarios, live constraint changes and
//! controller comparisons, and `crates/bench/benches/` for the scripts
//! that regenerate every table and figure of the paper (`DESIGN.md` §4
//! maps them; `EXPERIMENTS.md` records paper-vs-measured values).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mamut_baselines as baselines;
pub use mamut_core as control;
pub use mamut_encoder as encoder;
pub use mamut_fleet as fleet;
pub use mamut_fleetrl as fleetrl;
pub use mamut_metrics as metrics;
pub use mamut_platform as platform;
pub use mamut_scenario as scenario;
pub use mamut_transcode as transcode;
pub use mamut_video as video;

/// The most commonly used types, for glob import.
///
/// ```
/// use mamut::prelude::*;
/// let _ = MamutConfig::paper_lr();
/// ```
pub mod prelude {
    pub use mamut_baselines::{
        FixedController, HeuristicConfig, HeuristicController, MonoAgentConfig, MonoAgentController,
    };
    pub use mamut_core::{
        Constraints, Controller, KnobSettings, MamutConfig, MamutController, Observation,
        PolicySnapshot, SnapshotError,
    };
    pub use mamut_encoder::{HevcEncoder, Preset};
    pub use mamut_fleet::{
        AdmissionGated, Autoscaler, CheckpointPolicy, Dispatcher, FaultPlan, FleetConfig, FleetSim,
        FleetSummary, FleetTrace, ForecastScaler, Forecaster, GateMode, HoltWinters,
        KnowledgeStore, LeastLoaded, MergePolicy, NodeView, PowerAware, PowerQosBalance,
        PredictiveScaler, Rebalancer, RoundRobin, SeasonalNaive, SessionClass, ShardConfig,
        ShardedFleetSim, ShardedFleetSummary, TelemetryEvent, TelemetryMode, ThresholdScaler,
        TracedEvent, UtilizationBalance, Workload, WorkloadConfig, WorkloadError,
    };
    pub use mamut_fleetrl::{FleetPolicy, RlDispatch, RlScaler, TrainConfig, Trainer};
    pub use mamut_platform::Platform;
    pub use mamut_scenario::{MixProfile, Phase, RealizedScenario, Scenario, ScenarioError};
    pub use mamut_transcode::{MixSpec, RunSummary, ServerSim, SessionConfig};
    pub use mamut_video::{catalog, Playlist, Resolution, SequenceSpec};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let cfg = MamutConfig::paper_hr();
        assert_eq!(cfg.constraints.target_fps, 24.0);
        let p = Platform::xeon_e5_2667_v4();
        assert_eq!(p.topology().hw_threads(), 32);
        assert!(catalog::by_name("Kimono").is_ok());
    }
}
