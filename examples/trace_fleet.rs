//! Flight-recorded chaos, replayed as a trace you can open in a
//! browser.
//!
//! This demo reruns the `flash_mob` chaos scenario — a 7.5× arrival
//! surge with two mid-ramp node crashes and a thermal throttle — with
//! structured event tracing switched on, then puts the resulting
//! [`FleetTrace`] through its paces:
//!
//! * every dispatch decision, autoscale step, crash, checkpoint,
//!   recovery and migration lands in one deterministic timeline with
//!   simulated-time stamps;
//! * the timeline is serialized with the versioned `MAMUTTL` codec,
//!   decoded back, and re-encoded to the identical bytes (lossless
//!   round trip, asserted);
//! * event conservation is asserted against the summary's own counters
//!   — one `dispatch-assign` and one `session-end` per admitted
//!   session, one `node-crash` per planned crash;
//! * the trace is exported as Chrome `trace_event` JSON (open it at
//!   `chrome://tracing` or <https://ui.perfetto.dev>) and as CSV, and
//!   the whole trace is byte-identical across 1, 2 and 8 worker
//!   threads — observability obeys the same determinism contract as
//!   the simulation it observes.
//!
//! Run with: `cargo run --release --example trace_fleet`

use mamut::fleet::{ControllerFactory, SessionRequest};
use mamut::prelude::*;
use mamut::scenario::catalog;

/// Epoch length: long enough that the surge spans a handful of epochs,
/// short enough that the fault timeline reads naturally.
const EPOCH_S: f64 = 2.0;

fn factory() -> ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

fn provisioner() -> mamut::fleet::NodeProvisioner {
    Box::new(|| {
        (
            Platform::xeon_e5_2667_v4(),
            Box::new(|req: &SessionRequest| {
                let threads = if req.hr { 10 } else { 4 };
                Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
                    as Box<dyn Controller>
            }) as ControllerFactory,
        )
    })
}

/// The flash mob surges at t = 32 s (epoch 16): crash two of the
/// original nodes mid-ramp, throttle a third at the peak.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .with_crash(17, 0)
        .with_throttle(18, 2, 1.8, 4)
        .with_crash(19, 1)
        .with_replacement_delay(2)
}

fn run(workers: usize) -> (FleetSummary, FleetTrace) {
    let realized = catalog::flash_mob()
        .realize()
        .expect("catalog preset realizes");
    let mut fleet = FleetSim::new(
        FleetConfig::default()
            .with_epoch_s(EPOCH_S)
            .with_worker_threads(workers),
        Box::new(LeastLoaded::new()),
        realized.workload(),
    );
    for _ in 0..3 {
        fleet.add_node(factory());
    }
    fleet.set_autoscaler(
        Box::new(
            ThresholdScaler::new()
                .with_limits(3, 12)
                .with_watermarks(0.1, 0.8)
                .with_cooldown(2),
        ),
        provisioner(),
    );
    fleet.set_phase_marks(realized.phase_marks(EPOCH_S));
    fleet.set_checkpoint_policy(CheckpointPolicy::every(3));
    fleet.set_fault_plan(chaos_plan());
    fleet.set_telemetry(TelemetryMode::Full);
    let summary = fleet.run().expect("fleet run completes");
    (summary, fleet.trace())
}

fn main() {
    println!("== flash mob under chaos, fully traced ==\n");
    let (summary, trace) = run(2);
    println!("{summary}");

    // Event conservation: the trace and the summary are two views of
    // the same run, so their counters must agree exactly.
    assert_eq!(trace.count_kind("node-crash"), summary.crashes);
    assert_eq!(trace.count_kind("checkpoint"), summary.checkpoints);
    assert_eq!(trace.count_kind("dispatch-assign"), summary.total_sessions);
    assert_eq!(trace.count_kind("session-end"), summary.total_sessions);
    assert_eq!(trace.count_kind("epoch-begin"), summary.epochs);
    assert_eq!(
        trace.count_kind("session-recovered"),
        summary.sessions_recovered
    );
    assert_eq!(trace.len() as u64, summary.trace_events);

    // Lossless codec: decode(encode(trace)) re-encodes to the exact
    // same bytes.
    let bytes = trace.encode();
    let decoded = FleetTrace::decode(&bytes).expect("MAMUTTL trace decodes");
    assert_eq!(decoded, trace);
    assert_eq!(decoded.encode(), bytes);

    // Exporters: Chrome trace_event JSON and CSV.
    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    let csv = trace.to_csv();
    assert_eq!(csv.lines().count(), 1 + trace.len());

    let dir = std::env::temp_dir().join("mamut_trace_fleet");
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(dir.join("flash_mob.trace"), &bytes).expect("write trace");
    std::fs::write(dir.join("flash_mob.json"), &json).expect("write json");
    std::fs::write(dir.join("flash_mob.csv"), &csv).expect("write csv");

    // Determinism: the trace — not just the summary — is byte-identical
    // for any worker thread count.
    let reference = run(1).1.encode();
    for workers in [2usize, 8] {
        assert_eq!(
            reference,
            run(workers).1.encode(),
            "trace diverged at {workers} workers"
        );
    }

    println!("== trace digest ==\n");
    println!(
        "events              {:>10}  over {} epochs ({} bytes encoded)",
        trace.len(),
        summary.epochs,
        bytes.len()
    );
    for kind in [
        "dispatch-assign",
        "session-end",
        "autoscale",
        "node-commission",
        "node-crash",
        "session-recovered",
        "checkpoint",
        "throttle-start",
        "session-detach",
        "mark",
    ] {
        println!("  {kind:<18}{:>10}", trace.count_kind(kind));
    }
    println!(
        "\nexported to {} (open flash_mob.json at chrome://tracing)",
        dir.display()
    );
    println!("trace byte-identical across 1/2/8 workers ✓");
}
