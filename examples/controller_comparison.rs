//! Head-to-head: MAMUT vs. mono-agent Q-learning vs. heuristic.
//!
//! Runs the three run-time managers on the same 2HR1LR workload (5 seeds
//! each, pretrained like the paper's measurements) and prints a compact
//! comparison table — a miniature of the paper's Table II.
//!
//! Run with: `cargo run --release --example controller_comparison`

use mamut::metrics::{Align, RunningStats, Table};
use mamut::prelude::*;
use mamut::transcode::homogeneous_sessions;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Mamut,
    Mono,
    Heuristic,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Mamut => "MAMUT",
            Kind::Mono => "Mono-agent",
            Kind::Heuristic => "Heuristic",
        }
    }

    fn build(self, is_hr: bool, seed: u64) -> Box<dyn Controller> {
        match self {
            Kind::Mamut => {
                let cfg = if is_hr {
                    MamutConfig::paper_hr()
                } else {
                    MamutConfig::paper_lr()
                }
                .with_seed(seed);
                Box::new(MamutController::new(cfg).expect("valid config"))
            }
            Kind::Mono => {
                let cfg = if is_hr {
                    MonoAgentConfig::paper_hr()
                } else {
                    MonoAgentConfig::paper_lr()
                }
                .with_seed(seed);
                Box::new(MonoAgentController::new(cfg).expect("valid config"))
            }
            Kind::Heuristic => {
                let cfg = if is_hr {
                    HeuristicConfig::paper_hr()
                } else {
                    HeuristicConfig::paper_lr()
                };
                Box::new(HeuristicController::new(cfg).expect("valid config"))
            }
        }
    }
}

fn run_once(kind: Kind, seed: u64) -> RunSummary {
    let mix = MixSpec::new(2, 1);
    let build = |sessions: &[SessionConfig], base: u64| -> Vec<Box<dyn Controller>> {
        sessions
            .iter()
            .enumerate()
            .map(|(i, cfg)| {
                let is_hr = cfg
                    .playlist
                    .get(0)
                    .expect("non-empty")
                    .resolution()
                    .is_high_resolution();
                kind.build(is_hr, base + i as u64)
            })
            .collect()
    };

    // Pretrain…
    let warm = homogeneous_sessions(mix, 30_000, seed + 50_000);
    let ctls = build(&warm, seed);
    let mut trainer = ServerSim::with_default_platform();
    for (cfg, ctl) in warm.into_iter().zip(ctls) {
        trainer.add_session(cfg, ctl);
    }
    trainer
        .run_to_completion(50_000_000)
        .expect("pretraining completes");
    let trained = trainer.into_controllers();

    // …then measure.
    let mut server = ServerSim::with_default_platform();
    for (cfg, ctl) in homogeneous_sessions(mix, 500, seed)
        .into_iter()
        .zip(trained)
    {
        server.add_session(cfg, ctl);
    }
    server
        .run_to_completion(50_000_000)
        .expect("measured run completes")
}

fn main() {
    println!("comparing controllers on a 2HR1LR workload (5 seeds each)…\n");

    let mut table = Table::new(
        [
            "controller",
            "watts",
            "delta %",
            "fps",
            "threads",
            "freq GHz",
            "psnr dB",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut aligns = vec![Align::Left];
    aligns.extend(vec![Align::Right; 6]);
    table.set_alignments(aligns);

    for kind in [Kind::Heuristic, Kind::Mono, Kind::Mamut] {
        let mut watts = RunningStats::new();
        let mut delta = RunningStats::new();
        let mut fps = RunningStats::new();
        let mut threads = RunningStats::new();
        let mut freq = RunningStats::new();
        let mut psnr = RunningStats::new();
        for seed in 0..5u64 {
            let s = run_once(kind, 100 + seed * 9);
            watts.push(s.mean_power_w);
            delta.push(s.mean_violation_percent());
            fps.push(s.mean_fps());
            threads.push(s.mean_threads());
            freq.push(s.mean_freq_ghz());
            psnr.push(s.mean_psnr_db());
        }
        table.add_row(vec![
            kind.label().to_string(),
            format!("{:.1}", watts.mean()),
            format!("{:.1}", delta.mean()),
            format!("{:.1}", fps.mean()),
            format!("{:.1}", threads.mean()),
            format!("{:.2}", freq.mean()),
            format!("{:.1}", psnr.mean()),
        ]);
        println!("{} done", kind.label());
    }

    println!("\n{table}");
    println!("expected shape (paper Table II): MAMUT lowest watts and delta;");
    println!("heuristic pegged at 3.2 GHz; mono-agent in between.");
}
