//! Elastic fleet vs. worst-case fixed pool under a bursty workload.
//!
//! A transcoding service sized for its peak pays for the peak around the
//! clock. This demo runs the same three-phase churn — a quiet morning, a
//! sharp arrival burst, a quiet tail — through two fleets of MAMUT
//! nodes:
//!
//! * the **fixed** fleet keeps the worst-case pool (`POOL_MAX` nodes)
//!   powered for the whole run;
//! * the **elastic** fleet starts at `POOL_MIN` nodes and lets a
//!   [`ThresholdScaler`] commission and retire capacity as utilization
//!   and QoS demand, with a [`PowerQosBalance`] rebalancer spreading the
//!   burst onto freshly commissioned nodes and drain-before-decommission
//!   migrating live sessions off retiring ones. Both fleets share
//!   knowledge through a [`KnowledgeStore`], so nodes the autoscaler
//!   adds mid-run warm-start their sessions from policies the fleet
//!   already learned.
//!
//! The punchline is the node-epoch count (node-seconds of powered
//! capacity): the elastic pool serves the same sessions with a fraction
//! of the capacity while staying within a few QoS percentage points of
//! the worst-case pool.
//!
//! Run with: `cargo run --release --example autoscale`

use std::sync::Arc;

use mamut::fleet::{
    warm_start_factory, ControllerFactory, KnowledgeStore, MergePolicy, SessionClass,
    SessionRequest, SharedKnowledgeStore,
};
use mamut::prelude::*;

/// Worst-case pool the fixed fleet keeps powered for the whole run.
const POOL_MAX: usize = 6;
/// Baseline pool the elastic fleet starts from and returns to.
const POOL_MIN: usize = 2;
/// Frames each teacher session trains for before the store is seeded.
const TRAINING_FRAMES: u64 = 20_000;

fn mamut_factory() -> ControllerFactory {
    Box::new(|req| {
        let cfg = if req.hr {
            MamutConfig::paper_hr()
        } else {
            MamutConfig::paper_lr()
        };
        Box::new(MamutController::new(cfg.with_seed(req.seed)).expect("paper config is valid"))
    })
}

/// Trains one HR and one LR teacher to maturity and publishes both, so
/// every session in either fleet (including those on nodes the
/// autoscaler commissions mid-run) starts from learned tables and the
/// comparison isolates *elasticity*, not the learning transient.
fn train_store() -> SharedKnowledgeStore {
    let mut server = ServerSim::with_default_platform();
    let hr = catalog::by_name("Kimono")
        .unwrap()
        .with_frame_count(TRAINING_FRAMES)
        .unwrap();
    let lr = catalog::by_name("BQMall")
        .unwrap()
        .with_frame_count(TRAINING_FRAMES)
        .unwrap();
    server.add_session(
        SessionConfig::single_video(hr, 1),
        Box::new(MamutController::new(MamutConfig::paper_hr().with_seed(1)).unwrap()),
    );
    server.add_session(
        SessionConfig::single_video(lr, 2),
        Box::new(MamutController::new(MamutConfig::paper_lr().with_seed(2)).unwrap()),
    );
    server
        .run_to_completion(100_000_000)
        .expect("training run completes");
    let mut store = KnowledgeStore::new(MergePolicy::VisitWeighted);
    for session in server.sessions() {
        store.publish(
            SessionClass::of_hr(session.is_high_resolution()),
            &session.controller().snapshot(),
        );
    }
    store.into_shared()
}

/// Quiet phase, burst, quiet tail — generated per phase with the usual
/// seeded churn generator, time-shifted, and replayed as one trace.
fn bursty_workload() -> Workload {
    fn phase(
        seed: u64,
        sessions: usize,
        mean_interarrival_s: f64,
        offset_s: f64,
    ) -> Vec<SessionRequest> {
        let generated = Workload::try_generate(&WorkloadConfig {
            seed,
            sessions,
            mean_interarrival_s,
            hr_ratio: 0.4,
            live_ratio: 0.3,
            vod_frames: (120, 300),
            live_frames: (400, 900),
        })
        .expect("valid workload config");
        generated
            .arrivals()
            .iter()
            .cloned()
            .map(|mut r| {
                r.arrival_s += offset_s;
                r
            })
            .collect()
    }
    let mut arrivals = phase(11, 6, 4.0, 0.0); // quiet: ~one arrival / 4 s
    arrivals.extend(phase(22, 14, 0.3, 25.0)); // burst: ~three arrivals / s
    arrivals.extend(phase(33, 4, 4.0, 40.0)); // tail: quiet again
    Workload::replay(arrivals)
}

fn run_fleet(elastic: bool, store: &SharedKnowledgeStore) -> FleetSummary {
    let store = Arc::clone(store);
    let mut fleet = FleetSim::new(
        FleetConfig::default(),
        Box::new(LeastLoaded::new()),
        bursty_workload(),
    );
    let initial = if elastic { POOL_MIN } else { POOL_MAX };
    for _ in 0..initial {
        fleet.add_node(warm_start_factory(Arc::clone(&store), mamut_factory()));
    }
    fleet.set_knowledge_store(Arc::clone(&store));
    if elastic {
        fleet.set_autoscaler(
            Box::new(
                ThresholdScaler::new()
                    .with_limits(POOL_MIN, POOL_MAX)
                    .with_watermarks(0.35, 0.75)
                    .with_cooldown(2),
            ),
            Box::new(|| (Platform::xeon_e5_2667_v4(), mamut_factory())),
        );
        // Elasticity rides on migration: spread a landed burst onto the
        // nodes the scaler just commissioned.
        fleet.set_rebalancer(Box::new(
            PowerQosBalance::new().with_min_gap(0.3).with_max_moves(2),
        ));
    }
    fleet.run().expect("fleet run completes")
}

fn main() {
    println!("== phase 1: training teachers ({TRAINING_FRAMES} frames each) ==");
    let store = train_store();

    println!(
        "\n== phase 2: bursty workload, {} sessions (quiet / burst / tail) ==\n",
        bursty_workload().len()
    );

    println!("fixed worst-case pool ({POOL_MAX} nodes):");
    let fixed = run_fleet(false, &store);
    print!("{fixed}");

    println!("\nelastic pool ({POOL_MIN}–{POOL_MAX} nodes, threshold autoscaler):");
    let elastic = run_fleet(true, &store);
    print!("{elastic}");

    let saving = 100.0 * (1.0 - elastic.node_epochs as f64 / fixed.node_epochs.max(1) as f64);
    let delta_gap = elastic.cluster_violation_percent - fixed.cluster_violation_percent;
    println!("\n                    fixed      elastic");
    println!(
        "node-epochs     {:>9}    {:>9}",
        fixed.node_epochs, elastic.node_epochs
    );
    println!(
        "delta %         {:>9.2}    {:>9.2}",
        fixed.cluster_violation_percent, elastic.cluster_violation_percent
    );
    println!(
        "mean power W    {:>9.1}    {:>9.1}",
        fixed.mean_power_w, elastic.mean_power_w
    );
    println!(
        "energy J        {:>9.0}    {:>9.0}",
        fixed.total_energy_j, elastic.total_energy_j
    );

    assert_eq!(
        elastic.total_sessions, fixed.total_sessions,
        "both pools must serve every arrival"
    );
    assert!(
        elastic.scale_ups > 0 && elastic.scale_downs > 0,
        "the elastic pool must actually scale: {} up / {} down",
        elastic.scale_ups,
        elastic.scale_downs
    );
    assert!(
        elastic.node_epochs < fixed.node_epochs,
        "elastic pool must be cheaper: {} vs {} node-epochs",
        elastic.node_epochs,
        fixed.node_epochs
    );
    assert!(
        delta_gap <= 5.0,
        "elastic QoS must stay within 5 points of the worst-case pool (gap {delta_gap:.2})"
    );
    println!(
        "\n=> elastic pool saved {saving:.0}% node-epochs ({} -> {}) at {delta_gap:+.2} QoS points",
        fixed.node_epochs, elastic.node_epochs
    );
}
