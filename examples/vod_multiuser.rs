//! Multi-user VoD scenario: 2 HR + 2 LR streams, trained MAMUT controllers.
//!
//! Mimics the paper's deployment story: a transcoding server keeps serving
//! a workload family, so by measurement time the controllers have learned
//! it. We pretrain each session's controller online (shifted content
//! seeds), then measure a fresh mix and print per-user QoS.
//!
//! Run with: `cargo run --release --example vod_multiuser`

use mamut::prelude::*;
use mamut::transcode::homogeneous_sessions;

/// Builds one MAMUT controller per session config.
fn controllers_for(sessions: &[SessionConfig], seed: u64) -> Vec<Box<dyn Controller>> {
    sessions
        .iter()
        .enumerate()
        .map(|(i, cfg)| {
            let is_hr = cfg
                .playlist
                .get(0)
                .expect("non-empty playlist")
                .resolution()
                .is_high_resolution();
            let mamut_cfg = if is_hr {
                MamutConfig::paper_hr()
            } else {
                MamutConfig::paper_lr()
            }
            .with_seed(seed + i as u64);
            Box::new(MamutController::new(mamut_cfg).expect("valid config")) as Box<dyn Controller>
        })
        .collect()
}

fn main() {
    let mix = MixSpec::new(2, 2);
    let seed = 7;

    // Phase 1 — online learning on the workload family (30k frames each).
    println!(
        "pretraining MAMUT controllers on a {} workload…",
        mix.label()
    );
    let warm = homogeneous_sessions(mix, 30_000, seed + 50_000);
    let mut trainer = ServerSim::with_default_platform();
    let ctls = controllers_for(&warm, seed);
    for (cfg, ctl) in warm.into_iter().zip(ctls) {
        trainer.add_session(cfg, ctl);
    }
    trainer
        .run_to_completion(50_000_000)
        .expect("pretraining completes");
    let trained = trainer.into_controllers();

    // Phase 2 — serve a fresh mix with the trained controllers.
    println!("serving a fresh {} mix…\n", mix.label());
    let mut server = ServerSim::with_default_platform();
    for (cfg, ctl) in homogeneous_sessions(mix, 500, seed)
        .into_iter()
        .zip(trained)
    {
        server.add_session(cfg, ctl);
    }
    let summary = server.run_to_completion(50_000_000).expect("run completes");

    println!("== per-user results ==");
    for s in &summary.sessions {
        println!(
            "{:18} [{}] fps={:5.1} delta={:5.1}% psnr={:4.1} dB threads={:4.1} freq={:.2} GHz",
            s.name,
            if s.is_hr { "HR" } else { "LR" },
            s.mean_fps,
            s.violation_percent,
            s.mean_psnr_db,
            s.mean_threads,
            s.mean_freq_ghz,
        );
    }
    println!("\n== server ==");
    println!(
        "power : {:.1} W (idle would be {:.1} W)",
        summary.mean_power_w,
        Platform::xeon_e5_2667_v4().idle_power_w()
    );
    println!(
        "energy: {:.0} J over {:.1} s",
        summary.energy_j, summary.duration_s
    );
}
