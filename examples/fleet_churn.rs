//! Fleet churn demo: one seeded session-churn workload dispatched to a
//! 4-node cluster under three policies, printing each `FleetSummary`.
//!
//! Every node runs the paper's rule-based controller per session (the
//! deterministic baseline — so the only difference between runs is
//! *placement*), and the same workload seed feeds every policy: 28
//! sessions arriving Poisson-like over ~1 minute, 45 % of them 1080p,
//! half of them long-lived "live" events. Load-blind round-robin piles
//! long sessions onto unlucky nodes; load- and power-sensitive
//! placement keeps utilization flat, which shows up directly in the
//! cluster-wide ∆ (percentage of frames under the 24 FPS target).
//!
//! Run with: `cargo run --release --example fleet_churn`

use mamut::baselines::{HeuristicConfig, HeuristicController};
use mamut::fleet::ControllerFactory;
use mamut::prelude::*;

fn heuristic_factory() -> ControllerFactory {
    Box::new(|req| {
        let cfg = if req.hr {
            HeuristicConfig::paper_hr()
        } else {
            HeuristicConfig::paper_lr()
        };
        Box::new(HeuristicController::new(cfg).expect("paper config is valid"))
    })
}

fn churn_workload() -> Workload {
    Workload::try_generate(&WorkloadConfig {
        seed: 42,
        sessions: 28,
        mean_interarrival_s: 1.0,
        hr_ratio: 0.6,
        live_ratio: 0.5,
        vod_frames: (120, 360),
        live_frames: (720, 1_800),
    })
    .expect("valid workload config")
}

fn run_policy(dispatcher: Box<dyn Dispatcher>) -> FleetSummary {
    let mut fleet = FleetSim::new(FleetConfig::default(), dispatcher, churn_workload());
    for _ in 0..4 {
        fleet.add_node(heuristic_factory());
    }
    fleet.run().expect("fleet run completes")
}

fn main() {
    let policies: Vec<Box<dyn Dispatcher>> = vec![
        Box::new(RoundRobin::new()),
        Box::new(LeastLoaded::new()),
        Box::new(PowerAware::new()),
    ];

    let mut results = Vec::new();
    for dispatcher in policies {
        let summary = run_policy(dispatcher);
        println!("{summary}");
        results.push(summary);
    }

    println!("cluster-wide delta by policy (same workload seed):");
    for s in &results {
        println!(
            "  {:<14} {:>6.2} %   ({:.1} W mean, {} rejected)",
            s.policy, s.cluster_violation_percent, s.mean_power_w, s.rejected_sessions
        );
    }
    let round_robin = &results[0];
    let best_aware = results[1..]
        .iter()
        .min_by(|a, b| {
            a.cluster_violation_percent
                .total_cmp(&b.cluster_violation_percent)
        })
        .expect("two aware policies");
    assert!(
        best_aware.cluster_violation_percent < round_robin.cluster_violation_percent,
        "load/power-aware dispatch should beat round-robin on this seed"
    );
    println!(
        "=> {} beats round-robin: {:.2} % vs {:.2} % of frames under target",
        best_aware.policy,
        best_aware.cluster_violation_percent,
        round_robin.cluster_violation_percent
    );
}
