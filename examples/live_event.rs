//! Live-event scenario: constraints change mid-stream.
//!
//! A trained MAMUT session is hit by two operational events the paper's
//! state space is built to absorb:
//!
//! 1. the user's bandwidth drops from 6 Mb/s to 3 Mb/s (3G cell handover) —
//!    the bitrate constraint tightens and `AGqp` must raise QP;
//! 2. the operator lowers the server power cap — the power state flips and
//!    `AGdvfs` must back off frequency.
//!
//! New constraint values create *new states*; per §IV-C, exploration
//! restarts for those states only, and the controller re-converges.
//!
//! Run with: `cargo run --release --example live_event`

use mamut::prelude::*;
use mamut::transcode::homogeneous_sessions;

fn segment_stats(rows: &[mamut::metrics::TraceRow]) -> (f64, f64, f64, f64) {
    let n = rows.len().max(1) as f64;
    let mean = |f: &dyn Fn(&mamut::metrics::TraceRow) -> f64| rows.iter().map(f).sum::<f64>() / n;
    (
        mean(&|r| r.bitrate_mbps),
        mean(&|r| f64::from(r.qp)),
        mean(&|r| r.freq_ghz),
        mean(&|r| r.power_w),
    )
}

fn main() {
    let seed = 3;

    // Train on the normal regime first.
    let warm = homogeneous_sessions(MixSpec::new(2, 0), 30_000, seed + 50_000);
    let mut trainer = ServerSim::with_default_platform();
    for (i, cfg) in warm.into_iter().enumerate() {
        let c = MamutConfig::paper_hr().with_seed(seed + i as u64);
        trainer.add_session(
            cfg,
            Box::new(MamutController::new(c).expect("valid config")),
        );
    }
    trainer
        .run_to_completion(50_000_000)
        .expect("pretraining completes");
    let trained = trainer.into_controllers();

    // Measured run: three 600-frame segments with different constraints.
    let specs = homogeneous_sessions(MixSpec::new(2, 0), 1_800, seed);
    let mut server = ServerSim::with_default_platform();
    for (cfg, ctl) in specs.into_iter().zip(trained) {
        server.add_session(cfg.with_trace(), ctl);
    }

    // Segment 1: paper defaults.
    server.run_frames(600, 50_000_000).expect("segment 1");
    // Segment 2: bandwidth drops to 3 Mb/s.
    let tight_bw = Constraints {
        bandwidth_mbps: 3.0,
        ..Constraints::paper_defaults()
    };
    server.set_constraints_all(tight_bw);
    println!("t={:.1}s  EVENT: bandwidth 6 -> 3 Mb/s", server.time());
    server.run_frames(1_200, 50_000_000).expect("segment 2");
    // Segment 3: power cap drops too.
    let tight_all = Constraints {
        power_cap_w: 95.0,
        ..tight_bw
    };
    server.set_constraints_all(tight_all);
    println!("t={:.1}s  EVENT: power cap 140 -> 95 W", server.time());
    server.run_frames(1_800, 50_000_000).expect("segment 3");

    let session = server.session(0).expect("session exists");
    let rows = session.trace().rows();
    let (seg1, rest) = rows.split_at(rows.len().min(600));
    let (seg2, seg3) = rest.split_at(rest.len().min(600));

    println!("\n== session 0, per-segment means ==");
    for (name, seg) in [
        ("normal          ", seg1),
        ("bandwidth 3 Mb/s", seg2),
        ("+ power cap 95 W", seg3),
    ] {
        let (br, qp, freq, power) = segment_stats(seg);
        println!(
            "{name}: bitrate={br:4.2} Mb/s qp={qp:4.1} freq={freq:4.2} GHz power={power:5.1} W"
        );
    }

    println!("\nexpected adaptation: bitrate falls toward/below 3 Mb/s (QP rises)");
    println!("after the handover; frequency and power fall after the cap change.");
}
