//! Scenario sweep: EWMA vs. seasonal forecasting across the workload
//! catalog.
//!
//! Every preset in `mamut_scenario::catalog` is realized into its
//! deterministic arrival trace and served twice by the same elastic
//! fleet — once sized by the reactive-EWMA [`PredictiveScaler`], once
//! by a [`ForecastScaler`] wrapping an additive Holt-Winters predictor
//! whose season matches the scenario's "day". Everything else (nodes,
//! dispatch, rebalancing, sizing constants, pool limits) is identical,
//! so the delta isolates *what the scaler believes about the future*.
//!
//! The punchline is the diurnal preset: a seasonal predictor has seen
//! the daily shape before, so it provisions ahead of the morning ramp
//! (fewer QoS violations) and sheds ahead of the evening fall (fewer
//! node-epochs). The run asserts that win, and also that the whole
//! stack — realization, forecasting, autoscaling, phase marks — is
//! byte-identical across fleet worker counts.
//!
//! Run with: `cargo run --release --example scenario_sweep`

use mamut::fleet::ControllerFactory;
use mamut::metrics::{Align, Table};
use mamut::prelude::*;
use mamut::scenario::catalog;
use mamut::scenario::sizing::{
    self, SWEEP_EPOCH_S, SWEEP_LEAD_EPOCHS, SWEEP_POOL, SWEEP_SESSIONS_PER_NODE,
};

fn fixed_factory() -> ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

/// Both scalers come from `mamut_scenario::sizing` — the canonical
/// sweep configuration the bench canaries are gated on — so the only
/// difference between the two runs is what the scaler believes about
/// the future.
fn scaler(seasonal: bool, realized: &RealizedScenario) -> Box<dyn Autoscaler> {
    if seasonal {
        Box::new(sizing::seasonal_sweep_scaler(realized))
    } else {
        Box::new(sizing::ewma_sweep_scaler(realized))
    }
}

fn run(realized: &RealizedScenario, seasonal: bool, workers: usize) -> FleetSummary {
    let mut fleet = FleetSim::new(
        FleetConfig::default()
            .with_epoch_s(SWEEP_EPOCH_S)
            .with_worker_threads(workers),
        Box::new(LeastLoaded::new()),
        realized.workload(),
    );
    fleet.add_node(fixed_factory());
    fleet.set_autoscaler(
        scaler(seasonal, realized),
        Box::new(|| (Platform::xeon_e5_2667_v4(), fixed_factory())),
    );
    // Elasticity rides on migration: spread landed load onto nodes the
    // scaler just commissioned (same policy for both scalers).
    fleet.set_rebalancer(Box::new(
        PowerQosBalance::new().with_min_gap(0.3).with_max_moves(2),
    ));
    fleet.set_phase_marks(realized.phase_marks(SWEEP_EPOCH_S));
    fleet.run().expect("fleet run completes")
}

fn main() {
    println!(
        "scenario sweep — elastic fleet ({}-{} nodes, {:.0} sessions/node), EWMA vs seasonal \
         (Holt-Winters, season = {} epochs, lead = {SWEEP_LEAD_EPOCHS})\n",
        SWEEP_POOL.0,
        SWEEP_POOL.1,
        SWEEP_SESSIONS_PER_NODE,
        sizing::season_epochs()
    );
    let mut table = Table::new(vec![
        "scenario".into(),
        "arrivals".into(),
        "ewma ne".into(),
        "hw ne".into(),
        "ewma d%".into(),
        "hw d%".into(),
        "ewma up/dn".into(),
        "hw up/dn".into(),
    ]);
    table.set_alignments(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    let mut diurnal: Option<(FleetSummary, FleetSummary)> = None;
    for scenario in catalog::all() {
        let realized = scenario.realize().expect("catalog presets are valid");
        let ewma = run(&realized, false, 4);
        let hw = run(&realized, true, 4);
        for summary in [&ewma, &hw] {
            assert_eq!(
                summary.total_sessions + summary.rejected_sessions,
                realized.len() as u64,
                "every arrival accounted for"
            );
        }
        assert_eq!(
            hw.total_frames, ewma.total_frames,
            "both scalers serve the same frames"
        );
        table.add_row(vec![
            scenario.name().to_owned(),
            realized.len().to_string(),
            ewma.node_epochs.to_string(),
            hw.node_epochs.to_string(),
            format!("{:.2}", ewma.cluster_violation_percent),
            format!("{:.2}", hw.cluster_violation_percent),
            format!("{}/{}", ewma.scale_ups, ewma.scale_downs),
            format!("{}/{}", hw.scale_ups, hw.scale_downs),
        ]);
        if scenario.name() == "daily_vod" {
            diurnal = Some((ewma, hw));
        }
    }
    println!("{}", table.to_plain());
    println!("(ne = node-epochs, d% = cluster QoS violation percent)\n");

    // --- The tentpole claim: seasonal forecasting beats EWMA on the
    // diurnal preset — strictly better QoS at no extra capacity, or
    // >=10 % capacity saved within half a QoS point. ---
    let (ewma, hw) = diurnal.expect("catalog contains daily_vod");
    println!("daily_vod, seasonal scaler:");
    print!("{hw}");
    println!("\ndaily_vod, EWMA scaler:");
    print!("{ewma}");
    let qos_gap = hw.cluster_violation_percent - ewma.cluster_violation_percent;
    let epoch_saving = 1.0 - hw.node_epochs as f64 / ewma.node_epochs.max(1) as f64;
    println!(
        "\n=> seasonal vs EWMA on daily_vod: {:+.2} QoS points, {:.0}% node-epochs saved ({} -> {})",
        qos_gap,
        100.0 * epoch_saving,
        ewma.node_epochs,
        hw.node_epochs
    );
    let strictly_better_qos = hw.cluster_violation_percent < ewma.cluster_violation_percent
        && hw.node_epochs <= ewma.node_epochs;
    let much_cheaper = epoch_saving >= 0.10 && qos_gap <= 0.5;
    assert!(
        strictly_better_qos || much_cheaper,
        "seasonal forecasting must beat EWMA on the diurnal preset: \
         qos gap {qos_gap:+.2}, node-epochs {} vs {}",
        hw.node_epochs,
        ewma.node_epochs
    );

    // --- Determinism: the full scenario stack (realization, forecast
    // scaler, rebalancer, phase marks) is byte-identical across worker
    // counts. ---
    let realized = catalog::daily_vod().realize().unwrap();
    let reference = run(&realized, true, 1).to_string();
    for workers in [2, 4, 8] {
        assert_eq!(
            reference,
            run(&realized, true, workers).to_string(),
            "scenario stack diverged at {workers} workers"
        );
    }
    assert!(
        reference.contains("[diurnal@e0]"),
        "phase marks missing from the summary:\n{reference}"
    );
    println!("\ndeterminism: byte-identical across 1/2/4/8 workers, phase marks rendered");
}
