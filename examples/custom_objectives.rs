//! Customizing MAMUT's objectives: a 30 FPS quality-first deployment.
//!
//! The paper's reward machinery is parametric: target frame rate, reward
//! weights, bandwidth and power budgets are all configuration. This
//! example retargets the controller at 30 FPS, doubles the quality weight
//! (a premium tier), tightens bandwidth to 4.5 Mb/s — and compares against
//! the paper-default configuration on the same content.
//!
//! Run with: `cargo run --release --example custom_objectives`

use mamut::control::reward::RewardWeights;
use mamut::prelude::*;
use mamut::transcode::homogeneous_sessions;

fn run(label: &str, constraints: Constraints, weights: RewardWeights) {
    let seed = 11;
    let config = MamutConfig::paper_hr()
        .with_seed(seed)
        .with_constraints(constraints)
        .with_reward_weights(weights);

    // Online pretraining, then a measured run, like the benches.
    let warm = homogeneous_sessions(MixSpec::new(1, 0), 30_000, seed + 50_000);
    let mut trainer = ServerSim::with_default_platform();
    for cfg in warm {
        trainer.add_session(
            cfg.with_constraints(constraints),
            Box::new(MamutController::new(config.clone()).expect("valid config")),
        );
    }
    trainer
        .run_to_completion(50_000_000)
        .expect("pretraining completes");
    let trained = trainer.into_controllers();

    let mut server = ServerSim::with_default_platform();
    for (cfg, ctl) in homogeneous_sessions(MixSpec::new(1, 0), 500, seed)
        .into_iter()
        .zip(trained)
    {
        server.add_session(cfg.with_constraints(constraints), ctl);
    }
    let summary = server.run_to_completion(50_000_000).expect("run completes");
    let s = &summary.sessions[0];
    println!(
        "{label:14} target={:.0}fps  fps={:5.1} delta={:5.1}% psnr={:4.1}dB br={:4.2}Mb/s power={:5.1}W",
        constraints.target_fps,
        s.mean_fps,
        s.violation_percent,
        s.mean_psnr_db,
        s.mean_bitrate_mbps,
        summary.mean_power_w,
    );
}

fn main() {
    println!("one HR stream under two different objective configurations:\n");

    run(
        "paper-default",
        Constraints::paper_defaults(),
        RewardWeights::default(),
    );

    let premium = Constraints {
        target_fps: 30.0,
        bandwidth_mbps: 4.5,
        power_cap_w: 140.0,
    };
    let quality_first = RewardWeights {
        psnr: 2.0,
        ..RewardWeights::default()
    };
    run("premium-30fps", premium, quality_first);

    println!("\nexpected: the premium run holds ~30+ FPS (harder target),");
    println!("keeps bitrate nearer 4.5 Mb/s, and pays more power for it.");
}
