//! Warm start vs. cold start: the knowledge-as-a-service payoff.
//!
//! Phase 1 trains one HR and one LR MAMUT controller to maturity on a
//! single server and publishes their learned policies into a
//! [`KnowledgeStore`]. Phase 2 runs the *same* churn workload (same
//! seed) through two identical fleets of MAMUT nodes — one starting
//! every session cold, one seeding every session from the store — and
//! compares how many decisions each fleet spends in the exploration
//! phase before reaching exploitation.
//!
//! The cold fleet pays the full per-stream learning time the paper
//! describes; the seeded fleet inherits mature Q-tables and goes
//! straight to work. The learning-time reduction printed at the end is
//! the fleet-scale version of the KaaS follow-up's headline result.
//!
//! Run with: `cargo run --release --example warm_start`

use std::sync::Arc;

use mamut::fleet::{
    warm_start_factory, ControllerFactory, KnowledgeStore, MergePolicy, SessionClass,
    SharedKnowledgeStore,
};
use mamut::prelude::*;

/// Frames each teacher session trains for in phase 1.
const TRAINING_FRAMES: u64 = 20_000;

fn mamut_factory() -> ControllerFactory {
    Box::new(|req| {
        let cfg = if req.hr {
            MamutConfig::paper_hr()
        } else {
            MamutConfig::paper_lr()
        };
        Box::new(MamutController::new(cfg.with_seed(req.seed)).expect("paper config is valid"))
    })
}

/// Phase 1: train one teacher per session class on a real server and
/// publish both policies.
fn train_store() -> SharedKnowledgeStore {
    let mut server = ServerSim::with_default_platform();
    let hr = catalog::by_name("Kimono")
        .unwrap()
        .with_frame_count(TRAINING_FRAMES)
        .unwrap();
    let lr = catalog::by_name("BQMall")
        .unwrap()
        .with_frame_count(TRAINING_FRAMES)
        .unwrap();
    server.add_session(
        SessionConfig::single_video(hr, 1),
        Box::new(MamutController::new(MamutConfig::paper_hr().with_seed(1)).unwrap()),
    );
    server.add_session(
        SessionConfig::single_video(lr, 2),
        Box::new(MamutController::new(MamutConfig::paper_lr().with_seed(2)).unwrap()),
    );
    server
        .run_to_completion(100_000_000)
        .expect("training run completes");

    let mut store = KnowledgeStore::new(MergePolicy::VisitWeighted);
    for session in server.sessions() {
        let class = SessionClass::of_hr(session.is_high_resolution());
        let snapshot = session.controller().snapshot();
        println!(
            "  teacher {class}: {} exploration / {} exploitation decisions published",
            snapshot.exploration_decisions, snapshot.exploitation_decisions
        );
        store.publish(class, &snapshot);
    }
    store.into_shared()
}

/// The churn both fleets face: 16 mixed sessions over ~half a minute.
fn churn() -> Workload {
    Workload::try_generate(&WorkloadConfig {
        seed: 77,
        sessions: 16,
        mean_interarrival_s: 1.5,
        hr_ratio: 0.5,
        live_ratio: 0.3,
        vod_frames: (120, 300),
        live_frames: (400, 900),
    })
    .expect("valid workload config")
}

struct FleetResult {
    summary: FleetSummary,
    exploration: u64,
    exploitation: u64,
}

/// Phase 2: run the churn through a 2-node MAMUT fleet, optionally
/// seeding every session from the store.
fn run_fleet(store: Option<&SharedKnowledgeStore>) -> FleetResult {
    let mut fleet = FleetSim::new(
        FleetConfig::default(),
        Box::new(LeastLoaded::new()),
        churn(),
    );
    for _ in 0..2 {
        let base = mamut_factory();
        fleet.add_node(match store {
            Some(s) => warm_start_factory(Arc::clone(s), base),
            None => base,
        });
    }
    if let Some(s) = store {
        fleet.set_knowledge_store(Arc::clone(s));
    }
    let summary = fleet.run().expect("fleet run completes");
    let (mut exploration, mut exploitation) = (0u64, 0u64);
    for node in fleet.nodes() {
        for session in node.server().sessions() {
            let snap = session.controller().snapshot();
            exploration += snap.exploration_decisions;
            exploitation += snap.exploitation_decisions;
        }
    }
    FleetResult {
        summary,
        exploration,
        exploitation,
    }
}

fn main() {
    println!("== phase 1: training teachers ({TRAINING_FRAMES} frames each) ==");
    let store = train_store();

    println!("\n== phase 2: same churn workload, cold vs. store-seeded ==");
    let cold = run_fleet(None);
    let warm = run_fleet(Some(&store));

    let fraction = |r: &FleetResult| {
        let total = r.exploration + r.exploitation;
        if total == 0 {
            0.0
        } else {
            100.0 * r.exploration as f64 / total as f64
        }
    };
    println!("\ncold fleet:");
    print!("{}", cold.summary);
    println!(
        "\nwarm fleet ({} sessions seeded):",
        warm.summary.warm_starts
    );
    print!("{}", warm.summary);

    println!("\n                  cold        warm");
    println!(
        "exploration   {:>8}    {:>8}",
        cold.exploration, warm.exploration
    );
    println!(
        "exploitation  {:>8}    {:>8}",
        cold.exploitation, warm.exploitation
    );
    println!(
        "explore %     {:>7.1}%    {:>7.1}%",
        fraction(&cold),
        fraction(&warm)
    );

    assert!(
        warm.summary.warm_starts > 0,
        "the store must seed at least one session"
    );
    assert!(
        warm.exploration < cold.exploration,
        "store-seeded fleet should explore less: warm {} vs cold {}",
        warm.exploration,
        cold.exploration
    );
    let reduction = 100.0 * (1.0 - warm.exploration as f64 / cold.exploration.max(1) as f64);
    println!(
        "\n=> warm start cut exploration decisions by {:.0}% ({} -> {})",
        reduction, cold.exploration, warm.exploration
    );
}
