//! Learned fleet control: a trained RL policy races the heuristic
//! stack across the scenario catalog.
//!
//! The `mamut_fleetrl` trainer rolls seeded episodes of every catalog
//! preset, learning a joint scale × dispatch policy from QoS-slack
//! rewards with pool-size and power penalties. The trained policy then
//! replays each scenario greedily against the strongest non-learned
//! stack the repo ships (seasonal Holt-Winters scaler + least-loaded
//! dispatch + power/QoS rebalancing) on an identical fleet. The run
//! asserts the learned policy wins or ties — no more node-epochs and
//! essentially no worse QoS — on at least two presets.
//!
//! A transfer study follows: a policy trained only on `daily_vod`
//! warm-starts training on `live_final`, resuming the decayed
//! exploration schedule instead of re-exploring from scratch — the
//! fleet-level analogue of the knowledge-as-a-service warm start for
//! session controllers.
//!
//! Run with: `cargo run --release --example learned_fleet`

use mamut::fleetrl::{heuristic_reference, TrainConfig, Trainer};
use mamut::metrics::{Align, Table};
use mamut::prelude::*;
use mamut::scenario::catalog;

/// QoS tolerance for a "tie": within a quarter violation point.
const QOS_MARGIN: f64 = 0.25;

/// Training rounds over the whole catalog (each round re-rolls every
/// scenario on fresh episode seeds, advancing the ε schedule).
const CATALOG_ROUNDS: usize = 2;

fn win_or_tie(rl: &FleetSummary, heur: &FleetSummary) -> bool {
    rl.node_epochs <= heur.node_epochs
        && rl.cluster_violation_percent <= heur.cluster_violation_percent + QOS_MARGIN
}

fn main() {
    let cfg = TrainConfig::default();
    println!(
        "learned fleet control — tabular Q over {} states x 9 joint actions, \
         {} episodes/scenario x {} catalog rounds, replay x{}\n",
        mamut::fleetrl::FleetFeaturizer::default().n_states(),
        cfg.episodes_per_scenario,
        CATALOG_ROUNDS,
        cfg.replay_passes,
    );

    // --- Offline training on the whole catalog. ---
    let mut trainer = Trainer::new(cfg);
    for round in 0..CATALOG_ROUNDS {
        for report in trainer.train_catalog(&catalog::all()) {
            println!(
                "  round {round}: {:<24} {:>5} transitions, mean reward {:+.3}, eps -> {:.3}",
                report.scenario, report.transitions, report.mean_reward, report.epsilon_after
            );
        }
    }
    println!(
        "\ntrained on {} transitions total\n",
        trainer.transitions_seen()
    );

    // --- The race: greedy learned policy vs. the heuristic stack. ---
    let mut table = Table::new(vec![
        "scenario".into(),
        "arrivals".into(),
        "heur ne".into(),
        "rl ne".into(),
        "heur d%".into(),
        "rl d%".into(),
        "rl up/dn".into(),
        "outcome".into(),
    ]);
    table.set_alignments(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Left,
    ]);

    let mut wins = 0usize;
    let mut diurnal_rl: Option<FleetSummary> = None;
    for scenario in catalog::all() {
        let realized = scenario.realize().expect("catalog presets are valid");
        let rl = trainer.evaluate(&scenario);
        let heur = heuristic_reference(&scenario, 4);
        for summary in [&rl, &heur] {
            assert_eq!(
                summary.total_sessions + summary.rejected_sessions,
                realized.len() as u64,
                "every arrival accounted for"
            );
        }
        let ok = win_or_tie(&rl, &heur);
        wins += usize::from(ok);
        table.add_row(vec![
            scenario.name().to_owned(),
            realized.len().to_string(),
            heur.node_epochs.to_string(),
            rl.node_epochs.to_string(),
            format!("{:.2}", heur.cluster_violation_percent),
            format!("{:.2}", rl.cluster_violation_percent),
            format!("{}/{}", rl.scale_ups, rl.scale_downs),
            if ok { "win/tie".into() } else { "loss".into() },
        ]);
        if scenario.name() == "daily_vod" {
            diurnal_rl = Some(rl);
        }
    }
    println!("{}", table.to_plain());
    println!(
        "(ne = node-epochs; win/tie = no more node-epochs and QoS within {QOS_MARGIN} points)\n"
    );
    assert!(
        wins >= 2,
        "the trained policy must win or tie on at least two catalog scenarios, got {wins}"
    );
    println!("=> learned policy wins or ties on {wins}/4 catalog scenarios\n");

    // The fleet summary carries policy provenance for learned runs.
    let rl = diurnal_rl.expect("catalog contains daily_vod");
    println!("daily_vod, learned policy:");
    print!("{rl}");
    let rendered = rl.to_string();
    assert!(
        rendered.contains("policy:"),
        "learned runs must render policy provenance counters:\n{rendered}"
    );
    assert!(rl.greedy_actions > 0 && rl.exploratory_actions == 0);

    // --- Transfer study: daily_vod knowledge warm-starts live_final. ---
    println!("\ntransfer study — daily_vod -> live_final:");
    let mut donor = Trainer::new(TrainConfig::default());
    donor.train_scenario(&catalog::daily_vod());
    let snapshot = donor.snapshot();

    // The policy snapshot is canonical: restore -> re-encode is
    // byte-identical (the portability contract every MAMUT learned
    // state honors).
    let mut probe = Trainer::new(TrainConfig::default());
    probe.warm_start(&snapshot).expect("snapshot restores");
    assert_eq!(probe.snapshot(), snapshot, "snapshot round-trip drifted");

    let mut cold = Trainer::new(TrainConfig::default());
    let cold_report = cold.train_scenario(&catalog::live_final());
    let mut warm = Trainer::new(TrainConfig::default());
    warm.warm_start(&snapshot).expect("snapshot restores");
    let warm_report = warm.train_scenario(&catalog::live_final());

    let cold_explore = cold
        .driver()
        .lock()
        .unwrap()
        .policy()
        .exploratory_selections();
    let warm_donor_explore = {
        let d = warm.driver();
        let g = d.lock().unwrap();
        g.policy().exploratory_selections()
    };
    let donor_explore = donor
        .driver()
        .lock()
        .unwrap()
        .policy()
        .exploratory_selections();
    let warm_explore = warm_donor_explore - donor_explore;
    println!(
        "  cold: eps {:.3} after {} transitions, {} exploratory steps",
        cold_report.epsilon_after, cold_report.transitions, cold_explore
    );
    println!(
        "  warm: eps {:.3} after {} transitions, {} exploratory steps on live_final",
        warm_report.epsilon_after, warm_report.transitions, warm_explore
    );
    assert!(
        warm_report.epsilon_after < cold_report.epsilon_after,
        "warm start must resume the decayed schedule"
    );
    assert!(
        warm_explore < cold_explore,
        "warm start must explore less on the new scenario ({warm_explore} vs {cold_explore})"
    );

    let cold_eval = cold.evaluate(&catalog::live_final());
    let warm_eval = warm.evaluate(&catalog::live_final());
    println!(
        "  eval on live_final: cold {} ne / {:.2} d%, warm {} ne / {:.2} d%",
        cold_eval.node_epochs,
        cold_eval.cluster_violation_percent,
        warm_eval.node_epochs,
        warm_eval.cluster_violation_percent
    );
    println!("\n=> warm start transfers: less exploration on the new scenario, schedule resumed");
}
