//! Chaos engineering for the elastic fleet: a viral flash mob with the
//! machines failing underneath it.
//!
//! The `flash_mob` catalog scenario is the worst case for reactive
//! scaling — near-zero warning, a 7.5× arrival surge, fast decay. This
//! demo makes it worse: while the autoscaler is absorbing the surge, a
//! deterministic [`FaultPlan`] crashes two nodes mid-ramp and thermally
//! throttles a third, with a [`CheckpointPolicy`] snapshotting every
//! live session a few epochs apart. The run shows the full recovery
//! loop:
//!
//! * crashed nodes take their live sessions down; the coordinator
//!   restores each from the last checkpoint onto the least-loaded
//!   survivor and re-does only the work since that checkpoint
//!   (`frames redone` in the summary — never silently lost);
//! * replacements are commissioned after a provisioning delay and the
//!   summary prices the outage as availability and MTTR;
//! * crash, recovery and throttle marks land on the pool timeline next
//!   to the scenario's phase marks.
//!
//! Two invariants are asserted, not just printed: every frame of every
//! admitted session is delivered despite the crashes (conservation),
//! and the whole chaos run is byte-identical across 1, 2 and 8 worker
//! threads — fault injection and recovery happen on the coordinator
//! between epochs, so parallelism stays an execution detail.
//!
//! Run with: `cargo run --release --example chaos_fleet`

use mamut::fleet::{ControllerFactory, SessionRequest};
use mamut::prelude::*;
use mamut::scenario::catalog;

/// Epoch length: long enough that the surge spans a handful of epochs,
/// short enough that the fault timeline reads naturally.
const EPOCH_S: f64 = 2.0;

fn factory() -> ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

fn provisioner() -> mamut::fleet::NodeProvisioner {
    Box::new(|| {
        (
            Platform::xeon_e5_2667_v4(),
            Box::new(|req: &SessionRequest| {
                let threads = if req.hr { 10 } else { 4 };
                Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
                    as Box<dyn Controller>
            }) as ControllerFactory,
        )
    })
}

/// The flash mob surges at t = 32 s (epoch 16): crash two of the
/// original nodes mid-ramp, throttle a third at the peak, and take two
/// epochs to provision each replacement.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .with_crash(17, 0)
        .with_throttle(18, 2, 1.8, 4)
        .with_crash(19, 1)
        .with_replacement_delay(2)
}

fn run(workers: usize, chaos: bool) -> FleetSummary {
    let realized = catalog::flash_mob()
        .realize()
        .expect("catalog preset realizes");
    let mut fleet = FleetSim::new(
        FleetConfig::default()
            .with_epoch_s(EPOCH_S)
            .with_worker_threads(workers),
        Box::new(LeastLoaded::new()),
        realized.workload(),
    );
    for _ in 0..3 {
        fleet.add_node(factory());
    }
    fleet.set_autoscaler(
        Box::new(
            ThresholdScaler::new()
                .with_limits(3, 12)
                // Scale-down only when nearly idle: the original three
                // nodes must still be alive when the fault plan's
                // mid-ramp crashes come for them.
                .with_watermarks(0.1, 0.8)
                .with_cooldown(2),
        ),
        provisioner(),
    );
    fleet.set_phase_marks(realized.phase_marks(EPOCH_S));
    if chaos {
        fleet.set_checkpoint_policy(CheckpointPolicy::every(3));
        fleet.set_fault_plan(chaos_plan());
    }
    fleet.run().expect("fleet run completes")
}

fn main() {
    let realized = catalog::flash_mob()
        .realize()
        .expect("catalog preset realizes");
    let offered_frames: u64 = realized
        .workload()
        .arrivals()
        .iter()
        .map(|r| r.frames)
        .sum();

    println!("== flash mob, fair weather ==\n");
    let quiet = run(2, false);
    println!("{quiet}");

    println!("== flash mob, two crashes mid-ramp + a thermal throttle ==\n");
    let summary = run(2, true);
    println!("{summary}");

    // Conservation: the crashes re-did work, they did not lose any.
    assert_eq!(summary.crashes, 2, "both planned crashes fired");
    assert!(
        summary.sessions_recovered > 0,
        "crashed nodes held live work"
    );
    assert_eq!(summary.frames_lost, 0, "no frame may vanish");
    assert_eq!(
        summary.total_frames, offered_frames,
        "every admitted frame was delivered despite the chaos"
    );
    assert_eq!(quiet.total_frames, offered_frames);

    // The whole chaos run — faults, checkpoints, recovery, autoscaling
    // — is byte-identical for any worker thread count.
    let reference = run(1, true).to_string();
    for workers in [2usize, 8] {
        assert_eq!(
            reference,
            run(workers, true).to_string(),
            "chaos run diverged at {workers} workers"
        );
    }

    println!("== damage report ==\n");
    println!(
        "offered frames      {:>10}  (delivered in full, {} redone after crashes)",
        offered_frames, summary.frames_redone
    );
    println!(
        "sessions recovered  {:>10}  from {} checkpoints",
        summary.sessions_recovered, summary.checkpoints
    );
    println!(
        "availability        {:>9.2}%  ({} down node-epochs)",
        summary.availability_percent, summary.down_node_epochs
    );
    println!(
        "MTTR                {:>6.1} epochs over {} recoveries",
        summary.mean_mttr_epochs, summary.recoveries
    );
    println!(
        "peak pool           {:>10}  nodes vs {} in fair weather",
        summary.peak_nodes, quiet.peak_nodes
    );
    println!("\nchaos run byte-identical across 1/2/8 workers ✓");
}
