//! Sharded fleet: the `regional_follow_the_sun` catalog preset split
//! across regional shards, each an elastic fleet of its own.
//!
//! The scenario models demand following the sun across regions; the
//! sharded coordinator models the deployment that serves it — one shard
//! per region, each with its own dispatcher, threshold autoscaler,
//! rebalancer and knowledge-store shard, stepping in lockstep epochs
//! with periodic inter-shard knowledge sync and cross-shard session
//! overflow.
//!
//! The run asserts the tentpole claims of the sharding layer:
//!
//! * every realized arrival is served by exactly one shard — the
//!   regional split is a partition and migration never loses work;
//! * a single-shard configuration is byte-for-byte identical to the
//!   plain unsharded `FleetSim` on the same trace;
//! * the whole sharded stack — split, lockstep epochs, overflow,
//!   knowledge sync, idle fast path — renders byte-identically across
//!   fleet worker counts.
//!
//! Run with: `cargo run --release --example sharded_fleet`

use mamut::fleet::ControllerFactory;
use mamut::prelude::*;
use mamut::scenario::catalog;
use mamut::scenario::sizing::{SWEEP_COOLDOWN_EPOCHS, SWEEP_EPOCH_S, SWEEP_POOL};

const REGIONS: &[&str] = &["apac", "emea", "amer"];

fn fixed_factory() -> ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

/// One regional shard: an elastic fleet over the region's slice of the
/// trace, annotated with the scenario's phase marks so its pool
/// timeline reads against the workload phases.
fn shard(realized: &RealizedScenario, workload: Workload, workers: usize) -> FleetSim {
    let mut sim = FleetSim::new(
        FleetConfig::default()
            .with_epoch_s(SWEEP_EPOCH_S)
            .with_worker_threads(workers),
        Box::new(LeastLoaded::new()),
        workload,
    );
    sim.add_node(fixed_factory());
    sim.set_autoscaler(
        Box::new(
            ThresholdScaler::new()
                .with_limits(SWEEP_POOL.0, SWEEP_POOL.1)
                .with_cooldown(SWEEP_COOLDOWN_EPOCHS)
                .with_watermarks(0.45, 0.8),
        ),
        Box::new(|| (Platform::xeon_e5_2667_v4(), fixed_factory())),
    );
    sim.set_rebalancer(Box::new(
        PowerQosBalance::new().with_min_gap(0.3).with_max_moves(2),
    ));
    sim.set_knowledge_store(KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared());
    sim.set_phase_marks(realized.phase_marks(SWEEP_EPOCH_S));
    sim
}

fn run_sharded(realized: &RealizedScenario, workers: usize) -> ShardedFleetSummary {
    let mut sharded = ShardedFleetSim::new(ShardConfig::default().with_sync_interval(4));
    for (name, workload) in REGIONS
        .iter()
        .zip(realized.regional_workloads(REGIONS.len()))
    {
        sharded.add_shard(*name, shard(realized, workload, workers));
    }
    sharded.run().expect("sharded run")
}

fn main() {
    let realized = catalog::regional_follow_the_sun()
        .realize()
        .expect("catalog preset realizes");
    println!(
        "trace: {} — {} arrivals over {:.0} s virtual\n",
        realized.name,
        realized.len(),
        realized.horizon_s
    );

    let summary = run_sharded(&realized, 2);
    println!("{summary}");

    // Partition + conservation: every arrival served somewhere, exactly
    // once, and migration moved sessions without losing frames.
    let expected_frames: u64 = realized.arrivals.iter().map(|r| r.frames).sum();
    assert_eq!(
        summary.total_sessions(),
        realized.len() as u64,
        "every regional arrival must be served"
    );
    assert_eq!(
        summary.total_frames(),
        expected_frames,
        "sharding must not lose frames"
    );

    // Single-shard degenerate case: byte-for-byte the unsharded fleet.
    let mut solo = ShardedFleetSim::new(ShardConfig::default());
    solo.add_shard("solo", shard(&realized, realized.workload(), 2));
    let solo_summary = solo.run().expect("single-shard run");
    let plain = shard(&realized, realized.workload(), 2)
        .run()
        .expect("plain run");
    assert_eq!(
        solo_summary.shards[0].1.to_string(),
        plain.to_string(),
        "single-shard config must reproduce the unsharded output"
    );
    println!("single-shard degenerate case matches the unsharded fleet byte-for-byte");

    // Worker-count independence of the whole sharded stack.
    let one = run_sharded(&realized, 1).to_string();
    let eight = run_sharded(&realized, 8).to_string();
    assert_eq!(one, summary.to_string(), "1 vs 2 workers diverged");
    assert_eq!(one, eight, "1 vs 8 workers diverged");
    println!("byte-identical across 1/2/8 fleet workers");
}
