//! Quickstart: one 1080p user served by MAMUT.
//!
//! Transcodes a 500-frame high-resolution video with the paper's
//! multi-agent controller (learning online, cold start) and prints the
//! QoS/power summary plus the controller's learning progress.
//!
//! Run with: `cargo run --release --example quickstart`

use mamut::control::{AgentKind, MamutController};
use mamut::prelude::*;

fn main() {
    // A JCT-VC-class-B-like 1080p sequence.
    let spec = catalog::by_name("BasketballDrive").expect("catalog entry");
    println!(
        "transcoding {} ({}, {} frames) with MAMUT (cold start)…",
        spec.name(),
        spec.resolution(),
        spec.frame_count()
    );

    let config = MamutConfig::paper_hr().with_seed(42);
    let constraints = config.constraints;
    let controller = MamutController::new(config).expect("paper config is valid");

    let mut server = ServerSim::with_default_platform();
    let id = server.add_session(
        SessionConfig::single_video(spec, 42).with_constraints(constraints),
        Box::new(controller),
    );

    let summary = server
        .run_to_completion(1_000_000)
        .expect("run completes within the event budget");
    let s = &summary.sessions[id];

    println!("\n== results ==");
    println!("frames            : {}", s.frames);
    println!(
        "mean FPS          : {:.1} (target {})",
        s.mean_fps, constraints.target_fps
    );
    println!("QoS violations ∆  : {:.1}%", s.violation_percent);
    println!("mean PSNR         : {:.1} dB", s.mean_psnr_db);
    println!("mean bitrate      : {:.2} Mb/s", s.mean_bitrate_mbps);
    println!("mean threads      : {:.1}", s.mean_threads);
    println!("mean frequency    : {:.2} GHz", s.mean_freq_ghz);
    println!(
        "server power      : {:.1} W over {:.1} s",
        summary.mean_power_w, summary.duration_s
    );

    // Peek inside the controller: how much has each agent learned?
    let session = server.session(id).expect("session exists");
    if let Some(mamut) = session
        .controller()
        .as_any()
        .downcast_ref::<MamutController>()
    {
        println!("\n== learning progress ==");
        let report = mamut.maturity();
        for (kind, m) in AgentKind::ALL.iter().zip(&report.per_agent) {
            println!(
                "{kind}: {} decisions, {} states visited, {} already exploiting",
                m.decisions, m.visited_states, m.exploiting_states
            );
        }
        println!(
            "recent decisions outside exploration: {:.0}%",
            100.0 * mamut.recent_exploitation_fraction()
        );
        println!("(500 frames is early days — see examples/vod_multiuser.rs for a trained run)");
    }
}
