//! Deterministic structured event tracing for the fleet.
//!
//! Every stateful decision the coordinator takes — dispatch, autoscale,
//! migration, checkpoint, fault injection, recovery, knowledge sync —
//! can be recorded as a typed [`TelemetryEvent`] stamped with the epoch
//! and *simulated* time it happened at. Because the coordinator does all
//! of this between epochs in a fixed order, and per-node session events
//! are buffered on the node that owns them and drained in node-id order,
//! the resulting [`FleetTrace`] is byte-identical no matter how many OS
//! worker threads advanced the nodes — the same invariant the summaries
//! already obey, extended to the full decision timeline.
//!
//! Three recording modes ([`TelemetryMode`]):
//!
//! * `Off` (default) — every hook is a single branch; nothing allocates.
//! * `Full` — every event of the run is retained.
//! * `FlightRecorder { epochs }` — only the last `epochs` completed
//!   epochs are retained (plus the one in progress); when a typed error
//!   aborts the run, the simulator encodes the recording automatically
//!   so the crash site's recent history survives the unwind.
//!
//! Traces serialize through the workspace snapshot layer under the
//! `MAMUTTL` magic (canonical encode: re-encoding a decoded trace is
//! byte-identical) and export to Chrome `trace_event` JSON — load the
//! file in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) —
//! and to CSV.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use mamut_core::snapshot::{SnapshotReader, SnapshotWriter};
use mamut_core::SnapshotError;

use crate::autoscale::PolicySource;

/// Magic prefix of an encoded [`FleetTrace`].
pub const TRACE_MAGIC: &[u8; 8] = b"MAMUTTL\0";

/// Current trace codec version.
pub const TRACE_VERSION: u16 = 1;

/// Lane index [`FleetTrace::merge_sharded`] assigns to coordinator-level
/// events (knowledge sync, overflow routing) so they never collide with
/// a real shard index.
pub const COORDINATOR_LANE: u32 = u32::MAX;

/// What the telemetry layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// Record nothing; every instrumentation hook reduces to one branch.
    #[default]
    Off,
    /// Retain every event of the run.
    Full,
    /// Retain only the last `epochs` completed epochs of events; older
    /// blocks are dropped (counted in [`FleetTrace::dropped_epochs`]).
    FlightRecorder {
        /// How many completed epochs of history to keep.
        epochs: usize,
    },
}

/// One typed, simulated-time-stamped fleet event.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// An epoch is about to be stepped with this many active nodes.
    EpochBegin {
        /// Active (non-retired) nodes entering the epoch.
        active_nodes: u32,
    },
    /// The epoch's node advancement and accounting completed.
    EpochEnd,
    /// The dispatcher admitted a session onto a node.
    DispatchAssign {
        /// Session (request) id.
        session: u64,
        /// Node the session was admitted on.
        node: u32,
    },
    /// The dispatcher parked a session in the pending queue.
    DispatchQueue {
        /// Session (request) id.
        session: u64,
    },
    /// The dispatcher rejected a session outright.
    DispatchReject {
        /// Session (request) id.
        session: u64,
    },
    /// A session was shed because the fleet was running degraded.
    DispatchShed {
        /// Session (request) id.
        session: u64,
    },
    /// The autoscaler planned a pool-size change (or an explicit hold).
    Autoscale {
        /// Signed pool delta: `+n` grow, `-n` shrink, `0` hold.
        delta: i64,
        /// Who made the call: heuristic, learned-greedy or exploratory.
        source: PolicySource,
        /// Optional policy-specific provenance (see
        /// [`Autoscaler::decision_detail`](crate::Autoscaler::decision_detail)).
        detail: String,
    },
    /// A node was commissioned into the active pool.
    NodeCommission {
        /// The new node's id.
        node: u32,
    },
    /// A node was drained and retired from the active pool.
    NodeRetire {
        /// The retired node's id.
        node: u32,
    },
    /// A fail-stop crash killed a node.
    NodeCrash {
        /// The crashed node's id.
        node: u32,
        /// Live sessions lost with it (before recovery).
        sessions_lost: u32,
    },
    /// A thermal throttle capped a node's DVFS frequency.
    ThrottleStart {
        /// The throttled node's id.
        node: u32,
        /// The imposed frequency cap (GHz).
        freq_cap_ghz: f64,
        /// First epoch at which the cap lifts.
        until_epoch: u64,
    },
    /// A thermal throttle expired and the frequency cap lifted.
    ThrottleEnd {
        /// The node whose cap lifted.
        node: u32,
    },
    /// A crashed session was re-created on a survivor.
    SessionRecovered {
        /// Session (request) id.
        session: u64,
        /// Node the session was restored onto.
        node: u32,
        /// Frames that must be transcoded again.
        frames_redone: u64,
        /// Whether a checkpoint seeded the restart (vs. from scratch).
        from_checkpoint: bool,
    },
    /// A fleet checkpoint was captured.
    CheckpointCaptured {
        /// Sessions covered by the bundle.
        sessions: u32,
        /// Encoded bundle size in bytes.
        bytes: u64,
    },
    /// A live session was detached from a node (migration out).
    SessionDetach {
        /// Session (request) id.
        session: u64,
        /// Node the session left.
        node: u32,
    },
    /// A live session was attached to a node (migration in).
    SessionAttach {
        /// Session (request) id.
        session: u64,
        /// Node the session landed on.
        node: u32,
    },
    /// A session completed its last frame during this epoch.
    SessionEnd {
        /// Session (request) id.
        session: u64,
        /// Node the session finished on.
        node: u32,
        /// Lifetime frames the session completed (migrations carry the
        /// count with the session).
        frames: u64,
    },
    /// A periodic cross-shard knowledge sync round completed.
    KnowledgeSync {
        /// Shard stores that participated in the fold.
        stores: u32,
    },
    /// A scheduled sync round was suppressed by injected sync loss.
    SyncRoundLost,
    /// A session moved between shards through watermark overflow routing.
    OverflowMigration {
        /// Session (request) id.
        session: u64,
        /// Shard the session left.
        from_shard: u32,
        /// Shard the session landed on.
        to_shard: u32,
    },
    /// A free-form annotation (scenario phase boundaries, fault marks).
    Mark {
        /// The annotation text, e.g. `crash:n0` or `flash-crowd`.
        label: String,
    },
}

impl TelemetryEvent {
    /// Stable kebab-case name of the event kind (CSV/Chrome `name`
    /// column, conservation counting).
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::EpochBegin { .. } => "epoch-begin",
            TelemetryEvent::EpochEnd => "epoch-end",
            TelemetryEvent::DispatchAssign { .. } => "dispatch-assign",
            TelemetryEvent::DispatchQueue { .. } => "dispatch-queue",
            TelemetryEvent::DispatchReject { .. } => "dispatch-reject",
            TelemetryEvent::DispatchShed { .. } => "dispatch-shed",
            TelemetryEvent::Autoscale { .. } => "autoscale",
            TelemetryEvent::NodeCommission { .. } => "node-commission",
            TelemetryEvent::NodeRetire { .. } => "node-retire",
            TelemetryEvent::NodeCrash { .. } => "node-crash",
            TelemetryEvent::ThrottleStart { .. } => "throttle-start",
            TelemetryEvent::ThrottleEnd { .. } => "throttle-end",
            TelemetryEvent::SessionRecovered { .. } => "session-recovered",
            TelemetryEvent::CheckpointCaptured { .. } => "checkpoint",
            TelemetryEvent::SessionDetach { .. } => "session-detach",
            TelemetryEvent::SessionAttach { .. } => "session-attach",
            TelemetryEvent::SessionEnd { .. } => "session-end",
            TelemetryEvent::KnowledgeSync { .. } => "knowledge-sync",
            TelemetryEvent::SyncRoundLost => "sync-round-lost",
            TelemetryEvent::OverflowMigration { .. } => "overflow-migration",
            TelemetryEvent::Mark { .. } => "mark",
        }
    }

    /// The node the event concerns, when it concerns exactly one.
    pub fn node(&self) -> Option<u32> {
        match *self {
            TelemetryEvent::DispatchAssign { node, .. }
            | TelemetryEvent::NodeCommission { node }
            | TelemetryEvent::NodeRetire { node }
            | TelemetryEvent::NodeCrash { node, .. }
            | TelemetryEvent::ThrottleStart { node, .. }
            | TelemetryEvent::ThrottleEnd { node }
            | TelemetryEvent::SessionRecovered { node, .. }
            | TelemetryEvent::SessionDetach { node, .. }
            | TelemetryEvent::SessionAttach { node, .. }
            | TelemetryEvent::SessionEnd { node, .. } => Some(node),
            _ => None,
        }
    }

    /// The session the event concerns, when it concerns exactly one.
    pub fn session(&self) -> Option<u64> {
        match *self {
            TelemetryEvent::DispatchAssign { session, .. }
            | TelemetryEvent::DispatchQueue { session }
            | TelemetryEvent::DispatchReject { session }
            | TelemetryEvent::DispatchShed { session }
            | TelemetryEvent::SessionRecovered { session, .. }
            | TelemetryEvent::SessionDetach { session, .. }
            | TelemetryEvent::SessionAttach { session, .. }
            | TelemetryEvent::SessionEnd { session, .. }
            | TelemetryEvent::OverflowMigration { session, .. } => Some(session),
            _ => None,
        }
    }
}

/// A [`TelemetryEvent`] with its position on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Epoch the event belongs to.
    pub epoch: u64,
    /// Simulated time of the event in integer microseconds (events at an
    /// epoch boundary carry the boundary instant; integer µs keep the
    /// exported timestamps free of float-formatting noise).
    pub at_us: u64,
    /// Shard lane ([`FleetTrace::merge_sharded`] fills this in; `0` for
    /// an unsharded fleet, [`COORDINATOR_LANE`] for coordinator events).
    pub shard: u32,
    /// The event itself.
    pub event: TelemetryEvent,
}

/// Minimum encoded size of one event (epoch + at_us + shard + kind tag):
/// the pre-allocation guard for the declared event count.
const MIN_EVENT_BYTES: usize = 8 + 8 + 4 + 1;

fn encode_policy_source(source: PolicySource) -> u8 {
    match source {
        PolicySource::Heuristic => 0,
        PolicySource::Greedy => 1,
        PolicySource::Exploratory => 2,
    }
}

fn decode_policy_source(tag: u8) -> Result<PolicySource, SnapshotError> {
    match tag {
        0 => Ok(PolicySource::Heuristic),
        1 => Ok(PolicySource::Greedy),
        2 => Ok(PolicySource::Exploratory),
        _ => Err(SnapshotError::Corrupt("invalid policy source tag")),
    }
}

/// A complete recorded trace: the deterministic event timeline of one
/// fleet run (or, in flight-recorder mode, its retained suffix).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetTrace {
    /// Epoch length of the run that produced the trace (seconds of
    /// simulated time), so consumers can convert epochs ↔ timestamps.
    pub epoch_s: f64,
    /// Completed epochs the flight recorder dropped before the first
    /// retained event (0 in `Full` mode).
    pub dropped_epochs: u64,
    /// Events in timeline order.
    pub events: Vec<TracedEvent>,
}

impl FleetTrace {
    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts retained events of one [`TelemetryEvent::kind`].
    pub fn count_kind(&self, kind: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.event.kind() == kind)
            .count() as u64
    }

    /// Merges per-shard traces (and optionally a coordinator lane keyed
    /// [`COORDINATOR_LANE`]) into one timeline: events are grouped by
    /// epoch, lanes kept in the order given within an epoch, and each
    /// event stamped with its lane. Pass the coordinator part last so
    /// its sync/overflow events sort after the shard work of the same
    /// epoch — mirroring the lockstep coordinator, which runs after the
    /// shards have stepped.
    pub fn merge_sharded(epoch_s: f64, parts: Vec<(u32, FleetTrace)>) -> FleetTrace {
        let mut events = Vec::new();
        let mut dropped_epochs = 0;
        for (lane, mut part) in parts {
            dropped_epochs += part.dropped_epochs;
            for event in &mut part.events {
                event.shard = lane;
            }
            events.append(&mut part.events);
        }
        // Stable: within an epoch, lanes keep the order they were given
        // in and each lane keeps its own event order.
        events.sort_by_key(|e| e.epoch);
        FleetTrace {
            epoch_s,
            dropped_epochs,
            events,
        }
    }

    /// Canonical binary encoding (`MAMUTTL`): decoding then re-encoding
    /// reproduces the bytes exactly.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        for &b in TRACE_MAGIC {
            w.put_u8(b);
        }
        w.put_u16(TRACE_VERSION);
        w.put_f64(self.epoch_s);
        w.put_u64(self.dropped_epochs);
        w.put_u32(self.events.len() as u32);
        for traced in &self.events {
            w.put_u64(traced.epoch);
            w.put_u64(traced.at_us);
            w.put_u32(traced.shard);
            match &traced.event {
                TelemetryEvent::EpochBegin { active_nodes } => {
                    w.put_u8(0);
                    w.put_u32(*active_nodes);
                }
                TelemetryEvent::EpochEnd => w.put_u8(1),
                TelemetryEvent::DispatchAssign { session, node } => {
                    w.put_u8(2);
                    w.put_u64(*session);
                    w.put_u32(*node);
                }
                TelemetryEvent::DispatchQueue { session } => {
                    w.put_u8(3);
                    w.put_u64(*session);
                }
                TelemetryEvent::DispatchReject { session } => {
                    w.put_u8(4);
                    w.put_u64(*session);
                }
                TelemetryEvent::DispatchShed { session } => {
                    w.put_u8(5);
                    w.put_u64(*session);
                }
                TelemetryEvent::Autoscale {
                    delta,
                    source,
                    detail,
                } => {
                    w.put_u8(6);
                    w.put_u64(*delta as u64);
                    w.put_u8(encode_policy_source(*source));
                    w.put_str(detail);
                }
                TelemetryEvent::NodeCommission { node } => {
                    w.put_u8(7);
                    w.put_u32(*node);
                }
                TelemetryEvent::NodeRetire { node } => {
                    w.put_u8(8);
                    w.put_u32(*node);
                }
                TelemetryEvent::NodeCrash {
                    node,
                    sessions_lost,
                } => {
                    w.put_u8(9);
                    w.put_u32(*node);
                    w.put_u32(*sessions_lost);
                }
                TelemetryEvent::ThrottleStart {
                    node,
                    freq_cap_ghz,
                    until_epoch,
                } => {
                    w.put_u8(10);
                    w.put_u32(*node);
                    w.put_f64(*freq_cap_ghz);
                    w.put_u64(*until_epoch);
                }
                TelemetryEvent::ThrottleEnd { node } => {
                    w.put_u8(11);
                    w.put_u32(*node);
                }
                TelemetryEvent::SessionRecovered {
                    session,
                    node,
                    frames_redone,
                    from_checkpoint,
                } => {
                    w.put_u8(12);
                    w.put_u64(*session);
                    w.put_u32(*node);
                    w.put_u64(*frames_redone);
                    w.put_bool(*from_checkpoint);
                }
                TelemetryEvent::CheckpointCaptured { sessions, bytes } => {
                    w.put_u8(13);
                    w.put_u32(*sessions);
                    w.put_u64(*bytes);
                }
                TelemetryEvent::SessionDetach { session, node } => {
                    w.put_u8(14);
                    w.put_u64(*session);
                    w.put_u32(*node);
                }
                TelemetryEvent::SessionAttach { session, node } => {
                    w.put_u8(15);
                    w.put_u64(*session);
                    w.put_u32(*node);
                }
                TelemetryEvent::SessionEnd {
                    session,
                    node,
                    frames,
                } => {
                    w.put_u8(16);
                    w.put_u64(*session);
                    w.put_u32(*node);
                    w.put_u64(*frames);
                }
                TelemetryEvent::KnowledgeSync { stores } => {
                    w.put_u8(17);
                    w.put_u32(*stores);
                }
                TelemetryEvent::SyncRoundLost => w.put_u8(18),
                TelemetryEvent::OverflowMigration {
                    session,
                    from_shard,
                    to_shard,
                } => {
                    w.put_u8(19);
                    w.put_u64(*session);
                    w.put_u32(*from_shard);
                    w.put_u32(*to_shard);
                }
                TelemetryEvent::Mark { label } => {
                    w.put_u8(20);
                    w.put_str(label);
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes an encoded trace, rejecting wrong magic, future versions,
    /// truncation and malformed shapes.
    pub fn decode(bytes: &[u8]) -> Result<FleetTrace, SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        for &expected in TRACE_MAGIC {
            if r.get_u8()? != expected {
                return Err(SnapshotError::BadMagic);
            }
        }
        let version = r.get_u16()?;
        if version > TRACE_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let epoch_s = r.get_f64()?;
        let dropped_epochs = r.get_u64()?;
        let count = r.get_u32()?;
        if count as usize > r.remaining() / MIN_EVENT_BYTES {
            return Err(SnapshotError::Truncated);
        }
        let mut events = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let epoch = r.get_u64()?;
            let at_us = r.get_u64()?;
            let shard = r.get_u32()?;
            let event = match r.get_u8()? {
                0 => TelemetryEvent::EpochBegin {
                    active_nodes: r.get_u32()?,
                },
                1 => TelemetryEvent::EpochEnd,
                2 => TelemetryEvent::DispatchAssign {
                    session: r.get_u64()?,
                    node: r.get_u32()?,
                },
                3 => TelemetryEvent::DispatchQueue {
                    session: r.get_u64()?,
                },
                4 => TelemetryEvent::DispatchReject {
                    session: r.get_u64()?,
                },
                5 => TelemetryEvent::DispatchShed {
                    session: r.get_u64()?,
                },
                6 => TelemetryEvent::Autoscale {
                    delta: r.get_u64()? as i64,
                    source: decode_policy_source(r.get_u8()?)?,
                    detail: r.get_str()?,
                },
                7 => TelemetryEvent::NodeCommission { node: r.get_u32()? },
                8 => TelemetryEvent::NodeRetire { node: r.get_u32()? },
                9 => TelemetryEvent::NodeCrash {
                    node: r.get_u32()?,
                    sessions_lost: r.get_u32()?,
                },
                10 => TelemetryEvent::ThrottleStart {
                    node: r.get_u32()?,
                    freq_cap_ghz: r.get_f64()?,
                    until_epoch: r.get_u64()?,
                },
                11 => TelemetryEvent::ThrottleEnd { node: r.get_u32()? },
                12 => TelemetryEvent::SessionRecovered {
                    session: r.get_u64()?,
                    node: r.get_u32()?,
                    frames_redone: r.get_u64()?,
                    from_checkpoint: r.get_bool()?,
                },
                13 => TelemetryEvent::CheckpointCaptured {
                    sessions: r.get_u32()?,
                    bytes: r.get_u64()?,
                },
                14 => TelemetryEvent::SessionDetach {
                    session: r.get_u64()?,
                    node: r.get_u32()?,
                },
                15 => TelemetryEvent::SessionAttach {
                    session: r.get_u64()?,
                    node: r.get_u32()?,
                },
                16 => TelemetryEvent::SessionEnd {
                    session: r.get_u64()?,
                    node: r.get_u32()?,
                    frames: r.get_u64()?,
                },
                17 => TelemetryEvent::KnowledgeSync {
                    stores: r.get_u32()?,
                },
                18 => TelemetryEvent::SyncRoundLost,
                19 => TelemetryEvent::OverflowMigration {
                    session: r.get_u64()?,
                    from_shard: r.get_u32()?,
                    to_shard: r.get_u32()?,
                },
                20 => TelemetryEvent::Mark {
                    label: r.get_str()?,
                },
                _ => return Err(SnapshotError::Corrupt("unknown telemetry event kind")),
            };
            events.push(TracedEvent {
                epoch,
                at_us,
                shard,
                event,
            });
        }
        r.expect_end()?;
        Ok(FleetTrace {
            epoch_s,
            dropped_epochs,
            events,
        })
    }

    /// Exports the trace as Chrome `trace_event` JSON (the JSON-object
    /// format with a `traceEvents` array), loadable in `chrome://tracing`
    /// or Perfetto. Epochs become complete (`X`) spans on thread 0 of
    /// each shard lane, sessions become `X` spans from dispatch to
    /// completion on the node thread that finished them, and every other
    /// event becomes an instant (`i`) event. Timestamps are the integer
    /// simulated microseconds carried by the events, so the export is as
    /// deterministic as the trace itself.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        // Open epochs per lane, open sessions per id: matched to emit
        // spans when their end event arrives.
        let mut open_epochs: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        let mut open_sessions: BTreeMap<u64, u64> = BTreeMap::new();
        let mut emit = |out: &mut String, body: &str| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(body);
        };
        for traced in &self.events {
            let pid = traced.shard;
            match &traced.event {
                TelemetryEvent::EpochBegin { active_nodes } => {
                    open_epochs.insert(pid, (traced.epoch, traced.at_us));
                    emit(
                        &mut out,
                        &format!(
                            "{{\"name\":\"epoch-begin\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\
                             \"pid\":{pid},\"tid\":0,\"args\":{{\"epoch\":{},\
                             \"active_nodes\":{active_nodes}}}}}",
                            traced.at_us, traced.epoch
                        ),
                    );
                }
                TelemetryEvent::EpochEnd => {
                    if let Some((epoch, began_us)) = open_epochs.remove(&pid) {
                        let dur = traced.at_us.saturating_sub(began_us);
                        emit(
                            &mut out,
                            &format!(
                                "{{\"name\":\"epoch\",\"ph\":\"X\",\"ts\":{began_us},\
                                 \"dur\":{dur},\"pid\":{pid},\"tid\":0,\
                                 \"args\":{{\"epoch\":{epoch}}}}}"
                            ),
                        );
                    }
                }
                TelemetryEvent::DispatchAssign { session, node } => {
                    open_sessions.insert(*session, traced.at_us);
                    emit(
                        &mut out,
                        &format!(
                            "{{\"name\":\"dispatch-assign\",\"ph\":\"i\",\"s\":\"t\",\
                             \"ts\":{},\"pid\":{pid},\"tid\":{node},\
                             \"args\":{{\"session\":{session}}}}}",
                            traced.at_us
                        ),
                    );
                }
                TelemetryEvent::SessionEnd {
                    session,
                    node,
                    frames,
                } => {
                    if let Some(began_us) = open_sessions.remove(session) {
                        let dur = traced.at_us.saturating_sub(began_us);
                        emit(
                            &mut out,
                            &format!(
                                "{{\"name\":\"session\",\"ph\":\"X\",\"ts\":{began_us},\
                                 \"dur\":{dur},\"pid\":{pid},\"tid\":{node},\
                                 \"args\":{{\"session\":{session},\"frames\":{frames}}}}}"
                            ),
                        );
                    } else {
                        emit(
                            &mut out,
                            &format!(
                                "{{\"name\":\"session-end\",\"ph\":\"i\",\"s\":\"t\",\
                                 \"ts\":{},\"pid\":{pid},\"tid\":{node},\
                                 \"args\":{{\"session\":{session},\"frames\":{frames}}}}}",
                                traced.at_us
                            ),
                        );
                    }
                }
                other => {
                    let tid = other.node().unwrap_or(0);
                    let mut args = String::new();
                    if let Some(session) = other.session() {
                        let _ = write!(args, "\"session\":{session}");
                    }
                    if let TelemetryEvent::Autoscale {
                        delta,
                        source,
                        detail,
                    } = other
                    {
                        let _ = write!(args, "\"delta\":{delta},\"source\":\"{:?}\"", source);
                        if !detail.is_empty() {
                            let _ = write!(args, ",\"detail\":\"{}\"", escape_json(detail));
                        }
                    }
                    if let TelemetryEvent::Mark { label } = other {
                        let _ = write!(args, "\"label\":\"{}\"", escape_json(label));
                    }
                    emit(
                        &mut out,
                        &format!(
                            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\
                             \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
                            other.kind(),
                            traced.at_us
                        ),
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Exports the trace as CSV: one line per event with the epoch,
    /// timestamp, lane, kind, optional session/node and a detail column
    /// (autoscale provenance, mark labels), RFC-4180 quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 48);
        out.push_str("epoch,at_us,shard,event,session,node,detail\n");
        for traced in &self.events {
            let session = traced
                .event
                .session()
                .map(|s| s.to_string())
                .unwrap_or_default();
            let node = traced
                .event
                .node()
                .map(|n| n.to_string())
                .unwrap_or_default();
            let detail = match &traced.event {
                TelemetryEvent::Autoscale {
                    delta,
                    source,
                    detail,
                } => {
                    if detail.is_empty() {
                        format!("delta={delta} source={source:?}")
                    } else {
                        format!("delta={delta} source={source:?} {detail}")
                    }
                }
                TelemetryEvent::Mark { label } => label.clone(),
                TelemetryEvent::EpochBegin { active_nodes } => {
                    format!("active_nodes={active_nodes}")
                }
                TelemetryEvent::NodeCrash { sessions_lost, .. } => {
                    format!("sessions_lost={sessions_lost}")
                }
                TelemetryEvent::SessionRecovered {
                    frames_redone,
                    from_checkpoint,
                    ..
                } => format!("frames_redone={frames_redone} from_checkpoint={from_checkpoint}"),
                TelemetryEvent::CheckpointCaptured { sessions, bytes } => {
                    format!("sessions={sessions} bytes={bytes}")
                }
                TelemetryEvent::ThrottleStart {
                    freq_cap_ghz,
                    until_epoch,
                    ..
                } => format!("cap_ghz={freq_cap_ghz:.2} until_epoch={until_epoch}"),
                TelemetryEvent::SessionEnd { frames, .. } => format!("frames={frames}"),
                TelemetryEvent::KnowledgeSync { stores } => format!("stores={stores}"),
                TelemetryEvent::OverflowMigration {
                    from_shard,
                    to_shard,
                    ..
                } => format!("from_shard={from_shard} to_shard={to_shard}"),
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{session},{node},{}",
                traced.epoch,
                traced.at_us,
                traced.shard,
                traced.event.kind(),
                csv_field(&detail)
            );
        }
        out
    }
}

/// Escapes a string for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Quotes a CSV field when it contains a delimiter, quote or newline
/// (RFC 4180: embedded quotes double).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// The recording side: per-epoch event blocks with flight-recorder
/// trimming, plus the always-on mark log the summary renders from.
///
/// Lives inside [`FleetSim`](crate::FleetSim); every hook checks
/// [`TelemetryCollector::enabled`] first, so with tracing off the whole
/// layer costs one branch per hook.
#[derive(Debug, Default)]
pub(crate) struct TelemetryCollector {
    mode: TelemetryMode,
    /// Completed epochs' events, front = oldest retained.
    blocks: VecDeque<Vec<TracedEvent>>,
    /// Events of the epoch in progress.
    current: Vec<TracedEvent>,
    /// Fault/phase marks: always recorded regardless of mode — the
    /// summary's pool timeline renders from these, traced or not.
    marks: Vec<(u64, String)>,
    dropped_epochs: u64,
    events_recorded: u64,
}

impl TelemetryCollector {
    /// Switches the recording mode (takes effect immediately).
    pub(crate) fn set_mode(&mut self, mode: TelemetryMode) {
        self.mode = mode;
    }

    /// The active recording mode.
    pub(crate) fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Whether events are being recorded at all — the one branch every
    /// instrumentation hook pays when tracing is off.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.mode != TelemetryMode::Off
    }

    /// Clears all recorded state (mode survives) — called by
    /// `begin_run` so reruns start from an empty timeline.
    pub(crate) fn reset(&mut self) {
        self.blocks.clear();
        self.current.clear();
        self.marks.clear();
        self.dropped_epochs = 0;
        self.events_recorded = 0;
    }

    /// Records one event into the current epoch block (no-op when off).
    pub(crate) fn record(&mut self, epoch: u64, at_us: u64, event: TelemetryEvent) {
        if self.enabled() {
            self.events_recorded += 1;
            self.current.push(TracedEvent {
                epoch,
                at_us,
                shard: 0,
                event,
            });
        }
    }

    /// Records a fault/phase mark. Marks feed the summary's pool
    /// timeline, so they are kept in all modes; when tracing is on they
    /// also land in the event stream as [`TelemetryEvent::Mark`].
    pub(crate) fn record_mark(&mut self, epoch: u64, at_us: u64, label: String) {
        if self.enabled() {
            self.record(
                epoch,
                at_us,
                TelemetryEvent::Mark {
                    label: label.clone(),
                },
            );
        }
        self.marks.push((epoch, label));
    }

    /// Seals the epoch in progress and applies flight-recorder trimming.
    pub(crate) fn end_epoch(&mut self) {
        if !self.enabled() {
            return;
        }
        self.blocks.push_back(std::mem::take(&mut self.current));
        if let TelemetryMode::FlightRecorder { epochs } = self.mode {
            while self.blocks.len() > epochs.max(1) {
                self.blocks.pop_front();
                self.dropped_epochs += 1;
            }
        }
    }

    /// The fault/phase marks recorded so far, in insertion order.
    pub(crate) fn marks(&self) -> &[(u64, String)] {
        &self.marks
    }

    /// Events recorded over the run, including any the flight recorder
    /// has since dropped.
    pub(crate) fn events_recorded(&self) -> u64 {
        self.events_recorded
    }

    /// Assembles the retained events into a [`FleetTrace`].
    pub(crate) fn trace(&self, epoch_s: f64) -> FleetTrace {
        let mut events = Vec::with_capacity(
            self.blocks.iter().map(Vec::len).sum::<usize>() + self.current.len(),
        );
        for block in &self.blocks {
            events.extend(block.iter().cloned());
        }
        events.extend(self.current.iter().cloned());
        FleetTrace {
            epoch_s,
            dropped_epochs: self.dropped_epochs,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> FleetTrace {
        FleetTrace {
            epoch_s: 2.0,
            dropped_epochs: 3,
            events: vec![
                TracedEvent {
                    epoch: 0,
                    at_us: 0,
                    shard: 0,
                    event: TelemetryEvent::EpochBegin { active_nodes: 2 },
                },
                TracedEvent {
                    epoch: 0,
                    at_us: 0,
                    shard: 0,
                    event: TelemetryEvent::DispatchAssign {
                        session: 7,
                        node: 1,
                    },
                },
                TracedEvent {
                    epoch: 0,
                    at_us: 0,
                    shard: 0,
                    event: TelemetryEvent::Autoscale {
                        delta: -2,
                        source: PolicySource::Exploratory,
                        detail: "q=0.5, \"raw\"".to_owned(),
                    },
                },
                TracedEvent {
                    epoch: 1,
                    at_us: 2_000_000,
                    shard: 0,
                    event: TelemetryEvent::Mark {
                        label: "crash:n0".to_owned(),
                    },
                },
                TracedEvent {
                    epoch: 1,
                    at_us: 2_000_000,
                    shard: 0,
                    event: TelemetryEvent::SessionRecovered {
                        session: 7,
                        node: 1,
                        frames_redone: 12,
                        from_checkpoint: true,
                    },
                },
                TracedEvent {
                    epoch: 1,
                    at_us: 4_000_000,
                    shard: 0,
                    event: TelemetryEvent::SessionEnd {
                        session: 7,
                        node: 1,
                        frames: 48,
                    },
                },
                TracedEvent {
                    epoch: 1,
                    at_us: 4_000_000,
                    shard: 0,
                    event: TelemetryEvent::EpochEnd,
                },
            ],
        }
    }

    #[test]
    fn codec_round_trip_is_byte_identical() {
        let trace = sample_trace();
        let bytes = trace.encode();
        let decoded = FleetTrace::decode(&bytes).expect("decodes");
        assert_eq!(decoded, trace);
        assert_eq!(decoded.encode(), bytes, "canonical re-encode");
    }

    #[test]
    fn every_event_kind_round_trips() {
        let all = vec![
            TelemetryEvent::EpochBegin { active_nodes: 1 },
            TelemetryEvent::EpochEnd,
            TelemetryEvent::DispatchAssign {
                session: 1,
                node: 2,
            },
            TelemetryEvent::DispatchQueue { session: 3 },
            TelemetryEvent::DispatchReject { session: 4 },
            TelemetryEvent::DispatchShed { session: 5 },
            TelemetryEvent::Autoscale {
                delta: 3,
                source: PolicySource::Heuristic,
                detail: String::new(),
            },
            TelemetryEvent::NodeCommission { node: 6 },
            TelemetryEvent::NodeRetire { node: 7 },
            TelemetryEvent::NodeCrash {
                node: 8,
                sessions_lost: 2,
            },
            TelemetryEvent::ThrottleStart {
                node: 9,
                freq_cap_ghz: 1.8,
                until_epoch: 11,
            },
            TelemetryEvent::ThrottleEnd { node: 9 },
            TelemetryEvent::SessionRecovered {
                session: 10,
                node: 0,
                frames_redone: 0,
                from_checkpoint: false,
            },
            TelemetryEvent::CheckpointCaptured {
                sessions: 4,
                bytes: 1024,
            },
            TelemetryEvent::SessionDetach {
                session: 11,
                node: 1,
            },
            TelemetryEvent::SessionAttach {
                session: 11,
                node: 2,
            },
            TelemetryEvent::SessionEnd {
                session: 11,
                node: 2,
                frames: 99,
            },
            TelemetryEvent::KnowledgeSync { stores: 8 },
            TelemetryEvent::SyncRoundLost,
            TelemetryEvent::OverflowMigration {
                session: 12,
                from_shard: 0,
                to_shard: 3,
            },
            TelemetryEvent::Mark {
                label: "phase".to_owned(),
            },
        ];
        let trace = FleetTrace {
            epoch_s: 1.0,
            dropped_epochs: 0,
            events: all
                .into_iter()
                .enumerate()
                .map(|(i, event)| TracedEvent {
                    epoch: i as u64,
                    at_us: i as u64 * 1_000_000,
                    shard: (i % 3) as u32,
                    event,
                })
                .collect(),
        };
        let decoded = FleetTrace::decode(&trace.encode()).expect("decodes");
        assert_eq!(decoded, trace);
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let bytes = sample_trace().encode();
        for cut in [5, 10, 29, 31, bytes.len() - 1] {
            assert!(
                FleetTrace::decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
        // Trailing garbage is a shape error, not silently ignored.
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(FleetTrace::decode(&longer).is_err());
    }

    #[test]
    fn wrong_magic_and_future_version_are_rejected() {
        let mut bytes = sample_trace().encode();
        let good = bytes.clone();
        bytes[0] = b'X';
        assert!(matches!(
            FleetTrace::decode(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        let mut future = good.clone();
        future[8] = 0xFF;
        future[9] = 0xFF;
        assert!(matches!(
            FleetTrace::decode(&future),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        // A declared event count far beyond the buffer is truncation, not
        // an allocation attempt.
        let mut huge = good.clone();
        let count_at = 8 + 2 + 8 + 8;
        huge[count_at..count_at + 4].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        assert!(matches!(
            FleetTrace::decode(&huge),
            Err(SnapshotError::Truncated)
        ));
        // An unknown kind tag is a corrupt shape.
        let mut bad_kind = good;
        let first_kind_at = count_at + 4 + 8 + 8 + 4;
        bad_kind[first_kind_at] = 0xEE;
        assert!(matches!(
            FleetTrace::decode(&bad_kind),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn chrome_export_pairs_spans_and_escapes_strings() {
        let json = sample_trace().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // The epoch 0 begin has no end in the sample, so no epoch span;
        // the session span pairs dispatch (ts 0) with end (ts 4s).
        assert!(json.contains("\"name\":\"session\",\"ph\":\"X\",\"ts\":0,\"dur\":4000000"));
        assert!(json.contains("\"label\":\"crash:n0\""));
        // The autoscale detail's quote survives as an escaped quote.
        assert!(json.contains("\\\"raw\\\""));
        // Structural sanity: braces and brackets balance outside strings.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn csv_export_has_one_line_per_event() {
        let trace = sample_trace();
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + trace.len());
        assert_eq!(lines[0], "epoch,at_us,shard,event,session,node,detail");
        assert!(lines[3].starts_with("0,0,0,autoscale,,,"));
        // The autoscale detail contains a comma and quotes → quoted field.
        assert!(lines[3].contains("\"delta=-2 source=Exploratory q=0.5, \"\"raw\"\"\""));
        assert!(lines[4].ends_with("crash:n0"));
    }

    #[test]
    fn collector_off_records_nothing_but_keeps_marks() {
        let mut c = TelemetryCollector::default();
        assert!(!c.enabled());
        c.record(0, 0, TelemetryEvent::EpochEnd);
        c.record_mark(0, 0, "crash:n0".to_owned());
        c.end_epoch();
        assert_eq!(c.events_recorded(), 0);
        assert_eq!(c.marks(), &[(0, "crash:n0".to_owned())]);
        assert!(c.trace(1.0).is_empty());
    }

    #[test]
    fn collector_full_keeps_everything_in_order() {
        let mut c = TelemetryCollector::default();
        c.set_mode(TelemetryMode::Full);
        for epoch in 0..3u64 {
            c.record(
                epoch,
                epoch * 1_000_000,
                TelemetryEvent::EpochBegin { active_nodes: 1 },
            );
            c.record(epoch, (epoch + 1) * 1_000_000, TelemetryEvent::EpochEnd);
            c.end_epoch();
        }
        let trace = c.trace(1.0);
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.dropped_epochs, 0);
        assert_eq!(c.events_recorded(), 6);
        let epochs: Vec<u64> = trace.events.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn flight_recorder_keeps_only_the_tail() {
        let mut c = TelemetryCollector::default();
        c.set_mode(TelemetryMode::FlightRecorder { epochs: 2 });
        for epoch in 0..5u64 {
            c.record(epoch, epoch, TelemetryEvent::EpochBegin { active_nodes: 1 });
            c.end_epoch();
        }
        let trace = c.trace(1.0);
        assert_eq!(trace.dropped_epochs, 3);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events[0].epoch, 3);
        assert_eq!(trace.events[1].epoch, 4);
        assert_eq!(c.events_recorded(), 5, "recorded counts include dropped");
    }

    #[test]
    fn collector_reset_clears_state_but_keeps_mode() {
        let mut c = TelemetryCollector::default();
        c.set_mode(TelemetryMode::Full);
        c.record(0, 0, TelemetryEvent::EpochEnd);
        c.record_mark(0, 0, "m".to_owned());
        c.end_epoch();
        c.reset();
        assert!(c.enabled());
        assert_eq!(c.events_recorded(), 0);
        assert!(c.marks().is_empty());
        assert!(c.trace(1.0).is_empty());
    }

    #[test]
    fn merge_sharded_orders_lanes_within_epochs() {
        let shard = |_lane: u32, epochs: &[u64]| FleetTrace {
            epoch_s: 1.0,
            dropped_epochs: 0,
            events: epochs
                .iter()
                .map(|&epoch| TracedEvent {
                    epoch,
                    at_us: epoch,
                    shard: 0,
                    event: TelemetryEvent::EpochEnd,
                })
                .collect(),
        };
        let merged = FleetTrace::merge_sharded(
            1.0,
            vec![
                (0, shard(0, &[0, 1])),
                (1, shard(1, &[0, 1])),
                (COORDINATOR_LANE, shard(0, &[0])),
            ],
        );
        let lanes: Vec<(u64, u32)> = merged.events.iter().map(|e| (e.epoch, e.shard)).collect();
        assert_eq!(
            lanes,
            vec![(0, 0), (0, 1), (0, COORDINATOR_LANE), (1, 0), (1, 1)]
        );
    }

    #[test]
    fn kind_helpers_cover_sessions_and_nodes() {
        let e = TelemetryEvent::DispatchAssign {
            session: 5,
            node: 2,
        };
        assert_eq!(e.kind(), "dispatch-assign");
        assert_eq!(e.session(), Some(5));
        assert_eq!(e.node(), Some(2));
        assert_eq!(TelemetryEvent::EpochEnd.session(), None);
        assert_eq!(TelemetryEvent::EpochEnd.node(), None);
        let t = sample_trace();
        assert_eq!(t.count_kind("mark"), 1);
        assert_eq!(t.count_kind("epoch-begin"), 1);
        assert_eq!(t.count_kind("nope"), 0);
    }
}
