//! Deterministic fault injection and checkpoint/recovery for the fleet.
//!
//! Real fleets lose nodes. The paper's evaluation never does — one
//! server, one run — but a fleet reproduction that cannot survive a
//! crash is a fair-weather artifact. This module makes failure a
//! *scripted, replayable input*: a [`FaultPlan`] is an explicit list of
//! [`FaultEvent`]s (node crashes, thermal throttles, knowledge-sync
//! losses, shard partitions) keyed by epoch, injected by the coordinator
//! between epochs — never mid-epoch, so worker-count determinism is
//! untouched. The same plan against the same workload produces the same
//! summary, byte for byte, which is what makes chaos runs testable.
//!
//! Recovery rides on a [`CheckpointPolicy`]: every `interval_epochs` the
//! coordinator captures each node's live sessions through the session
//! checkpoint codec into one `MAMUTCK` bundle (see
//! [`CheckpointBundle`]). When a node crashes, its live sessions are
//! restored from the last bundle and re-attached to survivors; frames
//! transcoded since the capture are *re-done*, counted in
//! `frames_redone`, and nothing is silently lost.

use std::collections::BTreeMap;

use mamut_core::snapshot::{SnapshotReader, SnapshotWriter};
use mamut_core::SnapshotError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::SessionRequest;

/// Magic bytes opening a [`CheckpointBundle`] (8 bytes, NUL-padded).
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"MAMUTCK\0";

/// Version of the checkpoint-bundle codec.
pub const CHECKPOINT_VERSION: u16 = 1;

/// One scripted fault, keyed by the epoch at whose start it fires.
///
/// Node-level events carry a `shard` index so one plan can script a
/// whole [`ShardedFleetSim`](crate::ShardedFleetSim); a standalone
/// [`FleetSim`](crate::FleetSim) is shard `0`. Coordinator-level events
/// (`SyncLoss`, `ShardPartition`) only have an effect under the sharded
/// coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Fail-stop crash: the node is killed at the start of `epoch`,
    /// live sessions and all. Survivors adopt its sessions from the
    /// last checkpoint (or from scratch on a checkpoint miss).
    NodeCrash {
        /// Epoch at whose start the node dies.
        epoch: u64,
        /// Shard holding the node (0 for an unsharded fleet).
        shard: usize,
        /// Node id within the shard.
        node: usize,
    },
    /// Thermal throttle: the node's effective DVFS frequency is capped
    /// at `freq_cap_ghz` for `duration_epochs` epochs. Controllers keep
    /// announcing their knobs; the silicon just refuses to deliver.
    ThermalThrottle {
        /// Epoch at whose start the cap engages.
        epoch: u64,
        /// Shard holding the node (0 for an unsharded fleet).
        shard: usize,
        /// Node id within the shard.
        node: usize,
        /// Ceiling on effective frequency (GHz).
        freq_cap_ghz: f64,
        /// Epochs the cap stays engaged.
        duration_epochs: u64,
    },
    /// Knowledge-sync loss: the next `rounds` inter-shard sync rounds
    /// are dropped (sharded runs only; shards keep learning locally).
    SyncLoss {
        /// Epoch at whose boundary the loss begins.
        epoch: u64,
        /// Sync rounds suppressed.
        rounds: u64,
    },
    /// Shard partition: the shard is cut off from overflow routing and
    /// knowledge sync for `duration_epochs` (sharded runs only).
    ShardPartition {
        /// Epoch at whose boundary the partition begins.
        epoch: u64,
        /// Partitioned shard index.
        shard: usize,
        /// Epochs the partition lasts.
        duration_epochs: u64,
    },
}

impl FaultEvent {
    /// The epoch at whose start/boundary this event fires.
    pub fn epoch(&self) -> u64 {
        match self {
            FaultEvent::NodeCrash { epoch, .. }
            | FaultEvent::ThermalThrottle { epoch, .. }
            | FaultEvent::SyncLoss { epoch, .. }
            | FaultEvent::ShardPartition { epoch, .. } => *epoch,
        }
    }
}

/// A deterministic fault schedule plus the recovery knobs the
/// coordinator applies when its events fire. Build one with the
/// `with_*` methods (events are kept sorted by epoch, stable within an
/// epoch) or generate a seeded random one with [`FaultPlan::chaos`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// Epochs between a crash and the commissioning of its replacement
    /// node (through the fleet's provisioner; minimum 1). This is the
    /// scripted mean-time-to-repair.
    pub replacement_delay_epochs: u64,
    /// Graceful-degradation watermark: when the active pool falls below
    /// this fraction of its peak size, `Queue` dispatch decisions are
    /// converted to sheds (counted rejections) so surviving nodes are
    /// not buried under a backlog they cannot serve. `None` disables
    /// shedding.
    pub degrade_watermark: Option<f64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// An empty plan: no faults, replacements after 2 epochs, no
    /// degradation watermark.
    pub fn new() -> Self {
        FaultPlan {
            events: Vec::new(),
            replacement_delay_epochs: 2,
            degrade_watermark: None,
        }
    }

    /// The scripted events, sorted by epoch.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.events.sort_by_key(FaultEvent::epoch);
    }

    /// Adds a node crash on the unsharded fleet (shard 0).
    pub fn with_crash(self, epoch: u64, node: usize) -> Self {
        self.with_crash_in(epoch, 0, node)
    }

    /// Adds a node crash on an explicit shard.
    pub fn with_crash_in(mut self, epoch: u64, shard: usize, node: usize) -> Self {
        self.push(FaultEvent::NodeCrash { epoch, shard, node });
        self
    }

    /// Adds a thermal throttle on the unsharded fleet (shard 0).
    pub fn with_throttle(
        self,
        epoch: u64,
        node: usize,
        freq_cap_ghz: f64,
        duration_epochs: u64,
    ) -> Self {
        self.with_throttle_in(epoch, 0, node, freq_cap_ghz, duration_epochs)
    }

    /// Adds a thermal throttle on an explicit shard.
    pub fn with_throttle_in(
        mut self,
        epoch: u64,
        shard: usize,
        node: usize,
        freq_cap_ghz: f64,
        duration_epochs: u64,
    ) -> Self {
        self.push(FaultEvent::ThermalThrottle {
            epoch,
            shard,
            node,
            freq_cap_ghz,
            duration_epochs,
        });
        self
    }

    /// Adds a knowledge-sync loss (sharded runs only).
    pub fn with_sync_loss(mut self, epoch: u64, rounds: u64) -> Self {
        self.push(FaultEvent::SyncLoss { epoch, rounds });
        self
    }

    /// Adds a shard partition (sharded runs only).
    pub fn with_partition(mut self, epoch: u64, shard: usize, duration_epochs: u64) -> Self {
        self.push(FaultEvent::ShardPartition {
            epoch,
            shard,
            duration_epochs,
        });
        self
    }

    /// Overrides the crash-to-replacement delay (clamped to at least 1).
    pub fn with_replacement_delay(mut self, epochs: u64) -> Self {
        self.replacement_delay_epochs = epochs.max(1);
        self
    }

    /// Sets the graceful-degradation watermark (fraction of peak pool).
    pub fn with_degrade_watermark(mut self, watermark: f64) -> Self {
        self.degrade_watermark = Some(watermark);
        self
    }

    /// Generates a seeded random chaos schedule for an unsharded fleet:
    /// `crashes` node crashes and as many thermal throttles, spread over
    /// `(0, epochs)` against a pool of `nodes` nodes. Same seed, same
    /// plan — a chaos run is as replayable as a scripted one.
    pub fn chaos(seed: u64, epochs: u64, nodes: usize, crashes: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let span = epochs.max(2);
        let pool = nodes.max(1);
        for _ in 0..crashes {
            let epoch = rng.gen_range(1..span);
            let node = rng.gen_range(0..pool);
            plan = plan.with_crash(epoch, node);
        }
        for _ in 0..crashes {
            let epoch = rng.gen_range(1..span);
            let node = rng.gen_range(0..pool);
            let cap = rng.gen_range(1.2..2.4);
            let duration = rng.gen_range(1..=4);
            plan = plan.with_throttle(epoch, node, cap, duration);
        }
        plan
    }
}

/// Cadence of coordinator checkpoints: every `interval_epochs` the
/// fleet captures a [`CheckpointBundle`] of all live sessions. Capture
/// is an observer — a checkpointed run's summary is byte-identical to
/// an uncheckpointed one unless a crash actually consumes the bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Epochs between captures (0 disables checkpointing).
    pub interval_epochs: u64,
}

impl CheckpointPolicy {
    /// A policy capturing every `interval_epochs` epochs.
    pub fn every(interval_epochs: u64) -> Self {
        CheckpointPolicy { interval_epochs }
    }
}

/// One live session inside a [`CheckpointBundle`]: the request that
/// created it (enough to rebuild config and controller through the
/// node's factory), its frame count at capture (the re-done-work
/// baseline), and the session checkpoint bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    /// The arrival that created this session.
    pub request: SessionRequest,
    /// Frames the session had completed at capture time.
    pub frames_completed: u64,
    /// Serialized session state (`TranscodeSession` checkpoint codec).
    pub bytes: Vec<u8>,
}

/// One node's live sessions inside a [`CheckpointBundle`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCheckpoint {
    /// Node id within the fleet.
    pub node: usize,
    /// Live (unfinished) sessions resident at capture, in id order.
    pub sessions: Vec<SessionCheckpoint>,
}

/// A fleet-wide recovery image: every node's live sessions plus the
/// knowledge store, captured at one epoch boundary and serialized under
/// the `MAMUTCK` magic. The fleet keeps only the latest bundle; a crash
/// decodes it to restore the victim's sessions onto survivors.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointBundle {
    /// Epoch at whose start the capture ran.
    pub epoch: u64,
    /// Per-node live-session captures, in node-id order.
    pub nodes: Vec<NodeCheckpoint>,
    /// Knowledge-store snapshot at capture, if a store was attached.
    pub knowledge: Option<Vec<u8>>,
}

impl CheckpointBundle {
    /// Serializes the bundle (`MAMUTCK` magic, versioned).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        for &b in CHECKPOINT_MAGIC {
            w.put_u8(b);
        }
        w.put_u16(CHECKPOINT_VERSION);
        w.put_u64(self.epoch);
        w.put_u32(self.nodes.len() as u32);
        for node in &self.nodes {
            w.put_u64(node.node as u64);
            w.put_u32(node.sessions.len() as u32);
            for s in &node.sessions {
                w.put_u64(s.request.id);
                w.put_f64(s.request.arrival_s);
                w.put_bool(s.request.hr);
                w.put_bool(s.request.live);
                w.put_u64(s.request.frames);
                w.put_u64(s.request.seed);
                w.put_u64(s.frames_completed);
                w.put_bytes(&s.bytes);
            }
        }
        match &self.knowledge {
            None => w.put_bool(false),
            Some(bytes) => {
                w.put_bool(true);
                w.put_bytes(bytes);
            }
        }
        w.into_bytes()
    }

    /// Decodes a bundle.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on a wrong magic, a newer codec version, or a
    /// truncated/corrupt byte stream.
    pub fn decode(bytes: &[u8]) -> Result<CheckpointBundle, SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        for &expected in CHECKPOINT_MAGIC {
            if r.get_u8()? != expected {
                return Err(SnapshotError::BadMagic);
            }
        }
        let version = r.get_u16()?;
        if version > CHECKPOINT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let epoch = r.get_u64()?;
        let n_nodes = r.get_u32()?;
        let mut nodes = Vec::with_capacity(n_nodes as usize);
        for _ in 0..n_nodes {
            let node = r.get_u64()? as usize;
            let n_sessions = r.get_u32()?;
            let mut sessions = Vec::with_capacity(n_sessions as usize);
            for _ in 0..n_sessions {
                let request = SessionRequest {
                    id: r.get_u64()?,
                    arrival_s: r.get_f64()?,
                    hr: r.get_bool()?,
                    live: r.get_bool()?,
                    frames: r.get_u64()?,
                    seed: r.get_u64()?,
                };
                let frames_completed = r.get_u64()?;
                let bytes = r.get_bytes()?;
                sessions.push(SessionCheckpoint {
                    request,
                    frames_completed,
                    bytes,
                });
            }
            nodes.push(NodeCheckpoint { node, sessions });
        }
        let knowledge = if r.get_bool()? {
            Some(r.get_bytes()?)
        } else {
            None
        };
        r.expect_end()?;
        Ok(CheckpointBundle {
            epoch,
            nodes,
            knowledge,
        })
    }

    /// The checkpointed sessions of `node`, keyed by request id.
    pub fn sessions_of(&self, node: usize) -> BTreeMap<u64, &SessionCheckpoint> {
        self.nodes
            .iter()
            .filter(|n| n.node == node)
            .flat_map(|n| n.sessions.iter())
            .map(|s| (s.request.id, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64) -> SessionRequest {
        SessionRequest {
            id,
            arrival_s: 0.5 * id as f64,
            hr: id.is_multiple_of(2),
            live: false,
            frames: 100 + id,
            seed: id,
        }
    }

    fn bundle() -> CheckpointBundle {
        CheckpointBundle {
            epoch: 12,
            nodes: vec![
                NodeCheckpoint {
                    node: 0,
                    sessions: vec![SessionCheckpoint {
                        request: request(1),
                        frames_completed: 40,
                        bytes: vec![1, 2, 3, 4],
                    }],
                },
                NodeCheckpoint {
                    node: 2,
                    sessions: vec![
                        SessionCheckpoint {
                            request: request(2),
                            frames_completed: 7,
                            bytes: vec![9, 9],
                        },
                        SessionCheckpoint {
                            request: request(3),
                            frames_completed: 0,
                            bytes: Vec::new(),
                        },
                    ],
                },
            ],
            knowledge: Some(vec![5, 6, 7]),
        }
    }

    #[test]
    fn bundle_round_trips() {
        let original = bundle();
        let bytes = original.encode();
        assert_eq!(&bytes[..8], CHECKPOINT_MAGIC);
        let decoded = CheckpointBundle::decode(&bytes).unwrap();
        assert_eq!(decoded, original);
        let by_id = decoded.sessions_of(2);
        assert_eq!(by_id.len(), 2);
        assert_eq!(by_id[&2].frames_completed, 7);
        assert!(decoded.sessions_of(1).is_empty());
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let mut bytes = bundle().encode();
        assert!(matches!(
            CheckpointBundle::decode(&bytes[..10]),
            Err(SnapshotError::Truncated)
        ));
        bytes[0] = b'X';
        assert_eq!(
            CheckpointBundle::decode(&bytes),
            Err(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn newer_versions_are_rejected() {
        let mut bytes = bundle().encode();
        // The version u16 sits right after the 8-byte magic.
        bytes[8] = 0xFF;
        bytes[9] = 0xFF;
        assert!(matches!(
            CheckpointBundle::decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn plan_builders_keep_events_sorted() {
        let plan = FaultPlan::new()
            .with_throttle(9, 1, 1.8, 3)
            .with_crash(4, 0)
            .with_sync_loss(2, 1)
            .with_partition(6, 1, 2)
            .with_crash(4, 2);
        let epochs: Vec<u64> = plan.events().iter().map(FaultEvent::epoch).collect();
        assert_eq!(epochs, vec![2, 4, 4, 6, 9]);
        // Stable within an epoch: the two crashes keep insertion order.
        assert_eq!(
            plan.events()[1],
            FaultEvent::NodeCrash {
                epoch: 4,
                shard: 0,
                node: 0
            }
        );
        assert_eq!(
            plan.events()[2],
            FaultEvent::NodeCrash {
                epoch: 4,
                shard: 0,
                node: 2
            }
        );
    }

    #[test]
    fn replacement_delay_is_at_least_one_epoch() {
        assert_eq!(
            FaultPlan::new()
                .with_replacement_delay(0)
                .replacement_delay_epochs,
            1
        );
        assert_eq!(
            FaultPlan::new()
                .with_replacement_delay(5)
                .replacement_delay_epochs,
            5
        );
    }

    #[test]
    fn chaos_is_seed_deterministic() {
        let a = FaultPlan::chaos(7, 40, 4, 3);
        let b = FaultPlan::chaos(7, 40, 4, 3);
        assert_eq!(a, b);
        let c = FaultPlan::chaos(8, 40, 4, 3);
        assert_ne!(a, c);
        assert_eq!(a.events().len(), 6, "3 crashes + 3 throttles");
        for e in a.events() {
            assert!(e.epoch() >= 1 && e.epoch() < 40);
        }
    }
}
