//! One fleet node: a [`ServerSim`] plus the bookkeeping a dispatcher
//! needs (planning shapes of resident sessions, admission counters) and
//! the per-node controller factory that decides which run-time manager —
//! MAMUT, mono-agent, heuristic, fixed — drives sessions placed here.

use mamut_core::Controller;
use mamut_platform::Platform;
use mamut_transcode::{RunSummary, ServerSim, StreamShape, TranscodeError, TranscodeSession};

use crate::dispatch::NodeView;
use crate::error::FleetError;
use crate::fault::SessionCheckpoint;
use crate::knowledge::{KnowledgeStore, SessionClass};
use crate::workload::SessionRequest;

/// A live session in transit between two nodes: the transcoding state
/// (controller included) plus the planning shape the dispatcher tracks
/// and the originating request (so a later crash of the new host can
/// still rebuild the session's controller through a factory).
pub struct MigratedSession {
    pub(crate) session: TranscodeSession,
    pub(crate) shape: StreamShape,
    pub(crate) request: SessionRequest,
}

impl MigratedSession {
    /// The travelling session (read access; ownership stays inside until
    /// it is attached somewhere).
    pub fn session(&self) -> &TranscodeSession {
        &self.session
    }
}

impl std::fmt::Debug for MigratedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigratedSession")
            .field("name", &self.session.name())
            .field("frames_completed", &self.session.frames_completed())
            .finish_non_exhaustive()
    }
}

/// Builds a controller for a session arriving at this node.
///
/// Boxed and `Send` so nodes can move to worker threads between epochs.
/// Different nodes may use different factories — that is how a fleet
/// mixes MAMUT nodes with baseline-controlled ones in one run.
pub type ControllerFactory = Box<dyn Fn(&SessionRequest) -> Box<dyn Controller> + Send>;

/// Where a node stands in its lifecycle. A fixed-pool fleet keeps every
/// node `Active` forever; an autoscaled fleet commissions nodes mid-run
/// and retires them again once their live sessions have been drained to
/// peers ("drain before decommission").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// In the pool: receives dispatches, advances every epoch, and is
    /// charged (at least idle) power.
    Active,
    /// Powered off. Takes no sessions, advances no further, draws no
    /// power; its accumulated statistics remain in the fleet report.
    Retired,
}

/// One server in the fleet.
pub struct FleetNode {
    id: usize,
    server: ServerSim,
    factory: ControllerFactory,
    power_cap_w: f64,
    state: NodeState,
    /// `(session id, planning shape)` of admitted sessions; pruned of
    /// finished sessions by [`FleetNode::refresh`].
    shapes: Vec<(usize, StreamShape)>,
    sessions_admitted: u64,
    sessions_migrated_in: u64,
    sessions_migrated_out: u64,
    /// Session ids whose final policy already went to a knowledge store.
    published: std::collections::BTreeSet<usize>,
    /// Per-session `(frames, violations)` totals at the start of the
    /// epoch being simulated — the baseline [`FleetNode::view`] subtracts
    /// so its QoS signal describes *this epoch*, not a session's whole
    /// life (a stream that suffered through a burst long ago must not
    /// read as distressed forever).
    qos_marks: std::collections::BTreeMap<usize, (u64, u64)>,
    /// The arrival that created each resident live session, keyed by
    /// session id — what checkpoint capture and crash recovery need to
    /// rebuild a session's config and controller elsewhere. Pruned with
    /// `shapes` on [`FleetNode::refresh`].
    requests: std::collections::BTreeMap<usize, SessionRequest>,
    /// Whether [`FleetNode::run_epoch`] should note sessions that finish
    /// (telemetry hook; off by default so untraced runs pay one branch).
    record_session_events: bool,
    /// `(request id, lifetime frames)` of sessions that finished during
    /// an advance, buffered here — on the node, off the shared path — so
    /// the coordinator can drain them in node-id order afterwards and
    /// the trace stays independent of the worker count.
    pending_session_events: Vec<(u64, u64)>,
}

impl std::fmt::Debug for FleetNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetNode")
            .field("id", &self.id)
            .field("sessions_admitted", &self.sessions_admitted)
            .field("time", &self.server.time())
            .finish_non_exhaustive()
    }
}

impl FleetNode {
    /// Creates a node over `platform` with a power budget and a factory.
    pub fn new(
        id: usize,
        platform: Platform,
        power_cap_w: f64,
        factory: ControllerFactory,
    ) -> Self {
        FleetNode {
            id,
            server: ServerSim::new(platform),
            factory,
            power_cap_w,
            state: NodeState::Active,
            shapes: Vec::new(),
            sessions_admitted: 0,
            sessions_migrated_in: 0,
            sessions_migrated_out: 0,
            published: std::collections::BTreeSet::new(),
            qos_marks: std::collections::BTreeMap::new(),
            requests: std::collections::BTreeMap::new(),
            record_session_events: false,
            pending_session_events: Vec::new(),
        }
    }

    /// Turns session-completion buffering on or off (telemetry hook).
    pub(crate) fn set_session_event_recording(&mut self, on: bool) {
        self.record_session_events = on;
        if !on {
            self.pending_session_events.clear();
        }
    }

    /// Drains the sessions that finished since the last call as
    /// `(request id, lifetime frames)` pairs, in session-id order.
    pub(crate) fn take_session_events(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.pending_session_events)
    }

    /// Node id (index in the fleet).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Lifecycle state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Whether the node is in the active pool.
    pub fn is_active(&self) -> bool {
        self.state == NodeState::Active
    }

    /// Powers the node off. Call only after [`FleetNode::drain`] — a
    /// retired node never advances again, so a live session left behind
    /// would be frozen forever. That invariant is enforced here: a node
    /// still holding live sessions refuses to retire.
    ///
    /// # Errors
    ///
    /// [`FleetError::RetireWithLiveSessions`] when live sessions are
    /// still resident. The deliberate live-session teardown — a scripted
    /// crash — goes through [`FleetNode::crash_kill`] instead, which is
    /// an explicit, separately audited path, never a default.
    pub(crate) fn retire(&mut self) -> Result<(), FleetError> {
        self.refresh();
        if !self.shapes.is_empty() {
            return Err(FleetError::RetireWithLiveSessions {
                node: self.id,
                live: self.shapes.len(),
            });
        }
        self.state = NodeState::Retired;
        Ok(())
    }

    /// Fail-stop crash: every live session is torn down *with its
    /// in-progress state* and the node is force-retired (the one path
    /// allowed to bypass the [`FleetNode::retire`] guard). Returns the
    /// lost sessions' requests with their frame counts at the moment of
    /// death, in session-id order — the coordinator re-creates them on
    /// survivors and accounts the re-done work. Finished sessions stay:
    /// their history and published policies belong to this node.
    pub(crate) fn crash_kill(&mut self) -> Vec<(SessionRequest, u64)> {
        self.refresh();
        let live: Vec<usize> = self.shapes.iter().map(|(sid, _)| *sid).collect();
        let mut lost = Vec::with_capacity(live.len());
        for sid in live {
            if let Ok(session) = self.server.detach_session(sid) {
                let request = self
                    .requests
                    .remove(&sid)
                    .expect("every live session was admitted or attached with a request");
                lost.push((request, session.frames_completed()));
                // The detached session is dropped here: that is the
                // crash. Its work since the last checkpoint is gone.
            }
        }
        self.shapes.clear();
        self.state = NodeState::Retired;
        lost
    }

    /// Aligns a freshly commissioned node's clock with the fleet (see
    /// [`ServerSim::align_clock`]).
    pub(crate) fn align_clock(&mut self, time: f64) -> Result<(), TranscodeError> {
        self.server.align_clock(time)
    }

    /// The underlying server simulator.
    pub fn server(&self) -> &ServerSim {
        &self.server
    }

    /// Sessions admitted over the node's lifetime.
    pub fn sessions_admitted(&self) -> u64 {
        self.sessions_admitted
    }

    /// Sessions this node received from peers via migration.
    pub fn sessions_migrated_in(&self) -> u64 {
        self.sessions_migrated_in
    }

    /// Sessions this node handed off to peers via migration.
    pub fn sessions_migrated_out(&self) -> u64 {
        self.sessions_migrated_out
    }

    /// Admits a session: builds its controller through the node's factory
    /// and registers it with the server. Returns the session id.
    pub fn admit(&mut self, request: &SessionRequest) -> usize {
        let controller = (self.factory)(request);
        let sid = self
            .server
            .add_session(request.session_config(), controller);
        self.shapes
            .push((sid, StreamShape::for_spec(&request.spec())));
        self.requests.insert(sid, request.clone());
        self.sessions_admitted += 1;
        sid
    }

    /// Prunes bookkeeping for sessions that have finished (or migrated
    /// away) since the last call. The explicit mutation that used to hide
    /// inside the old `snapshot(&mut self)`; call it once per epoch
    /// boundary before taking [`FleetNode::view`]s.
    pub fn refresh(&mut self) {
        self.shapes.retain(|(sid, _)| {
            self.server
                .session(*sid)
                .map(|s| !s.is_finished())
                .unwrap_or(false)
        });
        let live: std::collections::BTreeSet<usize> =
            self.shapes.iter().map(|(sid, _)| *sid).collect();
        self.requests.retain(|sid, _| live.contains(sid));
    }

    /// The dispatcher's read-only view of this node right now. Pair with
    /// [`FleetNode::refresh`] — an unrefreshed view may still count
    /// planning shapes of sessions that already finished.
    pub fn view(&self) -> NodeView {
        let load = self.server.load();
        let planned_threads = self.shapes.iter().map(|(_, s)| s.knobs.threads).sum();
        // QoS over the epoch just simulated: totals minus the marks taken
        // when the epoch began. A session with no mark yet (just admitted
        // or just migrated in) contributes nothing until it has been
        // observed for a full epoch here.
        let (frames, violations) = self
            .shapes
            .iter()
            .filter_map(|(sid, _)| self.server.session(*sid).ok())
            .fold((0u64, 0u64), |(f, v), s| {
                let (f0, v0) = self
                    .qos_marks
                    .get(&s.id())
                    .copied()
                    .unwrap_or((s.qos().frames(), s.qos().violations()));
                (
                    f + s.qos().frames().saturating_sub(f0),
                    v + s.qos().violations().saturating_sub(v0),
                )
            });
        let qos_violation_percent = if frames == 0 {
            0.0
        } else {
            100.0 * violations as f64 / frames as f64
        };
        NodeView {
            node_id: self.id,
            active_sessions: load.active_sessions,
            threads_demanded: load.threads_demanded,
            planned_threads,
            hw_threads: load.hw_threads,
            power_w: load.power_w,
            power_cap_w: self.power_cap_w,
            qos_violation_percent,
            resident_shapes: self.shapes.iter().map(|(_, s)| s.clone()).collect(),
        }
    }

    /// Picks the session a rebalancer would move away from this node:
    /// the unfinished session with the most frames still to transcode
    /// (most benefit from a less-loaded home), lowest id on ties.
    pub fn migration_candidate(&self) -> Option<usize> {
        self.shapes
            .iter()
            .filter_map(|(sid, _)| self.server.session(*sid).ok())
            .filter(|s| !s.is_finished())
            .max_by_key(|s| (s.frames_remaining(), std::cmp::Reverse(s.id())))
            .map(|s| s.id())
    }

    /// Detaches session `sid` (with its planning shape) for migration to
    /// another node.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownSession`] if the node has no such live
    /// session.
    pub fn detach_session(&mut self, sid: usize) -> Result<MigratedSession, FleetError> {
        let pos = self.shapes.iter().position(|(id, _)| *id == sid).ok_or(
            FleetError::UnknownSession {
                node: self.id,
                session: sid,
            },
        )?;
        let session = self
            .server
            .detach_session(sid)
            .map_err(|_| FleetError::UnknownSession {
                node: self.id,
                session: sid,
            })?;
        let (_, shape) = self.shapes.remove(pos);
        let request = self
            .requests
            .remove(&sid)
            .expect("every live session was admitted or attached with a request");
        self.sessions_migrated_out += 1;
        Ok(MigratedSession {
            session,
            shape,
            request,
        })
    }

    /// Detaches every live (unfinished) session for migration to peers —
    /// the "drain" half of drain-before-decommission. Finished sessions
    /// stay put: their history belongs to this node and their policies
    /// publish from here. Sessions come out in session-id order.
    pub fn drain(&mut self) -> Result<Vec<MigratedSession>, FleetError> {
        self.refresh();
        let live: Vec<usize> = self.shapes.iter().map(|(sid, _)| *sid).collect();
        live.into_iter()
            .map(|sid| self.detach_session(sid))
            .collect()
    }

    /// Attaches a session detached from a peer node; returns its id here.
    /// Counts as a migration, not an admission — cluster-wide session
    /// totals are unaffected by moves.
    pub fn attach_session(&mut self, migrated: MigratedSession) -> usize {
        let MigratedSession {
            session,
            shape,
            request,
        } = migrated;
        let sid = self.server.attach_session(session);
        self.shapes.push((sid, shape));
        self.requests.insert(sid, request);
        self.sessions_migrated_in += 1;
        sid
    }

    /// Captures every resident live session for a fleet checkpoint, in
    /// session-id order. Pure observation — the node's state, clocks and
    /// fp sequences are untouched, so a checkpointed run stays
    /// byte-identical to an uncheckpointed one.
    pub(crate) fn checkpoint_sessions(&mut self) -> Vec<SessionCheckpoint> {
        self.refresh();
        self.shapes
            .iter()
            .map(|(sid, _)| {
                let session = self
                    .server
                    .session(*sid)
                    .expect("refresh keeps only resident sessions");
                SessionCheckpoint {
                    request: self.requests[sid].clone(),
                    frames_completed: session.frames_completed(),
                    bytes: self
                        .server
                        .checkpoint_session(*sid)
                        .expect("refresh keeps only live sessions"),
                }
            })
            .collect()
    }

    /// Adopts a session lost in a peer's crash: restored bit-exactly
    /// from checkpoint bytes when provided and decodable, otherwise
    /// restarted from scratch off its original request. Returns whether
    /// the checkpoint was used. Either way this is a recovery, not an
    /// admission — cluster-wide session totals already counted the
    /// original arrival.
    pub(crate) fn adopt_recovered(
        &mut self,
        request: &SessionRequest,
        checkpoint: Option<&[u8]>,
    ) -> bool {
        if let Some(bytes) = checkpoint {
            let controller = (self.factory)(request);
            match TranscodeSession::restore_checkpoint(request.session_config(), controller, bytes)
            {
                Ok(session) => {
                    let sid = self.server.attach_session(session);
                    self.shapes
                        .push((sid, StreamShape::for_spec(&request.spec())));
                    self.requests.insert(sid, request.clone());
                    return true;
                }
                Err(_) => {
                    // A corrupt entry degrades to a cold restart below:
                    // the session is re-done in full, never dropped.
                }
            }
        }
        let controller = (self.factory)(request);
        let sid = self
            .server
            .add_session(request.session_config(), controller);
        self.shapes
            .push((sid, StreamShape::for_spec(&request.spec())));
        self.requests.insert(sid, request.clone());
        false
    }

    /// Applies (or lifts, with `None`) a thermal-throttle frequency cap
    /// on the node's server.
    pub(crate) fn set_freq_cap(&mut self, cap_ghz: Option<f64>) {
        self.server.set_freq_cap(cap_ghz);
    }

    /// Publishes the learned policy of every session that has finished
    /// since the last call, in session-id order. Returns how many were
    /// published.
    pub fn harvest_finished(&mut self, store: &mut KnowledgeStore) -> u64 {
        let mut published = 0;
        for session in self.server.sessions() {
            if !session.is_finished() || self.published.contains(&session.id()) {
                continue;
            }
            let class = SessionClass::of_hr(session.is_high_resolution());
            store.publish(class, &session.controller().snapshot());
            self.published.insert(session.id());
            published += 1;
        }
        published
    }

    /// Advances the node's virtual clock to `until`, first marking every
    /// resident session's QoS totals so the next [`FleetNode::view`]
    /// reports this epoch's violations rather than lifetime ones.
    ///
    /// # Errors
    ///
    /// Propagates [`TranscodeError::EventBudgetExhausted`] from the server.
    pub fn run_epoch(&mut self, until: f64, max_events: u64) -> Result<u64, TranscodeError> {
        self.qos_marks = self
            .server
            .sessions()
            .iter()
            .map(|s| (s.id(), (s.qos().frames(), s.qos().violations())))
            .collect();
        // Sessions still unfinished going in: the candidates for a
        // completion event coming out. Only collected when telemetry
        // asked for it — the flag is the whole cost of an untraced run.
        let unfinished: Vec<usize> = if self.record_session_events {
            let mut ids: Vec<usize> = self
                .server
                .sessions()
                .iter()
                .filter(|s| !s.is_finished())
                .map(|s| s.id())
                .collect();
            ids.sort_unstable();
            ids
        } else {
            Vec::new()
        };
        let result = self.server.run_epoch(until, max_events);
        for sid in unfinished {
            let Ok(session) = self.server.session(sid) else {
                continue;
            };
            if session.is_finished() {
                let request = self
                    .requests
                    .get(&sid)
                    .expect("every live session was admitted or attached with a request");
                self.pending_session_events
                    .push((request.id, session.frames_completed()));
            }
        }
        result
    }

    /// Whether every admitted session has finished.
    pub fn all_finished(&self) -> bool {
        self.server.all_finished()
    }

    /// Per-session results measured so far.
    pub fn summary(&self) -> RunSummary {
        self.server.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_core::{FixedController, KnobSettings};

    fn fixed_factory() -> ControllerFactory {
        Box::new(|req| {
            let threads = if req.hr { 10 } else { 4 };
            Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
        })
    }

    fn request(id: u64, hr: bool, frames: u64) -> SessionRequest {
        SessionRequest {
            id,
            arrival_s: 0.0,
            hr,
            live: false,
            frames,
            seed: id,
        }
    }

    fn node() -> FleetNode {
        FleetNode::new(0, Platform::xeon_e5_2667_v4(), 110.0, fixed_factory())
    }

    #[test]
    fn admit_registers_sessions_and_shapes() {
        let mut n = node();
        n.admit(&request(1, true, 50));
        n.admit(&request(2, false, 50));
        assert_eq!(n.sessions_admitted(), 2);
        n.refresh();
        let snap = n.view();
        assert_eq!(snap.active_sessions, 2);
        assert_eq!(snap.resident_shapes.len(), 2);
        assert_eq!(snap.power_cap_w, 110.0);
    }

    #[test]
    fn snapshot_prunes_finished_sessions() {
        let mut n = node();
        n.admit(&request(1, false, 5));
        n.run_epoch(60.0, 1_000_000).unwrap();
        assert!(n.all_finished());
        n.refresh();
        let snap = n.view();
        assert_eq!(snap.active_sessions, 0);
        assert!(snap.resident_shapes.is_empty());
        assert_eq!(n.sessions_admitted(), 1, "lifetime count survives churn");
    }

    #[test]
    fn factory_decides_per_request() {
        let mut n = node();
        n.admit(&request(1, true, 30));
        n.run_epoch(0.2, 1_000_000).unwrap();
        n.refresh();
        let snap = n.view();
        assert_eq!(snap.threads_demanded, 10, "HR factory knobs in force");
    }

    #[test]
    fn drain_detaches_live_sessions_and_leaves_finished_history() {
        let mut n = node();
        n.admit(&request(1, false, 5)); // finishes within the epoch
        n.admit(&request(2, true, 5_000)); // still live at the boundary
        n.admit(&request(3, false, 5_000)); // still live at the boundary
        n.run_epoch(2.0, 1_000_000).unwrap();
        let drained = n.drain().unwrap();
        assert_eq!(drained.len(), 2, "only unfinished sessions drain");
        assert_eq!(n.sessions_migrated_out(), 2);
        assert_eq!(
            n.server().sessions().len(),
            1,
            "the finished session's history stays"
        );
        assert!(n.all_finished());
        n.refresh();
        assert_eq!(n.view().active_sessions, 0);
        // Draining an already-empty node is a no-op.
        assert!(n.drain().unwrap().is_empty());
    }

    #[test]
    fn retire_flips_state() {
        let mut n = node();
        assert_eq!(n.state(), NodeState::Active);
        assert!(n.is_active());
        n.retire().unwrap();
        assert_eq!(n.state(), NodeState::Retired);
        assert!(!n.is_active());
    }

    #[test]
    fn retire_refuses_live_sessions_but_crash_kill_takes_them() {
        let mut n = node();
        n.admit(&request(1, false, 5_000));
        n.admit(&request(2, true, 5_000));
        n.run_epoch(2.0, 1_000_000).unwrap();
        assert_eq!(
            n.retire(),
            Err(FleetError::RetireWithLiveSessions { node: 0, live: 2 })
        );
        assert!(n.is_active(), "a refused retire leaves the node running");
        let lost = n.crash_kill();
        assert_eq!(lost.len(), 2);
        assert!(lost.iter().all(|(_, frames)| *frames > 0));
        assert_eq!(lost[0].0.id, 1);
        assert_eq!(lost[1].0.id, 2);
        assert!(!n.is_active());
        assert!(n.crash_kill().is_empty(), "crashing a corpse finds nothing");
    }

    #[test]
    fn checkpoint_then_adopt_restores_a_session_bit_exactly() {
        let mut origin = node();
        origin.admit(&request(1, false, 4_000));
        origin.run_epoch(2.0, 1_000_000).unwrap();
        let cks = origin.checkpoint_sessions();
        assert_eq!(cks.len(), 1);
        assert_eq!(cks[0].request.id, 1);
        assert!(cks[0].frames_completed > 0);

        // An undisturbed twin runs straight through...
        let mut twin = node();
        twin.admit(&request(1, false, 4_000));
        twin.run_epoch(2.0, 1_000_000).unwrap();
        twin.run_epoch(4.0, 1_000_000).unwrap();

        // ...while a fresh node adopts the checkpoint and continues.
        let mut adopter = node();
        adopter.align_clock(2.0).unwrap();
        assert!(adopter.adopt_recovered(&cks[0].request, Some(&cks[0].bytes)));
        adopter.run_epoch(4.0, 1_000_000).unwrap();

        let a = adopter.summary();
        let b = twin.summary();
        // Session-level results continue bit-exactly (server-level energy
        // differs: the adopter joined at t = 2 s and skipped an epoch).
        assert_eq!(a.sessions[0].frames, b.sessions[0].frames);
        assert_eq!(a.sessions[0].mean_fps, b.sessions[0].mean_fps);
        assert_eq!(a.sessions[0].mean_psnr_db, b.sessions[0].mean_psnr_db);
        assert_eq!(
            a.sessions[0].mean_bitrate_mbps,
            b.sessions[0].mean_bitrate_mbps
        );

        // Garbage bytes degrade to a cold restart, never a loss.
        let mut cold = node();
        assert!(!cold.adopt_recovered(&cks[0].request, Some(b"nonsense")));
        assert_eq!(cold.view().active_sessions, 1);
        assert_eq!(cold.sessions_admitted(), 0, "recovery is not an admission");
    }

    #[test]
    fn view_reports_resident_qos_distress() {
        let mut n = node();
        // One thread on an HR stream misses real time on every frame.
        n.factory = Box::new(|_| Box::new(FixedController::new(KnobSettings::new(32, 1, 2.9))));
        n.admit(&request(1, true, 5_000));
        n.run_epoch(2.0, 1_000_000).unwrap();
        n.refresh();
        let view = n.view();
        assert!(
            view.qos_violation_percent > 50.0,
            "starved HR stream must show distress, got {}",
            view.qos_violation_percent
        );
        assert!(view.qos_slack() < 0.5);
    }

    #[test]
    fn epochs_advance_the_clock_monotonically() {
        let mut n = node();
        n.admit(&request(1, false, 2_000));
        n.run_epoch(1.0, 1_000_000).unwrap();
        assert_eq!(n.server().time(), 1.0);
        n.run_epoch(2.5, 1_000_000).unwrap();
        assert_eq!(n.server().time(), 2.5);
        let s = n.summary();
        assert_eq!(s.sessions.len(), 1);
        assert!(s.sessions[0].frames > 0);
    }
}
