//! The fleet event loop: dispatch arrivals at epoch boundaries, advance
//! every node through the epoch in parallel, aggregate fleet metrics.
//!
//! # Time model
//!
//! Virtual time advances in fixed-length epochs. At each boundary the
//! coordinator (one thread) drains due arrivals through the dispatch
//! policy — queued leftovers first, FIFO — then hands the nodes to a
//! scoped thread pool that advances each one to the next boundary.
//! Within an epoch nodes are independent (a session placed at a
//! boundary starts at that boundary; nothing moves mid-epoch), so node
//! advancement is embarrassingly parallel and, crucially,
//! **deterministic regardless of worker count**: every node computes
//! exactly the same event sequence whether the fleet runs on 1 thread
//! or 16, and aggregation always folds nodes in id order.
//!
//! Everything stateful beyond node advancement happens on the
//! coordinating thread *between* epochs, in a fixed order: finished
//! sessions publish their learned policies to the knowledge store (if
//! one is attached, in node-id order), then the rebalance policy (if
//! one is installed) migrates live sessions between the time-aligned
//! nodes — so knowledge sharing and migration inherit the same
//! worker-count independence.
//!
//! # Accounting across migration
//!
//! A session carries its QoS history with it: after a move, its frames
//! and violations count toward the *destination* node's per-node rows
//! (per-node totals are re-sampled every epoch). Cluster-wide totals
//! are unaffected — a migration is a move, not an admission.

use std::collections::VecDeque;
use std::sync::Arc;

use mamut_metrics::fleet::FleetAggregate;
use mamut_platform::Platform;

use crate::autoscale::{Autoscaler, ScaleDecision, ScaleSignals};
use crate::dispatch::{DispatchDecision, Dispatcher, NodeView};
use crate::error::FleetError;
use crate::fault::{CheckpointBundle, CheckpointPolicy, FaultEvent, FaultPlan, NodeCheckpoint};
use crate::knowledge::{warm_start_factory, SharedKnowledgeStore};
use crate::node::{ControllerFactory, FleetNode, MigratedSession};
use crate::rebalance::Rebalancer;
use crate::summary::{FleetSummary, NodeFacts};
use crate::telemetry::{FleetTrace, TelemetryCollector, TelemetryEvent, TelemetryMode};
use crate::workload::{SessionRequest, Workload};

/// Builds the hardware and controller factory for a node the autoscaler
/// commissions mid-run. Consulted once per scale-up; if a knowledge
/// store is attached the fleet wraps the returned factory in
/// [`warm_start_factory`] itself, so provide the *cold* factory here.
pub type NodeProvisioner = Box<dyn FnMut() -> (Platform, ControllerFactory) + Send>;

/// Fleet-level simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Epoch length (virtual seconds); arrivals quantize up to the next
    /// boundary (admitted slightly late, never before they arrive).
    pub epoch_s: f64,
    /// OS worker threads advancing nodes within an epoch (clamped to
    /// `[1, nodes]`). Results do not depend on this value.
    pub worker_threads: usize,
    /// Per-node power budget (W) exposed to power-aware dispatch.
    pub power_cap_w: f64,
    /// Guard: max completions one node may process per epoch.
    pub max_events_per_epoch: u64,
    /// Guard: max epochs before the run is declared stuck.
    pub max_epochs: u64,
    /// Guard: hard ceiling on lifetime pool size (initial plus every
    /// node an autoscaler ever commissions). A runaway `Grow` decision
    /// is clamped here — the backstop behind whatever `max_nodes` the
    /// scaling policy itself enforces.
    pub max_pool_nodes: usize,
    /// Idle-node fast path: a node whose sessions have all finished has
    /// its next event beyond every epoch horizon, so the coordinator
    /// parks it in a *dormant set* — skipping its per-epoch refresh,
    /// advance, harvest and metrics work — and replays the missed idle
    /// epochs exactly (same boundaries, same sensor records, same
    /// aggregate pushes) the moment the node is touched again. Results
    /// are byte-identical with the flag on or off; per-epoch coordinator
    /// cost scales with *active* nodes instead of pool size.
    pub idle_fast_path: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            epoch_s: 1.0,
            worker_threads: 4,
            power_cap_w: 120.0,
            max_events_per_epoch: 10_000_000,
            max_epochs: 100_000,
            max_pool_nodes: 512,
            idle_fast_path: true,
        }
    }
}

impl FleetConfig {
    /// Overrides the worker-thread count.
    pub fn with_worker_threads(mut self, workers: usize) -> Self {
        self.worker_threads = workers;
        self
    }

    /// Overrides the epoch length.
    pub fn with_epoch_s(mut self, epoch_s: f64) -> Self {
        self.epoch_s = epoch_s;
        self
    }

    /// Enables or disables the idle-node fast path (on by default).
    pub fn with_idle_fast_path(mut self, enabled: bool) -> Self {
        self.idle_fast_path = enabled;
        self
    }
}

/// A parked idle node: everything the coordinator needs to serve reads
/// on its behalf and to replay its missed epochs exactly at wake time.
/// While a node is dormant nothing about it can change, so the frozen
/// view and QoS totals are bitwise what per-epoch recomputation would
/// produce.
struct DormantNode {
    /// First epoch whose advance was skipped.
    from_epoch: u64,
    /// The node's view at dormancy entry (post-refresh).
    view: NodeView,
    /// Lifetime frame total at entry (constant while dormant).
    frames: u64,
    /// Lifetime violation total at entry (constant while dormant).
    violations: u64,
    /// Utilization sample every skipped epoch would have recorded.
    utilization: f64,
}

/// A cluster of transcoding nodes behind one dispatcher.
pub struct FleetSim {
    config: FleetConfig,
    dispatcher: Box<dyn Dispatcher>,
    nodes: Vec<FleetNode>,
    pending: VecDeque<SessionRequest>,
    queued: VecDeque<SessionRequest>,
    aggregate: FleetAggregate,
    epoch: u64,
    rebalancer: Option<Box<dyn Rebalancer>>,
    knowledge: Option<SharedKnowledgeStore>,
    autoscaler: Option<Box<dyn Autoscaler>>,
    provisioner: Option<NodeProvisioner>,
    phase_marks: Vec<(u64, String)>,
    /// Idle nodes parked by the fast path, keyed by node id (BTreeMap
    /// for deterministic iteration at settle time).
    dormant: std::collections::BTreeMap<usize, DormantNode>,
    /// Warm starts already served when the run began (finish subtracts
    /// it so the summary counts this run's seeds only).
    seeds_at_start: u64,
    /// Scripted faults to inject between epochs (none by default).
    fault_plan: Option<FaultPlan>,
    /// Periodic checkpoint capture (off by default).
    checkpoint_policy: Option<CheckpointPolicy>,
    /// Latest encoded checkpoint bundle — what a crash recovers from.
    checkpoint: Option<Vec<u8>>,
    /// Crashed nodes awaiting replacement as `(ready_epoch,
    /// crash_epoch)`; each pending entry accrues one down-node-epoch per
    /// epoch until its replacement enters service.
    pending_replacements: Vec<(u64, u64)>,
    /// Live thermal throttles as `(node, until_epoch)`.
    throttles: Vec<(usize, u64)>,
    /// Cursor into the fault plan's (epoch-sorted) event list.
    next_fault: usize,
    /// Structured event recording (off by default). Also owns the
    /// crash/throttle/recovery marks faults emit — those are kept in
    /// every mode and merged with the scenario's phase marks into the
    /// summary timeline.
    telemetry: TelemetryCollector,
    /// Encoded flight-recorder dump captured automatically when a typed
    /// error aborted the last `run` (None after a clean run).
    flight_dump: Option<Vec<u8>>,
    /// This fleet's index in a sharded deployment (0 standalone): fault
    /// events name a `(shard, node)` pair and only the owning shard
    /// executes node-level events.
    shard_index: usize,
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("nodes", &self.nodes.len())
            .field("epoch", &self.epoch)
            .field("pending", &self.pending.len())
            .field("queued", &self.queued.len())
            .finish_non_exhaustive()
    }
}

impl FleetSim {
    /// Creates a fleet over `workload` with a dispatch policy. Nodes are
    /// added afterwards with [`FleetSim::add_node`].
    pub fn new(config: FleetConfig, dispatcher: Box<dyn Dispatcher>, workload: Workload) -> Self {
        FleetSim {
            config,
            dispatcher,
            pending: workload.arrivals().to_vec().into(),
            queued: VecDeque::new(),
            nodes: Vec::new(),
            aggregate: FleetAggregate::default(),
            epoch: 0,
            rebalancer: None,
            knowledge: None,
            autoscaler: None,
            provisioner: None,
            phase_marks: Vec::new(),
            dormant: std::collections::BTreeMap::new(),
            seeds_at_start: 0,
            fault_plan: None,
            checkpoint_policy: None,
            checkpoint: None,
            pending_replacements: Vec::new(),
            throttles: Vec::new(),
            next_fault: 0,
            telemetry: TelemetryCollector::default(),
            flight_dump: None,
            shard_index: 0,
        }
    }

    /// Installs a scripted fault plan: its events fire on the
    /// coordinator between epochs (in epoch order), so chaos runs stay
    /// byte-identical across worker counts. Crashed nodes' sessions are
    /// recovered onto survivors from the last checkpoint (or restarted
    /// from scratch without one — re-done, never silently lost), and a
    /// replacement node is commissioned
    /// [`FaultPlan::replacement_delay_epochs`] later when a provisioner
    /// is installed (via [`FleetSim::set_autoscaler`]). While the active
    /// pool sits below the plan's degrade watermark × the peak pool
    /// size, new arrivals are shed instead of queued.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Installs periodic checkpointing: every
    /// [`CheckpointPolicy::interval_epochs`] epochs the coordinator
    /// captures every live session (bit-exact, non-destructive) plus the
    /// knowledge store into an in-memory [`CheckpointBundle`]. Capture
    /// never perturbs the simulation — a checkpointed run without faults
    /// is byte-identical to an uncheckpointed one.
    pub fn set_checkpoint_policy(&mut self, policy: CheckpointPolicy) {
        self.checkpoint_policy = Some(policy);
    }

    /// Tells the fleet which shard it is in a sharded deployment, so it
    /// executes exactly the fault events addressed to it.
    pub(crate) fn set_shard_index(&mut self, index: usize) {
        self.shard_index = index;
    }

    /// The latest encoded checkpoint bundle, if one has been captured.
    pub fn latest_checkpoint(&self) -> Option<&[u8]> {
        self.checkpoint.as_deref()
    }

    /// Switches structured event tracing on or off (see
    /// [`TelemetryMode`]). Recording never changes simulation results:
    /// a traced run's summary is byte-identical to an untraced one, and
    /// the trace itself is byte-identical across worker counts. With
    /// tracing off every hook reduces to a single branch.
    pub fn set_telemetry(&mut self, mode: TelemetryMode) {
        self.telemetry.set_mode(mode);
        let on = self.telemetry.enabled();
        for node in &mut self.nodes {
            node.set_session_event_recording(on);
        }
    }

    /// The active telemetry recording mode.
    pub fn telemetry_mode(&self) -> TelemetryMode {
        self.telemetry.mode()
    }

    /// The events recorded so far (the retained window, in
    /// flight-recorder mode), assembled into a [`FleetTrace`].
    pub fn trace(&self) -> FleetTrace {
        self.telemetry.trace(self.config.epoch_s)
    }

    /// The encoded (`MAMUTTL`) trace the flight recorder dumped when the
    /// last [`FleetSim::run`] aborted with a typed error; `None` after a
    /// clean run or with telemetry off.
    pub fn flight_dump(&self) -> Option<&[u8]> {
        self.flight_dump.as_deref()
    }

    /// Simulated time of an epoch boundary in integer microseconds —
    /// the timestamp every event recorded at that boundary carries.
    fn epoch_us(&self, epoch: u64) -> u64 {
        (epoch as f64 * self.config.epoch_s * 1_000_000.0).round() as u64
    }

    /// Annotates the run with workload phase boundaries (`(epoch,
    /// label)`): the summary renders them inline in its pool-size
    /// timeline so autoscaler behavior is legible against the scenario
    /// phase that drove it. Marks are sorted by epoch; labels are free
    /// text (scenario realizations provide them pre-quantized to the
    /// fleet's epoch length).
    pub fn set_phase_marks(&mut self, mut marks: Vec<(u64, String)>) {
        marks.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        self.phase_marks = marks;
    }

    /// Installs an inter-epoch session migration policy. Without one,
    /// sessions stay where the dispatcher put them.
    pub fn set_rebalancer(&mut self, rebalancer: Box<dyn Rebalancer>) {
        self.rebalancer = Some(rebalancer);
    }

    /// Installs an elastic pool-sizing policy plus the provisioner that
    /// builds the nodes it commissions. Consulted once per epoch
    /// boundary (on the coordinator — determinism across worker counts
    /// is preserved):
    ///
    /// * a **grow** decision commissions fresh nodes, clock-aligned to
    ///   the boundary; if a knowledge store is attached the new node's
    ///   factory is wrapped in [`warm_start_factory`] so its sessions
    ///   inherit the fleet's merged knowledge from frame one;
    /// * a **shrink** decision drains the least-utilized node's live
    ///   sessions to its peers over the migration path, then retires it
    ///   (drain before decommission — no session is ever dropped). The
    ///   fleet never retires its last active node, whatever the policy
    ///   says.
    ///
    /// Nodes added with [`FleetSim::add_node`] before `run` form the
    /// initial pool.
    pub fn set_autoscaler(
        &mut self,
        autoscaler: Box<dyn Autoscaler>,
        provisioner: NodeProvisioner,
    ) {
        self.autoscaler = Some(autoscaler);
        self.provisioner = Some(provisioner);
    }

    /// Attaches a shared knowledge store: every session that finishes
    /// publishes its learned policy there (in node-id order at each
    /// boundary). Pair it with
    /// [`warm_start_factory`](crate::warm_start_factory) on the node
    /// factories to close the KaaS loop — and reuse the same store
    /// across runs to carry knowledge between whole workloads.
    pub fn set_knowledge_store(&mut self, store: SharedKnowledgeStore) {
        self.knowledge = Some(store);
    }

    /// Adds a node on the paper's default platform. The factory decides
    /// which controller drives each session placed on this node — mixing
    /// factories across nodes mixes run-time managers across the fleet.
    pub fn add_node(&mut self, factory: ControllerFactory) -> usize {
        self.add_node_on(Platform::xeon_e5_2667_v4(), factory)
    }

    /// Adds a node on an explicit platform model.
    pub fn add_node_on(&mut self, platform: Platform, factory: ControllerFactory) -> usize {
        let id = self.nodes.len();
        let mut node = FleetNode::new(id, platform, self.config.power_cap_w, factory);
        node.set_session_event_recording(self.telemetry.enabled());
        self.nodes.push(node);
        id
    }

    /// Number of nodes ever part of the fleet (including retired ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes currently in the active pool.
    pub fn active_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_active()).count()
    }

    /// The nodes, in id order (retired nodes included — their history
    /// stays in the report).
    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    /// Refreshes every active node and returns their views, in id order.
    /// Dormant nodes serve their frozen view (state cannot change while
    /// parked, so the clone is bitwise what recomputation would yield).
    fn active_views(&mut self) -> Vec<NodeView> {
        let mut views = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            if !self.nodes[i].is_active() {
                continue;
            }
            if let Some(parked) = self.dormant.get(&self.nodes[i].id()) {
                views.push(parked.view.clone());
            } else {
                self.nodes[i].refresh();
                views.push(self.nodes[i].view());
            }
        }
        views
    }

    /// Parks every active node whose sessions have all finished: its
    /// next event lies beyond every epoch horizon, so per-epoch work on
    /// it is pure idle accounting — deferred to [`FleetSim::wake_node`]
    /// and replayed exactly there. Runs at the top of each epoch, after
    /// the previous epoch's harvest, so a parked node has nothing left
    /// to publish.
    fn update_dormant(&mut self) {
        for i in 0..self.nodes.len() {
            let id = self.nodes[i].id();
            if !self.nodes[i].is_active()
                || !self.nodes[i].all_finished()
                || self.dormant.contains_key(&id)
            {
                continue;
            }
            self.nodes[i].refresh();
            let view = self.nodes[i].view();
            let utilization = view.utilization();
            let (frames, violations) = Self::qos_totals(&self.nodes[i]);
            self.dormant.insert(
                id,
                DormantNode {
                    from_epoch: self.epoch,
                    view,
                    frames,
                    violations,
                    utilization,
                },
            );
        }
    }

    /// Lifetime `(frames, violations)` totals across a node's sessions —
    /// the fold the per-epoch aggregate record uses.
    fn qos_totals(node: &FleetNode) -> (u64, u64) {
        node.server()
            .sessions()
            .iter()
            .fold((0u64, 0u64), |(f, v), s| {
                (f + s.qos().frames(), v + s.qos().violations())
            })
    }

    /// Un-parks a dormant node, replaying every skipped epoch exactly:
    /// each missed boundary gets the same `run_epoch` call (one idle
    /// sensor record per epoch — identical fp sequence to the unskipped
    /// run) and the same aggregate record the live loop would have made.
    /// `end_exclusive` is the first epoch the caller will handle
    /// normally: the current epoch for pre-advance wakes (dispatch,
    /// decommission, settle), the next for post-advance wakes
    /// (rebalance-attach after this epoch's advance).
    fn wake_node(&mut self, id: usize, end_exclusive: u64) -> Result<(), FleetError> {
        let Some(parked) = self.dormant.remove(&id) else {
            return Ok(());
        };
        let max_events = self.config.max_events_per_epoch;
        for k in parked.from_epoch..end_exclusive {
            let until = (k + 1) as f64 * self.config.epoch_s;
            self.nodes[id]
                .run_epoch(until, max_events)
                .map_err(|source| FleetError::Node { node: id, source })?;
            let server = self.nodes[id].server();
            self.aggregate.record_node_epoch(
                id,
                parked.frames,
                parked.violations,
                server.sensor().total_energy_j(),
                server.sensor().total_time_s(),
                parked.utilization,
            );
        }
        Ok(())
    }

    /// Replays every still-dormant node through the end of the run so
    /// idle time and energy are fully accounted before the summary.
    fn settle_dormant(&mut self) -> Result<(), FleetError> {
        let parked: Vec<usize> = self.dormant.keys().copied().collect();
        for id in parked {
            self.wake_node(id, self.epoch)?;
        }
        Ok(())
    }

    /// Runs the whole workload to completion: every arrival dispatched
    /// (or rejected), every admitted session transcoded to the end.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoNodes`] without nodes; [`FleetError::Node`] if a
    /// node's simulator trips its event budget;
    /// [`FleetError::EpochBudgetExhausted`] if the workload cannot drain
    /// (e.g. a gating policy queues a session no node can ever fit).
    pub fn run(&mut self) -> Result<FleetSummary, FleetError> {
        let result = self.run_inner();
        if result.is_err() && self.telemetry.enabled() {
            // The flight recorder's whole point: when a typed error
            // aborts the run, the retained event window survives the
            // unwind as an encoded trace.
            self.flight_dump = Some(self.trace().encode());
        }
        result
    }

    fn run_inner(&mut self) -> Result<FleetSummary, FleetError> {
        self.begin_run()?;
        loop {
            self.step_epoch()?;
            if self.is_drained() {
                break;
            }
            if self.epoch >= self.config.max_epochs {
                return Err(FleetError::EpochBudgetExhausted { epochs: self.epoch });
            }
        }
        self.finish_run()
    }

    /// Validates the configuration and resets run-scoped state. The
    /// sharded coordinator calls this once per shard before driving
    /// epochs itself; [`FleetSim::run`] is exactly `begin_run` + a
    /// `step_epoch` loop + `finish_run`.
    pub(crate) fn begin_run(&mut self) -> Result<(), FleetError> {
        if self.nodes.is_empty() {
            return Err(FleetError::NoNodes);
        }
        if !(self.config.epoch_s.is_finite() && self.config.epoch_s > 0.0) {
            return Err(FleetError::InvalidConfig(format!(
                "epoch_s must be positive, got {}",
                self.config.epoch_s
            )));
        }
        self.aggregate = FleetAggregate::new(self.nodes.len());
        self.dormant.clear();
        self.seeds_at_start = self.seeds_served();
        self.checkpoint = None;
        self.pending_replacements.clear();
        self.throttles.clear();
        self.next_fault = 0;
        self.telemetry.reset();
        self.flight_dump = None;
        Ok(())
    }

    /// Simulates one epoch: autoscale, dispatch, advance, record,
    /// harvest, rebalance — the exact op order the monolithic loop used,
    /// so a run driven step-by-step is byte-identical to `run`.
    pub(crate) fn step_epoch(&mut self) -> Result<(), FleetError> {
        let epoch_start = self.epoch as f64 * self.config.epoch_s;
        let boundary = (self.epoch + 1) as f64 * self.config.epoch_s;
        if self.config.idle_fast_path {
            self.update_dormant();
        }
        if self.telemetry.enabled() {
            let at_us = self.epoch_us(self.epoch);
            self.telemetry.record(
                self.epoch,
                at_us,
                TelemetryEvent::EpochBegin {
                    active_nodes: self.active_node_count() as u32,
                },
            );
            // Scenario phase boundaries land in the trace at their epoch
            // (they stay a separate summary input — only fault marks go
            // through `record_mark`).
            for (epoch, label) in &self.phase_marks {
                if *epoch == self.epoch {
                    self.telemetry.record(
                        self.epoch,
                        at_us,
                        TelemetryEvent::Mark {
                            label: label.clone(),
                        },
                    );
                }
            }
        }
        self.capture_checkpoint();
        self.inject_faults(epoch_start)?;
        self.autoscale(epoch_start)?;
        self.aggregate
            .record_pool_size(self.epoch, self.active_node_count());
        self.dispatch_due(epoch_start)?;
        // Utilization is sampled after placement, before advancement:
        // it describes the demand each node carries *through* the
        // epoch being simulated. Only active nodes burn a node-epoch;
        // dormant nodes' samples are replayed at wake time.
        let utilizations: Vec<(usize, f64)> = self
            .nodes
            .iter_mut()
            .filter(|n| n.is_active() && !self.dormant.contains_key(&n.id()))
            .map(|n| {
                n.refresh();
                (n.id(), n.view().utilization())
            })
            .collect();
        self.advance_nodes(boundary)?;
        for (id, util) in utilizations {
            let node = &self.nodes[id];
            let server = node.server();
            let (frames, violations) = Self::qos_totals(node);
            self.aggregate.record_node_epoch(
                id,
                frames,
                violations,
                server.sensor().total_energy_j(),
                server.sensor().total_time_s(),
                util,
            );
        }
        if self.telemetry.enabled() {
            // Sessions that completed during this epoch's advance were
            // buffered on the node that owns them; draining in node-id
            // order keeps the trace independent of the worker count.
            let at_end_us = self.epoch_us(self.epoch + 1);
            for i in 0..self.nodes.len() {
                for (session, frames) in self.nodes[i].take_session_events() {
                    self.telemetry.record(
                        self.epoch,
                        at_end_us,
                        TelemetryEvent::SessionEnd {
                            session,
                            node: i as u32,
                            frames,
                        },
                    );
                }
            }
        }
        self.harvest_knowledge();
        self.rebalance()?;
        self.telemetry.record(
            self.epoch,
            self.epoch_us(self.epoch + 1),
            TelemetryEvent::EpochEnd,
        );
        self.telemetry.end_epoch();
        self.epoch += 1;
        Ok(())
    }

    /// Whether the workload is fully served: no arrivals left to place
    /// and every admitted session transcoded to the end.
    pub(crate) fn is_drained(&self) -> bool {
        self.pending.is_empty()
            && self.queued.is_empty()
            && self.nodes.iter().all(FleetNode::all_finished)
    }

    /// Settles dormant nodes and assembles the run report.
    pub(crate) fn finish_run(&mut self) -> Result<FleetSummary, FleetError> {
        self.settle_dormant()?;
        self.aggregate
            .set_warm_starts(self.seeds_served() - self.seeds_at_start);
        let facts: Vec<NodeFacts> = self
            .nodes
            .iter()
            .map(|n| NodeFacts {
                sessions: n.sessions_admitted(),
                migrated_in: n.sessions_migrated_in(),
                migrated_out: n.sessions_migrated_out(),
                retired: !n.is_active(),
            })
            .collect();
        // Crash/recovery marks were recorded as faults fired (kept in
        // every telemetry mode); interleave them with the scenario's
        // pre-sorted phase marks by epoch.
        let mut marks = self.phase_marks.clone();
        marks.extend(self.telemetry.marks().iter().cloned());
        marks.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut summary = FleetSummary::assemble(
            self.dispatcher.name().to_owned(),
            self.epoch,
            self.epoch as f64 * self.config.epoch_s,
            &facts,
            &self.aggregate,
            marks,
            self.nodes.iter().map(FleetNode::summary).collect(),
        );
        summary.trace_events = self.telemetry.events_recorded();
        Ok(summary)
    }

    /// Epochs simulated so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The fleet configuration in force.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The attached knowledge store, if any (the sharded coordinator
    /// syncs shard stores through this).
    pub(crate) fn knowledge_ref(&self) -> Option<&SharedKnowledgeStore> {
        self.knowledge.as_ref()
    }

    /// Mean thread-demand utilization over the active pool (0.0 when
    /// empty) — the load signal the sharded coordinator's overflow
    /// router compares across shards.
    pub(crate) fn mean_active_utilization(&mut self) -> f64 {
        let views = self.active_views();
        if views.is_empty() {
            0.0
        } else {
            views.iter().map(NodeView::utilization).sum::<f64>() / views.len() as f64
        }
    }

    /// Detaches one live session for cross-shard overflow: the busiest
    /// active node's migration candidate (most frames remaining). `None`
    /// when no node holds a live session.
    pub(crate) fn overflow_detach(&mut self) -> Result<Option<MigratedSession>, FleetError> {
        let mut views = self.active_views();
        views.sort_by(|a, b| {
            b.utilization()
                .partial_cmp(&a.utilization())
                .expect("utilization is finite")
                .then(a.node_id.cmp(&b.node_id))
        });
        for view in views {
            if let Some(sid) = self.nodes[view.node_id].migration_candidate() {
                let migrated = self.nodes[view.node_id].detach_session(sid)?;
                return Ok(Some(migrated));
            }
        }
        Ok(None)
    }

    /// Attaches an overflow session from a peer shard onto the
    /// least-utilized active node (lowest id on ties), waking it first
    /// if the fast path had parked it. Called between epochs, after
    /// every shard has stepped, so clocks are aligned at the boundary.
    pub(crate) fn overflow_attach(
        &mut self,
        migrated: MigratedSession,
    ) -> Result<usize, FleetError> {
        let views = self.active_views();
        let target = views
            .iter()
            .min_by(|a, b| {
                a.utilization()
                    .partial_cmp(&b.utilization())
                    .expect("utilization is finite")
                    .then(a.node_id.cmp(&b.node_id))
            })
            .expect("pool never drains below one active node")
            .node_id;
        self.wake_node(target, self.epoch)?;
        Ok(self.nodes[target].attach_session(migrated))
    }

    /// Consults the autoscaler (if installed) and executes its decision:
    /// commission fresh clock-aligned nodes, or drain-and-retire the
    /// least-utilized ones. Runs on the coordinator at the epoch start,
    /// before arrivals are dispatched, so a commissioned node can serve
    /// this boundary's arrivals and a retiring node stops taking new
    /// work immediately.
    fn autoscale(&mut self, epoch_start: f64) -> Result<(), FleetError> {
        if self.autoscaler.is_none() {
            return Ok(());
        }
        let views = self.active_views();
        let arrivals_due = self
            .pending
            .iter()
            .take_while(|r| r.arrival_s <= epoch_start)
            .count();
        let signals = ScaleSignals {
            epoch: self.epoch,
            epoch_s: self.config.epoch_s,
            active: &views,
            arrivals_due,
            queued_sessions: self.queued.len(),
            pending_sessions: self.pending.len() - arrivals_due,
        };
        let scaler = self.autoscaler.as_mut().expect("presence checked above");
        let decision = scaler.plan(&signals);
        let source = scaler.decision_source();
        self.aggregate.record_policy_decision(
            source != crate::autoscale::PolicySource::Heuristic,
            source == crate::autoscale::PolicySource::Exploratory,
            decision != ScaleDecision::Hold,
        );
        if self.telemetry.enabled() {
            let delta = match decision {
                ScaleDecision::Hold => 0,
                ScaleDecision::Grow(count) => count as i64,
                ScaleDecision::Shrink(count) => -(count as i64),
            };
            // The detail string is policy provenance for the trace only;
            // it is built exclusively here, so tracing-off runs never
            // pay for its formatting.
            let detail = self
                .autoscaler
                .as_ref()
                .expect("presence checked above")
                .decision_detail()
                .unwrap_or_default();
            self.telemetry.record(
                self.epoch,
                self.epoch_us(self.epoch),
                TelemetryEvent::Autoscale {
                    delta,
                    source,
                    detail,
                },
            );
        }
        match decision {
            ScaleDecision::Hold => Ok(()),
            ScaleDecision::Grow(count) => self.commission_nodes(count, epoch_start),
            ScaleDecision::Shrink(count) => self.decommission_nodes(count),
        }
    }

    /// Commissions `count` fresh nodes through the provisioner, clocks
    /// aligned to the boundary, factories warm-start-wrapped when a
    /// knowledge store is attached. Growth is clamped so the lifetime
    /// pool never exceeds [`FleetConfig::max_pool_nodes`] — the backstop
    /// against a runaway scaling policy.
    fn commission_nodes(&mut self, count: usize, epoch_start: f64) -> Result<(), FleetError> {
        let count = count.min(self.config.max_pool_nodes.saturating_sub(self.nodes.len()));
        for _ in 0..count {
            let (platform, factory) = (self
                .provisioner
                .as_mut()
                .expect("set_autoscaler installs a provisioner"))(
            );
            let factory = match &self.knowledge {
                Some(store) => warm_start_factory(Arc::clone(store), factory),
                None => factory,
            };
            let id = self.nodes.len();
            let mut node = FleetNode::new(id, platform, self.config.power_cap_w, factory);
            node.set_session_event_recording(self.telemetry.enabled());
            node.align_clock(epoch_start)
                .map_err(|source| FleetError::Node { node: id, source })?;
            self.nodes.push(node);
            self.aggregate.ensure_nodes(self.nodes.len());
            self.aggregate.record_scale_up();
            self.telemetry.record(
                self.epoch,
                self.epoch_us(self.epoch),
                TelemetryEvent::NodeCommission { node: id as u32 },
            );
        }
        Ok(())
    }

    /// Drains and retires up to `count` nodes — least-utilized first,
    /// ties retiring the newest — but never the last active node.
    fn decommission_nodes(&mut self, count: usize) -> Result<(), FleetError> {
        for _ in 0..count {
            let views = self.active_views();
            if views.len() <= 1 {
                break; // the pool never empties, whatever the policy says
            }
            let victim = views
                .iter()
                .min_by(|a, b| {
                    a.utilization()
                        .partial_cmp(&b.utilization())
                        .expect("utilization is finite")
                        .then(b.node_id.cmp(&a.node_id))
                })
                .expect("two or more views")
                .node_id;
            self.drain_and_retire(victim)?;
        }
        Ok(())
    }

    /// Migrates every live session off `victim` (least-utilized active
    /// peer takes each, recomputed per session so consecutive placements
    /// see each other's load), then powers the node down.
    fn drain_and_retire(&mut self, victim: usize) -> Result<(), FleetError> {
        // A dormant victim must account its skipped idle epochs before
        // its clock stops for good (retired nodes are never settled).
        self.wake_node(victim, self.epoch)?;
        let drained = self.nodes[victim].drain()?;
        for migrated in drained {
            let session = migrated.request.id;
            let target = self
                .nodes
                .iter_mut()
                .filter(|n| n.is_active() && n.id() != victim)
                .map(|n| {
                    n.refresh();
                    (n.id(), n.view().utilization())
                })
                .min_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("utilization is finite")
                        .then(a.0.cmp(&b.0))
                })
                .map(|(id, _)| id)
                .expect("pool never drains below one active node");
            self.wake_node(target, self.epoch)?;
            self.nodes[target].attach_session(migrated);
            self.aggregate.record_drained_session();
            if self.telemetry.enabled() {
                let at_us = self.epoch_us(self.epoch);
                self.telemetry.record(
                    self.epoch,
                    at_us,
                    TelemetryEvent::SessionDetach {
                        session,
                        node: victim as u32,
                    },
                );
                self.telemetry.record(
                    self.epoch,
                    at_us,
                    TelemetryEvent::SessionAttach {
                        session,
                        node: target as u32,
                    },
                );
            }
        }
        // Final resample of the retired node's row: its drained sessions
        // took their QoS history to their new homes, so without this the
        // departed frames would be counted on both rows.
        let server = self.nodes[victim].server();
        let (frames, violations) = server.sessions().iter().fold((0u64, 0u64), |(f, v), s| {
            (f + s.qos().frames(), v + s.qos().violations())
        });
        self.aggregate.resample_node_totals(
            victim,
            frames,
            violations,
            server.sensor().total_energy_j(),
            server.sensor().total_time_s(),
        );
        self.nodes[victim].retire()?;
        self.aggregate.record_scale_down();
        self.telemetry.record(
            self.epoch,
            self.epoch_us(self.epoch),
            TelemetryEvent::NodeRetire {
                node: victim as u32,
            },
        );
        Ok(())
    }

    /// Captures a fleet checkpoint when the policy's interval comes due:
    /// every live session on every awake node, bit-exact, plus the
    /// knowledge store. Pure observation — session clocks, rngs and fp
    /// sequences are untouched, so capture never changes results.
    fn capture_checkpoint(&mut self) {
        let Some(policy) = self.checkpoint_policy else {
            return;
        };
        if policy.interval_epochs == 0
            || self.epoch == 0
            || !self.epoch.is_multiple_of(policy.interval_epochs)
        {
            return;
        }
        let mut nodes = Vec::new();
        for i in 0..self.nodes.len() {
            // Dormant nodes hold no live sessions: nothing to capture,
            // and skipping them keeps their parked state untouched.
            if !self.nodes[i].is_active() || self.dormant.contains_key(&self.nodes[i].id()) {
                continue;
            }
            let sessions = self.nodes[i].checkpoint_sessions();
            if !sessions.is_empty() {
                nodes.push(NodeCheckpoint { node: i, sessions });
            }
        }
        let knowledge = self
            .knowledge
            .as_ref()
            .map(|store| store.lock().expect("knowledge store poisoned").snapshot());
        let sessions: u32 = nodes.iter().map(|n| n.sessions.len() as u32).sum();
        let bundle = CheckpointBundle {
            epoch: self.epoch,
            nodes,
            knowledge,
        };
        let encoded = bundle.encode();
        self.telemetry.record(
            self.epoch,
            self.epoch_us(self.epoch),
            TelemetryEvent::CheckpointCaptured {
                sessions,
                bytes: encoded.len() as u64,
            },
        );
        self.checkpoint = Some(encoded);
        self.aggregate.record_checkpoint();
    }

    /// Executes the fault plan's events due this epoch plus the ongoing
    /// fault bookkeeping: replacements that come due are commissioned,
    /// expired throttles are lifted, new crashes and throttles land, and
    /// every still-missing node accrues one down-node-epoch. All of it
    /// runs on the coordinator between epochs, in a fixed order, so
    /// chaos runs are deterministic across worker counts.
    fn inject_faults(&mut self, epoch_start: f64) -> Result<(), FleetError> {
        if self.fault_plan.is_none()
            && self.pending_replacements.is_empty()
            && self.throttles.is_empty()
        {
            return Ok(());
        }
        // 1. Replacements whose delay has elapsed enter service first, so
        //    a node commissioned this boundary can take this boundary's
        //    arrivals (same rule as autoscale grow).
        let due: Vec<(u64, u64)> = self
            .pending_replacements
            .iter()
            .copied()
            .filter(|&(ready, _)| ready <= self.epoch)
            .collect();
        self.pending_replacements
            .retain(|&(ready, _)| ready > self.epoch);
        for (_, crashed_at) in due {
            let before = self.nodes.len();
            self.commission_nodes(1, epoch_start)?;
            if self.nodes.len() > before {
                self.telemetry.record_mark(
                    self.epoch,
                    self.epoch_us(self.epoch),
                    format!("recovered:n{before}"),
                );
                self.aggregate.record_recovery(self.epoch - crashed_at);
            }
        }
        // 2. Expired throttles are lifted.
        let expired: Vec<usize> = self
            .throttles
            .iter()
            .filter(|&&(_, until)| until <= self.epoch)
            .map(|&(node, _)| node)
            .collect();
        self.throttles.retain(|&(_, until)| until > self.epoch);
        for node in expired {
            if self.nodes[node].is_active() {
                self.wake_node(node, self.epoch)?;
                self.nodes[node].set_freq_cap(None);
                self.telemetry.record(
                    self.epoch,
                    self.epoch_us(self.epoch),
                    TelemetryEvent::ThrottleEnd { node: node as u32 },
                );
            }
        }
        // 3. New events due this epoch fire in plan order.
        let mut due_events = Vec::new();
        if let Some(plan) = &self.fault_plan {
            let events = plan.events();
            while self.next_fault < events.len() && events[self.next_fault].epoch() <= self.epoch {
                due_events.push(events[self.next_fault].clone());
                self.next_fault += 1;
            }
        }
        for event in due_events {
            match event {
                FaultEvent::NodeCrash { shard, node, .. } if shard == self.shard_index => {
                    self.crash_node(node)?;
                }
                FaultEvent::ThermalThrottle {
                    shard,
                    node,
                    freq_cap_ghz,
                    duration_epochs,
                    ..
                } if shard == self.shard_index
                    && node < self.nodes.len()
                    && self.nodes[node].is_active() =>
                {
                    self.wake_node(node, self.epoch)?;
                    self.nodes[node].set_freq_cap(Some(freq_cap_ghz));
                    let until_epoch = self.epoch + duration_epochs.max(1);
                    self.throttles.push((node, until_epoch));
                    let at_us = self.epoch_us(self.epoch);
                    self.telemetry
                        .record_mark(self.epoch, at_us, format!("throttle:n{node}"));
                    self.telemetry.record(
                        self.epoch,
                        at_us,
                        TelemetryEvent::ThrottleStart {
                            node: node as u32,
                            freq_cap_ghz,
                            until_epoch,
                        },
                    );
                    self.aggregate.record_throttle();
                }
                // Coordinator-level events (and events addressed to other
                // shards) are not this fleet's to execute.
                _ => {}
            }
        }
        // 4. Availability accounting: each crashed node still awaiting
        //    its replacement is one demanded-but-unserved node-epoch.
        for _ in 0..self.pending_replacements.len() {
            self.aggregate.record_down_node_epoch();
        }
        Ok(())
    }

    /// Fail-stop crash of `node`: its live sessions die with it and are
    /// recovered onto the least-utilized survivors — bit-exact from the
    /// last checkpoint when one covers them (work since the checkpoint
    /// is re-done and counted), from scratch otherwise (the whole
    /// session is re-done). Either way no frame is silently lost. The
    /// last active node never crashes (mirroring the decommission
    /// floor): a plan that targets it is a no-op.
    fn crash_node(&mut self, victim: usize) -> Result<(), FleetError> {
        if victim >= self.nodes.len()
            || !self.nodes[victim].is_active()
            || self.active_node_count() <= 1
        {
            return Ok(());
        }
        // A dormant victim settles its idle history before dying.
        self.wake_node(victim, self.epoch)?;
        let lost = self.nodes[victim].crash_kill();
        self.throttles.retain(|&(node, _)| node != victim);
        self.telemetry.record_mark(
            self.epoch,
            self.epoch_us(self.epoch),
            format!("crash:n{victim}"),
        );
        self.telemetry.record(
            self.epoch,
            self.epoch_us(self.epoch),
            TelemetryEvent::NodeCrash {
                node: victim as u32,
                sessions_lost: lost.len() as u32,
            },
        );
        self.aggregate.record_crash();
        let bundle = self
            .checkpoint
            .as_ref()
            .and_then(|bytes| CheckpointBundle::decode(bytes).ok());
        let covered = bundle
            .as_ref()
            .map(|b| b.sessions_of(victim))
            .unwrap_or_default();
        for (request, frames_at_crash) in lost {
            // Least-utilized active survivor, recomputed per session so
            // consecutive recoveries see each other's load — the same
            // rule drain-and-retire uses.
            let target = self
                .nodes
                .iter_mut()
                .filter(|n| n.is_active())
                .map(|n| {
                    n.refresh();
                    (n.id(), n.view().utilization())
                })
                .min_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("utilization is finite")
                        .then(a.0.cmp(&b.0))
                })
                .map(|(id, _)| id)
                .expect("crash guard keeps at least one active node");
            self.wake_node(target, self.epoch)?;
            let ck = covered.get(&request.id);
            let restored =
                self.nodes[target].adopt_recovered(&request, ck.map(|c| c.bytes.as_slice()));
            let redone = if restored {
                let ck = ck.expect("restored implies a checkpoint entry");
                frames_at_crash.saturating_sub(ck.frames_completed)
            } else {
                frames_at_crash
            };
            self.telemetry.record(
                self.epoch,
                self.epoch_us(self.epoch),
                TelemetryEvent::SessionRecovered {
                    session: request.id,
                    node: target as u32,
                    frames_redone: redone,
                    from_checkpoint: restored,
                },
            );
            self.aggregate.record_recovered_session(redone);
        }
        // The victim's row keeps only what stayed: finished sessions'
        // history. Its dead sessions' QoS moved (or restarted) elsewhere.
        let (frames, violations) = Self::qos_totals(&self.nodes[victim]);
        let server = self.nodes[victim].server();
        self.aggregate.resample_node_totals(
            victim,
            frames,
            violations,
            server.sensor().total_energy_j(),
            server.sensor().total_time_s(),
        );
        if self.provisioner.is_some() {
            let delay = self
                .fault_plan
                .as_ref()
                .map(|p| p.replacement_delay_epochs.max(1))
                .unwrap_or(1);
            self.pending_replacements
                .push((self.epoch + delay, self.epoch));
        }
        Ok(())
    }

    /// Whether the fleet is running degraded: the fault plan set a
    /// degrade watermark and the active pool has fallen below that
    /// fraction of the peak pool size. While degraded, new arrivals are
    /// shed so the survivors' existing sessions keep their QoS.
    fn degraded(&self) -> bool {
        let Some(watermark) = self.fault_plan.as_ref().and_then(|p| p.degrade_watermark) else {
            return false;
        };
        (self.active_node_count() as f64) < watermark * self.aggregate.peak_nodes() as f64
    }

    /// Warm starts served by the attached store so far (0 without one).
    fn seeds_served(&self) -> u64 {
        self.knowledge
            .as_ref()
            .map(|store| {
                store
                    .lock()
                    .expect("knowledge store poisoned")
                    .seeds_served()
            })
            .unwrap_or(0)
    }

    /// Publishes newly finished sessions' policies to the knowledge
    /// store, nodes in id order (determinism).
    fn harvest_knowledge(&mut self) {
        let Some(store) = &self.knowledge else {
            return;
        };
        let mut store = store.lock().expect("knowledge store poisoned");
        for node in &mut self.nodes {
            // A dormant node published everything before it was parked;
            // scanning its sessions again would find nothing.
            if self.dormant.contains_key(&node.id()) {
                continue;
            }
            node.harvest_finished(&mut store);
        }
    }

    /// Runs the rebalance policy and executes its directives: one
    /// migration candidate per directive, moved with controller and
    /// in-flight frame between the time-aligned nodes.
    fn rebalance(&mut self) -> Result<(), FleetError> {
        if self.rebalancer.is_none() {
            return Ok(());
        }
        let views = self.active_views();
        let directives = self
            .rebalancer
            .as_mut()
            .expect("presence checked above")
            .plan(self.epoch, &views);
        for directive in directives {
            let (from, to) = (directive.from, directive.to);
            let valid = from < self.nodes.len()
                && to < self.nodes.len()
                && from != to
                && self.nodes[from].is_active()
                && self.nodes[to].is_active();
            if !valid {
                return Err(FleetError::InvalidMigration {
                    from,
                    to,
                    nodes: self.nodes.len(),
                });
            }
            let Some(sid) = self.nodes[from].migration_candidate() else {
                continue; // the donor drained during this epoch
            };
            // Rebalance runs after this epoch's advance, so a dormant
            // receiver replays through the *next* epoch's start to align
            // clocks at the boundary. (A dormant donor never gets here:
            // all its sessions finished, so it has no candidate.)
            self.wake_node(to, self.epoch + 1)?;
            let migrated = self.nodes[from].detach_session(sid)?;
            let session = migrated.request.id;
            // No mid-flight publish here: the session keeps learning and
            // publishes exactly once, at finish, from whichever node
            // hosts it then — so visit-weighted merges never count a
            // trajectory twice.
            self.nodes[to].attach_session(migrated);
            self.aggregate.record_migration();
            if self.telemetry.enabled() {
                // Rebalance runs after this epoch's advance: the move
                // happens at the *next* boundary.
                let at_us = self.epoch_us(self.epoch + 1);
                self.telemetry.record(
                    self.epoch,
                    at_us,
                    TelemetryEvent::SessionDetach {
                        session,
                        node: from as u32,
                    },
                );
                self.telemetry.record(
                    self.epoch,
                    at_us,
                    TelemetryEvent::SessionAttach {
                        session,
                        node: to as u32,
                    },
                );
            }
        }
        Ok(())
    }

    /// Routes queued leftovers and arrivals due by `now` (an epoch start)
    /// through the dispatch policy. Arrivals quantize *up*: a session
    /// arriving mid-epoch is admitted at the next boundary — slightly
    /// late, never before it exists (placement must stay causal for the
    /// policy comparisons to mean anything).
    fn dispatch_due(&mut self, now: f64) -> Result<(), FleetError> {
        if self.queued.is_empty() && !self.pending.front().is_some_and(|r| r.arrival_s <= now) {
            return Ok(()); // quiet boundary: skip the view build entirely
        }
        let mut due: Vec<SessionRequest> = self.queued.drain(..).collect();
        while self.pending.front().is_some_and(|r| r.arrival_s <= now) {
            due.push(self.pending.pop_front().expect("front checked"));
        }
        let at_us = self.epoch_us(self.epoch);
        if self.degraded() {
            // Graceful degradation: below the watermark the survivors
            // protect the sessions they already carry; new work is shed
            // (visible in the summary), not queued into a backlog the
            // diminished pool cannot serve.
            for request in &due {
                self.telemetry.record(
                    self.epoch,
                    at_us,
                    TelemetryEvent::DispatchShed {
                        session: request.id,
                    },
                );
                self.aggregate.record_shed_session();
                self.aggregate.record_rejection();
            }
            return Ok(());
        }
        // Views are built once per round and patched in place after each
        // placement: an admit changes only the assigned node's state, so
        // refreshing just that view keeps consecutive placements in one
        // epoch exactly as informed as rebuilding everything (the
        // decisions are byte-identical; the cost drops from O(pool) to
        // O(1) per admit). Only active nodes are offered — a retired (or
        // never-commissioned) node takes no work.
        let mut views = self.active_views();
        for request in due {
            match self.dispatcher.dispatch(&request, &views) {
                DispatchDecision::Assign(id)
                    if id < self.nodes.len() && self.nodes[id].is_active() =>
                {
                    self.wake_node(id, self.epoch)?;
                    self.nodes[id].admit(&request);
                    self.telemetry.record(
                        self.epoch,
                        at_us,
                        TelemetryEvent::DispatchAssign {
                            session: request.id,
                            node: id as u32,
                        },
                    );
                    let pos = views
                        .iter()
                        .position(|v| v.node_id == id)
                        .expect("active nodes all have views");
                    self.nodes[id].refresh();
                    views[pos] = self.nodes[id].view();
                }
                DispatchDecision::Assign(id) => {
                    // A policy bug, not a capacity rejection — surface it.
                    return Err(FleetError::InvalidDispatch {
                        node: id,
                        nodes: self.nodes.len(),
                    });
                }
                DispatchDecision::Reject => {
                    self.telemetry.record(
                        self.epoch,
                        at_us,
                        TelemetryEvent::DispatchReject {
                            session: request.id,
                        },
                    );
                    self.aggregate.record_rejection();
                }
                DispatchDecision::Queue => {
                    self.telemetry.record(
                        self.epoch,
                        at_us,
                        TelemetryEvent::DispatchQueue {
                            session: request.id,
                        },
                    );
                    self.aggregate.record_queued_wait();
                    self.queued.push_back(request);
                }
            }
        }
        Ok(())
    }

    /// Advances every *active* node to `boundary`, fanning nodes out over
    /// scoped OS threads (retired nodes are powered off and stay where
    /// their clocks stopped). Nodes are partitioned into contiguous
    /// chunks; each worker advances its chunk sequentially. Since nodes
    /// share nothing within an epoch, the partition affects wall-clock
    /// time only.
    fn advance_nodes(&mut self, boundary: f64) -> Result<(), FleetError> {
        let dormant = &self.dormant;
        let mut active: Vec<&mut FleetNode> = self
            .nodes
            .iter_mut()
            .filter(|n| n.is_active() && !dormant.contains_key(&n.id()))
            .collect();
        if active.is_empty() {
            return Ok(());
        }
        let workers = self.config.worker_threads.clamp(1, active.len());
        let chunk_len = active.len().div_ceil(workers);
        let max_events = self.config.max_events_per_epoch;
        let failures: Vec<(usize, mamut_transcode::TranscodeError)> = std::thread::scope(|scope| {
            let handles: Vec<_> = active
                .chunks_mut(chunk_len)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut errs = Vec::new();
                        for node in chunk {
                            if let Err(e) = node.run_epoch(boundary, max_events) {
                                errs.push((node.id(), e));
                            }
                        }
                        errs
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fleet worker thread panicked"))
                .collect()
        });
        match failures.into_iter().next() {
            Some((node, source)) => Err(FleetError::Node { node, source }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{LeastLoaded, NodeView, RoundRobin};
    use crate::workload::WorkloadConfig;
    use mamut_core::{FixedController, KnobSettings};

    fn fixed_factory() -> ControllerFactory {
        Box::new(|req| {
            let threads = if req.hr { 10 } else { 4 };
            Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
        })
    }

    fn small_workload(seed: u64) -> Workload {
        Workload::generate(&WorkloadConfig {
            seed,
            sessions: 8,
            mean_interarrival_s: 1.0,
            vod_frames: (30, 90),
            live_frames: (90, 180),
            ..WorkloadConfig::default()
        })
    }

    fn fleet(nodes: usize, workers: usize, dispatcher: Box<dyn Dispatcher>) -> FleetSim {
        let mut sim = FleetSim::new(
            FleetConfig::default().with_worker_threads(workers),
            dispatcher,
            small_workload(11),
        );
        for _ in 0..nodes {
            sim.add_node(fixed_factory());
        }
        sim
    }

    #[test]
    fn no_nodes_errors() {
        let mut sim = FleetSim::new(
            FleetConfig::default(),
            Box::new(RoundRobin::new()),
            small_workload(1),
        );
        assert_eq!(sim.run().unwrap_err(), FleetError::NoNodes);
    }

    #[test]
    fn bad_epoch_errors() {
        let mut sim = FleetSim::new(
            FleetConfig {
                epoch_s: 0.0,
                ..FleetConfig::default()
            },
            Box::new(RoundRobin::new()),
            small_workload(1),
        );
        sim.add_node(fixed_factory());
        assert!(matches!(
            sim.run().unwrap_err(),
            FleetError::InvalidConfig(_)
        ));
    }

    #[test]
    fn out_of_range_assignment_surfaces_the_policy_bug() {
        struct OffByOne;
        impl Dispatcher for OffByOne {
            fn name(&self) -> &'static str {
                "off-by-one"
            }
            fn dispatch(
                &mut self,
                _request: &SessionRequest,
                nodes: &[NodeView],
            ) -> DispatchDecision {
                DispatchDecision::Assign(nodes.len())
            }
        }
        let mut sim = fleet(2, 1, Box::new(OffByOne));
        assert_eq!(
            sim.run().unwrap_err(),
            FleetError::InvalidDispatch { node: 2, nodes: 2 }
        );
    }

    #[test]
    fn every_arrival_lands_and_finishes() {
        let mut sim = fleet(3, 2, Box::new(RoundRobin::new()));
        let summary = sim.run().unwrap();
        assert_eq!(summary.total_sessions + summary.rejected_sessions, 8);
        assert_eq!(summary.rejected_sessions, 0, "round robin rejects nobody");
        assert!(summary.total_frames > 0);
        assert!(summary.epochs > 0);
        assert!(sim.nodes().iter().all(FleetNode::all_finished));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let run = |workers: usize| {
            fleet(4, workers, Box::new(LeastLoaded::new()))
                .run()
                .unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
        assert_eq!(one, run(9));
    }

    #[test]
    fn same_seed_same_summary() {
        let run = || fleet(2, 2, Box::new(RoundRobin::new())).run().unwrap();
        assert_eq!(run(), run());
    }

    #[test]
    fn rebalancer_moves_sessions_and_preserves_cluster_totals() {
        use crate::rebalance::UtilizationBalance;
        // Round-robin onto 2 nodes with everything long-lived lands an
        // uneven mix; an aggressive balancer must actually migrate.
        let run = |balance: bool| {
            let mut sim = FleetSim::new(
                FleetConfig::default().with_worker_threads(2),
                Box::new(RoundRobin::new()),
                small_workload(11),
            );
            for _ in 0..2 {
                sim.add_node(fixed_factory());
            }
            if balance {
                sim.set_rebalancer(Box::new(UtilizationBalance::new().with_min_gap(0.05)));
            }
            sim.run().unwrap()
        };
        let still = run(false);
        let moved = run(true);
        assert_eq!(still.migrations, 0);
        assert!(moved.migrations > 0, "aggressive balancer never moved");
        // Moves shuffle placement, not existence: same admissions, same
        // cluster-wide frame count.
        assert_eq!(moved.total_sessions, still.total_sessions);
        assert_eq!(moved.total_frames, still.total_frames);
    }

    #[test]
    fn migration_is_deterministic_across_worker_counts() {
        use crate::rebalance::UtilizationBalance;
        let run = |workers: usize| {
            let mut sim = FleetSim::new(
                FleetConfig::default().with_worker_threads(workers),
                Box::new(RoundRobin::new()),
                small_workload(5),
            );
            for _ in 0..3 {
                sim.add_node(fixed_factory());
            }
            sim.set_rebalancer(Box::new(UtilizationBalance::new().with_min_gap(0.05)));
            sim.run().unwrap().to_string()
        };
        let one = run(1);
        assert_eq!(one, run(3));
        assert_eq!(one, run(8));
    }

    #[test]
    fn bad_migration_directive_surfaces_the_policy_bug() {
        struct SelfLoop;
        impl crate::rebalance::Rebalancer for SelfLoop {
            fn name(&self) -> &'static str {
                "self-loop"
            }
            fn plan(
                &mut self,
                _epoch: u64,
                _nodes: &[NodeView],
            ) -> Vec<crate::rebalance::MigrationDirective> {
                vec![crate::rebalance::MigrationDirective { from: 0, to: 0 }]
            }
        }
        let mut sim = fleet(2, 1, Box::new(RoundRobin::new()));
        sim.set_rebalancer(Box::new(SelfLoop));
        assert_eq!(
            sim.run().unwrap_err(),
            FleetError::InvalidMigration {
                from: 0,
                to: 0,
                nodes: 2
            }
        );
    }

    #[test]
    fn finished_sessions_publish_to_the_attached_store() {
        use crate::knowledge::{KnowledgeStore, MergePolicy};
        let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
        let mut sim = fleet(2, 2, Box::new(RoundRobin::new()));
        sim.set_knowledge_store(std::sync::Arc::clone(&store));
        let summary = sim.run().unwrap();
        let store = store.lock().unwrap();
        assert_eq!(
            store.publishes(),
            summary.total_sessions,
            "every finished session publishes exactly once"
        );
        assert_eq!(summary.warm_starts, 0, "no warm-start factory attached");
    }

    #[test]
    fn migrated_sessions_still_publish_exactly_once() {
        use crate::knowledge::{KnowledgeStore, MergePolicy};
        use crate::rebalance::UtilizationBalance;
        let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
        let mut sim = fleet(2, 2, Box::new(RoundRobin::new()));
        sim.set_knowledge_store(std::sync::Arc::clone(&store));
        sim.set_rebalancer(Box::new(UtilizationBalance::new().with_min_gap(0.05)));
        let summary = sim.run().unwrap();
        assert!(summary.migrations > 0, "rebalancer never moved a session");
        assert_eq!(
            store.lock().unwrap().publishes(),
            summary.total_sessions,
            "a migrated session must publish once at finish, not per hop"
        );
    }

    fn burst_request(id: u64, arrival_s: f64, hr: bool, frames: u64) -> SessionRequest {
        SessionRequest {
            id,
            arrival_s,
            hr,
            live: false,
            frames,
            seed: id,
        }
    }

    /// Quiet start, an HR burst from t = 5 s, then a long two-stream
    /// tail — the shape an elastic pool exists for. One burst stream is
    /// much longer than the rest so the tail has a busy node and a
    /// near-idle one, which is what forces a drain on shrink.
    fn bursty_workload() -> Workload {
        let mut arrivals = vec![
            burst_request(0, 0.0, false, 150),
            burst_request(1, 0.5, false, 1_500),
        ];
        arrivals.push(burst_request(2, 5.0, true, 1_200));
        for i in 0..7 {
            arrivals.push(burst_request(3 + i, 5.4 + 0.4 * i as f64, true, 300));
        }
        // Late LR stragglers: by now the first LR session has finished
        // and published, so nodes commissioned during the burst can
        // warm-start these from the store.
        arrivals.push(burst_request(10, 8.3, false, 200));
        arrivals.push(burst_request(11, 9.1, false, 200));
        Workload::replay(arrivals)
    }

    fn provisioner() -> crate::sim::NodeProvisioner {
        Box::new(|| {
            (
                Platform::xeon_e5_2667_v4(),
                Box::new(|req: &SessionRequest| {
                    let threads = if req.hr { 10 } else { 4 };
                    Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
                        as Box<dyn mamut_core::Controller>
                }),
            )
        })
    }

    fn elastic_fleet(workers: usize) -> FleetSim {
        use crate::autoscale::ThresholdScaler;
        let mut sim = FleetSim::new(
            FleetConfig::default().with_worker_threads(workers),
            Box::new(LeastLoaded::new()),
            bursty_workload(),
        );
        sim.add_node(fixed_factory());
        sim.set_autoscaler(
            Box::new(
                ThresholdScaler::new()
                    .with_limits(1, 4)
                    .with_cooldown(1)
                    .with_watermarks(0.45, 0.8),
            ),
            provisioner(),
        );
        // Autoscaling rides on migration: without a rebalancer a burst
        // that already landed would pile up on the old pool while the
        // commissioned nodes idle.
        sim.set_rebalancer(Box::new(
            crate::rebalance::PowerQosBalance::new()
                .with_min_gap(0.3)
                .with_max_moves(2),
        ));
        sim
    }

    #[test]
    fn autoscaler_grows_through_the_burst_and_retires_after() {
        let mut sim = elastic_fleet(2);
        let summary = sim.run().unwrap();
        let arrivals = bursty_workload().len() as u64;
        assert_eq!(summary.total_sessions, arrivals, "every arrival served");
        assert_eq!(summary.rejected_sessions, 0);
        assert!(summary.scale_ups > 0, "burst must grow the pool");
        assert!(summary.scale_downs > 0, "quiet tail must shrink it");
        assert!(summary.peak_nodes > 1);
        assert!(
            summary.pool_timeline.len() > 2,
            "pool changed size over the run: {:?}",
            summary.pool_timeline
        );
        // The elastic pool must be cheaper than powering the peak pool
        // for the whole run.
        assert!(
            summary.node_epochs < summary.epochs * summary.peak_nodes as u64,
            "{} node-epochs vs {} epochs × {} peak",
            summary.node_epochs,
            summary.epochs,
            summary.peak_nodes
        );
        // Retired nodes are flagged in the per-node rows, and commissioned
        // nodes actually served sessions.
        assert!(summary.nodes.iter().any(|n| n.retired));
        assert!(summary.nodes.len() > 1);
        assert!(
            summary.nodes[1..].iter().any(|n| n.sessions > 0),
            "a commissioned node took arrivals"
        );
        // Nothing was lost in the moves: cluster frames cover every
        // session's full length.
        let expected_frames: u64 = bursty_workload().arrivals().iter().map(|r| r.frames).sum();
        assert_eq!(summary.total_frames, expected_frames);
        assert!(sim.nodes().iter().all(FleetNode::all_finished));
    }

    #[test]
    fn autoscaling_is_deterministic_across_worker_counts() {
        let run = |workers: usize| elastic_fleet(workers).run().unwrap().to_string();
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    /// Shrinks relentlessly once sessions are in flight — exercises the
    /// drain-before-decommission path and the one-active-node floor.
    struct ShrinkAfter(u64);
    impl crate::autoscale::Autoscaler for ShrinkAfter {
        fn name(&self) -> &'static str {
            "shrink-after"
        }
        fn plan(
            &mut self,
            signals: &crate::autoscale::ScaleSignals,
        ) -> crate::autoscale::ScaleDecision {
            if signals.epoch >= self.0 {
                crate::autoscale::ScaleDecision::Shrink(5)
            } else {
                crate::autoscale::ScaleDecision::Hold
            }
        }
    }

    #[test]
    fn shrink_drains_live_sessions_and_never_empties_the_pool() {
        let run = |shrink: bool| {
            let mut sim = fleet(3, 2, Box::new(LeastLoaded::new()));
            if shrink {
                // By epoch 3 every node holds live sessions, so retiring
                // two nodes must migrate real work to the survivor.
                sim.set_autoscaler(Box::new(ShrinkAfter(3)), provisioner());
            }
            sim.run().unwrap()
        };
        let fixed = run(false);
        let summary = run(true);
        assert_eq!(summary.scale_downs, 2, "two of three nodes retired");
        assert!(
            summary.drained_sessions > 0,
            "retiring loaded nodes must drain their sessions: {summary}"
        );
        assert_eq!(summary.total_sessions, 8, "the survivor served everything");
        assert_eq!(
            summary.pool_timeline.last().map(|&(_, s)| s),
            Some(1),
            "exactly one active node remains: {:?}",
            summary.pool_timeline
        );
        // Drains move sessions, they never lose them: cluster-wide frame
        // totals match the fixed pool serving the same workload.
        assert_eq!(summary.total_frames, fixed.total_frames);
        assert!(
            summary.node_epochs < fixed.node_epochs,
            "retiring nodes must stop burning node-epochs: {} vs {}",
            summary.node_epochs,
            fixed.node_epochs
        );
    }

    #[test]
    fn runaway_grow_is_clamped_to_the_pool_ceiling() {
        struct AlwaysGrow;
        impl crate::autoscale::Autoscaler for AlwaysGrow {
            fn name(&self) -> &'static str {
                "always-grow"
            }
            fn plan(
                &mut self,
                _signals: &crate::autoscale::ScaleSignals,
            ) -> crate::autoscale::ScaleDecision {
                crate::autoscale::ScaleDecision::Grow(10_000)
            }
        }
        let mut sim = FleetSim::new(
            FleetConfig {
                max_pool_nodes: 5,
                ..FleetConfig::default().with_worker_threads(2)
            },
            Box::new(LeastLoaded::new()),
            small_workload(11),
        );
        sim.add_node(fixed_factory());
        sim.set_autoscaler(Box::new(AlwaysGrow), provisioner());
        let summary = sim.run().unwrap();
        assert_eq!(sim.node_count(), 5, "growth stops at max_pool_nodes");
        assert_eq!(summary.scale_ups, 4);
        assert_eq!(summary.total_sessions, 8);
    }

    #[test]
    fn commissioned_nodes_warm_start_when_a_store_is_attached() {
        use crate::knowledge::{KnowledgeStore, MergePolicy};
        let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
        let mut sim = elastic_fleet(2);
        sim.set_knowledge_store(std::sync::Arc::clone(&store));
        let summary = sim.run().unwrap();
        assert!(summary.scale_ups > 0);
        // Sessions finished before the burst published; sessions built on
        // commissioned nodes were seeded from the store (the fleet wraps
        // the provisioner's factory itself).
        assert!(
            summary.warm_starts > 0,
            "commissioned nodes must seed from the store: {summary}"
        );
        assert_eq!(store.lock().unwrap().publishes(), summary.total_sessions);
    }

    #[test]
    fn idle_fast_path_is_byte_identical_to_the_slow_path() {
        // The elastic fleet exercises every wake point: dispatch admits
        // onto parked nodes, the rebalancer attaches to them, shrink
        // drains through them, and settle replays the stragglers.
        let run = |fast: bool| {
            let mut sim = elastic_fleet(2);
            sim.config.idle_fast_path = fast;
            sim.run().unwrap().to_string()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn step_driven_run_parks_idle_nodes_and_matches_run() {
        // Four round-robin nodes, staggered finishes: early finishers
        // must end up in the dormant set mid-run, and the step-by-step
        // drive must reproduce `run()` exactly.
        let mut sim = fleet(4, 1, Box::new(RoundRobin::new()));
        sim.begin_run().unwrap();
        let mut ever_dormant = 0usize;
        loop {
            sim.step_epoch().unwrap();
            ever_dormant = ever_dormant.max(sim.dormant.len());
            if sim.is_drained() {
                break;
            }
        }
        let stepped = sim.finish_run().unwrap();
        assert!(ever_dormant > 0, "early finishers were never parked");
        let whole = fleet(4, 1, Box::new(RoundRobin::new())).run().unwrap();
        assert_eq!(stepped, whole);
    }

    use crate::fault::{CheckpointPolicy, FaultPlan};

    /// An autoscaler that never scales — installed in chaos tests only
    /// to provide the provisioner that crash replacement draws from.
    struct HoldScaler;
    impl crate::autoscale::Autoscaler for HoldScaler {
        fn name(&self) -> &'static str {
            "hold"
        }
        fn plan(
            &mut self,
            _signals: &crate::autoscale::ScaleSignals,
        ) -> crate::autoscale::ScaleDecision {
            crate::autoscale::ScaleDecision::Hold
        }
    }

    fn chaos_fleet(workers: usize) -> FleetSim {
        let mut sim = FleetSim::new(
            FleetConfig::default().with_worker_threads(workers),
            Box::new(LeastLoaded::new()),
            bursty_workload(),
        );
        for _ in 0..3 {
            sim.add_node(fixed_factory());
        }
        sim
    }

    #[test]
    fn checkpointed_fault_free_run_is_byte_identical() {
        let plain = chaos_fleet(2).run().unwrap();
        let mut sim = chaos_fleet(2);
        sim.set_checkpoint_policy(CheckpointPolicy::every(2));
        let checkpointed = sim.run().unwrap();
        assert!(checkpointed.checkpoints > 0, "the cadence never fired");
        assert!(sim.latest_checkpoint().is_some());
        // Capture is pure observation: same results, same rendering.
        assert_eq!(checkpointed.to_string(), plain.to_string());
        assert_eq!(checkpointed.total_frames, plain.total_frames);
    }

    #[test]
    fn crash_recovery_conserves_every_frame() {
        let expected_frames: u64 = bursty_workload().arrivals().iter().map(|r| r.frames).sum();
        let mut sim = chaos_fleet(2);
        sim.set_checkpoint_policy(CheckpointPolicy::every(2));
        sim.set_fault_plan(FaultPlan::new().with_crash(3, 0));
        let summary = sim.run().unwrap();
        assert_eq!(summary.crashes, 1);
        assert!(
            summary.sessions_recovered > 0,
            "the crashed node held live sessions: {summary}"
        );
        assert_eq!(summary.frames_lost, 0);
        assert_eq!(
            summary.total_frames, expected_frames,
            "recovery re-does work, it never loses frames: {summary}"
        );
        assert!(
            summary.phase_marks.iter().any(|(_, l)| l == "crash:n0"),
            "crash mark missing: {:?}",
            summary.phase_marks
        );
        let text = summary.to_string();
        assert!(text.contains("faults: 1 crashes"), "{text}");
        assert!(text.contains("[crash:n0@e3]"), "{text}");
    }

    #[test]
    fn cold_restart_without_checkpoints_redoes_whole_sessions() {
        let expected_frames: u64 = bursty_workload().arrivals().iter().map(|r| r.frames).sum();
        let mut sim = chaos_fleet(2);
        sim.set_fault_plan(FaultPlan::new().with_crash(3, 0));
        let summary = sim.run().unwrap();
        assert_eq!(summary.crashes, 1);
        assert!(summary.sessions_recovered > 0);
        assert_eq!(summary.total_frames, expected_frames);
        // Without a checkpoint every lost frame is re-done from scratch.
        assert!(
            summary.frames_redone > 0,
            "a crash at epoch 3 lost in-progress work: {summary}"
        );
    }

    #[test]
    fn checkpoints_bound_the_redone_work() {
        let run = |checkpointed: bool| {
            let mut sim = chaos_fleet(2);
            if checkpointed {
                sim.set_checkpoint_policy(CheckpointPolicy::every(2));
            }
            sim.set_fault_plan(FaultPlan::new().with_crash(5, 0));
            sim.run().unwrap()
        };
        let cold = run(false);
        let warm = run(true);
        assert!(
            warm.frames_redone < cold.frames_redone,
            "a checkpoint 1 epoch before the crash must beat restart-from-zero: \
             {} redone vs {} cold",
            warm.frames_redone,
            cold.frames_redone
        );
        assert_eq!(warm.total_frames, cold.total_frames);
    }

    #[test]
    fn thermal_throttle_caps_a_node_then_lifts() {
        let expected_frames: u64 = bursty_workload().arrivals().iter().map(|r| r.frames).sum();
        let quiet = chaos_fleet(2).run().unwrap();
        let mut sim = chaos_fleet(2);
        sim.set_fault_plan(FaultPlan::new().with_throttle(2, 0, 1.8, 3));
        let summary = sim.run().unwrap();
        assert_eq!(summary.throttles, 1);
        assert_eq!(summary.crashes, 0);
        assert_eq!(
            summary.total_frames, expected_frames,
            "throttling loses nothing"
        );
        assert!(
            summary.total_energy_j != quiet.total_energy_j || summary.epochs != quiet.epochs,
            "a 1.8 GHz cap on a 2.9 GHz node must be visible somewhere"
        );
        let text = summary.to_string();
        assert!(text.contains("[throttle:n0@e2]"), "{text}");
    }

    #[test]
    fn crashed_nodes_are_replaced_after_the_delay() {
        let mut sim = chaos_fleet(2);
        sim.set_autoscaler(Box::new(HoldScaler), provisioner());
        sim.set_checkpoint_policy(CheckpointPolicy::every(2));
        sim.set_fault_plan(FaultPlan::new().with_crash(3, 0).with_replacement_delay(2));
        let summary = sim.run().unwrap();
        assert_eq!(summary.crashes, 1);
        assert_eq!(summary.recoveries, 1);
        assert!((summary.mean_mttr_epochs - 2.0).abs() < 1e-12, "{summary}");
        assert_eq!(summary.down_node_epochs, 2, "missing for exactly the delay");
        assert!(summary.availability_percent < 100.0);
        assert_eq!(summary.nodes.len(), 4, "a replacement joined the pool");
        assert!(
            summary.phase_marks.iter().any(|(_, l)| l == "recovered:n3"),
            "{:?}",
            summary.phase_marks
        );
        let text = summary.to_string();
        assert!(text.contains("[recovered:n3@e5]"), "{text}");
        assert!(text.contains("resilience:"), "{text}");
    }

    #[test]
    fn degraded_pool_sheds_new_arrivals() {
        let arrivals = vec![
            burst_request(0, 0.0, false, 800),
            burst_request(1, 0.2, false, 800),
            burst_request(2, 5.0, false, 100),
            burst_request(3, 6.0, false, 100),
        ];
        let mut sim = FleetSim::new(
            FleetConfig::default().with_worker_threads(2),
            Box::new(LeastLoaded::new()),
            Workload::replay(arrivals),
        );
        for _ in 0..2 {
            sim.add_node(fixed_factory());
        }
        // No provisioner: the crashed node is never replaced, so the
        // pool sits at 1 < 0.9 × 2 until the end — the late arrivals
        // must be shed, not queued into a backlog.
        sim.set_fault_plan(
            FaultPlan::new()
                .with_crash(2, 0)
                .with_degrade_watermark(0.9),
        );
        let summary = sim.run().unwrap();
        assert_eq!(summary.crashes, 1);
        assert_eq!(summary.shed_sessions, 2, "{summary}");
        assert_eq!(summary.rejected_sessions, 2);
        assert_eq!(summary.total_sessions, 2, "recovery is not an admission");
        assert_eq!(
            summary.total_frames, 1_600,
            "the early sessions finish in full"
        );
        let text = summary.to_string();
        assert!(text.contains("2 shed"), "{text}");
    }

    #[test]
    fn the_last_active_node_never_crashes() {
        let mut sim = fleet(1, 1, Box::new(LeastLoaded::new()));
        sim.set_fault_plan(FaultPlan::new().with_crash(1, 0));
        let summary = sim.run().unwrap();
        assert_eq!(summary.crashes, 0, "the floor holds: {summary}");
        assert_eq!(summary.frames_lost, 0);
        assert_eq!(summary.total_sessions, 8);
    }

    #[test]
    fn chaos_runs_are_deterministic_across_worker_counts() {
        let run = |workers: usize| {
            let mut sim = chaos_fleet(workers);
            sim.set_autoscaler(Box::new(HoldScaler), provisioner());
            sim.set_checkpoint_policy(CheckpointPolicy::every(2));
            sim.set_fault_plan(
                FaultPlan::new()
                    .with_crash(3, 0)
                    .with_throttle(4, 2, 1.8, 3)
                    .with_crash(6, 1),
            );
            sim.run().unwrap().to_string()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn nodes_idle_along_with_their_busy_peers() {
        // One node serves everything; the other must still account idle
        // time for the full duration.
        let mut sim = fleet(2, 2, Box::new(RoundRobin::new()));
        let summary = sim.run().unwrap();
        let duration = summary.duration_s;
        for run in &summary.node_runs {
            assert!((run.duration_s - duration).abs() < 1e-9);
        }
    }
}
