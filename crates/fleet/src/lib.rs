//! Multi-node fleet simulation for MAMUT: session churn, dispatch
//! policies, and parallel node execution.
//!
//! The paper evaluates one dual-Xeon server; serving "heavy traffic from
//! millions of users" is a *fleet* problem — many such servers behind a
//! dispatcher, with users joining and leaving continuously (the framing
//! of the KaaS follow-up to MAMUT and of Fu & van der Schaar's
//! multi-user QoS work). This crate composes the single-server pieces
//! into that layer:
//!
//! * [`Workload`] — seeded session-churn generator (Poisson-like
//!   arrivals, HR/LR mix, live vs. VOD duration profiles) plus replay of
//!   explicit arrival traces;
//! * [`Dispatcher`] — placement policies: [`RoundRobin`],
//!   [`LeastLoaded`], [`PowerAware`], and [`AdmissionGated`] (which
//!   reuses the single-server admission planner to refuse or queue
//!   sessions a node cannot fit);
//! * [`FleetSim`] — the epoch loop: dispatch at boundaries, advance all
//!   nodes **in parallel across OS threads** (nodes are independent
//!   within an epoch, so results are identical for any worker count),
//!   with per-node controller factories so MAMUT, mono-agent and
//!   heuristic nodes can be mixed in one cluster;
//! * [`Autoscaler`] — elastic pool sizing: [`ThresholdScaler`]
//!   (utilization/QoS watermarks with hysteresis and cooldown),
//!   [`PredictiveScaler`] (EWMA of the arrival rate through Little's
//!   law) and [`ForecastScaler`] (any [`Forecaster`] — seasonal-naive
//!   or Holt-Winters — provisioning ahead of predicted load) grow and
//!   shrink the pool per epoch; shrinking drains live sessions to
//!   peers before a node is decommissioned, growing commissions
//!   clock-aligned nodes that warm-start from the knowledge store;
//! * [`FleetSummary`] — per-node and cluster-wide ∆, power, energy,
//!   rejected/queued counts, autoscale events, the pool-size timeline
//!   and a utilization histogram, built on `mamut_metrics::fleet`;
//! * [`ShardedFleetSim`] — regions/cells of nodes, each a full
//!   `FleetSim` with its own autoscaler, rebalancer and knowledge-store
//!   shard, driven in lockstep with periodic inter-shard knowledge sync
//!   and cross-shard session overflow — the 1k–10k-node scale-out
//!   topology (see `docs/ARCHITECTURE.md`);
//! * [`FaultPlan`] / [`CheckpointPolicy`] — deterministic fault
//!   injection (crashes, thermal throttles, sync loss, shard
//!   partitions) with periodic bit-exact session checkpoints: a crashed
//!   node's sessions are recovered onto survivors from the last
//!   [`CheckpointBundle`], re-done work is accounted (never silently
//!   lost), replacements warm-start from the knowledge store, and the
//!   summary reports availability and MTTR. Chaos runs stay
//!   byte-identical across worker counts;
//! * [`TelemetryMode`] / [`FleetTrace`] — deterministic structured
//!   event tracing: typed simulated-time events from dispatch decisions
//!   to crash recovery, a bounded flight-recorder mode that dumps
//!   automatically on typed errors, a canonical `MAMUTTL` binary codec,
//!   and Chrome `trace_event` / CSV exporters.
//!
//! # Example
//!
//! ```
//! use mamut_core::{FixedController, KnobSettings};
//! use mamut_fleet::{
//!     FleetConfig, FleetSim, LeastLoaded, Workload, WorkloadConfig,
//! };
//!
//! let workload = Workload::try_generate(&WorkloadConfig {
//!     sessions: 6,
//!     vod_frames: (24, 48),
//!     live_frames: (48, 96),
//!     ..WorkloadConfig::default()
//! })
//! .expect("valid workload config");
//! let mut fleet = FleetSim::new(
//!     FleetConfig::default(),
//!     Box::new(LeastLoaded::new()),
//!     workload,
//! );
//! for _ in 0..2 {
//!     fleet.add_node(Box::new(|req| {
//!         let threads = if req.hr { 10 } else { 4 };
//!         Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
//!     }));
//! }
//! let summary = fleet.run().unwrap();
//! assert_eq!(summary.total_sessions, 6);
//! println!("{summary}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoscale;
mod dispatch;
mod error;
mod fault;
mod forecast;
mod knowledge;
mod node;
mod rebalance;
mod shard;
mod sim;
mod summary;
mod telemetry;
mod workload;

pub use autoscale::{
    Autoscaler, ForecastScaler, PolicySource, PredictiveScaler, ScaleDecision, ScaleSignals,
    ThresholdScaler,
};
pub use dispatch::{
    AdmissionGated, DispatchDecision, Dispatcher, GateMode, LeastLoaded, NodeView, PowerAware,
    RoundRobin,
};
pub use error::FleetError;
pub use fault::{
    CheckpointBundle, CheckpointPolicy, FaultEvent, FaultPlan, NodeCheckpoint, SessionCheckpoint,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use forecast::{Forecaster, HoltWinters, SeasonalNaive, FORECAST_STATE_VERSION};
pub use knowledge::{
    warm_start_factory, ClassKnowledge, KnowledgeStore, MergePolicy, PublishOutcome, SessionClass,
    SharedKnowledgeStore, STORE_VERSION,
};
pub use node::{ControllerFactory, FleetNode, MigratedSession, NodeState};
pub use rebalance::{MigrationDirective, PowerQosBalance, Rebalancer, UtilizationBalance};
pub use shard::{ShardConfig, ShardedFleetSim, ShardedFleetSummary};
pub use sim::{FleetConfig, FleetSim, NodeProvisioner};
pub use summary::{FleetSummary, NodeFacts, NodeReport};
pub use telemetry::{
    FleetTrace, TelemetryEvent, TelemetryMode, TracedEvent, COORDINATOR_LANE, TRACE_MAGIC,
    TRACE_VERSION,
};
pub use workload::{SessionRequest, Workload, WorkloadConfig, WorkloadError};
