//! Fleet-level run report: per-node rows plus cluster-wide aggregates.

use mamut_metrics::fleet::FleetAggregate;
use mamut_metrics::{Align, Table, UtilizationHistogram};
use mamut_transcode::RunSummary;

/// One node's row in a [`FleetSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node id.
    pub node_id: usize,
    /// Sessions admitted over the run.
    pub sessions: u64,
    /// Frames completed.
    pub frames: u64,
    /// The node's ∆ (percentage of frames below target).
    pub violation_percent: f64,
    /// Lifetime mean power (W).
    pub mean_power_w: f64,
    /// Energy drawn (J).
    pub energy_j: f64,
    /// Mean thread-demand utilization over epochs.
    pub mean_utilization: f64,
}

/// Whole-fleet results: what `examples/fleet_churn.rs` prints and the
/// determinism tests compare byte-for-byte (the [`std::fmt::Display`]
/// rendering contains only virtual-time quantities — never wall-clock —
/// so it is identical across runs and worker-thread counts).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Dispatch policy that drove the run.
    pub policy: String,
    /// Epochs simulated.
    pub epochs: u64,
    /// Virtual duration (s).
    pub duration_s: f64,
    /// Per-node rows in id order.
    pub nodes: Vec<NodeReport>,
    /// Cluster-wide ∆, frames-weighted.
    pub cluster_violation_percent: f64,
    /// Mean node power (W).
    pub mean_power_w: f64,
    /// Total cluster energy (J).
    pub total_energy_j: f64,
    /// Frames completed across the cluster.
    pub total_frames: u64,
    /// Sessions admitted across the cluster.
    pub total_sessions: u64,
    /// Sessions the dispatcher rejected.
    pub rejected_sessions: u64,
    /// Session-epochs spent waiting in the pending queue.
    pub queued_waits: u64,
    /// Sessions migrated between nodes at epoch boundaries.
    pub migrations: u64,
    /// Sessions warm-started from the knowledge store instead of
    /// learning from scratch.
    pub warm_starts: u64,
    /// Node-epoch utilization histogram.
    pub utilization: UtilizationHistogram,
    /// Full per-node run summaries (not rendered; for drill-down).
    pub node_runs: Vec<RunSummary>,
}

impl FleetSummary {
    /// Assembles the report from the aggregate and per-node summaries.
    pub(crate) fn assemble(
        policy: String,
        epochs: u64,
        duration_s: f64,
        sessions_admitted: &[u64],
        aggregate: &FleetAggregate,
        node_runs: Vec<RunSummary>,
    ) -> FleetSummary {
        let nodes = aggregate
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| NodeReport {
                node_id: id,
                sessions: sessions_admitted.get(id).copied().unwrap_or(0),
                frames: n.frames,
                violation_percent: n.violation_percent(),
                mean_power_w: n.mean_power_w(),
                energy_j: n.energy_j,
                mean_utilization: n.utilization.mean(),
            })
            .collect();
        FleetSummary {
            policy,
            epochs,
            duration_s,
            nodes,
            cluster_violation_percent: aggregate.cluster_violation_percent(),
            mean_power_w: aggregate.mean_power_w(),
            total_energy_j: aggregate.total_energy_j(),
            total_frames: aggregate.total_frames(),
            total_sessions: sessions_admitted.iter().sum(),
            rejected_sessions: aggregate.rejected_sessions,
            queued_waits: aggregate.queued_waits,
            migrations: aggregate.migrations,
            warm_starts: aggregate.warm_starts,
            utilization: aggregate.utilization.clone(),
            node_runs,
        }
    }

    /// The per-node table rendered in [`std::fmt::Display`].
    pub fn node_table(&self) -> Table {
        let mut t = Table::new(vec![
            "node".into(),
            "sessions".into(),
            "frames".into(),
            "delta%".into(),
            "power W".into(),
            "energy J".into(),
            "util".into(),
        ]);
        t.set_alignments(vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for n in &self.nodes {
            t.add_row(vec![
                format!("n{}", n.node_id),
                n.sessions.to_string(),
                n.frames.to_string(),
                format!("{:.2}", n.violation_percent),
                format!("{:.1}", n.mean_power_w),
                format!("{:.0}", n.energy_j),
                format!("{:.2}", n.mean_utilization),
            ]);
        }
        t
    }
}

impl std::fmt::Display for FleetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FleetSummary [{}] — {} nodes, {} epochs, {:.1} s virtual",
            self.policy,
            self.nodes.len(),
            self.epochs,
            self.duration_s
        )?;
        write!(f, "{}", self.node_table().to_plain())?;
        writeln!(
            f,
            "cluster: delta {:.2}% | {} sessions ({} rejected, {} queued-waits, {} migrated, {} warm-started) | {} frames | {:.1} W mean | {:.0} J",
            self.cluster_violation_percent,
            self.total_sessions,
            self.rejected_sessions,
            self.queued_waits,
            self.migrations,
            self.warm_starts,
            self.total_frames,
            self.mean_power_w,
            self.total_energy_j
        )?;
        writeln!(f, "node-epoch utilization: {}", self.utilization.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_metrics::fleet::FleetAggregate;

    fn sample() -> FleetSummary {
        let mut agg = FleetAggregate::new(2);
        agg.record_node_epoch(0, 400, 40, 800.0, 10.0, 0.5);
        agg.record_node_epoch(1, 100, 0, 600.0, 10.0, 0.25);
        agg.record_rejection();
        FleetSummary::assemble("least-loaded".into(), 10, 10.0, &[3, 2], &agg, Vec::new())
    }

    #[test]
    fn assemble_computes_cluster_rows() {
        let s = sample();
        assert_eq!(s.nodes.len(), 2);
        assert_eq!(s.total_sessions, 5);
        assert_eq!(s.total_frames, 500);
        assert_eq!(s.rejected_sessions, 1);
        assert!((s.cluster_violation_percent - 8.0).abs() < 1e-12);
        assert!((s.mean_power_w - 70.0).abs() < 1e-12);
        assert!((s.nodes[0].violation_percent - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_policy_nodes_and_delta() {
        let text = sample().to_string();
        assert!(text.contains("least-loaded"));
        assert!(text.contains("n0"));
        assert!(text.contains("n1"));
        assert!(text.contains("delta 8.00%"));
        assert!(text.contains("1 rejected"));
    }

    #[test]
    fn display_is_reproducible() {
        assert_eq!(sample().to_string(), sample().to_string());
    }
}
