//! Fleet-level run report: per-node rows plus cluster-wide aggregates.

use mamut_metrics::fleet::FleetAggregate;
use mamut_metrics::{Align, Table, UtilizationHistogram};
use mamut_transcode::RunSummary;

/// Per-node lifetime facts the fleet hands to the summary assembly
/// alongside the metric aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeFacts {
    /// Sessions admitted over the node's lifetime.
    pub sessions: u64,
    /// Sessions received from peers via migration (rebalance or drain).
    pub migrated_in: u64,
    /// Sessions handed off to peers via migration (rebalance or drain).
    pub migrated_out: u64,
    /// Whether the autoscaler retired this node before the run ended.
    pub retired: bool,
}

/// One node's row in a [`FleetSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node id.
    pub node_id: usize,
    /// Sessions admitted over the run.
    pub sessions: u64,
    /// Sessions received from peers via migration.
    pub migrated_in: u64,
    /// Sessions handed off to peers via migration.
    pub migrated_out: u64,
    /// Whether the autoscaler retired this node before the run ended.
    pub retired: bool,
    /// Frames completed.
    pub frames: u64,
    /// The node's ∆ (percentage of frames below target).
    pub violation_percent: f64,
    /// Lifetime mean power (W).
    pub mean_power_w: f64,
    /// Energy drawn (J).
    pub energy_j: f64,
    /// Mean thread-demand utilization over epochs.
    pub mean_utilization: f64,
    /// p95 of the node's per-epoch QoS slack (1 − violation fraction;
    /// higher is better), from its bounded tail ledger. `None` until the
    /// node has processed a productive epoch.
    pub qos_slack_p95: Option<f64>,
    /// p99 of the node's per-epoch mean frame latency (ms), from its
    /// bounded tail ledger. `None` without a productive epoch.
    pub frame_latency_p99_ms: Option<f64>,
}

/// Whole-fleet results: what `examples/fleet_churn.rs` prints and the
/// determinism tests compare byte-for-byte (the [`std::fmt::Display`]
/// rendering contains only virtual-time quantities — never wall-clock —
/// so it is identical across runs and worker-thread counts).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Dispatch policy that drove the run.
    pub policy: String,
    /// Epochs simulated.
    pub epochs: u64,
    /// Virtual duration (s).
    pub duration_s: f64,
    /// Per-node rows in id order.
    pub nodes: Vec<NodeReport>,
    /// Cluster-wide ∆, frames-weighted.
    pub cluster_violation_percent: f64,
    /// Mean node power (W).
    pub mean_power_w: f64,
    /// Total cluster energy (J).
    pub total_energy_j: f64,
    /// Frames completed across the cluster.
    pub total_frames: u64,
    /// Sessions admitted across the cluster.
    pub total_sessions: u64,
    /// Sessions the dispatcher rejected.
    pub rejected_sessions: u64,
    /// Session-epochs spent waiting in the pending queue.
    pub queued_waits: u64,
    /// Sessions migrated between nodes at epoch boundaries.
    pub migrations: u64,
    /// Sessions warm-started from the knowledge store instead of
    /// learning from scratch.
    pub warm_starts: u64,
    /// Nodes the autoscaler commissioned mid-run.
    pub scale_ups: u64,
    /// Nodes the autoscaler drained and retired mid-run.
    pub scale_downs: u64,
    /// Live sessions migrated off draining nodes before decommission.
    pub drained_sessions: u64,
    /// Powered node-epochs over the run (`epochs × nodes` for a fixed
    /// pool; the elastic saving shows up here).
    pub node_epochs: u64,
    /// Largest active pool size over the run.
    pub peak_nodes: usize,
    /// Active-pool-size change points as `(epoch, size)`.
    pub pool_timeline: Vec<(u64, usize)>,
    /// Scenario phase boundaries as `(epoch, label)`, rendered inline in
    /// the pool-size timeline so autoscaler behavior is legible against
    /// the workload phase that drove it. Empty unless the run was driven
    /// by an annotated scenario (see
    /// [`FleetSim::set_phase_marks`](crate::FleetSim::set_phase_marks)).
    pub phase_marks: Vec<(u64, String)>,
    /// Node-epoch utilization histogram.
    pub utilization: UtilizationHistogram,
    /// Epoch decisions a learned fleet policy took greedily (argmax) —
    /// the fleet-layer analogue of per-session exploitation decisions.
    pub greedy_actions: u64,
    /// Epoch decisions a learned fleet policy took exploratorily
    /// (ε-greedy draws).
    pub exploratory_actions: u64,
    /// Epoch decisions planned by a hand-tuned (non-learned) policy.
    pub heuristic_decisions: u64,
    /// Scale events (grow or shrink) decided by a learned policy.
    pub learned_scale_events: u64,
    /// Scale events decided by a heuristic policy.
    pub heuristic_scale_events: u64,
    /// Injected fail-stop node crashes.
    pub crashes: u64,
    /// Thermal-throttle events applied to nodes.
    pub throttles: u64,
    /// Sessions re-created on survivors after crashes.
    pub sessions_recovered: u64,
    /// Frames re-transcoded because a crash discarded post-checkpoint
    /// work (a cold restart re-does the whole session). Lost work is
    /// accounted here, never silently dropped.
    pub frames_redone: u64,
    /// Frames lost with no survivor to re-do them on (zero in any
    /// healthy configuration).
    pub frames_lost: u64,
    /// Arrivals shed while the fleet ran degraded below its capacity
    /// watermark.
    pub shed_sessions: u64,
    /// Node-epochs spent waiting on crashed nodes' replacements.
    pub down_node_epochs: u64,
    /// Crashes whose replacement node entered service.
    pub recoveries: u64,
    /// Fleet checkpoints captured.
    pub checkpoints: u64,
    /// Availability: percentage of demanded node-epochs actually served.
    pub availability_percent: f64,
    /// Mean time to recovery in epochs (0.0 without a recovery).
    pub mean_mttr_epochs: f64,
    /// Cluster-wide p50 of per-node-epoch QoS slack (1 − violation
    /// fraction), from the bounded tail ledger. `None` before any
    /// productive node-epoch.
    pub qos_slack_p50: Option<f64>,
    /// Cluster-wide p95 of per-node-epoch QoS slack.
    pub qos_slack_p95: Option<f64>,
    /// Cluster-wide p99 of per-node-epoch QoS slack.
    pub qos_slack_p99: Option<f64>,
    /// Cluster-wide p95 of per-node-epoch mean frame latency (ms).
    pub frame_latency_p95_ms: Option<f64>,
    /// Cluster-wide p99 of per-node-epoch mean frame latency (ms).
    pub frame_latency_p99_ms: Option<f64>,
    /// Telemetry events recorded over the run (0 with tracing off —
    /// which also gates the summary's `telemetry:` line, keeping
    /// untraced renderings byte-identical to historical output).
    pub trace_events: u64,
    /// Full per-node run summaries (not rendered; for drill-down).
    pub node_runs: Vec<RunSummary>,
}

impl FleetSummary {
    /// Assembles the report from the aggregate and per-node summaries.
    pub(crate) fn assemble(
        policy: String,
        epochs: u64,
        duration_s: f64,
        node_facts: &[NodeFacts],
        aggregate: &FleetAggregate,
        phase_marks: Vec<(u64, String)>,
        node_runs: Vec<RunSummary>,
    ) -> FleetSummary {
        let nodes = aggregate
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| {
                let facts = node_facts.get(id).copied().unwrap_or_default();
                NodeReport {
                    node_id: id,
                    sessions: facts.sessions,
                    migrated_in: facts.migrated_in,
                    migrated_out: facts.migrated_out,
                    retired: facts.retired,
                    frames: n.frames,
                    violation_percent: n.violation_percent(),
                    mean_power_w: n.mean_power_w(),
                    energy_j: n.energy_j,
                    mean_utilization: n.utilization.mean(),
                    qos_slack_p95: n.tail.qos_slack_percentiles(&[95.0])[0],
                    frame_latency_p99_ms: n.tail.frame_latency_percentiles_ms(&[99.0])[0],
                }
            })
            .collect();
        let slack = aggregate.tail.qos_slack_percentiles(&[50.0, 95.0, 99.0]);
        let latency = aggregate.tail.frame_latency_percentiles_ms(&[95.0, 99.0]);
        FleetSummary {
            policy,
            epochs,
            duration_s,
            nodes,
            cluster_violation_percent: aggregate.cluster_violation_percent(),
            mean_power_w: aggregate.mean_power_w(),
            total_energy_j: aggregate.total_energy_j(),
            total_frames: aggregate.total_frames(),
            total_sessions: node_facts.iter().map(|f| f.sessions).sum(),
            rejected_sessions: aggregate.rejected_sessions,
            queued_waits: aggregate.queued_waits,
            migrations: aggregate.migrations,
            warm_starts: aggregate.warm_starts,
            scale_ups: aggregate.scale_ups,
            scale_downs: aggregate.scale_downs,
            drained_sessions: aggregate.drained_sessions,
            node_epochs: aggregate.node_epochs,
            peak_nodes: aggregate.peak_nodes(),
            pool_timeline: aggregate.pool_timeline.clone(),
            phase_marks,
            utilization: aggregate.utilization.clone(),
            greedy_actions: aggregate.greedy_actions,
            exploratory_actions: aggregate.exploratory_actions,
            heuristic_decisions: aggregate.heuristic_decisions,
            learned_scale_events: aggregate.learned_scale_events,
            heuristic_scale_events: aggregate.heuristic_scale_events,
            crashes: aggregate.crashes,
            throttles: aggregate.throttles,
            sessions_recovered: aggregate.sessions_recovered,
            frames_redone: aggregate.frames_redone,
            frames_lost: aggregate.frames_lost,
            shed_sessions: aggregate.shed_sessions,
            down_node_epochs: aggregate.down_node_epochs,
            recoveries: aggregate.recoveries,
            checkpoints: aggregate.checkpoints,
            availability_percent: aggregate.availability_percent(),
            mean_mttr_epochs: aggregate.mean_mttr_epochs(),
            qos_slack_p50: slack[0],
            qos_slack_p95: slack[1],
            qos_slack_p99: slack[2],
            frame_latency_p95_ms: latency[0],
            frame_latency_p99_ms: latency[1],
            trace_events: 0,
            node_runs,
        }
    }

    /// The per-node table rendered in [`std::fmt::Display`]. Retired
    /// nodes carry a `†` marker; the migration columns count sessions
    /// received from (`mig+`) and handed to (`mig-`) peers, whether by
    /// rebalancing or by drain-before-decommission. The tail columns
    /// (`slack p95`, `lat p99 ms`) render `-` for a node that never had
    /// a productive epoch.
    pub fn node_table(&self) -> Table {
        let mut t = Table::new(vec![
            "node".into(),
            "sessions".into(),
            "mig+".into(),
            "mig-".into(),
            "frames".into(),
            "delta%".into(),
            "power W".into(),
            "energy J".into(),
            "util".into(),
            "slack p95".into(),
            "lat p99 ms".into(),
        ]);
        t.set_alignments(vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for n in &self.nodes {
            let marker = if n.retired { "†" } else { "" };
            t.add_row(vec![
                format!("n{}{}", n.node_id, marker),
                n.sessions.to_string(),
                n.migrated_in.to_string(),
                n.migrated_out.to_string(),
                n.frames.to_string(),
                format!("{:.2}", n.violation_percent),
                format!("{:.1}", n.mean_power_w),
                format!("{:.0}", n.energy_j),
                format!("{:.2}", n.mean_utilization),
                n.qos_slack_p95
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "-".to_owned()),
                n.frame_latency_p99_ms
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".to_owned()),
            ]);
        }
        t
    }

    /// Compact `epoch:size` rendering of the pool-size timeline, with
    /// any scenario phase boundaries interleaved as `[label@e<epoch>]`
    /// markers (a mark sorts before pool samples at the same epoch, so
    /// a phase reads as annotating the sizes that follow it).
    pub fn render_pool_timeline(&self) -> String {
        if self.pool_timeline.is_empty() && self.phase_marks.is_empty() {
            return "(no samples)".to_owned();
        }
        let mut parts = Vec::with_capacity(self.pool_timeline.len() + self.phase_marks.len());
        let mut samples = self.pool_timeline.iter().peekable();
        for (epoch, label) in &self.phase_marks {
            while let Some(&&(e, size)) = samples.peek() {
                if e >= *epoch {
                    break;
                }
                parts.push(format!("e{e}:{size}"));
                samples.next();
            }
            parts.push(format!("[{label}@e{epoch}]"));
        }
        for &(e, size) in samples {
            parts.push(format!("e{e}:{size}"));
        }
        parts.join(" ")
    }
}

impl std::fmt::Display for FleetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FleetSummary [{}] — {} nodes, {} epochs, {:.1} s virtual",
            self.policy,
            self.nodes.len(),
            self.epochs,
            self.duration_s
        )?;
        write!(f, "{}", self.node_table().to_plain())?;
        writeln!(
            f,
            "cluster: delta {:.2}% | {} sessions ({} rejected, {} queued-waits, {} migrated, {} warm-started) | {} frames | {:.1} W mean | {:.0} J",
            self.cluster_violation_percent,
            self.total_sessions,
            self.rejected_sessions,
            self.queued_waits,
            self.migrations,
            self.warm_starts,
            self.total_frames,
            self.mean_power_w,
            self.total_energy_j
        )?;
        writeln!(
            f,
            "pool: {} peak node(s) | {} node-epochs | {} scale-ups | {} scale-downs | {} drained",
            self.peak_nodes,
            self.node_epochs,
            self.scale_ups,
            self.scale_downs,
            self.drained_sessions
        )?;
        // Only learned-policy runs render the policy line: heuristic
        // runs keep their historical byte-for-byte output.
        if self.greedy_actions + self.exploratory_actions > 0 {
            writeln!(
                f,
                "policy: {} greedy / {} exploratory decisions | scale events: {} learned, {} heuristic",
                self.greedy_actions,
                self.exploratory_actions,
                self.learned_scale_events,
                self.heuristic_scale_events
            )?;
        }
        // Fault block: only chaos runs render it, so fault-free runs keep
        // their historical byte-for-byte output (the checkpoint count
        // rides inside the block rather than gating it — a checkpointed
        // but fault-free run also stays untouched).
        if self.crashes + self.throttles + self.shed_sessions > 0 {
            writeln!(
                f,
                "faults: {} crashes | {} throttled | {} recovered ({} frames redone, {} lost) | {} shed | {} checkpoints",
                self.crashes,
                self.throttles,
                self.sessions_recovered,
                self.frames_redone,
                self.frames_lost,
                self.shed_sessions,
                self.checkpoints
            )?;
            writeln!(
                f,
                "resilience: {:.2}% availability | {} down node-epochs | MTTR {:.1} epochs over {} recoveries",
                self.availability_percent,
                self.down_node_epochs,
                self.mean_mttr_epochs,
                self.recoveries
            )?;
        }
        // Telemetry block: only traced runs render it, so tracing-off
        // runs keep their historical byte-for-byte output.
        if self.trace_events > 0 {
            let pct = |v: Option<f64>, digits: usize| {
                v.map(|x| format!("{x:.digits$}"))
                    .unwrap_or_else(|| "-".to_owned())
            };
            writeln!(
                f,
                "telemetry: {} events | qos-slack p50/p95/p99 {}/{}/{} | frame-lat p95/p99 {}/{} ms",
                self.trace_events,
                pct(self.qos_slack_p50, 3),
                pct(self.qos_slack_p95, 3),
                pct(self.qos_slack_p99, 3),
                pct(self.frame_latency_p95_ms, 1),
                pct(self.frame_latency_p99_ms, 1)
            )?;
        }
        if self.pool_timeline.len() > 1 || !self.phase_marks.is_empty() {
            writeln!(f, "pool-size timeline: {}", self.render_pool_timeline())?;
        }
        writeln!(f, "node-epoch utilization: {}", self.utilization.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_metrics::fleet::FleetAggregate;

    fn facts(sessions: u64) -> NodeFacts {
        NodeFacts {
            sessions,
            ..NodeFacts::default()
        }
    }

    fn sample() -> FleetSummary {
        let mut agg = FleetAggregate::new(2);
        agg.record_node_epoch(0, 400, 40, 800.0, 10.0, 0.5);
        agg.record_node_epoch(1, 100, 0, 600.0, 10.0, 0.25);
        agg.record_rejection();
        agg.record_pool_size(0, 2);
        FleetSummary::assemble(
            "least-loaded".into(),
            10,
            10.0,
            &[facts(3), facts(2)],
            &agg,
            Vec::new(),
            Vec::new(),
        )
    }

    fn elastic_sample() -> FleetSummary {
        let mut agg = FleetAggregate::new(1);
        agg.record_node_epoch(0, 400, 40, 800.0, 10.0, 0.5);
        agg.ensure_nodes(2);
        agg.record_node_epoch(1, 100, 0, 600.0, 10.0, 0.25);
        agg.record_pool_size(0, 1);
        agg.record_pool_size(3, 2);
        agg.record_pool_size(8, 1);
        agg.record_scale_up();
        agg.record_scale_down();
        agg.record_drained_session();
        agg.record_drained_session();
        agg.record_migration();
        let node0 = NodeFacts {
            sessions: 3,
            migrated_in: 0,
            migrated_out: 2,
            retired: true,
        };
        let node1 = NodeFacts {
            sessions: 1,
            migrated_in: 2,
            migrated_out: 0,
            retired: false,
        };
        FleetSummary::assemble(
            "least-loaded".into(),
            10,
            10.0,
            &[node0, node1],
            &agg,
            Vec::new(),
            Vec::new(),
        )
    }

    #[test]
    fn assemble_computes_cluster_rows() {
        let s = sample();
        assert_eq!(s.nodes.len(), 2);
        assert_eq!(s.total_sessions, 5);
        assert_eq!(s.total_frames, 500);
        assert_eq!(s.rejected_sessions, 1);
        assert!((s.cluster_violation_percent - 8.0).abs() < 1e-12);
        assert!((s.mean_power_w - 70.0).abs() < 1e-12);
        assert!((s.nodes[0].violation_percent - 10.0).abs() < 1e-12);
        assert_eq!(s.node_epochs, 2);
        assert_eq!(s.peak_nodes, 2);
        assert_eq!(s.pool_timeline, vec![(0, 2)]);
    }

    #[test]
    fn assemble_carries_autoscale_and_migration_facts() {
        let s = elastic_sample();
        assert_eq!(s.scale_ups, 1);
        assert_eq!(s.scale_downs, 1);
        assert_eq!(s.drained_sessions, 2);
        assert_eq!(s.migrations, 1);
        assert_eq!(s.peak_nodes, 2);
        assert!(s.nodes[0].retired);
        assert_eq!(s.nodes[0].migrated_out, 2);
        assert_eq!(s.nodes[1].migrated_in, 2);
        assert!(!s.nodes[1].retired);
    }

    #[test]
    fn display_mentions_policy_nodes_and_delta() {
        let text = sample().to_string();
        assert!(text.contains("least-loaded"));
        assert!(text.contains("n0"));
        assert!(text.contains("n1"));
        assert!(text.contains("delta 8.00%"));
        assert!(text.contains("1 rejected"));
    }

    #[test]
    fn display_renders_every_counter() {
        // Satellite of PR 3: migration, warm-start and autoscale
        // counters must all be visible in the rendered summary, not just
        // in the struct.
        let text = elastic_sample().to_string();
        assert!(text.contains("1 migrated"), "{text}");
        assert!(text.contains("warm-started"), "{text}");
        assert!(text.contains("1 scale-ups"), "{text}");
        assert!(text.contains("1 scale-downs"), "{text}");
        assert!(text.contains("2 drained"), "{text}");
        assert!(text.contains("2 node-epochs"), "{text}");
        assert!(text.contains("2 peak node(s)"), "{text}");
        assert!(
            text.contains("pool-size timeline: e0:1 e3:2 e8:1"),
            "{text}"
        );
        assert!(text.contains("n0†"), "retired marker missing: {text}");
        // Per-node migration columns are rendered.
        assert!(text.contains("mig+"), "{text}");
        assert!(text.contains("mig-"), "{text}");
    }

    #[test]
    fn policy_counters_render_only_for_learned_runs() {
        // Heuristic runs (even with heuristic decisions recorded) keep
        // their historical rendering…
        let mut agg = FleetAggregate::new(1);
        agg.record_node_epoch(0, 100, 0, 100.0, 1.0, 0.5);
        agg.record_policy_decision(false, false, true);
        let heuristic = FleetSummary::assemble(
            "rl".into(),
            1,
            1.0,
            &[facts(1)],
            &agg,
            Vec::new(),
            Vec::new(),
        );
        assert_eq!(heuristic.heuristic_decisions, 1);
        assert_eq!(heuristic.heuristic_scale_events, 1);
        assert!(!heuristic.to_string().contains("policy:"), "{heuristic}");
        // …while a learned run gets the greedy/exploratory split and the
        // scale-event attribution.
        agg.record_policy_decision(true, false, true);
        agg.record_policy_decision(true, true, false);
        agg.record_policy_decision(true, false, false);
        let learned = FleetSummary::assemble(
            "rl".into(),
            4,
            4.0,
            &[facts(1)],
            &agg,
            Vec::new(),
            Vec::new(),
        );
        assert_eq!(learned.greedy_actions, 2);
        assert_eq!(learned.exploratory_actions, 1);
        assert_eq!(learned.learned_scale_events, 1);
        let text = learned.to_string();
        assert!(
            text.contains("policy: 2 greedy / 1 exploratory decisions"),
            "{text}"
        );
        assert!(
            text.contains("scale events: 1 learned, 1 heuristic"),
            "{text}"
        );
    }

    #[test]
    fn fault_block_renders_only_for_chaos_runs() {
        // A fault-free run (even a checkpointed one) keeps its
        // historical rendering…
        let mut agg = FleetAggregate::new(2);
        agg.record_node_epoch(0, 400, 40, 800.0, 10.0, 0.5);
        agg.record_node_epoch(1, 100, 0, 600.0, 10.0, 0.25);
        agg.record_checkpoint();
        let quiet = FleetSummary::assemble(
            "least-loaded".into(),
            10,
            10.0,
            &[facts(3), facts(2)],
            &agg,
            Vec::new(),
            Vec::new(),
        );
        assert_eq!(quiet.checkpoints, 1);
        let text = quiet.to_string();
        assert!(!text.contains("faults:"), "{text}");
        assert!(!text.contains("resilience:"), "{text}");
        // …while a chaos run renders every fault counter.
        agg.record_crash();
        agg.record_throttle();
        agg.record_recovered_session(37);
        agg.record_shed_session();
        agg.record_down_node_epoch();
        agg.record_down_node_epoch();
        agg.record_recovery(2);
        let chaos = FleetSummary::assemble(
            "least-loaded".into(),
            10,
            10.0,
            &[facts(3), facts(2)],
            &agg,
            Vec::new(),
            Vec::new(),
        );
        assert_eq!(chaos.crashes, 1);
        assert_eq!(chaos.frames_redone, 37);
        assert!((chaos.availability_percent - 50.0).abs() < 1e-12);
        assert!((chaos.mean_mttr_epochs - 2.0).abs() < 1e-12);
        let text = chaos.to_string();
        assert!(
            text.contains(
                "faults: 1 crashes | 1 throttled | 1 recovered (37 frames redone, 0 lost) | 1 shed | 1 checkpoints"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "resilience: 50.00% availability | 2 down node-epochs | MTTR 2.0 epochs over 1 recoveries"
            ),
            "{text}"
        );
    }

    #[test]
    fn fixed_pool_display_skips_the_timeline_line() {
        let text = sample().to_string();
        assert!(text.contains("pool: 2 peak node(s)"), "{text}");
        assert!(!text.contains("pool-size timeline"), "{text}");
    }

    #[test]
    fn phase_marks_interleave_with_the_pool_timeline() {
        let mut s = elastic_sample();
        s.phase_marks = vec![
            (0, "diurnal".into()),
            (5, "flash-crowd".into()),
            (9, "tail".into()),
        ];
        assert_eq!(
            s.render_pool_timeline(),
            "[diurnal@e0] e0:1 e3:2 [flash-crowd@e5] e8:1 [tail@e9]"
        );
        let text = s.to_string();
        assert!(
            text.contains("[flash-crowd@e5]"),
            "marks missing from display: {text}"
        );
    }

    #[test]
    fn phase_marks_render_even_for_a_fixed_pool() {
        // A fixed pool normally skips the timeline line; an annotated
        // run must still show where its phases fell.
        let mut s = sample();
        s.phase_marks = vec![(2, "steady".into())];
        assert!(s
            .to_string()
            .contains("pool-size timeline: e0:2 [steady@e2]"));
    }

    #[test]
    fn display_is_reproducible() {
        assert_eq!(sample().to_string(), sample().to_string());
        assert_eq!(elastic_sample().to_string(), elastic_sample().to_string());
    }
}
