//! Sharded fleet coordination: regions/cells of nodes, each a full
//! [`FleetSim`] with its own dispatcher, autoscaler, rebalancer and
//! knowledge store, driven in lockstep by one [`ShardedFleetSim`].
//!
//! A single coordinator tops out well below the "millions of users"
//! target: one global rebalance/autoscale pass per epoch, every node
//! visited every epoch, one `Arc<Mutex>` knowledge store. Sharding
//! splits the fleet the way real deployments do — by region or cell —
//! so per-epoch coordination cost is per-shard, shard steps touch only
//! *active* nodes (the idle fast path parks finished ones), and the
//! expensive global operations become explicit, infrequent exchanges:
//!
//! * **knowledge sync** — every [`ShardConfig::sync_interval`] epochs
//!   the shard stores are folded into a fleet-wide store (the
//!   visit-weighted merge is associative, so the fold equals flat
//!   publishing) and every shard adopts the fold; publish counters stay
//!   local, so per-shard invariants survive any number of syncs;
//! * **session overflow** — after every lockstep epoch, if the busiest
//!   shard's mean utilization exceeds the high watermark while the
//!   idlest sits below the low one, a live session migrates across the
//!   shard boundary over the same `detach_session`/`attach_session`
//!   path rebalancers use inside a shard.
//!
//! Everything runs on the coordinating thread in shard-id order, so
//! the whole stack inherits the fleet's byte-identical determinism for
//! any worker count. A single-shard configuration is the degenerate
//! case: its summary is byte-for-byte what the wrapped [`FleetSim`]
//! would have produced on its own.

use std::sync::Arc;

use mamut_metrics::UtilizationHistogram;

use crate::error::FleetError;
use crate::fault::{FaultEvent, FaultPlan};
use crate::knowledge::KnowledgeStore;
use crate::sim::FleetSim;
use crate::summary::FleetSummary;
use crate::telemetry::{
    FleetTrace, TelemetryCollector, TelemetryEvent, TelemetryMode, COORDINATOR_LANE,
};

/// Coordination parameters for a sharded fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardConfig {
    /// Epochs between inter-shard knowledge syncs (0 disables syncing).
    /// Shards without a knowledge store neither contribute nor adopt.
    pub sync_interval: u64,
    /// Mean-utilization watermark above which a shard sheds load.
    pub overflow_high: f64,
    /// Mean-utilization watermark below which a shard accepts overflow.
    pub overflow_low: f64,
    /// Max sessions moved across shard boundaries per epoch (utilization
    /// is re-read after every move, so a burst drains gradually instead
    /// of thrashing).
    pub max_overflow_per_epoch: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            sync_interval: 8,
            overflow_high: 0.85,
            overflow_low: 0.5,
            max_overflow_per_epoch: 2,
        }
    }
}

impl ShardConfig {
    /// Overrides the knowledge-sync cadence (0 disables syncing).
    pub fn with_sync_interval(mut self, epochs: u64) -> Self {
        self.sync_interval = epochs;
        self
    }

    /// Overrides the overflow watermarks (shed above `high`, accept
    /// below `low`).
    pub fn with_overflow_watermarks(mut self, low: f64, high: f64) -> Self {
        self.overflow_low = low;
        self.overflow_high = high;
        self
    }

    /// Overrides the per-epoch cross-shard migration budget.
    pub fn with_max_overflow_per_epoch(mut self, moves: usize) -> Self {
        self.max_overflow_per_epoch = moves;
        self
    }
}

/// A fleet of fleets: named shards driven in lockstep epochs with
/// periodic knowledge sync and cross-shard session overflow.
pub struct ShardedFleetSim {
    config: ShardConfig,
    shards: Vec<(String, FleetSim)>,
    inter_shard_migrations: u64,
    knowledge_syncs: u64,
    /// Coordinator copy of the fault plan: sync-loss and partition
    /// events execute here; node-level events run inside the shards.
    fault_plan: Option<FaultPlan>,
    /// Cursor into the plan's (epoch-sorted) event list.
    next_fault: usize,
    /// Upcoming sync rounds to suppress (injected sync loss).
    sync_loss_rounds: u64,
    /// Sync rounds that were due but suppressed by injected sync loss.
    sync_rounds_lost: u64,
    /// Partitioned shards as `(shard, until_epoch)`: cut off from
    /// overflow routing and knowledge sync (their nodes keep serving).
    partitions: Vec<(usize, u64)>,
    /// Shard-epochs spent partitioned from the coordinator.
    partition_epochs: u64,
    /// Coordinator-lane event recording (sync rounds, overflow routing);
    /// the per-shard timelines live inside the shards themselves.
    telemetry: TelemetryCollector,
}

impl std::fmt::Debug for ShardedFleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFleetSim")
            .field("shards", &self.shards.len())
            .field("inter_shard_migrations", &self.inter_shard_migrations)
            .field("knowledge_syncs", &self.knowledge_syncs)
            .finish_non_exhaustive()
    }
}

impl ShardedFleetSim {
    /// Creates an empty sharded coordinator. Shards are added with
    /// [`ShardedFleetSim::add_shard`].
    pub fn new(config: ShardConfig) -> Self {
        ShardedFleetSim {
            config,
            shards: Vec::new(),
            inter_shard_migrations: 0,
            knowledge_syncs: 0,
            fault_plan: None,
            next_fault: 0,
            sync_loss_rounds: 0,
            sync_rounds_lost: 0,
            partitions: Vec::new(),
            partition_epochs: 0,
            telemetry: TelemetryCollector::default(),
        }
    }

    /// Switches structured event tracing on or off for the whole sharded
    /// deployment: every shard records its own timeline and the
    /// coordinator records sync/overflow events on the
    /// [`COORDINATOR_LANE`]. Call after every shard has been added.
    pub fn set_telemetry(&mut self, mode: TelemetryMode) {
        self.telemetry.set_mode(mode);
        for (_, sim) in &mut self.shards {
            sim.set_telemetry(mode);
        }
    }

    /// The merged deployment-wide trace: per-shard timelines on their
    /// shard-index lanes plus coordinator events, grouped by epoch (the
    /// coordinator's events sort after the shard work of the epoch they
    /// followed — mirroring the lockstep loop).
    pub fn trace(&self) -> FleetTrace {
        let epoch_s = self
            .shards
            .first()
            .map(|(_, sim)| sim.config().epoch_s)
            .unwrap_or(1.0);
        let mut parts: Vec<(u32, FleetTrace)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, (_, sim))| (index as u32, sim.trace()))
            .collect();
        parts.push((COORDINATOR_LANE, self.telemetry.trace(epoch_s)));
        FleetTrace::merge_sharded(epoch_s, parts)
    }

    /// Records one coordinator-lane event, stamped with the lockstep
    /// epoch the shards just completed (the coordinator runs between
    /// epochs, at the boundary instant).
    fn record_coordinator(&mut self, event: TelemetryEvent) {
        if !self.telemetry.enabled() {
            return;
        }
        let completed = self.shards[0].1.epoch();
        let at_us =
            (completed as f64 * self.shards[0].1.config().epoch_s * 1_000_000.0).round() as u64;
        self.telemetry
            .record(completed.saturating_sub(1), at_us, event);
    }

    /// Installs a fault plan across the sharded deployment — call after
    /// every shard has been added. Node-level events (crashes, thermal
    /// throttles) are executed by the shard their `(shard, node)`
    /// address names; coordinator-level events run here: a
    /// [`FaultEvent::SyncLoss`] suppresses the next due knowledge-sync
    /// rounds, and a [`FaultEvent::ShardPartition`] cuts a shard off
    /// from overflow routing and knowledge sync for its duration (the
    /// shard's nodes keep serving — the partition severs coordination,
    /// not the shard).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for (index, (_, sim)) in self.shards.iter_mut().enumerate() {
            sim.set_shard_index(index);
            sim.set_fault_plan(plan.clone());
        }
        self.fault_plan = Some(plan);
    }

    /// Adds a shard: a fully configured [`FleetSim`] (nodes, dispatcher,
    /// workload, optional autoscaler/rebalancer/store) under a region
    /// name. Shards step in the order they were added. All shards must
    /// share one epoch length — lockstep epochs are what keep clocks
    /// aligned for cross-shard migration (checked at `run`).
    pub fn add_shard(&mut self, name: impl Into<String>, sim: FleetSim) -> usize {
        self.shards.push((name.into(), sim));
        self.shards.len() - 1
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sessions moved across shard boundaries so far.
    pub fn inter_shard_migrations(&self) -> u64 {
        self.inter_shard_migrations
    }

    /// Knowledge-sync rounds performed so far.
    pub fn knowledge_syncs(&self) -> u64 {
        self.knowledge_syncs
    }

    /// Runs every shard's workload to completion in lockstep epochs.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoNodes`] without shards (or from a shard without
    /// nodes); [`FleetError::InvalidConfig`] when shards disagree on the
    /// epoch length; any shard error surfaces unchanged;
    /// [`FleetError::EpochBudgetExhausted`] when a shard's workload
    /// cannot drain within its epoch budget.
    pub fn run(&mut self) -> Result<ShardedFleetSummary, FleetError> {
        if self.shards.is_empty() {
            return Err(FleetError::NoNodes);
        }
        let epoch_s = self.shards[0].1.config().epoch_s;
        for (name, sim) in &self.shards {
            if sim.config().epoch_s != epoch_s {
                return Err(FleetError::InvalidConfig(format!(
                    "shard {name} has epoch_s {} but shard {} set {epoch_s} — \
                     lockstep shards must share one epoch length",
                    sim.config().epoch_s,
                    self.shards[0].0,
                )));
            }
        }
        for (_, sim) in &mut self.shards {
            sim.begin_run()?;
        }
        self.telemetry.reset();
        loop {
            for (_, sim) in &mut self.shards {
                sim.step_epoch()?;
            }
            if self.shards.len() > 1 {
                let epoch = self.shards[0].1.epoch();
                self.apply_coordinator_faults(epoch);
                self.route_overflow()?;
                if self.config.sync_interval > 0 && epoch.is_multiple_of(self.config.sync_interval)
                {
                    if self.sync_loss_rounds > 0 {
                        self.sync_loss_rounds -= 1;
                        self.sync_rounds_lost += 1;
                        self.record_coordinator(TelemetryEvent::SyncRoundLost);
                    } else {
                        let stores = self.sync_knowledge();
                        if stores > 0 {
                            self.record_coordinator(TelemetryEvent::KnowledgeSync {
                                stores: stores as u32,
                            });
                        }
                    }
                }
            }
            self.telemetry.end_epoch();
            if self.shards.iter().all(|(_, sim)| sim.is_drained()) {
                break;
            }
            // Only an undrained shard can be stuck: a shard that finished
            // early keeps stepping in lockstep (cheap idle epochs under
            // the fast path) without burning its own budget.
            for (_, sim) in &self.shards {
                if !sim.is_drained() && sim.epoch() >= sim.config().max_epochs {
                    return Err(FleetError::EpochBudgetExhausted {
                        epochs: sim.epoch(),
                    });
                }
            }
        }
        let epochs = self.shards[0].1.epoch();
        let mut shards = Vec::with_capacity(self.shards.len());
        for (name, sim) in &mut self.shards {
            shards.push((name.clone(), sim.finish_run()?));
        }
        Ok(ShardedFleetSummary {
            epochs,
            duration_s: epochs as f64 * epoch_s,
            shards,
            inter_shard_migrations: self.inter_shard_migrations,
            knowledge_syncs: self.knowledge_syncs,
            sync_rounds_lost: self.sync_rounds_lost,
            partition_epochs: self.partition_epochs,
        })
    }

    /// Executes coordinator-level fault events due by `epoch` (sync loss
    /// and shard partitions) and advances the partition bookkeeping.
    /// Node-level events in the same plan are skipped here — each shard
    /// executes its own through its plan copy.
    fn apply_coordinator_faults(&mut self, epoch: u64) {
        self.partitions.retain(|&(_, until)| until > epoch);
        let mut due = Vec::new();
        if let Some(plan) = &self.fault_plan {
            let events = plan.events();
            while self.next_fault < events.len() && events[self.next_fault].epoch() <= epoch {
                due.push(events[self.next_fault].clone());
                self.next_fault += 1;
            }
        }
        for event in due {
            match event {
                FaultEvent::SyncLoss { rounds, .. } => {
                    self.sync_loss_rounds += rounds;
                }
                FaultEvent::ShardPartition {
                    shard,
                    duration_epochs,
                    ..
                } if shard < self.shards.len() => {
                    self.partitions
                        .push((shard, epoch + duration_epochs.max(1)));
                }
                _ => {} // node-level events belong to their shard
            }
        }
        self.partition_epochs += self.partitions.len() as u64;
    }

    /// Shard indices currently cut off from coordination.
    fn partitioned(&self) -> std::collections::BTreeSet<usize> {
        self.partitions.iter().map(|&(shard, _)| shard).collect()
    }

    /// Moves up to the per-epoch budget of sessions from the shard above
    /// the high watermark to the shard below the low one. Utilization is
    /// re-read after every move; ties break toward the lower shard id,
    /// so routing is deterministic.
    fn route_overflow(&mut self) -> Result<(), FleetError> {
        for _ in 0..self.config.max_overflow_per_epoch {
            // A partitioned shard is unreachable: it neither sheds nor
            // accepts overflow until the partition heals.
            let cut = self.partitioned();
            let eligible: Vec<usize> = (0..self.shards.len())
                .filter(|i| !cut.contains(i))
                .collect();
            if eligible.len() < 2 {
                return Ok(());
            }
            let utils: std::collections::BTreeMap<usize, f64> = eligible
                .iter()
                .map(|&i| (i, self.shards[i].1.mean_active_utilization()))
                .collect();
            let source = eligible
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    utils[&a]
                        .partial_cmp(&utils[&b])
                        .expect("utilization is finite")
                        .then(b.cmp(&a))
                })
                .expect("at least two eligible shards");
            let target = eligible
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    utils[&a]
                        .partial_cmp(&utils[&b])
                        .expect("utilization is finite")
                        .then(a.cmp(&b))
                })
                .expect("at least two eligible shards");
            if source == target
                || utils[&source] <= self.config.overflow_high
                || utils[&target] >= self.config.overflow_low
            {
                return Ok(());
            }
            let Some(migrated) = self.shards[source].1.overflow_detach()? else {
                return Ok(()); // the hot shard holds no live session
            };
            let session = migrated.request.id;
            self.shards[target].1.overflow_attach(migrated)?;
            self.inter_shard_migrations += 1;
            self.record_coordinator(TelemetryEvent::OverflowMigration {
                session,
                from_shard: source as u32,
                to_shard: target as u32,
            });
        }
        Ok(())
    }

    /// One knowledge-sync round: fold every shard store (shard-id order)
    /// into a fleet-wide store, then every shard adopts the fold. Shards
    /// sharing one `Arc` store are folded once; shards without a store
    /// are skipped. Publish and seed counters stay local — syncing moves
    /// knowledge, it is not a session finishing. Returns the number of
    /// distinct stores that exchanged knowledge (0 when nothing synced).
    fn sync_knowledge(&mut self) -> usize {
        let cut = self.partitioned();
        let mut stores = Vec::new();
        for (index, (_, sim)) in self.shards.iter().enumerate() {
            // A partitioned shard's store neither contributes to nor
            // adopts the fold this round.
            if cut.contains(&index) {
                continue;
            }
            if let Some(store) = sim.knowledge_ref() {
                if !stores.iter().any(|s| Arc::ptr_eq(s, store)) {
                    stores.push(Arc::clone(store));
                }
            }
        }
        if stores.len() < 2 {
            return 0; // nothing to exchange
        }
        let policy = stores[0].lock().expect("knowledge store poisoned").policy();
        let mut global = KnowledgeStore::new(policy);
        for store in &stores {
            global.absorb(&store.lock().expect("knowledge store poisoned"));
        }
        for store in &stores {
            store
                .lock()
                .expect("knowledge store poisoned")
                .adopt_knowledge(&global);
        }
        self.knowledge_syncs += 1;
        stores.len()
    }
}

/// Whole-cluster results of a sharded run: per-shard [`FleetSummary`]s
/// plus the cross-shard counters, with frames-weighted cluster rollups.
/// The [`std::fmt::Display`] rendering prefixes every per-shard row with
/// `shard=<name>` — including each shard's pool-size timeline — so a
/// sharded run is debuggable from the summary alone.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedFleetSummary {
    /// Lockstep epochs simulated (identical across shards).
    pub epochs: u64,
    /// Virtual duration (s).
    pub duration_s: f64,
    /// Per-shard summaries in shard-id order, with their region names.
    pub shards: Vec<(String, FleetSummary)>,
    /// Sessions moved across shard boundaries by the overflow router.
    pub inter_shard_migrations: u64,
    /// Knowledge-sync rounds performed.
    pub knowledge_syncs: u64,
    /// Sync rounds that were due but suppressed by injected sync loss.
    pub sync_rounds_lost: u64,
    /// Shard-epochs spent partitioned from the coordinator.
    pub partition_epochs: u64,
}

impl ShardedFleetSummary {
    /// Frames completed across every shard.
    pub fn total_frames(&self) -> u64 {
        self.shards.iter().map(|(_, s)| s.total_frames).sum()
    }

    /// Sessions admitted across every shard.
    pub fn total_sessions(&self) -> u64 {
        self.shards.iter().map(|(_, s)| s.total_sessions).sum()
    }

    /// Powered node-epochs across every shard.
    pub fn node_epochs(&self) -> u64 {
        self.shards.iter().map(|(_, s)| s.node_epochs).sum()
    }

    /// Total cluster energy (J) across every shard.
    pub fn total_energy_j(&self) -> f64 {
        self.shards.iter().map(|(_, s)| s.total_energy_j).sum()
    }

    /// Cluster-wide ∆, frames-weighted across shards (the same weighting
    /// [`FleetSummary`] applies across nodes).
    pub fn cluster_violation_percent(&self) -> f64 {
        let frames = self.total_frames();
        if frames == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .shards
            .iter()
            .map(|(_, s)| s.cluster_violation_percent * s.total_frames as f64)
            .sum();
        weighted / frames as f64
    }

    /// Node-epoch utilization across every shard, bucket-merged.
    pub fn utilization(&self) -> UtilizationHistogram {
        let mut merged = UtilizationHistogram::new();
        for (_, s) in &self.shards {
            merged.merge(&s.utilization);
        }
        merged
    }
}

impl std::fmt::Display for ShardedFleetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ShardedFleetSummary — {} shard(s), {} epochs, {:.1} s virtual | {} inter-shard migrations | {} knowledge syncs",
            self.shards.len(),
            self.epochs,
            self.duration_s,
            self.inter_shard_migrations,
            self.knowledge_syncs
        )?;
        // Only chaos runs render the coordinator-fault line, so
        // fault-free sharded runs keep their historical output.
        if self.sync_rounds_lost + self.partition_epochs > 0 {
            writeln!(
                f,
                "coordinator faults: {} sync rounds lost | {} partitioned shard-epochs",
                self.sync_rounds_lost, self.partition_epochs
            )?;
        }
        for (name, s) in &self.shards {
            writeln!(
                f,
                "shard={name} [{}]: {} nodes | delta {:.2}% | {} sessions ({} mig+, {} mig-) | {} frames | {} node-epochs | {} scale-ups | {} scale-downs",
                s.policy,
                s.nodes.len(),
                s.cluster_violation_percent,
                s.total_sessions,
                s.nodes.iter().map(|n| n.migrated_in).sum::<u64>(),
                s.nodes.iter().map(|n| n.migrated_out).sum::<u64>(),
                s.total_frames,
                s.node_epochs,
                s.scale_ups,
                s.scale_downs
            )?;
            if s.crashes + s.throttles + s.shed_sessions > 0 {
                writeln!(
                    f,
                    "shard={name} faults: {} crashes | {} throttled | {} recovered ({} frames redone) | {} shed | {:.2}% availability | MTTR {:.1} epochs",
                    s.crashes,
                    s.throttles,
                    s.sessions_recovered,
                    s.frames_redone,
                    s.shed_sessions,
                    s.availability_percent,
                    s.mean_mttr_epochs
                )?;
            }
            // Traced runs also surface the shard's tail ledgers; off
            // runs keep their historical output byte-for-byte.
            if s.trace_events > 0 {
                let pct = |v: Option<f64>, digits: usize| {
                    v.map(|x| format!("{x:.digits$}"))
                        .unwrap_or_else(|| "-".to_owned())
                };
                writeln!(
                    f,
                    "shard={name} telemetry: {} events | qos-slack p95/p99 {}/{} | frame-lat p95/p99 {}/{} ms",
                    s.trace_events,
                    pct(s.qos_slack_p95, 3),
                    pct(s.qos_slack_p99, 3),
                    pct(s.frame_latency_p95_ms, 1),
                    pct(s.frame_latency_p99_ms, 1)
                )?;
            }
            if s.pool_timeline.len() > 1 || !s.phase_marks.is_empty() {
                writeln!(
                    f,
                    "shard={name} pool-size timeline: {}",
                    s.render_pool_timeline()
                )?;
            }
        }
        writeln!(
            f,
            "cluster: delta {:.2}% | {} sessions | {} frames | {} node-epochs | {:.0} J",
            self.cluster_violation_percent(),
            self.total_sessions(),
            self.total_frames(),
            self.node_epochs(),
            self.total_energy_j()
        )?;
        writeln!(
            f,
            "cluster node-epoch utilization: {}",
            self.utilization().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{LeastLoaded, RoundRobin};
    use crate::knowledge::{KnowledgeStore, MergePolicy, SessionClass};
    use crate::node::ControllerFactory;
    use crate::sim::FleetConfig;
    use crate::workload::{SessionRequest, Workload, WorkloadConfig};
    use mamut_core::{FixedController, KnobSettings};

    fn fixed_factory() -> ControllerFactory {
        Box::new(|req| {
            let threads = if req.hr { 10 } else { 4 };
            Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
        })
    }

    fn workload(seed: u64, sessions: usize) -> Workload {
        Workload::generate(&WorkloadConfig {
            seed,
            sessions,
            mean_interarrival_s: 1.0,
            vod_frames: (30, 90),
            live_frames: (90, 180),
            ..WorkloadConfig::default()
        })
    }

    fn shard_sim(seed: u64, sessions: usize, nodes: usize) -> FleetSim {
        let mut sim = FleetSim::new(
            FleetConfig::default().with_worker_threads(2),
            Box::new(LeastLoaded::new()),
            workload(seed, sessions),
        );
        for _ in 0..nodes {
            sim.add_node(fixed_factory());
        }
        sim
    }

    #[test]
    fn no_shards_errors() {
        let mut sharded = ShardedFleetSim::new(ShardConfig::default());
        assert_eq!(sharded.run().unwrap_err(), FleetError::NoNodes);
    }

    #[test]
    fn mismatched_epoch_lengths_error() {
        let mut sharded = ShardedFleetSim::new(ShardConfig::default());
        sharded.add_shard("a", shard_sim(1, 4, 2));
        let mut odd = FleetSim::new(
            FleetConfig::default().with_epoch_s(0.5),
            Box::new(RoundRobin::new()),
            workload(2, 4),
        );
        odd.add_node(fixed_factory());
        sharded.add_shard("b", odd);
        assert!(matches!(
            sharded.run().unwrap_err(),
            FleetError::InvalidConfig(_)
        ));
    }

    #[test]
    fn single_shard_is_byte_identical_to_the_unsharded_fleet() {
        let plain = shard_sim(11, 8, 3).run().unwrap();
        let mut sharded = ShardedFleetSim::new(ShardConfig::default());
        sharded.add_shard("solo", shard_sim(11, 8, 3));
        let summary = sharded.run().unwrap();
        assert_eq!(summary.shards.len(), 1);
        assert_eq!(summary.inter_shard_migrations, 0);
        assert_eq!(summary.knowledge_syncs, 0);
        assert_eq!(
            summary.shards[0].1, plain,
            "degenerate config must not drift"
        );
        assert_eq!(summary.shards[0].1.to_string(), plain.to_string());
    }

    #[test]
    fn lockstep_shards_serve_every_arrival() {
        let mut sharded = ShardedFleetSim::new(ShardConfig::default());
        sharded.add_shard("east", shard_sim(21, 6, 2));
        sharded.add_shard("west", shard_sim(22, 10, 2));
        let summary = sharded.run().unwrap();
        assert_eq!(summary.total_sessions(), 16);
        assert_eq!(
            summary.total_frames(),
            summary
                .shards
                .iter()
                .map(|(_, s)| s.total_frames)
                .sum::<u64>()
        );
        assert!(summary.total_frames() > 0);
        // Lockstep: both shards report the run's epoch count.
        for (_, s) in &summary.shards {
            assert_eq!(s.epochs, summary.epochs);
        }
        let text = summary.to_string();
        assert!(text.contains("shard=east"), "{text}");
        assert!(text.contains("shard=west"), "{text}");
        assert!(text.contains("cluster:"), "{text}");
    }

    /// An overloaded one-node shard next to an idle one: the router must
    /// shed sessions across the boundary and nothing may be lost.
    #[test]
    fn overflow_routes_sessions_from_hot_to_cold_shards() {
        let hot_arrivals: Vec<SessionRequest> = (0..6)
            .map(|i| SessionRequest {
                id: i,
                arrival_s: 0.1 * i as f64,
                hr: true,
                live: false,
                frames: 600,
                seed: i,
            })
            .collect();
        let expected_frames: u64 = hot_arrivals.iter().map(|r| r.frames).sum();
        let mut hot = FleetSim::new(
            FleetConfig::default(),
            Box::new(LeastLoaded::new()),
            Workload::replay(hot_arrivals),
        );
        hot.add_node(fixed_factory());
        let mut cold = FleetSim::new(
            FleetConfig::default(),
            Box::new(LeastLoaded::new()),
            Workload::replay(Vec::new()),
        );
        cold.add_node(fixed_factory());
        cold.add_node(fixed_factory());

        let mut sharded =
            ShardedFleetSim::new(ShardConfig::default().with_overflow_watermarks(0.5, 0.9));
        sharded.add_shard("hot", hot);
        sharded.add_shard("cold", cold);
        let summary = sharded.run().unwrap();
        assert!(
            summary.inter_shard_migrations > 0,
            "the hot shard never shed load: {summary}"
        );
        assert_eq!(
            summary.total_frames(),
            expected_frames,
            "moves never lose frames"
        );
        let cold_in: u64 = summary.shards[1]
            .1
            .nodes
            .iter()
            .map(|n| n.migrated_in)
            .sum();
        assert_eq!(cold_in, summary.inter_shard_migrations);
        assert!(
            summary.shards[1].1.total_frames > 0,
            "overflow sessions finish on the cold shard"
        );
        let text = summary.to_string();
        assert!(text.contains("inter-shard migrations"), "{text}");
    }

    #[test]
    fn knowledge_syncs_spread_tables_without_faking_publishes() {
        use mamut_core::{MamutConfig, MamutController};
        let learner_factory = || -> ControllerFactory {
            Box::new(|req| {
                let cfg = if req.hr {
                    MamutConfig::paper_hr()
                } else {
                    MamutConfig::paper_lr()
                };
                Box::new(MamutController::new(cfg.with_seed(req.seed)).unwrap())
            })
        };
        let mut sharded = ShardedFleetSim::new(ShardConfig::default().with_sync_interval(2));
        let mut stores = Vec::new();
        for (i, name) in ["east", "west"].iter().enumerate() {
            let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
            let mut sim = FleetSim::new(
                FleetConfig::default(),
                Box::new(LeastLoaded::new()),
                workload(31 + i as u64, 6),
            );
            sim.add_node(learner_factory());
            sim.add_node(learner_factory());
            sim.set_knowledge_store(Arc::clone(&store));
            sharded.add_shard(*name, sim);
            stores.push(store);
        }
        let summary = sharded.run().unwrap();
        assert!(summary.knowledge_syncs > 0, "sync cadence never fired");
        for (store, (_, shard)) in stores.iter().zip(&summary.shards) {
            let store = store.lock().unwrap();
            assert_eq!(
                store.publishes(),
                shard.total_sessions,
                "sync must not count as publishing"
            );
            // After the final sync both shards hold the fleet-wide fold.
            assert!(store.knowledge(SessionClass::Hr, "mamut").is_some());
        }
        let east = stores[0].lock().unwrap();
        let west = stores[1].lock().unwrap();
        let (a, b) = (
            east.knowledge(SessionClass::Hr, "mamut"),
            west.knowledge(SessionClass::Hr, "mamut"),
        );
        if let (Some(a), Some(b)) = (a, b) {
            if summary.epochs.is_multiple_of(2) {
                // The run ended on a sync boundary: stores are identical.
                assert_eq!(a.snapshot.to_bytes(), b.snapshot.to_bytes());
            }
        }
    }

    #[test]
    fn node_faults_execute_only_in_their_addressed_shard() {
        let mut sharded = ShardedFleetSim::new(ShardConfig::default());
        sharded.add_shard("east", shard_sim(21, 6, 2));
        sharded.add_shard("west", shard_sim(22, 10, 2));
        sharded.set_fault_plan(crate::fault::FaultPlan::new().with_crash_in(2, 1, 0));
        let summary = sharded.run().unwrap();
        assert_eq!(summary.shards[0].1.crashes, 0, "east was never addressed");
        assert_eq!(summary.shards[1].1.crashes, 1);
        assert_eq!(summary.total_sessions(), 16, "no arrival was lost");
        let text = summary.to_string();
        assert!(text.contains("shard=west faults: 1 crashes"), "{text}");
        assert!(!text.contains("shard=east faults:"), "{text}");
    }

    #[test]
    fn sync_loss_suppresses_due_rounds_then_recovers() {
        use mamut_core::{MamutConfig, MamutController};
        let learner_factory = || -> ControllerFactory {
            Box::new(|req| {
                let cfg = if req.hr {
                    MamutConfig::paper_hr()
                } else {
                    MamutConfig::paper_lr()
                };
                Box::new(MamutController::new(cfg.with_seed(req.seed)).unwrap())
            })
        };
        let build = |plan: Option<crate::fault::FaultPlan>| {
            let mut sharded = ShardedFleetSim::new(ShardConfig::default().with_sync_interval(2));
            for (i, name) in ["east", "west"].iter().enumerate() {
                let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
                let mut sim = FleetSim::new(
                    FleetConfig::default(),
                    Box::new(LeastLoaded::new()),
                    workload(31 + i as u64, 6),
                );
                sim.add_node(learner_factory());
                sim.add_node(learner_factory());
                sim.set_knowledge_store(Arc::clone(&store));
                sharded.add_shard(*name, sim);
            }
            if let Some(plan) = plan {
                sharded.set_fault_plan(plan);
            }
            sharded.run().unwrap()
        };
        let quiet = build(None);
        let lossy = build(Some(crate::fault::FaultPlan::new().with_sync_loss(1, 2)));
        assert_eq!(lossy.sync_rounds_lost, 2, "{lossy}");
        assert_eq!(
            lossy.knowledge_syncs + lossy.sync_rounds_lost,
            quiet.knowledge_syncs,
            "a lost round is a sync that would otherwise have happened"
        );
        let text = lossy.to_string();
        assert!(
            text.contains("coordinator faults: 2 sync rounds lost"),
            "{text}"
        );
        assert!(!quiet.to_string().contains("coordinator faults:"));
    }

    #[test]
    fn partitioned_shards_are_cut_off_from_overflow() {
        let build = |plan: Option<crate::fault::FaultPlan>| {
            let hot_arrivals: Vec<SessionRequest> = (0..6)
                .map(|i| SessionRequest {
                    id: i,
                    arrival_s: 0.1 * i as f64,
                    hr: true,
                    live: false,
                    frames: 600,
                    seed: i,
                })
                .collect();
            let mut hot = FleetSim::new(
                FleetConfig::default(),
                Box::new(LeastLoaded::new()),
                Workload::replay(hot_arrivals),
            );
            hot.add_node(fixed_factory());
            let mut cold = FleetSim::new(
                FleetConfig::default(),
                Box::new(LeastLoaded::new()),
                Workload::replay(Vec::new()),
            );
            cold.add_node(fixed_factory());
            cold.add_node(fixed_factory());
            let mut sharded =
                ShardedFleetSim::new(ShardConfig::default().with_overflow_watermarks(0.5, 0.9));
            sharded.add_shard("hot", hot);
            sharded.add_shard("cold", cold);
            if let Some(plan) = plan {
                sharded.set_fault_plan(plan);
            }
            sharded.run().unwrap()
        };
        let open = build(None);
        assert!(open.inter_shard_migrations > 0, "precondition: {open}");
        // Partition the cold shard for the whole run: with fewer than
        // two reachable shards the router has nowhere to move sessions.
        let cut = build(Some(
            crate::fault::FaultPlan::new().with_partition(1, 1, 10_000),
        ));
        assert_eq!(cut.inter_shard_migrations, 0, "{cut}");
        assert!(cut.partition_epochs > 0);
        assert_eq!(cut.total_frames(), open.total_frames(), "nothing lost");
        let text = cut.to_string();
        assert!(text.contains("partitioned shard-epochs"), "{text}");
    }

    #[test]
    fn sharded_runs_are_reproducible() {
        let build = || {
            let mut sharded = ShardedFleetSim::new(ShardConfig::default());
            sharded.add_shard("east", shard_sim(41, 6, 2));
            sharded.add_shard("west", shard_sim(42, 6, 2));
            sharded
        };
        let a = build().run().unwrap();
        let b = build().run().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
    }
}
