//! Sharded fleet coordination: regions/cells of nodes, each a full
//! [`FleetSim`] with its own dispatcher, autoscaler, rebalancer and
//! knowledge store, driven in lockstep by one [`ShardedFleetSim`].
//!
//! A single coordinator tops out well below the "millions of users"
//! target: one global rebalance/autoscale pass per epoch, every node
//! visited every epoch, one `Arc<Mutex>` knowledge store. Sharding
//! splits the fleet the way real deployments do — by region or cell —
//! so per-epoch coordination cost is per-shard, shard steps touch only
//! *active* nodes (the idle fast path parks finished ones), and the
//! expensive global operations become explicit, infrequent exchanges:
//!
//! * **knowledge sync** — every [`ShardConfig::sync_interval`] epochs
//!   the shard stores are folded into a fleet-wide store (the
//!   visit-weighted merge is associative, so the fold equals flat
//!   publishing) and every shard adopts the fold; publish counters stay
//!   local, so per-shard invariants survive any number of syncs;
//! * **session overflow** — after every lockstep epoch, if the busiest
//!   shard's mean utilization exceeds the high watermark while the
//!   idlest sits below the low one, a live session migrates across the
//!   shard boundary over the same `detach_session`/`attach_session`
//!   path rebalancers use inside a shard.
//!
//! Everything runs on the coordinating thread in shard-id order, so
//! the whole stack inherits the fleet's byte-identical determinism for
//! any worker count. A single-shard configuration is the degenerate
//! case: its summary is byte-for-byte what the wrapped [`FleetSim`]
//! would have produced on its own.

use std::sync::Arc;

use mamut_metrics::UtilizationHistogram;

use crate::error::FleetError;
use crate::knowledge::KnowledgeStore;
use crate::sim::FleetSim;
use crate::summary::FleetSummary;

/// Coordination parameters for a sharded fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardConfig {
    /// Epochs between inter-shard knowledge syncs (0 disables syncing).
    /// Shards without a knowledge store neither contribute nor adopt.
    pub sync_interval: u64,
    /// Mean-utilization watermark above which a shard sheds load.
    pub overflow_high: f64,
    /// Mean-utilization watermark below which a shard accepts overflow.
    pub overflow_low: f64,
    /// Max sessions moved across shard boundaries per epoch (utilization
    /// is re-read after every move, so a burst drains gradually instead
    /// of thrashing).
    pub max_overflow_per_epoch: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            sync_interval: 8,
            overflow_high: 0.85,
            overflow_low: 0.5,
            max_overflow_per_epoch: 2,
        }
    }
}

impl ShardConfig {
    /// Overrides the knowledge-sync cadence (0 disables syncing).
    pub fn with_sync_interval(mut self, epochs: u64) -> Self {
        self.sync_interval = epochs;
        self
    }

    /// Overrides the overflow watermarks (shed above `high`, accept
    /// below `low`).
    pub fn with_overflow_watermarks(mut self, low: f64, high: f64) -> Self {
        self.overflow_low = low;
        self.overflow_high = high;
        self
    }

    /// Overrides the per-epoch cross-shard migration budget.
    pub fn with_max_overflow_per_epoch(mut self, moves: usize) -> Self {
        self.max_overflow_per_epoch = moves;
        self
    }
}

/// A fleet of fleets: named shards driven in lockstep epochs with
/// periodic knowledge sync and cross-shard session overflow.
pub struct ShardedFleetSim {
    config: ShardConfig,
    shards: Vec<(String, FleetSim)>,
    inter_shard_migrations: u64,
    knowledge_syncs: u64,
}

impl std::fmt::Debug for ShardedFleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFleetSim")
            .field("shards", &self.shards.len())
            .field("inter_shard_migrations", &self.inter_shard_migrations)
            .field("knowledge_syncs", &self.knowledge_syncs)
            .finish_non_exhaustive()
    }
}

impl ShardedFleetSim {
    /// Creates an empty sharded coordinator. Shards are added with
    /// [`ShardedFleetSim::add_shard`].
    pub fn new(config: ShardConfig) -> Self {
        ShardedFleetSim {
            config,
            shards: Vec::new(),
            inter_shard_migrations: 0,
            knowledge_syncs: 0,
        }
    }

    /// Adds a shard: a fully configured [`FleetSim`] (nodes, dispatcher,
    /// workload, optional autoscaler/rebalancer/store) under a region
    /// name. Shards step in the order they were added. All shards must
    /// share one epoch length — lockstep epochs are what keep clocks
    /// aligned for cross-shard migration (checked at `run`).
    pub fn add_shard(&mut self, name: impl Into<String>, sim: FleetSim) -> usize {
        self.shards.push((name.into(), sim));
        self.shards.len() - 1
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sessions moved across shard boundaries so far.
    pub fn inter_shard_migrations(&self) -> u64 {
        self.inter_shard_migrations
    }

    /// Knowledge-sync rounds performed so far.
    pub fn knowledge_syncs(&self) -> u64 {
        self.knowledge_syncs
    }

    /// Runs every shard's workload to completion in lockstep epochs.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoNodes`] without shards (or from a shard without
    /// nodes); [`FleetError::InvalidConfig`] when shards disagree on the
    /// epoch length; any shard error surfaces unchanged;
    /// [`FleetError::EpochBudgetExhausted`] when a shard's workload
    /// cannot drain within its epoch budget.
    pub fn run(&mut self) -> Result<ShardedFleetSummary, FleetError> {
        if self.shards.is_empty() {
            return Err(FleetError::NoNodes);
        }
        let epoch_s = self.shards[0].1.config().epoch_s;
        for (name, sim) in &self.shards {
            if sim.config().epoch_s != epoch_s {
                return Err(FleetError::InvalidConfig(format!(
                    "shard {name} has epoch_s {} but shard {} set {epoch_s} — \
                     lockstep shards must share one epoch length",
                    sim.config().epoch_s,
                    self.shards[0].0,
                )));
            }
        }
        for (_, sim) in &mut self.shards {
            sim.begin_run()?;
        }
        loop {
            for (_, sim) in &mut self.shards {
                sim.step_epoch()?;
            }
            if self.shards.len() > 1 {
                self.route_overflow()?;
                let epoch = self.shards[0].1.epoch();
                if self.config.sync_interval > 0 && epoch.is_multiple_of(self.config.sync_interval)
                {
                    self.sync_knowledge();
                }
            }
            if self.shards.iter().all(|(_, sim)| sim.is_drained()) {
                break;
            }
            // Only an undrained shard can be stuck: a shard that finished
            // early keeps stepping in lockstep (cheap idle epochs under
            // the fast path) without burning its own budget.
            for (_, sim) in &self.shards {
                if !sim.is_drained() && sim.epoch() >= sim.config().max_epochs {
                    return Err(FleetError::EpochBudgetExhausted {
                        epochs: sim.epoch(),
                    });
                }
            }
        }
        let epochs = self.shards[0].1.epoch();
        let mut shards = Vec::with_capacity(self.shards.len());
        for (name, sim) in &mut self.shards {
            shards.push((name.clone(), sim.finish_run()?));
        }
        Ok(ShardedFleetSummary {
            epochs,
            duration_s: epochs as f64 * epoch_s,
            shards,
            inter_shard_migrations: self.inter_shard_migrations,
            knowledge_syncs: self.knowledge_syncs,
        })
    }

    /// Moves up to the per-epoch budget of sessions from the shard above
    /// the high watermark to the shard below the low one. Utilization is
    /// re-read after every move; ties break toward the lower shard id,
    /// so routing is deterministic.
    fn route_overflow(&mut self) -> Result<(), FleetError> {
        for _ in 0..self.config.max_overflow_per_epoch {
            let utils: Vec<f64> = self
                .shards
                .iter_mut()
                .map(|(_, sim)| sim.mean_active_utilization())
                .collect();
            let source = (0..utils.len())
                .max_by(|&a, &b| {
                    utils[a]
                        .partial_cmp(&utils[b])
                        .expect("utilization is finite")
                        .then(b.cmp(&a))
                })
                .expect("at least two shards");
            let target = (0..utils.len())
                .min_by(|&a, &b| {
                    utils[a]
                        .partial_cmp(&utils[b])
                        .expect("utilization is finite")
                        .then(a.cmp(&b))
                })
                .expect("at least two shards");
            if source == target
                || utils[source] <= self.config.overflow_high
                || utils[target] >= self.config.overflow_low
            {
                return Ok(());
            }
            let Some(migrated) = self.shards[source].1.overflow_detach()? else {
                return Ok(()); // the hot shard holds no live session
            };
            self.shards[target].1.overflow_attach(migrated)?;
            self.inter_shard_migrations += 1;
        }
        Ok(())
    }

    /// One knowledge-sync round: fold every shard store (shard-id order)
    /// into a fleet-wide store, then every shard adopts the fold. Shards
    /// sharing one `Arc` store are folded once; shards without a store
    /// are skipped. Publish and seed counters stay local — syncing moves
    /// knowledge, it is not a session finishing.
    fn sync_knowledge(&mut self) {
        let mut stores = Vec::new();
        for (_, sim) in &self.shards {
            if let Some(store) = sim.knowledge_ref() {
                if !stores.iter().any(|s| Arc::ptr_eq(s, store)) {
                    stores.push(Arc::clone(store));
                }
            }
        }
        if stores.len() < 2 {
            return; // nothing to exchange
        }
        let policy = stores[0].lock().expect("knowledge store poisoned").policy();
        let mut global = KnowledgeStore::new(policy);
        for store in &stores {
            global.absorb(&store.lock().expect("knowledge store poisoned"));
        }
        for store in &stores {
            store
                .lock()
                .expect("knowledge store poisoned")
                .adopt_knowledge(&global);
        }
        self.knowledge_syncs += 1;
    }
}

/// Whole-cluster results of a sharded run: per-shard [`FleetSummary`]s
/// plus the cross-shard counters, with frames-weighted cluster rollups.
/// The [`std::fmt::Display`] rendering prefixes every per-shard row with
/// `shard=<name>` — including each shard's pool-size timeline — so a
/// sharded run is debuggable from the summary alone.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedFleetSummary {
    /// Lockstep epochs simulated (identical across shards).
    pub epochs: u64,
    /// Virtual duration (s).
    pub duration_s: f64,
    /// Per-shard summaries in shard-id order, with their region names.
    pub shards: Vec<(String, FleetSummary)>,
    /// Sessions moved across shard boundaries by the overflow router.
    pub inter_shard_migrations: u64,
    /// Knowledge-sync rounds performed.
    pub knowledge_syncs: u64,
}

impl ShardedFleetSummary {
    /// Frames completed across every shard.
    pub fn total_frames(&self) -> u64 {
        self.shards.iter().map(|(_, s)| s.total_frames).sum()
    }

    /// Sessions admitted across every shard.
    pub fn total_sessions(&self) -> u64 {
        self.shards.iter().map(|(_, s)| s.total_sessions).sum()
    }

    /// Powered node-epochs across every shard.
    pub fn node_epochs(&self) -> u64 {
        self.shards.iter().map(|(_, s)| s.node_epochs).sum()
    }

    /// Total cluster energy (J) across every shard.
    pub fn total_energy_j(&self) -> f64 {
        self.shards.iter().map(|(_, s)| s.total_energy_j).sum()
    }

    /// Cluster-wide ∆, frames-weighted across shards (the same weighting
    /// [`FleetSummary`] applies across nodes).
    pub fn cluster_violation_percent(&self) -> f64 {
        let frames = self.total_frames();
        if frames == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .shards
            .iter()
            .map(|(_, s)| s.cluster_violation_percent * s.total_frames as f64)
            .sum();
        weighted / frames as f64
    }

    /// Node-epoch utilization across every shard, bucket-merged.
    pub fn utilization(&self) -> UtilizationHistogram {
        let mut merged = UtilizationHistogram::new();
        for (_, s) in &self.shards {
            merged.merge(&s.utilization);
        }
        merged
    }
}

impl std::fmt::Display for ShardedFleetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ShardedFleetSummary — {} shard(s), {} epochs, {:.1} s virtual | {} inter-shard migrations | {} knowledge syncs",
            self.shards.len(),
            self.epochs,
            self.duration_s,
            self.inter_shard_migrations,
            self.knowledge_syncs
        )?;
        for (name, s) in &self.shards {
            writeln!(
                f,
                "shard={name} [{}]: {} nodes | delta {:.2}% | {} sessions ({} mig+, {} mig-) | {} frames | {} node-epochs | {} scale-ups | {} scale-downs",
                s.policy,
                s.nodes.len(),
                s.cluster_violation_percent,
                s.total_sessions,
                s.nodes.iter().map(|n| n.migrated_in).sum::<u64>(),
                s.nodes.iter().map(|n| n.migrated_out).sum::<u64>(),
                s.total_frames,
                s.node_epochs,
                s.scale_ups,
                s.scale_downs
            )?;
            if s.pool_timeline.len() > 1 || !s.phase_marks.is_empty() {
                writeln!(
                    f,
                    "shard={name} pool-size timeline: {}",
                    s.render_pool_timeline()
                )?;
            }
        }
        writeln!(
            f,
            "cluster: delta {:.2}% | {} sessions | {} frames | {} node-epochs | {:.0} J",
            self.cluster_violation_percent(),
            self.total_sessions(),
            self.total_frames(),
            self.node_epochs(),
            self.total_energy_j()
        )?;
        writeln!(
            f,
            "cluster node-epoch utilization: {}",
            self.utilization().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{LeastLoaded, RoundRobin};
    use crate::knowledge::{KnowledgeStore, MergePolicy, SessionClass};
    use crate::node::ControllerFactory;
    use crate::sim::FleetConfig;
    use crate::workload::{SessionRequest, Workload, WorkloadConfig};
    use mamut_core::{FixedController, KnobSettings};

    fn fixed_factory() -> ControllerFactory {
        Box::new(|req| {
            let threads = if req.hr { 10 } else { 4 };
            Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
        })
    }

    fn workload(seed: u64, sessions: usize) -> Workload {
        Workload::generate(&WorkloadConfig {
            seed,
            sessions,
            mean_interarrival_s: 1.0,
            vod_frames: (30, 90),
            live_frames: (90, 180),
            ..WorkloadConfig::default()
        })
    }

    fn shard_sim(seed: u64, sessions: usize, nodes: usize) -> FleetSim {
        let mut sim = FleetSim::new(
            FleetConfig::default().with_worker_threads(2),
            Box::new(LeastLoaded::new()),
            workload(seed, sessions),
        );
        for _ in 0..nodes {
            sim.add_node(fixed_factory());
        }
        sim
    }

    #[test]
    fn no_shards_errors() {
        let mut sharded = ShardedFleetSim::new(ShardConfig::default());
        assert_eq!(sharded.run().unwrap_err(), FleetError::NoNodes);
    }

    #[test]
    fn mismatched_epoch_lengths_error() {
        let mut sharded = ShardedFleetSim::new(ShardConfig::default());
        sharded.add_shard("a", shard_sim(1, 4, 2));
        let mut odd = FleetSim::new(
            FleetConfig::default().with_epoch_s(0.5),
            Box::new(RoundRobin::new()),
            workload(2, 4),
        );
        odd.add_node(fixed_factory());
        sharded.add_shard("b", odd);
        assert!(matches!(
            sharded.run().unwrap_err(),
            FleetError::InvalidConfig(_)
        ));
    }

    #[test]
    fn single_shard_is_byte_identical_to_the_unsharded_fleet() {
        let plain = shard_sim(11, 8, 3).run().unwrap();
        let mut sharded = ShardedFleetSim::new(ShardConfig::default());
        sharded.add_shard("solo", shard_sim(11, 8, 3));
        let summary = sharded.run().unwrap();
        assert_eq!(summary.shards.len(), 1);
        assert_eq!(summary.inter_shard_migrations, 0);
        assert_eq!(summary.knowledge_syncs, 0);
        assert_eq!(
            summary.shards[0].1, plain,
            "degenerate config must not drift"
        );
        assert_eq!(summary.shards[0].1.to_string(), plain.to_string());
    }

    #[test]
    fn lockstep_shards_serve_every_arrival() {
        let mut sharded = ShardedFleetSim::new(ShardConfig::default());
        sharded.add_shard("east", shard_sim(21, 6, 2));
        sharded.add_shard("west", shard_sim(22, 10, 2));
        let summary = sharded.run().unwrap();
        assert_eq!(summary.total_sessions(), 16);
        assert_eq!(
            summary.total_frames(),
            summary
                .shards
                .iter()
                .map(|(_, s)| s.total_frames)
                .sum::<u64>()
        );
        assert!(summary.total_frames() > 0);
        // Lockstep: both shards report the run's epoch count.
        for (_, s) in &summary.shards {
            assert_eq!(s.epochs, summary.epochs);
        }
        let text = summary.to_string();
        assert!(text.contains("shard=east"), "{text}");
        assert!(text.contains("shard=west"), "{text}");
        assert!(text.contains("cluster:"), "{text}");
    }

    /// An overloaded one-node shard next to an idle one: the router must
    /// shed sessions across the boundary and nothing may be lost.
    #[test]
    fn overflow_routes_sessions_from_hot_to_cold_shards() {
        let hot_arrivals: Vec<SessionRequest> = (0..6)
            .map(|i| SessionRequest {
                id: i,
                arrival_s: 0.1 * i as f64,
                hr: true,
                live: false,
                frames: 600,
                seed: i,
            })
            .collect();
        let expected_frames: u64 = hot_arrivals.iter().map(|r| r.frames).sum();
        let mut hot = FleetSim::new(
            FleetConfig::default(),
            Box::new(LeastLoaded::new()),
            Workload::replay(hot_arrivals),
        );
        hot.add_node(fixed_factory());
        let mut cold = FleetSim::new(
            FleetConfig::default(),
            Box::new(LeastLoaded::new()),
            Workload::replay(Vec::new()),
        );
        cold.add_node(fixed_factory());
        cold.add_node(fixed_factory());

        let mut sharded =
            ShardedFleetSim::new(ShardConfig::default().with_overflow_watermarks(0.5, 0.9));
        sharded.add_shard("hot", hot);
        sharded.add_shard("cold", cold);
        let summary = sharded.run().unwrap();
        assert!(
            summary.inter_shard_migrations > 0,
            "the hot shard never shed load: {summary}"
        );
        assert_eq!(
            summary.total_frames(),
            expected_frames,
            "moves never lose frames"
        );
        let cold_in: u64 = summary.shards[1]
            .1
            .nodes
            .iter()
            .map(|n| n.migrated_in)
            .sum();
        assert_eq!(cold_in, summary.inter_shard_migrations);
        assert!(
            summary.shards[1].1.total_frames > 0,
            "overflow sessions finish on the cold shard"
        );
        let text = summary.to_string();
        assert!(text.contains("inter-shard migrations"), "{text}");
    }

    #[test]
    fn knowledge_syncs_spread_tables_without_faking_publishes() {
        use mamut_core::{MamutConfig, MamutController};
        let learner_factory = || -> ControllerFactory {
            Box::new(|req| {
                let cfg = if req.hr {
                    MamutConfig::paper_hr()
                } else {
                    MamutConfig::paper_lr()
                };
                Box::new(MamutController::new(cfg.with_seed(req.seed)).unwrap())
            })
        };
        let mut sharded = ShardedFleetSim::new(ShardConfig::default().with_sync_interval(2));
        let mut stores = Vec::new();
        for (i, name) in ["east", "west"].iter().enumerate() {
            let store = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
            let mut sim = FleetSim::new(
                FleetConfig::default(),
                Box::new(LeastLoaded::new()),
                workload(31 + i as u64, 6),
            );
            sim.add_node(learner_factory());
            sim.add_node(learner_factory());
            sim.set_knowledge_store(Arc::clone(&store));
            sharded.add_shard(*name, sim);
            stores.push(store);
        }
        let summary = sharded.run().unwrap();
        assert!(summary.knowledge_syncs > 0, "sync cadence never fired");
        for (store, (_, shard)) in stores.iter().zip(&summary.shards) {
            let store = store.lock().unwrap();
            assert_eq!(
                store.publishes(),
                shard.total_sessions,
                "sync must not count as publishing"
            );
            // After the final sync both shards hold the fleet-wide fold.
            assert!(store.knowledge(SessionClass::Hr, "mamut").is_some());
        }
        let east = stores[0].lock().unwrap();
        let west = stores[1].lock().unwrap();
        let (a, b) = (
            east.knowledge(SessionClass::Hr, "mamut"),
            west.knowledge(SessionClass::Hr, "mamut"),
        );
        if let (Some(a), Some(b)) = (a, b) {
            if summary.epochs.is_multiple_of(2) {
                // The run ended on a sync boundary: stores are identical.
                assert_eq!(a.snapshot.to_bytes(), b.snapshot.to_bytes());
            }
        }
    }

    #[test]
    fn sharded_runs_are_reproducible() {
        let build = || {
            let mut sharded = ShardedFleetSim::new(ShardConfig::default());
            sharded.add_shard("east", shard_sim(41, 6, 2));
            sharded.add_shard("west", shard_sim(42, 6, 2));
            sharded
        };
        let a = build().run().unwrap();
        let b = build().run().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
    }
}
