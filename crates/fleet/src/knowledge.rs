//! Knowledge-as-a-service for the fleet: a store of learned policies,
//! keyed by session class and controller type, that warm-starts new
//! sessions.
//!
//! The KaaS follow-up to MAMUT observes that a freshly admitted stream
//! pays the full exploration cost even though thousands of similar
//! streams have already learned the same environment. The
//! [`KnowledgeStore`] closes that loop:
//!
//! * finished sessions **publish** their
//!   [`PolicySnapshot`](mamut_core::snapshot::PolicySnapshot) (stripped
//!   to knowledge-only form — tables and counters, no RNG/execution
//!   state) keyed by [`SessionClass`] (HR or LR) *and* controller tag,
//!   so mixed-controller fleets accumulate knowledge side by side;
//! * publishes **merge** under a [`MergePolicy`] — last-writer-wins or a
//!   per-cell visit-weighted average of Q-values, with visit counts and
//!   transition statistics accumulated;
//! * [`warm_start_factory`] wraps any
//!   [`ControllerFactory`](crate::ControllerFactory) so each new session
//!   is **seeded** from the store before its first frame (silently
//!   falling back to a cold start when the store has nothing compatible).
//!
//! The store is shared across nodes behind `Arc<Mutex<…>>`
//! ([`SharedKnowledgeStore`]); every access happens on the coordinating
//! thread at epoch boundaries (publish during harvest, seed during
//! dispatch), so fleet determinism is preserved for any worker count.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use mamut_core::snapshot::{
    AgentSnapshot, PolicySnapshot, SnapshotError, SnapshotReader, SnapshotWriter, TransitionRecord,
};
use mamut_core::Controller;

use crate::node::ControllerFactory;
use crate::workload::SessionRequest;

/// The knowledge key: which kind of stream a policy was learned on.
///
/// HR and LR streams have different action spaces (thread caps) and
/// different operating points, so their knowledge never mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SessionClass {
    /// High-resolution (1080p) streams.
    Hr,
    /// Low-resolution (832×480) streams.
    Lr,
}

impl SessionClass {
    /// The class of an arriving request.
    pub fn of_request(request: &SessionRequest) -> SessionClass {
        SessionClass::of_hr(request.hr)
    }

    /// The class for an HR flag.
    pub fn of_hr(hr: bool) -> SessionClass {
        if hr {
            SessionClass::Hr
        } else {
            SessionClass::Lr
        }
    }
}

impl std::fmt::Display for SessionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SessionClass::Hr => "HR",
            SessionClass::Lr => "LR",
        })
    }
}

/// How a publish combines with knowledge already in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// The newest publish wins outright.
    Replace,
    /// Q-values merge per state-action cell, weighted by each side's
    /// visit count (`Num(s, a)`); visit counts and transition statistics
    /// accumulate. Falls back to replacement when the incoming tables
    /// are structurally incompatible (different controller type or
    /// shapes).
    VisitWeighted,
}

/// What happened to a published snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishOutcome {
    /// First knowledge for this class.
    Inserted,
    /// Merged into existing knowledge.
    Merged,
    /// Replaced existing knowledge (policy said so, or shapes differed).
    Replaced,
}

/// Merged knowledge for one session class.
#[derive(Debug, Clone)]
pub struct ClassKnowledge {
    /// The merged, knowledge-only snapshot new sessions are seeded from.
    pub snapshot: PolicySnapshot,
    /// Sessions that have contributed to this entry.
    pub contributions: u64,
    /// Incremental visit-weighted merge state (per-cell visit totals and
    /// transition counts), built lazily on the first merge. With it, a
    /// publish costs O(incoming) work against the accumulated tables
    /// instead of re-deriving both sides' visit matrices and rebuilding
    /// the full transition map from scratch every time.
    acc: Option<MergeState>,
}

/// Accumulated per-agent merge state mirroring `snapshot.agents`.
#[derive(Debug, Clone)]
struct MergeState {
    agents: Vec<AgentMergeState>,
}

#[derive(Debug, Clone)]
struct AgentMergeState {
    /// Dense `Num(s, a)` totals across all contributions (saturating, as
    /// the per-publish visit matrices themselves saturate).
    visits: Vec<u32>,
    /// Transition counts keyed `(state, action, next_state)` — the
    /// canonical sorted order, so regenerating the snapshot's record
    /// list is a linear walk, never a re-sort.
    transitions: BTreeMap<(u32, u32, u32), u32>,
}

impl MergeState {
    fn from_snapshot(snapshot: &PolicySnapshot) -> MergeState {
        MergeState {
            agents: snapshot
                .agents
                .iter()
                .map(|a| AgentMergeState {
                    visits: a.visit_matrix(),
                    transitions: a
                        .transitions
                        .iter()
                        .map(|t| ((t.state, t.action, t.next_state), t.count))
                        .collect(),
                })
                .collect(),
        }
    }
}

impl AgentMergeState {
    /// Folds `new` into `agent` in place: per-cell visit-weighted Q
    /// average (plain average where neither side has visits), saturating
    /// action/transition count accumulation, canonical record
    /// regeneration from the maintained map.
    fn merge_agent(&mut self, agent: &mut AgentSnapshot, new: &AgentSnapshot) {
        let visits_new = new.visit_matrix();
        for (i, (q, &qn)) in agent.q.iter_mut().zip(&new.q).enumerate() {
            let (vo, vn) = (f64::from(self.visits[i]), f64::from(visits_new[i]));
            *q = if vo + vn > 0.0 {
                (vo * *q + vn * qn) / (vo + vn)
            } else {
                0.5 * (*q + qn)
            };
            self.visits[i] = self.visits[i].saturating_add(visits_new[i]);
        }
        for (a, &b) in agent.action_counts.iter_mut().zip(&new.action_counts) {
            *a = a.saturating_add(b);
        }
        for t in &new.transitions {
            let slot = self
                .transitions
                .entry((t.state, t.action, t.next_state))
                .or_insert(0);
            *slot = slot.saturating_add(t.count);
        }
        agent.transitions.clear();
        agent.transitions.extend(self.transitions.iter().map(
            |(&(state, action, next_state), &count)| TransitionRecord {
                state,
                action,
                next_state,
                count,
            },
        ));
    }
}

impl ClassKnowledge {
    fn inserted(snapshot: PolicySnapshot) -> ClassKnowledge {
        ClassKnowledge {
            snapshot,
            contributions: 1,
            acc: None,
        }
    }

    /// Visit-weighted merge of `incoming` into the accumulated snapshot,
    /// or `false` when the shapes are structurally incompatible (the
    /// caller replaces instead).
    fn merge_in(&mut self, incoming: &PolicySnapshot) -> bool {
        if self.snapshot.controller != incoming.controller
            || self.snapshot.agents.len() != incoming.agents.len()
        {
            return false;
        }
        let compatible = self
            .snapshot
            .agents
            .iter()
            .zip(&incoming.agents)
            .all(|(a, b)| {
                a.kind == b.kind && a.n_states == b.n_states && a.n_actions == b.n_actions
            });
        if !compatible {
            return false;
        }
        let acc = self
            .acc
            .get_or_insert_with(|| MergeState::from_snapshot(&self.snapshot));
        for (agent, (st, new)) in self
            .snapshot
            .agents
            .iter_mut()
            .zip(acc.agents.iter_mut().zip(&incoming.agents))
        {
            st.merge_agent(agent, new);
        }
        // The operating point follows the newest contributor: knobs are a
        // live setting, not an average-able statistic.
        self.snapshot.knobs = incoming.knobs;
        self.snapshot.exploration_decisions += incoming.exploration_decisions;
        self.snapshot.exploitation_decisions += incoming.exploitation_decisions;
        true
    }
}

/// The fleet's policy repository: finished sessions publish their
/// learned tables here; new sessions of the same class are seeded from
/// the merged knowledge (see [`warm_start_factory`]).
#[derive(Debug)]
pub struct KnowledgeStore {
    policy: MergePolicy,
    /// Knowledge keyed by `(class, controller tag)`: mixed-controller
    /// fleets publish side by side — a finishing heuristic session can
    /// never displace the MAMUT tables accumulated for its class.
    entries: BTreeMap<(SessionClass, String), ClassKnowledge>,
    publishes: u64,
    seeds_served: u64,
    seed_attempts: u64,
}

/// A store shared between warm-start factories and the fleet loop.
pub type SharedKnowledgeStore = Arc<Mutex<KnowledgeStore>>;

/// Magic bytes opening every encoded knowledge store.
const STORE_MAGIC: &[u8; 8] = b"MAMUTKS\0";

/// Current knowledge-store codec version. Decoders reject newer.
pub const STORE_VERSION: u16 = 1;

impl KnowledgeStore {
    /// Creates an empty store with the given merge policy.
    pub fn new(policy: MergePolicy) -> Self {
        KnowledgeStore {
            policy,
            entries: BTreeMap::new(),
            publishes: 0,
            seeds_served: 0,
            seed_attempts: 0,
        }
    }

    /// Wraps the store for sharing with factories and a `FleetSim`.
    pub fn into_shared(self) -> SharedKnowledgeStore {
        Arc::new(Mutex::new(self))
    }

    /// The merge policy in force.
    pub fn policy(&self) -> MergePolicy {
        self.policy
    }

    /// Publishes one controller's snapshot under `class`. The snapshot is
    /// reduced to knowledge-only form (execution state stripped) before
    /// it enters the store.
    pub fn publish(&mut self, class: SessionClass, snapshot: &PolicySnapshot) -> PublishOutcome {
        self.publishes += 1;
        let key = (class, snapshot.controller.clone());
        match self.entries.get_mut(&key) {
            None => {
                self.entries.insert(
                    key,
                    ClassKnowledge::inserted(snapshot.clone().into_knowledge()),
                );
                PublishOutcome::Inserted
            }
            Some(existing) => {
                existing.contributions += 1;
                match self.policy {
                    MergePolicy::Replace => {
                        existing.snapshot = snapshot.clone().into_knowledge();
                        existing.acc = None;
                        PublishOutcome::Replaced
                    }
                    MergePolicy::VisitWeighted => {
                        // The merge reads tables only, so the incoming
                        // snapshot is never cloned on this path.
                        if existing.merge_in(snapshot) {
                            PublishOutcome::Merged
                        } else {
                            existing.snapshot = snapshot.clone().into_knowledge();
                            existing.acc = None;
                            PublishOutcome::Replaced
                        }
                    }
                }
            }
        }
    }

    /// The merged knowledge a `controller`-tagged session of `class`
    /// would be seeded from, if any peer has published.
    pub fn knowledge(&self, class: SessionClass, controller: &str) -> Option<&ClassKnowledge> {
        self.entries.get(&(class, controller.to_owned()))
    }

    /// Seeds a freshly built controller from the knowledge published by
    /// its own kind for `class`. Returns whether a warm start actually
    /// happened — `false` when the store has nothing for the
    /// `(class, controller)` pair or the knowledge is shape-incompatible,
    /// in which case the controller is left cold and untouched.
    pub fn seed(&mut self, class: SessionClass, controller: &mut dyn Controller) -> bool {
        self.seed_attempts += 1;
        let key = (class, controller.name().to_owned());
        let Some(entry) = self.entries.get(&key) else {
            return false;
        };
        if controller.restore(&entry.snapshot).is_ok() {
            self.seeds_served += 1;
            true
        } else {
            false
        }
    }

    /// Total publishes accepted (all classes).
    pub fn publishes(&self) -> u64 {
        self.publishes
    }

    /// Sessions successfully warm-started from the store.
    pub fn seeds_served(&self) -> u64 {
        self.seeds_served
    }

    /// Seeding attempts, successful or not.
    pub fn seed_attempts(&self) -> u64 {
        self.seed_attempts
    }

    /// Folds every entry of `other` into this store under this store's
    /// merge policy — the inter-shard sync primitive. Knowledge-wise
    /// this is exactly what publishing other's merged entries here would
    /// do (the visit-weighted merge is associative: weighting by
    /// accumulated visit totals makes merging two merged entries equal
    /// the flat fold over all contributors), and contribution counts
    /// accumulate. The `publishes`/seed counters are **not** touched:
    /// absorbing moves knowledge between stores, it is not a session
    /// finishing — so per-shard invariants like "publishes == sessions
    /// served" survive any number of syncs.
    pub fn absorb(&mut self, other: &KnowledgeStore) {
        for (key, incoming) in &other.entries {
            match self.entries.get_mut(key) {
                None => {
                    self.entries.insert(
                        key.clone(),
                        ClassKnowledge {
                            snapshot: incoming.snapshot.clone(),
                            contributions: incoming.contributions,
                            // Derived state: rebuilt lazily (and exactly)
                            // on the first merge, same as after a restore.
                            acc: None,
                        },
                    );
                }
                Some(existing) => {
                    existing.contributions += incoming.contributions;
                    let replace = match self.policy {
                        MergePolicy::Replace => true,
                        MergePolicy::VisitWeighted => !existing.merge_in(&incoming.snapshot),
                    };
                    if replace {
                        existing.snapshot = incoming.snapshot.clone();
                        existing.acc = None;
                    }
                }
            }
        }
    }

    /// Replaces this store's knowledge with `global`'s — the second half
    /// of a sync round: shards are absorbed into a fleet-wide fold, then
    /// each shard adopts the fold so all regions seed from the same
    /// merged tables. Local counters (`publishes`, seeds) are kept;
    /// entries and their contribution counts become the global ones.
    pub fn adopt_knowledge(&mut self, global: &KnowledgeStore) {
        self.entries = global
            .entries
            .iter()
            .map(|(key, entry)| {
                (
                    key.clone(),
                    ClassKnowledge {
                        snapshot: entry.snapshot.clone(),
                        contributions: entry.contributions,
                        acc: None,
                    },
                )
            })
            .collect();
    }

    /// Serializes the whole store — merge policy, every class's merged
    /// knowledge, contribution and service counters — through the
    /// std-only snapshot codec, so accumulated fleet knowledge survives
    /// process restarts and scenario sweeps can chain runs.
    ///
    /// The encoding is canonical (entries in key order, each policy in
    /// its canonical snapshot form), so snapshot → restore → snapshot is
    /// byte-identical. The incremental merge accumulator is *not*
    /// encoded: it is derived state, rebuilt lazily on the first merge
    /// after a restore, and the rebuild is exact — merges after a
    /// restore produce bitwise the same tables as merges without one.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        for &b in STORE_MAGIC {
            w.put_u8(b);
        }
        w.put_u16(STORE_VERSION);
        w.put_u8(match self.policy {
            MergePolicy::Replace => 0,
            MergePolicy::VisitWeighted => 1,
        });
        w.put_u64(self.publishes);
        w.put_u64(self.seeds_served);
        w.put_u64(self.seed_attempts);
        w.put_u32(self.entries.len() as u32);
        for ((class, controller), entry) in &self.entries {
            w.put_u8(match class {
                SessionClass::Hr => 0,
                SessionClass::Lr => 1,
            });
            w.put_str(controller);
            w.put_u64(entry.contributions);
            w.put_bytes(&entry.snapshot.to_bytes());
        }
        w.into_bytes()
    }

    /// Rehydrates a store captured by [`KnowledgeStore::snapshot`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the bytes are not a knowledge-store
    /// snapshot, were written by a newer codec, or any embedded policy
    /// snapshot fails to decode.
    pub fn restore(bytes: &[u8]) -> Result<KnowledgeStore, SnapshotError> {
        if bytes.len() < STORE_MAGIC.len() || &bytes[..STORE_MAGIC.len()] != STORE_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = SnapshotReader::new(&bytes[STORE_MAGIC.len()..]);
        let version = r.get_u16()?;
        if version > STORE_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let policy = match r.get_u8()? {
            0 => MergePolicy::Replace,
            1 => MergePolicy::VisitWeighted,
            _ => return Err(SnapshotError::Corrupt("unknown merge policy")),
        };
        let publishes = r.get_u64()?;
        let seeds_served = r.get_u64()?;
        let seed_attempts = r.get_u64()?;
        let n_entries = r.get_u32()?;
        let mut entries = BTreeMap::new();
        for _ in 0..n_entries {
            let class = match r.get_u8()? {
                0 => SessionClass::Hr,
                1 => SessionClass::Lr,
                _ => return Err(SnapshotError::Corrupt("unknown session class")),
            };
            let controller = r.get_str()?;
            let contributions = r.get_u64()?;
            let snapshot = PolicySnapshot::from_bytes(&r.get_bytes()?)?;
            if entries
                .insert(
                    (class, controller),
                    ClassKnowledge {
                        snapshot,
                        contributions,
                        acc: None,
                    },
                )
                .is_some()
            {
                return Err(SnapshotError::Corrupt("duplicate knowledge entry"));
            }
        }
        r.expect_end()?;
        Ok(KnowledgeStore {
            policy,
            entries,
            publishes,
            seeds_served,
            seed_attempts,
        })
    }
}

/// Per-cell visit-weighted merge of two knowledge snapshots, or `None`
/// when they are structurally incompatible.
///
/// The naive pairwise reference the store used before the incremental
/// accumulator: it re-derives both sides' visit matrices and rebuilds
/// the transition map per call. Kept under test as the oracle the
/// incremental [`ClassKnowledge::merge_in`] is proven equivalent to.
#[cfg(test)]
fn visit_weighted_merge(old: &PolicySnapshot, new: &PolicySnapshot) -> Option<PolicySnapshot> {
    if old.controller != new.controller || old.agents.len() != new.agents.len() {
        return None;
    }
    let mut agents = Vec::with_capacity(old.agents.len());
    for (a, b) in old.agents.iter().zip(&new.agents) {
        agents.push(merge_agent(a, b)?);
    }
    Some(PolicySnapshot {
        controller: new.controller.clone(),
        // The operating point follows the newest contributor: knobs are a
        // live setting, not an average-able statistic.
        knobs: new.knobs,
        exploration_decisions: old.exploration_decisions + new.exploration_decisions,
        exploitation_decisions: old.exploitation_decisions + new.exploitation_decisions,
        agents,
        extra: Vec::new(),
    })
}

#[cfg(test)]
fn merge_agent(old: &AgentSnapshot, new: &AgentSnapshot) -> Option<AgentSnapshot> {
    if old.kind != new.kind || old.n_states != new.n_states || old.n_actions != new.n_actions {
        return None;
    }
    let visits_old = old.visit_matrix();
    let visits_new = new.visit_matrix();
    let q = old
        .q
        .iter()
        .zip(&new.q)
        .enumerate()
        .map(|(i, (&qo, &qn))| {
            let (vo, vn) = (f64::from(visits_old[i]), f64::from(visits_new[i]));
            if vo + vn > 0.0 {
                (vo * qo + vn * qn) / (vo + vn)
            } else {
                0.5 * (qo + qn)
            }
        })
        .collect();
    let action_counts = old
        .action_counts
        .iter()
        .zip(&new.action_counts)
        .map(|(&a, &b)| a.saturating_add(b))
        .collect();
    let mut counts: BTreeMap<(u32, u32, u32), u32> = BTreeMap::new();
    for t in old.transitions.iter().chain(&new.transitions) {
        let slot = counts.entry((t.state, t.action, t.next_state)).or_insert(0);
        *slot = slot.saturating_add(t.count);
    }
    let transitions = counts
        .into_iter()
        .map(|((state, action, next_state), count)| TransitionRecord {
            state,
            action,
            next_state,
            count,
        })
        .collect();
    Some(AgentSnapshot {
        kind: old.kind,
        n_states: old.n_states,
        n_actions: old.n_actions,
        q,
        action_counts,
        transitions,
    })
}

/// Wraps a controller factory so every session it builds is seeded from
/// the store before its first frame. Cold starts happen transparently
/// when the store has no compatible knowledge for the session's class.
pub fn warm_start_factory(
    store: SharedKnowledgeStore,
    base: ControllerFactory,
) -> ControllerFactory {
    Box::new(move |request| {
        let mut controller = base(request);
        if let Ok(mut store) = store.lock() {
            store.seed(SessionClass::of_request(request), controller.as_mut());
        }
        controller
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_core::{Constraints, KnobSettings, MamutConfig, MamutController, Observation};

    fn trained(seed: u64, frames: u64) -> MamutController {
        let mut ctl = MamutController::new(MamutConfig::paper_hr().with_seed(seed)).unwrap();
        let c = Constraints::paper_defaults();
        for f in 0..frames {
            let o = Observation {
                fps: 24.0 + (f % 5) as f64,
                psnr_db: 34.0,
                bitrate_mbps: 4.0,
                power_w: 80.0,
            };
            ctl.begin_frame(f, &o, &c);
            ctl.end_frame(f, &o, &c);
        }
        ctl
    }

    #[test]
    fn publish_and_seed_round_trip() {
        let teacher = trained(1, 30_000);
        let mut store = KnowledgeStore::new(MergePolicy::Replace);
        assert_eq!(
            store.publish(SessionClass::Hr, &Controller::snapshot(&teacher)),
            PublishOutcome::Inserted
        );
        let mut pupil = MamutController::new(MamutConfig::paper_hr().with_seed(9)).unwrap();
        assert!(store.seed(SessionClass::Hr, &mut pupil));
        assert_eq!(store.seeds_served(), 1);
        // The pupil adopted the teacher's tables.
        let k = store.knowledge(SessionClass::Hr, "mamut").unwrap();
        assert_eq!(Controller::snapshot(&pupil).agents, k.snapshot.agents);
        // No LR knowledge yet.
        let mut lr = MamutController::new(MamutConfig::paper_lr()).unwrap();
        assert!(!store.seed(SessionClass::Lr, &mut lr));
    }

    #[test]
    fn incompatible_knowledge_leaves_controller_cold() {
        // HR knowledge (12 thread actions) cannot seed an LR controller.
        let teacher = trained(1, 5_000);
        let mut store = KnowledgeStore::new(MergePolicy::Replace);
        store.publish(SessionClass::Lr, &Controller::snapshot(&teacher)); // mislabeled
        let mut pupil = MamutController::new(MamutConfig::paper_lr()).unwrap();
        assert!(!store.seed(SessionClass::Lr, &mut pupil));
        assert_eq!(store.seeds_served(), 0);
        assert_eq!(store.seed_attempts(), 1);
    }

    #[test]
    fn foreign_controller_publishes_never_clobber_class_knowledge() {
        // A mixed fleet: a heuristic session finishing must not displace
        // the MAMUT tables for its class — entries are keyed by
        // (class, controller tag).
        use mamut_baselines::{HeuristicConfig, HeuristicController};
        let teacher = trained(1, 30_000);
        let mut store = KnowledgeStore::new(MergePolicy::VisitWeighted);
        store.publish(SessionClass::Hr, &Controller::snapshot(&teacher));
        let heuristic = HeuristicController::new(HeuristicConfig::paper_hr()).unwrap();
        assert_eq!(
            store.publish(SessionClass::Hr, &Controller::snapshot(&heuristic)),
            PublishOutcome::Inserted,
            "tableless snapshot lands in its own entry"
        );
        // MAMUT seeding still works off the intact tables.
        let mut pupil = MamutController::new(MamutConfig::paper_hr().with_seed(3)).unwrap();
        assert!(store.seed(SessionClass::Hr, &mut pupil));
        assert!(store
            .knowledge(SessionClass::Hr, "heuristic")
            .is_some_and(|k| k.snapshot.agents.is_empty()));
    }

    #[test]
    fn visit_weighted_merge_weights_by_visits() {
        let mut a = PolicySnapshot::tableless("t", KnobSettings::new(32, 4, 2.6));
        a.agents.push(AgentSnapshot {
            kind: mamut_core::AgentKind::Qp,
            n_states: 1,
            n_actions: 1,
            q: vec![1.0],
            action_counts: vec![3],
            transitions: vec![TransitionRecord {
                state: 0,
                action: 0,
                next_state: 0,
                count: 3,
            }],
        });
        let mut b = a.clone();
        b.agents[0].q = vec![4.0];
        b.agents[0].action_counts = vec![1];
        b.agents[0].transitions[0].count = 1;
        let merged = visit_weighted_merge(&a, &b).unwrap();
        // (3·1 + 1·4) / 4 = 1.75
        assert!((merged.agents[0].q[0] - 1.75).abs() < 1e-12);
        assert_eq!(merged.agents[0].action_counts, vec![4]);
        assert_eq!(merged.agents[0].transitions[0].count, 4);
    }

    #[test]
    fn merge_policy_governs_publishes() {
        let teacher_a = trained(1, 8_000);
        let teacher_b = trained(2, 8_000);
        let mut store = KnowledgeStore::new(MergePolicy::VisitWeighted);
        store.publish(SessionClass::Hr, &Controller::snapshot(&teacher_a));
        assert_eq!(
            store.publish(SessionClass::Hr, &Controller::snapshot(&teacher_b)),
            PublishOutcome::Merged
        );
        let k = store.knowledge(SessionClass::Hr, "mamut").unwrap();
        assert_eq!(k.contributions, 2);
        let merged_visits: u64 = k.snapshot.agents.iter().map(|a| a.total_visits()).sum();
        let sep: u64 = [&teacher_a, &teacher_b]
            .iter()
            .flat_map(|t| Controller::snapshot(*t).agents)
            .map(|a| a.total_visits())
            .sum();
        assert_eq!(merged_visits, sep, "visits accumulate across publishes");
        // Structurally different knowledge replaces instead of merging.
        let lr = MamutController::new(MamutConfig::paper_lr()).unwrap();
        assert_eq!(
            store.publish(SessionClass::Hr, &Controller::snapshot(&lr)),
            PublishOutcome::Replaced
        );
    }

    #[test]
    fn incremental_store_merge_equals_the_pairwise_fold() {
        // The store's in-place accumulator must produce exactly what a
        // left fold of the naive pairwise merge produces — same Q-values
        // (bitwise), same counts, same canonical transition order —
        // across a chain of differently trained contributors.
        let teachers: Vec<_> = (0..4).map(|i| trained(10 + i, 4_000 + 2_000 * i)).collect();
        let snapshots: Vec<_> = teachers
            .iter()
            .map(|t| Controller::snapshot(t).into_knowledge())
            .collect();

        let mut store = KnowledgeStore::new(MergePolicy::VisitWeighted);
        for s in &snapshots {
            store.publish(SessionClass::Hr, s);
        }
        let merged = &store.knowledge(SessionClass::Hr, "mamut").unwrap().snapshot;

        let folded = snapshots[1..].iter().fold(snapshots[0].clone(), |acc, s| {
            visit_weighted_merge(&acc, s).expect("same shape")
        });

        assert_eq!(merged.agents.len(), folded.agents.len());
        for (m, f) in merged.agents.iter().zip(&folded.agents) {
            let m_bits: Vec<u64> = m.q.iter().map(|q| q.to_bits()).collect();
            let f_bits: Vec<u64> = f.q.iter().map(|q| q.to_bits()).collect();
            assert_eq!(m_bits, f_bits, "Q tables must match bitwise");
            assert_eq!(m.action_counts, f.action_counts);
            assert_eq!(m.transitions, f.transitions);
        }
        assert_eq!(merged.exploration_decisions, folded.exploration_decisions);
        assert_eq!(merged.exploitation_decisions, folded.exploitation_decisions);
        assert_eq!(merged.knobs, folded.knobs);
    }

    #[test]
    fn replace_after_merging_resets_the_accumulator() {
        // A shape-incompatible publish replaces the entry; merges after
        // that must accumulate from the replacement, not from stale
        // visit totals of the displaced knowledge.
        let hr_a = trained(1, 6_000);
        let hr_b = trained(2, 6_000);
        let mut store = KnowledgeStore::new(MergePolicy::VisitWeighted);
        store.publish(SessionClass::Hr, &Controller::snapshot(&hr_a));
        store.publish(SessionClass::Hr, &Controller::snapshot(&hr_b));
        // LR tables have a different shape: forces a replace.
        let lr = MamutController::new(MamutConfig::paper_lr().with_seed(3)).unwrap();
        assert_eq!(
            store.publish(SessionClass::Hr, &Controller::snapshot(&lr)),
            PublishOutcome::Replaced
        );
        let lr_visits: u64 = Controller::snapshot(&lr)
            .agents
            .iter()
            .map(|a| a.total_visits())
            .sum();
        let k = store.knowledge(SessionClass::Hr, "mamut").unwrap();
        let stored: u64 = k.snapshot.agents.iter().map(|a| a.total_visits()).sum();
        assert_eq!(stored, lr_visits, "replacement discards old visit totals");
        // And a follow-up merge accumulates on top of the replacement.
        let lr2 = MamutController::new(MamutConfig::paper_lr().with_seed(4)).unwrap();
        assert_eq!(
            store.publish(SessionClass::Hr, &Controller::snapshot(&lr2)),
            PublishOutcome::Merged
        );
    }

    #[test]
    fn visit_weighted_merge_into_an_empty_store_inserts() {
        // The merge policy only matters from the second publish on: the
        // first contribution to an empty store must land as-is.
        let teacher = trained(4, 5_000);
        let mut store = KnowledgeStore::new(MergePolicy::VisitWeighted);
        assert_eq!(
            store.publish(SessionClass::Hr, &Controller::snapshot(&teacher)),
            PublishOutcome::Inserted
        );
        let k = store.knowledge(SessionClass::Hr, "mamut").unwrap();
        assert_eq!(k.contributions, 1);
        assert_eq!(
            k.snapshot.agents,
            Controller::snapshot(&teacher).into_knowledge().agents
        );
    }

    #[test]
    fn visit_weighted_merge_with_zero_total_visits_averages() {
        // Neither side has visited the cell: the merge cannot weight by
        // visits, so it falls back to the arithmetic mean instead of
        // dividing by zero.
        let mut a = PolicySnapshot::tableless("t", KnobSettings::new(32, 4, 2.6));
        a.agents.push(AgentSnapshot {
            kind: mamut_core::AgentKind::Qp,
            n_states: 1,
            n_actions: 1,
            q: vec![2.0],
            action_counts: vec![0],
            transitions: Vec::new(),
        });
        let mut b = a.clone();
        b.agents[0].q = vec![6.0];
        let merged = visit_weighted_merge(&a, &b).unwrap();
        assert!((merged.agents[0].q[0] - 4.0).abs() < 1e-12, "plain average");
        assert_eq!(merged.agents[0].action_counts, vec![0]);
        assert!(merged.agents[0].transitions.is_empty());
        // Through the store: two zero-visit publishes still merge cleanly.
        let mut store = KnowledgeStore::new(MergePolicy::VisitWeighted);
        store.publish(SessionClass::Lr, &a);
        assert_eq!(store.publish(SessionClass::Lr, &b), PublishOutcome::Merged);
        let k = store.knowledge(SessionClass::Lr, "t").unwrap();
        assert!((k.snapshot.agents[0].q[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_knowledge_without_counting_publishes() {
        let (a, b) = (trained(1, 8_000), trained(2, 8_000));
        // Reference: both sessions publish into one store.
        let mut flat = KnowledgeStore::new(MergePolicy::VisitWeighted);
        flat.publish(SessionClass::Hr, &Controller::snapshot(&a));
        flat.publish(SessionClass::Hr, &Controller::snapshot(&b));
        // Sharded: one publish per store, then a sync absorb.
        let mut east = KnowledgeStore::new(MergePolicy::VisitWeighted);
        let mut west = KnowledgeStore::new(MergePolicy::VisitWeighted);
        east.publish(SessionClass::Hr, &Controller::snapshot(&a));
        west.publish(SessionClass::Hr, &Controller::snapshot(&b));
        east.absorb(&west);
        assert_eq!(east.publishes(), 1, "absorb is not a publish");
        let merged = east.knowledge(SessionClass::Hr, "mamut").unwrap();
        let reference = flat.knowledge(SessionClass::Hr, "mamut").unwrap();
        assert_eq!(merged.contributions, 2);
        assert_eq!(
            merged.snapshot.to_bytes(),
            reference.snapshot.to_bytes(),
            "absorbing a single-contributor store equals publishing it here"
        );
        // Absorbing into an empty store copies entries wholesale.
        let mut empty = KnowledgeStore::new(MergePolicy::VisitWeighted);
        empty.absorb(&east);
        assert_eq!(empty.publishes(), 0);
        assert_eq!(
            empty
                .knowledge(SessionClass::Hr, "mamut")
                .unwrap()
                .snapshot
                .to_bytes(),
            merged.snapshot.to_bytes()
        );
    }

    #[test]
    fn adopt_keeps_local_counters_and_takes_global_tables() {
        let mut global = KnowledgeStore::new(MergePolicy::VisitWeighted);
        global.publish(SessionClass::Hr, &Controller::snapshot(&trained(1, 8_000)));
        global.publish(SessionClass::Hr, &Controller::snapshot(&trained(2, 8_000)));
        let mut shard = KnowledgeStore::new(MergePolicy::VisitWeighted);
        shard.publish(SessionClass::Hr, &Controller::snapshot(&trained(3, 4_000)));
        shard.adopt_knowledge(&global);
        assert_eq!(shard.publishes(), 1, "local history survives adoption");
        let adopted = shard.knowledge(SessionClass::Hr, "mamut").unwrap();
        let source = global.knowledge(SessionClass::Hr, "mamut").unwrap();
        assert_eq!(adopted.contributions, source.contributions);
        assert_eq!(adopted.snapshot.to_bytes(), source.snapshot.to_bytes());
        // The adopted entry merges cleanly afterwards (acc rebuilds).
        assert_eq!(
            shard.publish(SessionClass::Hr, &Controller::snapshot(&trained(4, 4_000))),
            PublishOutcome::Merged
        );
    }

    #[test]
    fn store_snapshot_restore_round_trips_byte_identically() {
        let mut store = KnowledgeStore::new(MergePolicy::VisitWeighted);
        store.publish(SessionClass::Hr, &Controller::snapshot(&trained(1, 8_000)));
        store.publish(SessionClass::Hr, &Controller::snapshot(&trained(2, 8_000)));
        store.publish(SessionClass::Lr, &{
            let lr = MamutController::new(MamutConfig::paper_lr().with_seed(3)).unwrap();
            Controller::snapshot(&lr)
        });
        let mut pupil = MamutController::new(MamutConfig::paper_hr().with_seed(9)).unwrap();
        assert!(store.seed(SessionClass::Hr, &mut pupil));

        let bytes = store.snapshot();
        let back = KnowledgeStore::restore(&bytes).unwrap();
        assert_eq!(back.policy(), MergePolicy::VisitWeighted);
        assert_eq!(back.publishes(), store.publishes());
        assert_eq!(back.seeds_served(), store.seeds_served());
        assert_eq!(back.seed_attempts(), store.seed_attempts());
        assert_eq!(back.snapshot(), bytes, "re-encoding is byte-identical");

        // Warm starts survive the "restart": the restored store seeds a
        // fresh controller with exactly the tables the original would.
        let mut a = MamutController::new(MamutConfig::paper_hr().with_seed(7)).unwrap();
        let mut b = MamutController::new(MamutConfig::paper_hr().with_seed(7)).unwrap();
        let mut back = back;
        assert!(store.seed(SessionClass::Hr, &mut a));
        assert!(back.seed(SessionClass::Hr, &mut b));
        assert_eq!(
            Controller::snapshot(&a).to_bytes(),
            Controller::snapshot(&b).to_bytes()
        );
    }

    #[test]
    fn merges_after_a_restore_match_merges_without_one() {
        // The accumulator is derived state: a store that restarts
        // between publishes must end bitwise identical to one that
        // never did.
        let snaps: Vec<_> = (0..3)
            .map(|i| Controller::snapshot(&trained(20 + i, 5_000)))
            .collect();
        let mut continuous = KnowledgeStore::new(MergePolicy::VisitWeighted);
        continuous.publish(SessionClass::Hr, &snaps[0]);
        continuous.publish(SessionClass::Hr, &snaps[1]);

        let mut restarted = KnowledgeStore::restore(
            &{
                let mut s = KnowledgeStore::new(MergePolicy::VisitWeighted);
                s.publish(SessionClass::Hr, &snaps[0]);
                s.publish(SessionClass::Hr, &snaps[1]);
                s
            }
            .snapshot(),
        )
        .unwrap();

        continuous.publish(SessionClass::Hr, &snaps[2]);
        restarted.publish(SessionClass::Hr, &snaps[2]);
        assert_eq!(continuous.snapshot(), restarted.snapshot());
    }

    #[test]
    fn store_restore_rejects_mangled_streams() {
        let mut store = KnowledgeStore::new(MergePolicy::Replace);
        store.publish(SessionClass::Hr, &Controller::snapshot(&trained(1, 2_000)));
        let bytes = store.snapshot();
        assert!(matches!(
            KnowledgeStore::restore(b"NOTASTORE...."),
            Err(SnapshotError::BadMagic)
        ));
        let mut newer = bytes.clone();
        newer[8] = 0xFF; // bump the version word
        assert!(matches!(
            KnowledgeStore::restore(&newer),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        for cut in 8..bytes.len() {
            assert!(
                KnowledgeStore::restore(&bytes[..cut]).is_err(),
                "cut at {cut} slipped through"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert!(KnowledgeStore::restore(&trailing).is_err());
    }

    #[test]
    fn warm_start_factory_with_no_class_entry_stays_cold() {
        // An empty store: the factory must hand out the base controller
        // untouched (and count the failed attempt), not fail or block.
        let shared = KnowledgeStore::new(MergePolicy::VisitWeighted).into_shared();
        let factory = warm_start_factory(
            Arc::clone(&shared),
            Box::new(|req| {
                let cfg = if req.hr {
                    MamutConfig::paper_hr()
                } else {
                    MamutConfig::paper_lr()
                };
                Box::new(MamutController::new(cfg.with_seed(req.seed)).unwrap())
            }),
        );
        let request = SessionRequest {
            id: 0,
            arrival_s: 0.0,
            hr: true,
            live: false,
            frames: 100,
            seed: 3,
        };
        let controller = factory(&request);
        let visits: u64 = controller
            .snapshot()
            .agents
            .iter()
            .map(|a| a.total_visits())
            .sum();
        assert_eq!(visits, 0, "cold start: no knowledge to adopt");
        let store = shared.lock().unwrap();
        assert_eq!(store.seed_attempts(), 1);
        assert_eq!(store.seeds_served(), 0);
        assert!(store.knowledge(SessionClass::Hr, "mamut").is_none());
    }

    #[test]
    fn warm_start_factory_seeds_transparently() {
        let teacher = trained(3, 30_000);
        let mut store = KnowledgeStore::new(MergePolicy::Replace);
        store.publish(SessionClass::Hr, &Controller::snapshot(&teacher));
        let shared = store.into_shared();
        let factory = warm_start_factory(
            Arc::clone(&shared),
            Box::new(|req| {
                let cfg = if req.hr {
                    MamutConfig::paper_hr()
                } else {
                    MamutConfig::paper_lr()
                };
                Box::new(MamutController::new(cfg.with_seed(req.seed)).unwrap())
            }),
        );
        let hr_request = SessionRequest {
            id: 0,
            arrival_s: 0.0,
            hr: true,
            live: false,
            frames: 100,
            seed: 11,
        };
        let visits = |c: &dyn Controller| -> u64 {
            c.snapshot().agents.iter().map(|a| a.total_visits()).sum()
        };
        let warm = factory(&hr_request);
        assert!(visits(warm.as_ref()) > 0, "tables adopted");
        let lr_request = SessionRequest {
            hr: false,
            ..hr_request.clone()
        };
        let cold = factory(&lr_request);
        assert_eq!(visits(cold.as_ref()), 0, "no LR knowledge");
        assert_eq!(shared.lock().unwrap().seeds_served(), 1);
        assert_eq!(shared.lock().unwrap().seed_attempts(), 2);
    }
}
