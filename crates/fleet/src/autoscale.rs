//! Elastic pool sizing: grow and shrink the node pool with demand.
//!
//! The paper keeps one server inside real-time/power budgets; at fleet
//! scale the pool itself must follow load — the KaaS resource-management
//! line and digital-twin collaborative transcoding both provision
//! capacity ahead of predicted demand instead of paying for a worst-case
//! pool around the clock. The [`Autoscaler`] is consulted once per epoch
//! boundary on the coordinating thread (so scaling inherits the fleet's
//! worker-count determinism) and answers with a pool-size decision; the
//! fleet executes it:
//!
//! * **grow** — commission fresh nodes through the installed
//!   [`NodeProvisioner`](crate::NodeProvisioner), clock-aligned to the
//!   boundary and (when a knowledge store is attached) warm-starting
//!   every session they build from the fleet's merged knowledge;
//! * **shrink** — drain a node's live sessions to its peers via the
//!   migration path ([`FleetNode::drain`](crate::FleetNode::drain) →
//!   [`attach_session`](crate::FleetNode::attach_session)), then retire
//!   it. Drain always precedes decommission: no session is ever dropped.
//!
//! Three policies ship: [`ThresholdScaler`] reacts to observed
//! utilization/QoS with hysteresis and a cooldown, [`PredictiveScaler`]
//! follows an EWMA of the arrival rate through Little's law, and
//! [`ForecastScaler`] provisions *ahead* of predicted load by feeding
//! any [`Forecaster`](crate::Forecaster) (seasonal-naive, Holt-Winters)
//! through the same law.

use crate::dispatch::NodeView;
use crate::forecast::Forecaster;

/// What the autoscaler sees at one epoch boundary. Views cover the
/// *active* pool only — draining or retired nodes are no longer capacity.
#[derive(Debug)]
pub struct ScaleSignals<'a> {
    /// The epoch about to be simulated.
    pub epoch: u64,
    /// Epoch length (virtual seconds).
    pub epoch_s: f64,
    /// Read-only views of the active nodes, in id order.
    pub active: &'a [NodeView],
    /// Arrivals due for dispatch at this boundary.
    pub arrivals_due: usize,
    /// Sessions parked in the retry queue by a gating dispatcher.
    pub queued_sessions: usize,
    /// Arrivals still in the future (demand yet to come).
    pub pending_sessions: usize,
}

impl ScaleSignals<'_> {
    /// Mean thread-demand utilization over the active pool (0.0 when
    /// the pool is empty).
    pub fn mean_utilization(&self) -> f64 {
        if self.active.is_empty() {
            0.0
        } else {
            self.active.iter().map(NodeView::utilization).sum::<f64>() / self.active.len() as f64
        }
    }

    /// Mean QoS violation percentage over the active pool (0.0 when the
    /// pool is empty).
    pub fn mean_qos_violation_percent(&self) -> f64 {
        if self.active.is_empty() {
            0.0
        } else {
            self.active
                .iter()
                .map(|n| n.qos_violation_percent)
                .sum::<f64>()
                / self.active.len() as f64
        }
    }

    /// Sessions currently in the system: resident on active nodes or
    /// waiting in the retry queue.
    pub fn sessions_in_system(&self) -> usize {
        self.active.iter().map(|n| n.active_sessions).sum::<usize>() + self.queued_sessions
    }
}

/// One epoch boundary's pool-size decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the pool as it is.
    Hold,
    /// Commission this many fresh nodes.
    Grow(usize),
    /// Drain and retire this many nodes.
    Shrink(usize),
}

/// Where an autoscaler's last decision came from: a hand-tuned rule, a
/// learned policy exploiting its value estimates, or a learned policy
/// exploring. The fleet folds this into its per-run policy counters
/// ([`FleetSummary`](crate::FleetSummary) renders them), mirroring the
/// per-session exploration/exploitation split of the paper's agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySource {
    /// A hand-tuned rule (thresholds, EWMA, forecasting).
    Heuristic,
    /// A learned policy's greedy (argmax) pick.
    Greedy,
    /// A learned policy's ε-greedy exploratory draw.
    Exploratory,
}

/// An elastic pool-sizing policy, consulted once per epoch boundary.
///
/// `Send` for the same reason as [`Dispatcher`](crate::Dispatcher): the
/// fleet owning it may move across threads, but planning itself always
/// runs on the coordinating thread.
pub trait Autoscaler: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Plans this boundary's pool change. The fleet clamps the result to
    /// its own limits: shrink never empties the pool (at least one
    /// active node survives) and grow never pushes the lifetime pool
    /// past `FleetConfig::max_pool_nodes`.
    fn plan(&mut self, signals: &ScaleSignals) -> ScaleDecision;

    /// Where the most recent [`Autoscaler::plan`] decision came from.
    /// Hand-tuned policies keep the default; learned policies report
    /// greedy vs. exploratory so the fleet's policy counters mirror the
    /// per-session exploration stats.
    fn decision_source(&self) -> PolicySource {
        PolicySource::Heuristic
    }

    /// Optional provenance for the most recent [`Autoscaler::plan`]
    /// decision, recorded into the telemetry event stream when tracing
    /// is enabled (the fleet never calls this otherwise, so policies
    /// can format freely without taxing the hot path). Learned policies
    /// report which joint action they took and why; heuristics can name
    /// the watermark that fired.
    fn decision_detail(&self) -> Option<String> {
        None
    }
}

/// Reactive scaling on utilization and QoS watermarks.
///
/// Grows when the pool runs hot (mean utilization above the high
/// watermark, QoS distress above the ceiling, or a gating dispatcher
/// queueing arrivals it cannot place); shrinks when the pool idles below
/// the low watermark with QoS healthy. The gap between the watermarks is
/// the hysteresis band — a fleet sitting between them holds — and a
/// cooldown keeps consecutive scaling events apart so one burst cannot
/// thrash the pool.
#[derive(Debug, Clone)]
pub struct ThresholdScaler {
    /// Grow when mean utilization exceeds this (high watermark).
    pub grow_above: f64,
    /// Shrink when mean utilization falls below this (low watermark;
    /// keep well under `grow_above` — the gap is the hysteresis band).
    pub shrink_below: f64,
    /// Grow when the pool-mean QoS violation percentage exceeds this,
    /// regardless of utilization (QoS headroom exhausted).
    pub qos_ceiling_percent: f64,
    /// Never shrink below this many active nodes.
    pub min_nodes: usize,
    /// Never grow above this many active nodes.
    pub max_nodes: usize,
    /// Epochs that must pass after a scaling event before the next one.
    pub cooldown_epochs: u64,
    last_scale_epoch: Option<u64>,
}

impl ThresholdScaler {
    /// Conservative defaults: grow above 75 % / shrink below 30 %
    /// utilization, 10 % QoS ceiling, pool of 1–8 nodes, 3-epoch
    /// cooldown.
    pub fn new() -> Self {
        ThresholdScaler {
            grow_above: 0.75,
            shrink_below: 0.30,
            qos_ceiling_percent: 10.0,
            min_nodes: 1,
            max_nodes: 8,
            cooldown_epochs: 3,
            last_scale_epoch: None,
        }
    }

    /// Overrides the utilization watermarks (hysteresis band between).
    pub fn with_watermarks(mut self, shrink_below: f64, grow_above: f64) -> Self {
        self.shrink_below = shrink_below;
        self.grow_above = grow_above;
        self
    }

    /// Overrides the pool-size limits.
    pub fn with_limits(mut self, min_nodes: usize, max_nodes: usize) -> Self {
        self.min_nodes = min_nodes.max(1);
        self.max_nodes = max_nodes.max(self.min_nodes);
        self
    }

    /// Overrides the QoS ceiling (percent of frames under target).
    pub fn with_qos_ceiling(mut self, percent: f64) -> Self {
        self.qos_ceiling_percent = percent;
        self
    }

    /// Overrides the cooldown between scaling events.
    pub fn with_cooldown(mut self, epochs: u64) -> Self {
        self.cooldown_epochs = epochs;
        self
    }

    fn cooling_down(&self, epoch: u64) -> bool {
        self.last_scale_epoch
            .is_some_and(|last| epoch.saturating_sub(last) < self.cooldown_epochs)
    }
}

impl Default for ThresholdScaler {
    fn default() -> Self {
        ThresholdScaler::new()
    }
}

impl Autoscaler for ThresholdScaler {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn plan(&mut self, signals: &ScaleSignals) -> ScaleDecision {
        if self.cooling_down(signals.epoch) {
            return ScaleDecision::Hold;
        }
        let pool = signals.active.len();
        let utilization = signals.mean_utilization();
        let qos = signals.mean_qos_violation_percent();
        let hot = utilization > self.grow_above
            || qos > self.qos_ceiling_percent
            || signals.queued_sessions > 0;
        if hot && pool < self.max_nodes {
            self.last_scale_epoch = Some(signals.epoch);
            return ScaleDecision::Grow(1);
        }
        let idle = utilization < self.shrink_below
            && qos <= self.qos_ceiling_percent
            && signals.queued_sessions == 0;
        if idle && pool > self.min_nodes {
            self.last_scale_epoch = Some(signals.epoch);
            return ScaleDecision::Shrink(1);
        }
        ScaleDecision::Hold
    }
}

/// Predictive scaling on an EWMA of the arrival rate.
///
/// Tracks the churn workload's arrival rate with an exponentially
/// weighted moving average and sizes the pool by Little's law: expected
/// concurrency `L = λ · W` (arrival rate times expected session
/// residence), plus the queue backlog, divided by the per-node session
/// capacity. Capacity follows *predicted* load rather than waiting for
/// utilization to hurt — the digital-twin line of collaborative
/// transcoding.
#[derive(Debug, Clone)]
pub struct PredictiveScaler {
    /// EWMA smoothing factor in `(0, 1]`; higher chases bursts faster.
    pub alpha: f64,
    /// Expected session residence time (virtual seconds) — the `W` of
    /// Little's law.
    pub mean_session_s: f64,
    /// Concurrent sessions one node is provisioned for.
    pub sessions_per_node: f64,
    /// Never shrink below this many active nodes.
    pub min_nodes: usize,
    /// Never grow above this many active nodes.
    pub max_nodes: usize,
    /// Epochs that must pass after a scaling event before the next one.
    pub cooldown_epochs: u64,
    rate_hz: f64,
    primed: bool,
    last_scale_epoch: Option<u64>,
}

impl PredictiveScaler {
    /// Defaults: α = 0.3, 20 s expected residence, 4 sessions per node,
    /// pool of 1–16 nodes, 2-epoch cooldown.
    pub fn new() -> Self {
        PredictiveScaler {
            alpha: 0.3,
            mean_session_s: 20.0,
            sessions_per_node: 4.0,
            min_nodes: 1,
            max_nodes: 16,
            cooldown_epochs: 2,
            rate_hz: 0.0,
            primed: false,
            last_scale_epoch: None,
        }
    }

    /// Overrides the EWMA smoothing factor (clamped into `(0, 1]`).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.clamp(1e-6, 1.0);
        self
    }

    /// Overrides the expected session residence time.
    pub fn with_mean_session_s(mut self, seconds: f64) -> Self {
        self.mean_session_s = seconds.max(0.0);
        self
    }

    /// Overrides the per-node session capacity.
    pub fn with_sessions_per_node(mut self, sessions: f64) -> Self {
        self.sessions_per_node = sessions.max(1e-6);
        self
    }

    /// Overrides the pool-size limits.
    pub fn with_limits(mut self, min_nodes: usize, max_nodes: usize) -> Self {
        self.min_nodes = min_nodes.max(1);
        self.max_nodes = max_nodes.max(self.min_nodes);
        self
    }

    /// Overrides the cooldown between scaling events.
    pub fn with_cooldown(mut self, epochs: u64) -> Self {
        self.cooldown_epochs = epochs;
        self
    }

    /// The current smoothed arrival-rate estimate (Hz).
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }
}

impl Default for PredictiveScaler {
    fn default() -> Self {
        PredictiveScaler::new()
    }
}

impl Autoscaler for PredictiveScaler {
    fn name(&self) -> &'static str {
        "predictive-ewma"
    }

    fn plan(&mut self, signals: &ScaleSignals) -> ScaleDecision {
        // The rate estimate updates every boundary, cooldown or not —
        // holding must not blind the predictor to the burst it is
        // holding through.
        let instant_hz = signals.arrivals_due as f64 / signals.epoch_s.max(1e-9);
        self.rate_hz = if self.primed {
            self.alpha * instant_hz + (1.0 - self.alpha) * self.rate_hz
        } else {
            self.primed = true;
            instant_hz
        };
        if self
            .last_scale_epoch
            .is_some_and(|last| signals.epoch.saturating_sub(last) < self.cooldown_epochs)
        {
            return ScaleDecision::Hold;
        }
        // Little's law concurrency plus the backlog already waiting.
        let expected = self.rate_hz * self.mean_session_s + signals.queued_sessions as f64;
        let target = ((expected / self.sessions_per_node).ceil() as usize)
            .clamp(self.min_nodes, self.max_nodes);
        let pool = signals.active.len();
        if target > pool {
            self.last_scale_epoch = Some(signals.epoch);
            ScaleDecision::Grow(target - pool)
        } else if target < pool {
            self.last_scale_epoch = Some(signals.epoch);
            ScaleDecision::Shrink(pool - target)
        } else {
            ScaleDecision::Hold
        }
    }
}

/// Forecast-driven scaling: provisions capacity *ahead* of predicted
/// load.
///
/// Where [`PredictiveScaler`] smooths the observed arrival rate (and so
/// always lags it), a `ForecastScaler` consults a
/// [`Forecaster`](crate::Forecaster) — seasonal-naive, Holt-Winters, or
/// anything else implementing the trait — and provisions for predicted
/// *concurrency*, not predicted instantaneous rate. The distinction
/// matters on transients: sessions admitted during the last
/// `mean_session_s` seconds are still resident, so the concurrency `h`
/// epochs ahead follows Little's law with the *mean arrival rate over
/// the residence window ending there* — trailing observations blended
/// with leading forecasts. Sizing from the instantaneous forecast alone
/// would tear capacity down the moment the rate falls, while the
/// sessions that arrived at the peak still need it.
///
/// The pool is sized for the worst windowed rate over the next
/// `lead_epochs` boundaries: on seasonal traffic (diurnal cycles,
/// scheduled live events) it starts growing before the rise arrives and
/// sheds as the resident load — not merely the rate — drains away.
pub struct ForecastScaler {
    /// Epochs of lead time: the pool is sized for the worst windowed
    /// rate predicted over the next `lead_epochs` boundaries (≥ 1).
    pub lead_epochs: u64,
    /// Expected session residence time (virtual seconds) — the `W` of
    /// Little's law.
    pub mean_session_s: f64,
    /// Concurrent sessions one node is provisioned for.
    pub sessions_per_node: f64,
    /// Never shrink below this many active nodes.
    pub min_nodes: usize,
    /// Never grow above this many active nodes.
    pub max_nodes: usize,
    /// Epochs that must pass after a scaling event before the next one.
    pub cooldown_epochs: u64,
    forecaster: Box<dyn Forecaster>,
    /// Observed rates of the most recent epochs (back of the deque is
    /// the newest), as much history as one residence window needs.
    recent_hz: std::collections::VecDeque<f64>,
    last_scale_epoch: Option<u64>,
}

impl std::fmt::Debug for ForecastScaler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForecastScaler")
            .field("forecaster", &self.forecaster.name())
            .field("lead_epochs", &self.lead_epochs)
            .field("mean_session_s", &self.mean_session_s)
            .field("sessions_per_node", &self.sessions_per_node)
            .finish_non_exhaustive()
    }
}

impl ForecastScaler {
    /// A scaler around `forecaster` with the same sizing defaults as
    /// [`PredictiveScaler`] (20 s expected residence, 4 sessions per
    /// node, pool of 1–16 nodes, 2-epoch cooldown) and 2 epochs of lead.
    pub fn new(forecaster: Box<dyn Forecaster>) -> Self {
        ForecastScaler {
            lead_epochs: 2,
            mean_session_s: 20.0,
            sessions_per_node: 4.0,
            min_nodes: 1,
            max_nodes: 16,
            cooldown_epochs: 2,
            forecaster,
            recent_hz: std::collections::VecDeque::new(),
            last_scale_epoch: None,
        }
    }

    /// Overrides the lead time (clamped to ≥ 1 epoch).
    pub fn with_lead_epochs(mut self, epochs: u64) -> Self {
        self.lead_epochs = epochs.max(1);
        self
    }

    /// Overrides the expected session residence time.
    pub fn with_mean_session_s(mut self, seconds: f64) -> Self {
        self.mean_session_s = seconds.max(0.0);
        self
    }

    /// Overrides the per-node session capacity.
    pub fn with_sessions_per_node(mut self, sessions: f64) -> Self {
        self.sessions_per_node = sessions.max(1e-6);
        self
    }

    /// Overrides the pool-size limits.
    pub fn with_limits(mut self, min_nodes: usize, max_nodes: usize) -> Self {
        self.min_nodes = min_nodes.max(1);
        self.max_nodes = max_nodes.max(self.min_nodes);
        self
    }

    /// Overrides the cooldown between scaling events.
    pub fn with_cooldown(mut self, epochs: u64) -> Self {
        self.cooldown_epochs = epochs;
        self
    }

    /// The predictor driving the scaler (e.g. to persist its state with
    /// [`Forecaster::snapshot_state`](crate::Forecaster::snapshot_state)
    /// after a run).
    pub fn forecaster(&self) -> &dyn Forecaster {
        self.forecaster.as_ref()
    }

    /// Mutable access to the predictor (e.g. to restore persisted state
    /// before a run).
    pub fn forecaster_mut(&mut self) -> &mut dyn Forecaster {
        self.forecaster.as_mut()
    }

    /// Residence window length in epochs for an epoch of `epoch_s`
    /// seconds (≥ 1): how many boundaries' arrivals are concurrently
    /// resident.
    fn window_epochs(&self, epoch_s: f64) -> i64 {
        ((self.mean_session_s / epoch_s.max(1e-9)).ceil() as i64).max(1)
    }

    /// The rate at offset `j ≤ 0` epochs from the newest observation
    /// (0 = the current epoch's arrivals; before the run began = 0, the
    /// literal truth for a cold-started fleet).
    fn observed_hz(&self, j: i64) -> f64 {
        let idx = self.recent_hz.len() as i64 - 1 + j;
        if idx >= 0 {
            self.recent_hz[idx as usize]
        } else {
            0.0
        }
    }

    /// The concurrency-driving rate the pool is sized for (Hz): the
    /// worst, over the next `lead_epochs` boundaries, of the mean
    /// arrival rate across the residence window ending at each boundary
    /// — trailing observations blended with leading forecasts.
    pub fn planned_rate_hz(&self, epoch_s: f64) -> f64 {
        let window = self.window_epochs(epoch_s);
        let mut worst: f64 = 0.0;
        for h in 1..=self.lead_epochs.max(1) as i64 {
            let sum: f64 = (h - window + 1..=h)
                .map(|j| {
                    if j <= 0 {
                        self.observed_hz(j)
                    } else {
                        self.forecaster.forecast_hz(j as u64)
                    }
                })
                .sum();
            worst = worst.max(sum / window as f64);
        }
        worst
    }
}

impl Autoscaler for ForecastScaler {
    fn name(&self) -> &'static str {
        "forecast"
    }

    fn plan(&mut self, signals: &ScaleSignals) -> ScaleDecision {
        // The predictor observes every boundary, cooldown or not — a
        // seasonal model that skipped epochs would lose its phase.
        self.forecaster
            .observe(signals.arrivals_due, signals.epoch_s);
        let instant_hz = signals.arrivals_due as f64 / signals.epoch_s.max(1e-9);
        self.recent_hz.push_back(instant_hz);
        while self.recent_hz.len() as i64 > self.window_epochs(signals.epoch_s) {
            self.recent_hz.pop_front();
        }
        if self
            .last_scale_epoch
            .is_some_and(|last| signals.epoch.saturating_sub(last) < self.cooldown_epochs)
        {
            return ScaleDecision::Hold;
        }
        // Little's law on the windowed rate, plus the backlog already
        // waiting.
        let expected = self.planned_rate_hz(signals.epoch_s) * self.mean_session_s
            + signals.queued_sessions as f64;
        let target = ((expected / self.sessions_per_node).ceil() as usize)
            .clamp(self.min_nodes, self.max_nodes);
        let pool = signals.active.len();
        if target > pool {
            self.last_scale_epoch = Some(signals.epoch);
            ScaleDecision::Grow(target - pool)
        } else if target < pool {
            self.last_scale_epoch = Some(signals.epoch);
            ScaleDecision::Shrink(pool - target)
        } else {
            ScaleDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(node_id: usize, threads: u32, sessions: usize, qos_violation: f64) -> NodeView {
        NodeView {
            node_id,
            active_sessions: sessions,
            threads_demanded: threads,
            planned_threads: threads,
            hw_threads: 32,
            power_w: 60.0,
            power_cap_w: 120.0,
            qos_violation_percent: qos_violation,
            resident_shapes: Vec::new(),
        }
    }

    fn signals<'a>(epoch: u64, active: &'a [NodeView], queued: usize) -> ScaleSignals<'a> {
        ScaleSignals {
            epoch,
            epoch_s: 1.0,
            active,
            arrivals_due: 0,
            queued_sessions: queued,
            pending_sessions: 0,
        }
    }

    #[test]
    fn threshold_grows_on_hot_pool_and_holds_in_the_band() {
        let mut s = ThresholdScaler::new().with_cooldown(0);
        let hot = [view(0, 30, 5, 0.0), view(1, 28, 5, 0.0)];
        assert_eq!(s.plan(&signals(0, &hot, 0)), ScaleDecision::Grow(1));
        let mid = [view(0, 16, 3, 0.0), view(1, 14, 3, 0.0)];
        assert_eq!(s.plan(&signals(1, &mid, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn threshold_grows_on_qos_distress_even_when_utilization_is_low() {
        let mut s = ThresholdScaler::new().with_cooldown(0);
        let suffering = [view(0, 8, 2, 40.0)];
        assert_eq!(s.plan(&signals(0, &suffering, 0)), ScaleDecision::Grow(1));
    }

    #[test]
    fn threshold_grows_on_queue_backlog() {
        let mut s = ThresholdScaler::new().with_cooldown(0);
        let idle = [view(0, 4, 1, 0.0)];
        assert_eq!(s.plan(&signals(0, &idle, 3)), ScaleDecision::Grow(1));
    }

    #[test]
    fn threshold_shrinks_an_idle_pool_but_respects_min_nodes() {
        let mut s = ThresholdScaler::new().with_cooldown(0).with_limits(1, 8);
        let idle = [view(0, 2, 1, 0.0), view(1, 0, 0, 0.0)];
        assert_eq!(s.plan(&signals(0, &idle, 0)), ScaleDecision::Shrink(1));
        let floor = [view(0, 2, 1, 0.0)];
        assert_eq!(s.plan(&signals(1, &floor, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn threshold_cooldown_spaces_scaling_events() {
        let mut s = ThresholdScaler::new().with_cooldown(3);
        let hot = [view(0, 30, 5, 0.0)];
        assert_eq!(s.plan(&signals(0, &hot, 0)), ScaleDecision::Grow(1));
        assert_eq!(s.plan(&signals(1, &hot, 0)), ScaleDecision::Hold);
        assert_eq!(s.plan(&signals(2, &hot, 0)), ScaleDecision::Hold);
        assert_eq!(s.plan(&signals(3, &hot, 0)), ScaleDecision::Grow(1));
    }

    #[test]
    fn threshold_max_nodes_caps_growth() {
        let mut s = ThresholdScaler::new().with_cooldown(0).with_limits(1, 2);
        let hot = [view(0, 30, 5, 0.0), view(1, 30, 5, 0.0)];
        assert_eq!(s.plan(&signals(0, &hot, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn predictive_follows_the_arrival_rate() {
        let mut s = PredictiveScaler::new()
            .with_alpha(1.0) // no smoothing: track the instant rate
            .with_mean_session_s(10.0)
            .with_sessions_per_node(5.0)
            .with_cooldown(0)
            .with_limits(1, 16);
        let pool = [view(0, 8, 2, 0.0)];
        // 2 arrivals/s × 10 s residence = 20 concurrent / 5 per node = 4.
        let mut sig = signals(0, &pool, 0);
        sig.arrivals_due = 2;
        assert_eq!(s.plan(&sig), ScaleDecision::Grow(3));
        assert!((s.rate_hz() - 2.0).abs() < 1e-12);
        // Rate collapses to zero: back down to the minimum.
        let big: Vec<NodeView> = (0..4).map(|i| view(i, 2, 1, 0.0)).collect();
        let quiet = signals(1, &big, 0);
        assert_eq!(s.plan(&quiet), ScaleDecision::Shrink(3));
    }

    #[test]
    fn predictive_ewma_smooths_bursts() {
        let mut s = PredictiveScaler::new().with_alpha(0.5).with_cooldown(0);
        let pool = [view(0, 8, 2, 0.0)];
        let mut sig = signals(0, &pool, 0);
        sig.arrivals_due = 8;
        s.plan(&sig); // primes at 8 Hz
        assert!((s.rate_hz() - 8.0).abs() < 1e-12);
        let mut sig = signals(1, &pool, 0);
        sig.arrivals_due = 0;
        s.plan(&sig);
        assert!((s.rate_hz() - 4.0).abs() < 1e-12, "EWMA halves, not zeroes");
    }

    #[test]
    fn predictive_updates_rate_during_cooldown() {
        let mut s = PredictiveScaler::new().with_alpha(1.0).with_cooldown(10);
        let pool = [view(0, 8, 2, 0.0)];
        let mut sig = signals(0, &pool, 0);
        sig.arrivals_due = 4;
        s.plan(&sig); // first decision starts the cooldown
        let mut sig = signals(1, &pool, 0);
        sig.arrivals_due = 6;
        assert_eq!(s.plan(&sig), ScaleDecision::Hold, "cooling down");
        assert!((s.rate_hz() - 6.0).abs() < 1e-12, "estimate still tracked");
    }

    #[test]
    fn forecast_scaler_provisions_ahead_of_a_seasonal_rise() {
        use crate::forecast::SeasonalNaive;
        // Season: 3 quiet epochs, then 3 busy ones. After one observed
        // season the scaler must grow while arrivals are still quiet,
        // because the predictor sees the busy slots inside its lead.
        // (mean_session_s = epoch_s ⇒ residence window of one epoch —
        // the target is the pure forecast.)
        let mut s = ForecastScaler::new(Box::new(SeasonalNaive::new(6)))
            .with_lead_epochs(2)
            .with_mean_session_s(1.0)
            .with_sessions_per_node(0.5)
            .with_cooldown(0)
            .with_limits(1, 16);
        let season = [0usize, 0, 0, 10, 10, 10];
        let pool = [view(0, 4, 1, 0.0)];
        let mut last = ScaleDecision::Hold;
        for (epoch, &due) in season.iter().chain(&season[..3]).enumerate() {
            let mut sig = signals(epoch as u64, &pool, 0);
            sig.arrivals_due = due;
            last = s.plan(&sig);
        }
        // Epoch 8 observed (still quiet); epochs 9–10 are forecast busy:
        // 10 Hz × 1 s / 0.5 per node = 20 nodes, clamped to 16 → grow 15.
        assert_eq!(last, ScaleDecision::Grow(15));
        assert!((s.planned_rate_hz(1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn forecast_scaler_sheds_ahead_of_a_seasonal_fall() {
        use crate::forecast::SeasonalNaive;
        let mut s = ForecastScaler::new(Box::new(SeasonalNaive::new(4)))
            .with_lead_epochs(1)
            .with_mean_session_s(1.0)
            .with_sessions_per_node(2.0)
            .with_cooldown(0)
            .with_limits(1, 16);
        let big: Vec<NodeView> = (0..6).map(|i| view(i, 4, 1, 0.0)).collect();
        // One full season: busy, busy, quiet, quiet. At the last busy
        // epoch of season two, the next slot is forecast quiet — shrink
        // while the current epoch is still loud (sessions are short:
        // residence is one epoch, so nothing lingers).
        for (epoch, due) in [10usize, 10, 0, 0, 10, 10].iter().enumerate() {
            let mut sig = signals(epoch as u64, &big, 0);
            sig.arrivals_due = *due;
            let decision = s.plan(&sig);
            if epoch == 5 {
                assert_eq!(decision, ScaleDecision::Shrink(5), "fall not anticipated");
            }
        }
    }

    #[test]
    fn forecast_scaler_holds_capacity_while_resident_sessions_drain() {
        // A predictor that (correctly) says the rate is about to be
        // zero: with 3-epoch residence, the pool must NOT collapse the
        // moment the rate forecast does — the burst's sessions are
        // still resident, and the windowed rate decays over the next
        // window instead of snapping to zero.
        struct Silence;
        impl crate::forecast::Forecaster for Silence {
            fn name(&self) -> &'static str {
                "silence"
            }
            fn observe(&mut self, _arrivals: usize, _epoch_s: f64) {}
            fn forecast_hz(&self, _horizon: u64) -> f64 {
                0.0
            }
            fn snapshot_state(&self) -> Vec<u8> {
                Vec::new()
            }
            fn restore_state(
                &mut self,
                _bytes: &[u8],
            ) -> Result<(), mamut_core::snapshot::SnapshotError> {
                Ok(())
            }
        }
        let mut s = ForecastScaler::new(Box::new(Silence))
            .with_lead_epochs(1)
            .with_mean_session_s(3.0) // 3-epoch residence window
            .with_sessions_per_node(6.0)
            .with_cooldown(0)
            .with_limits(1, 16);
        let pool = [view(0, 4, 1, 0.0)];
        // A 12 Hz burst epoch: windowed rate = (0 + 12 + f(1)=0)/3 = 4,
        // concurrency 4 Hz × 3 s = 12 → 2 nodes: capacity is kept for
        // the resident sessions even though the forecast says silence.
        let mut sig = signals(0, &pool, 0);
        sig.arrivals_due = 12;
        assert_eq!(s.plan(&sig), ScaleDecision::Grow(1));
        assert!((s.planned_rate_hz(1.0) - 4.0).abs() < 1e-12);
        // Two quiet epochs later the window has drained: back to min.
        let two: Vec<NodeView> = (0..2).map(|i| view(i, 4, 1, 0.0)).collect();
        for epoch in 1..3 {
            let decision = s.plan(&signals(epoch, &two, 0));
            if epoch == 2 {
                assert_eq!(decision, ScaleDecision::Shrink(1), "window never drained");
            }
        }
    }

    #[test]
    fn forecast_scaler_observes_through_cooldown() {
        use crate::forecast::SeasonalNaive;
        let mut s = ForecastScaler::new(Box::new(SeasonalNaive::new(2))).with_cooldown(10);
        let pool = [view(0, 4, 1, 0.0)];
        let mut sig = signals(0, &pool, 0);
        sig.arrivals_due = 8;
        s.plan(&sig); // first decision starts the cooldown
        let mut sig = signals(1, &pool, 0);
        sig.arrivals_due = 6;
        assert_eq!(s.plan(&sig), ScaleDecision::Hold, "cooling down");
        // Both epochs were still observed by the predictor.
        assert_eq!(s.forecaster().forecast_hz(1), 8.0);
        assert_eq!(s.forecaster().forecast_hz(2), 6.0);
    }

    #[test]
    fn forecast_scaler_clamps_zero_lead_to_one() {
        use crate::forecast::SeasonalNaive;
        // lead_epochs = 0 would make planned_rate_hz an empty max (0 Hz
        // forever); the builder clamps to 1 so the scaler always looks
        // at least one boundary ahead.
        let s = ForecastScaler::new(Box::new(SeasonalNaive::new(4))).with_lead_epochs(0);
        assert_eq!(s.lead_epochs, 1);
        // And planned_rate_hz itself guards the field being forced to 0.
        let mut forced = ForecastScaler::new(Box::new(SeasonalNaive::new(4)))
            .with_mean_session_s(1.0)
            .with_cooldown(0);
        forced.lead_epochs = 0;
        let pool = [view(0, 4, 1, 0.0)];
        let mut sig = signals(0, &pool, 0);
        sig.arrivals_due = 6;
        forced.plan(&sig);
        assert!(
            forced.planned_rate_hz(1.0) > 0.0,
            "zero lead must still see the observed window"
        );
    }

    #[test]
    fn forecast_scaler_with_no_history_shrinks_to_the_floor() {
        use crate::forecast::HoltWinters;
        // First boundary ever, zero arrivals observed: the windowed rate
        // is 0 Hz, so the target is min_nodes — an over-provisioned cold
        // pool sheds instead of crashing on empty history.
        let mut s = ForecastScaler::new(Box::new(HoltWinters::new(8)))
            .with_mean_session_s(4.0)
            .with_sessions_per_node(2.0)
            .with_cooldown(0)
            .with_limits(1, 16);
        let big: Vec<NodeView> = (0..4).map(|i| view(i, 2, 1, 0.0)).collect();
        assert_eq!(s.plan(&signals(0, &big, 0)), ScaleDecision::Shrink(3));
        assert_eq!(s.planned_rate_hz(1.0), 0.0);
    }

    #[test]
    fn heuristic_scalers_report_a_heuristic_source() {
        use crate::autoscale::PolicySource;
        let mut t = ThresholdScaler::new();
        t.plan(&signals(0, &[view(0, 4, 1, 0.0)], 0));
        assert_eq!(t.decision_source(), PolicySource::Heuristic);
        assert_eq!(
            PredictiveScaler::new().decision_source(),
            PolicySource::Heuristic
        );
    }

    #[test]
    fn signals_summarize_the_pool() {
        let nodes = [view(0, 16, 3, 20.0), view(1, 8, 1, 0.0)];
        let sig = ScaleSignals {
            epoch: 0,
            epoch_s: 1.0,
            active: &nodes,
            arrivals_due: 2,
            queued_sessions: 2,
            pending_sessions: 5,
        };
        assert!((sig.mean_utilization() - (0.5 + 0.25) / 2.0).abs() < 1e-12);
        assert!((sig.mean_qos_violation_percent() - 10.0).abs() < 1e-12);
        assert_eq!(sig.sessions_in_system(), 6);
        let empty = signals(0, &[], 0);
        assert_eq!(empty.mean_utilization(), 0.0);
        assert_eq!(empty.mean_qos_violation_percent(), 0.0);
    }
}
