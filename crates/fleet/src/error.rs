use mamut_transcode::TranscodeError;

/// Errors from fleet construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// `run` was called on a fleet with no nodes.
    NoNodes,
    /// The epoch budget elapsed before the workload drained (a guard
    /// against dispatch policies that can never place a queued session).
    EpochBudgetExhausted {
        /// Epochs simulated before giving up.
        epochs: u64,
    },
    /// A node's simulator failed while advancing an epoch.
    Node {
        /// The failing node's id.
        node: usize,
        /// The underlying simulator error.
        source: TranscodeError,
    },
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// The dispatch policy returned a node id the fleet does not have.
    InvalidDispatch {
        /// The offending node id.
        node: usize,
        /// How many nodes the fleet has.
        nodes: usize,
    },
    /// A migration referenced a session the node does not hold.
    UnknownSession {
        /// The node that was asked.
        node: usize,
        /// The missing session id.
        session: usize,
    },
    /// `retire` was called on a node still holding live sessions. Drain
    /// them to peers first (`drain` + `attach_session`); only a scripted
    /// crash may take sessions down with a node, and that goes through
    /// the explicit crash-kill path, never through `retire`.
    RetireWithLiveSessions {
        /// The node that refused to retire.
        node: usize,
        /// Live sessions still resident.
        live: usize,
    },
    /// The rebalance policy produced an unusable directive (out-of-range
    /// node id, or source and target identical).
    InvalidMigration {
        /// Source node id.
        from: usize,
        /// Target node id.
        to: usize,
        /// How many nodes the fleet has.
        nodes: usize,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoNodes => write!(f, "fleet has no nodes"),
            FleetError::EpochBudgetExhausted { epochs } => {
                write!(f, "epoch budget exhausted after {epochs} epochs")
            }
            FleetError::Node { node, source } => {
                write!(f, "node {node} failed: {source}")
            }
            FleetError::InvalidConfig(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::InvalidDispatch { node, nodes } => write!(
                f,
                "dispatcher assigned node {node} but the fleet has {nodes} nodes"
            ),
            FleetError::UnknownSession { node, session } => {
                write!(f, "node {node} holds no live session {session}")
            }
            FleetError::RetireWithLiveSessions { node, live } => write!(
                f,
                "node {node} cannot retire with {live} live session(s); drain first"
            ),
            FleetError::InvalidMigration { from, to, nodes } => write!(
                f,
                "rebalancer directed {from} -> {to} in a fleet of {nodes} nodes"
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Node { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(FleetError::NoNodes.to_string(), "fleet has no nodes");
        let e = FleetError::Node {
            node: 3,
            source: TranscodeError::NoSessions,
        };
        assert!(e.to_string().contains("node 3"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
