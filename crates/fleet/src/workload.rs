//! Session-churn workload generation: timed arrivals of HR/LR, live/VOD
//! transcoding sessions, plus replay of explicit arrival traces.
//!
//! The paper's evaluation fixes the session mix for a whole run; a fleet
//! faces *churn* — users join and leave continuously. Arrivals follow
//! Poisson-like exponential interarrivals (the standard model for
//! independent user populations), the HR/LR split follows a configurable
//! ratio, and durations come from two profiles: **live** sessions (long,
//! an event being streamed while it happens) and **VOD** sessions (short
//! clips transcoded on demand). Everything is driven by one seeded RNG,
//! so a workload is a pure function of its config — the property the
//! fleet determinism tests pin down.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mamut_transcode::SessionConfig;
use mamut_video::{catalog, SequenceSpec};

/// One session arrival the dispatcher must place (or turn away).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRequest {
    /// Stable request id (ordinal in the workload).
    pub id: u64,
    /// Virtual arrival time (seconds).
    pub arrival_s: f64,
    /// High-resolution (1080p) stream? Otherwise 832×480.
    pub hr: bool,
    /// Live stream (long duration profile)? Otherwise VOD.
    pub live: bool,
    /// Frames the session will transcode before departing.
    pub frames: u64,
    /// Content seed for the session's video source.
    pub seed: u64,
}

impl SessionRequest {
    /// The catalog sequence this session transcodes (picked by seed from
    /// the matching resolution class, truncated to the session length).
    pub fn spec(&self) -> SequenceSpec {
        let pool = if self.hr {
            catalog::class_b()
        } else {
            catalog::class_c()
        };
        pool[(self.seed as usize) % pool.len()]
            .with_frame_count(self.frames.max(1))
            .expect("session lengths are non-zero")
    }

    /// The simulator session config for this request.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig::single_video(self.spec(), self.seed)
    }
}

/// A structurally invalid [`WorkloadConfig`]: the typed rejection the
/// builder validation returns instead of panicking mid-generation or
/// silently producing an empty or degenerate workload.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// `sessions` was zero — the workload would be silently empty.
    NoSessions,
    /// `mean_interarrival_s` was zero, negative, or not finite.
    NonPositiveRate {
        /// The offending mean interarrival time.
        mean_interarrival_s: f64,
    },
    /// A ratio field was not a finite value in `[0, 1]`.
    RatioOutOfRange {
        /// Which ratio (`"hr_ratio"` or `"live_ratio"`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A session-length bound was zero frames.
    ZeroFrames {
        /// Which profile (`"vod_frames"` or `"live_frames"`).
        field: &'static str,
    },
    /// A session-length range had `min > max`.
    InvertedFrames {
        /// Which profile (`"vod_frames"` or `"live_frames"`).
        field: &'static str,
        /// The inverted bounds.
        bounds: (u64, u64),
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::NoSessions => {
                write!(f, "workload config generates zero sessions")
            }
            WorkloadError::NonPositiveRate {
                mean_interarrival_s,
            } => write!(
                f,
                "mean interarrival time must be finite and positive, got {mean_interarrival_s}"
            ),
            WorkloadError::RatioOutOfRange { field, value } => {
                write!(f, "{field} must be a finite value in [0, 1], got {value}")
            }
            WorkloadError::ZeroFrames { field } => {
                write!(f, "{field} bounds must be at least one frame")
            }
            WorkloadError::InvertedFrames { field, bounds } => {
                write!(
                    f,
                    "{field} range is inverted: min {} > max {}",
                    bounds.0, bounds.1
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Parameters of a generated churn workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// RNG seed; same config ⇒ identical workload.
    pub seed: u64,
    /// Total arrivals to generate.
    pub sessions: usize,
    /// Mean of the exponential interarrival time (seconds).
    pub mean_interarrival_s: f64,
    /// Fraction of sessions that are HR (1080p).
    pub hr_ratio: f64,
    /// Fraction of sessions that are live (long profile).
    pub live_ratio: f64,
    /// VOD session length, uniform in `[min, max]` frames.
    pub vod_frames: (u64, u64),
    /// Live session length, uniform in `[min, max]` frames.
    pub live_frames: (u64, u64),
}

impl Default for WorkloadConfig {
    /// A briskly churning mixed workload: one arrival every ~2 s, 40 %
    /// HR, half live; VOD clips of 5–15 s, live events of 20–50 s (at
    /// the paper's 24 FPS target).
    fn default() -> Self {
        WorkloadConfig {
            seed: 1,
            sessions: 24,
            mean_interarrival_s: 2.0,
            hr_ratio: 0.4,
            live_ratio: 0.5,
            vod_frames: (120, 360),
            live_frames: (480, 1_200),
        }
    }
}

impl WorkloadConfig {
    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of sessions.
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Checks the config for structural validity: a non-empty session
    /// count, a finite positive arrival rate, ratios in `[0, 1]` and
    /// well-formed session-length ranges.
    ///
    /// # Errors
    ///
    /// The first [`WorkloadError`] found, in field order.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.sessions == 0 {
            return Err(WorkloadError::NoSessions);
        }
        if !(self.mean_interarrival_s.is_finite() && self.mean_interarrival_s > 0.0) {
            return Err(WorkloadError::NonPositiveRate {
                mean_interarrival_s: self.mean_interarrival_s,
            });
        }
        for (field, value) in [("hr_ratio", self.hr_ratio), ("live_ratio", self.live_ratio)] {
            if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
                return Err(WorkloadError::RatioOutOfRange { field, value });
            }
        }
        for (field, bounds) in [
            ("vod_frames", self.vod_frames),
            ("live_frames", self.live_frames),
        ] {
            if bounds.0 == 0 || bounds.1 == 0 {
                return Err(WorkloadError::ZeroFrames { field });
            }
            if bounds.0 > bounds.1 {
                return Err(WorkloadError::InvertedFrames { field, bounds });
            }
        }
        Ok(())
    }
}

/// A timed list of session arrivals, sorted by arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    arrivals: Vec<SessionRequest>,
}

impl Workload {
    /// Generates a churn workload from `config` (deterministic).
    ///
    /// # Panics
    ///
    /// On a structurally invalid config (the typed rejection
    /// [`WorkloadConfig::validate`] would return). Use
    /// [`Workload::try_generate`] to handle the error instead.
    pub fn generate(config: &WorkloadConfig) -> Workload {
        Workload::try_generate(config).unwrap_or_else(|e| panic!("invalid WorkloadConfig: {e}"))
    }

    /// Generates a churn workload from `config` (deterministic),
    /// validating it first.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] when the config is structurally invalid — zero
    /// sessions, a non-positive or non-finite arrival rate, ratios
    /// outside `[0, 1]`, or degenerate session-length ranges.
    pub fn try_generate(config: &WorkloadConfig) -> Result<Workload, WorkloadError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mean = config.mean_interarrival_s;
        let mut t = 0.0;
        let mut arrivals = Vec::with_capacity(config.sessions);
        for id in 0..config.sessions as u64 {
            // Exponential interarrival: -mean · ln(1 - U), U ∈ [0, 1).
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -mean * (1.0 - u).ln();
            let hr = rng.gen_bool(config.hr_ratio);
            let live = rng.gen_bool(config.live_ratio);
            let (lo, hi) = if live {
                config.live_frames
            } else {
                config.vod_frames
            };
            let frames = rng.gen_range(lo..=hi);
            let seed = rng.gen_range(0..u64::MAX);
            arrivals.push(SessionRequest {
                id,
                arrival_s: t,
                hr,
                live,
                frames,
                seed,
            });
        }
        Ok(Workload { arrivals })
    }

    /// Wraps an explicit arrival trace (sorted by arrival time; ties keep
    /// their given order). This is the replay path: captured production
    /// traces or hand-built worst cases run through the same dispatcher
    /// and fleet loop as generated workloads.
    pub fn replay(mut arrivals: Vec<SessionRequest>) -> Workload {
        arrivals.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("arrival times are not NaN")
        });
        Workload { arrivals }
    }

    /// The arrivals, in time order.
    pub fn arrivals(&self) -> &[SessionRequest] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Time of the last arrival (0.0 for an empty workload).
    pub fn horizon_s(&self) -> f64 {
        self.arrivals.last().map_or(0.0, |r| r.arrival_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::default();
        assert_eq!(Workload::generate(&cfg), Workload::generate(&cfg));
        let other = Workload::generate(&cfg.clone().with_seed(2));
        assert_ne!(Workload::generate(&cfg), other);
    }

    #[test]
    fn arrivals_are_sorted_and_sized() {
        let w = Workload::generate(&WorkloadConfig::default().with_sessions(50));
        assert_eq!(w.len(), 50);
        for pair in w.arrivals().windows(2) {
            assert!(pair[0].arrival_s <= pair[1].arrival_s);
        }
        assert!(w.horizon_s() > 0.0);
    }

    #[test]
    fn ratios_shape_the_mix() {
        let cfg = WorkloadConfig {
            sessions: 400,
            hr_ratio: 0.25,
            live_ratio: 0.0,
            ..WorkloadConfig::default()
        };
        let w = Workload::generate(&cfg);
        let hr = w.arrivals().iter().filter(|r| r.hr).count();
        assert!((60..=140).contains(&hr), "hr count {hr} far from 25 %");
        assert!(w.arrivals().iter().all(|r| !r.live));
        assert!(w.arrivals().iter().all(|r| (120..=360).contains(&r.frames)));
    }

    #[test]
    fn live_sessions_are_longer() {
        let cfg = WorkloadConfig {
            sessions: 200,
            live_ratio: 0.5,
            ..WorkloadConfig::default()
        };
        let w = Workload::generate(&cfg);
        let mean = |live: bool| {
            let xs: Vec<u64> = w
                .arrivals()
                .iter()
                .filter(|r| r.live == live)
                .map(|r| r.frames)
                .collect();
            xs.iter().sum::<u64>() as f64 / xs.len().max(1) as f64
        };
        assert!(mean(true) > 2.0 * mean(false));
    }

    #[test]
    fn requests_build_matching_specs() {
        let w = Workload::generate(&WorkloadConfig::default());
        for r in w.arrivals() {
            let spec = r.spec();
            assert_eq!(spec.resolution().is_high_resolution(), r.hr);
            assert_eq!(spec.frame_count(), r.frames);
            let cfg = r.session_config();
            assert_eq!(cfg.seed, r.seed);
        }
    }

    #[test]
    fn zero_sessions_config_is_rejected() {
        let cfg = WorkloadConfig::default().with_sessions(0);
        assert_eq!(
            Workload::try_generate(&cfg).unwrap_err(),
            WorkloadError::NoSessions
        );
    }

    #[test]
    fn non_positive_or_non_finite_rate_is_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = WorkloadConfig {
                mean_interarrival_s: bad,
                ..WorkloadConfig::default()
            };
            assert!(
                matches!(
                    Workload::try_generate(&cfg),
                    Err(WorkloadError::NonPositiveRate { .. })
                ),
                "rate {bad} slipped through"
            );
        }
    }

    #[test]
    fn out_of_range_ratios_are_rejected() {
        for (hr, live, field) in [
            (1.5, 0.5, "hr_ratio"),
            (-0.1, 0.5, "hr_ratio"),
            (f64::NAN, 0.5, "hr_ratio"),
            (0.5, 2.0, "live_ratio"),
            (0.5, f64::NAN, "live_ratio"),
        ] {
            let cfg = WorkloadConfig {
                hr_ratio: hr,
                live_ratio: live,
                ..WorkloadConfig::default()
            };
            match Workload::try_generate(&cfg) {
                Err(WorkloadError::RatioOutOfRange { field: f, .. }) => assert_eq!(f, field),
                other => panic!("({hr}, {live}) yielded {other:?}"),
            }
        }
    }

    #[test]
    fn degenerate_frame_ranges_are_rejected() {
        let zero = WorkloadConfig {
            vod_frames: (0, 100),
            ..WorkloadConfig::default()
        };
        assert_eq!(
            Workload::try_generate(&zero).unwrap_err(),
            WorkloadError::ZeroFrames {
                field: "vod_frames"
            }
        );
        let inverted = WorkloadConfig {
            live_frames: (500, 100),
            ..WorkloadConfig::default()
        };
        assert_eq!(
            Workload::try_generate(&inverted).unwrap_err(),
            WorkloadError::InvertedFrames {
                field: "live_frames",
                bounds: (500, 100)
            }
        );
    }

    #[test]
    #[should_panic(expected = "invalid WorkloadConfig")]
    fn generate_panics_with_the_typed_error_message() {
        Workload::generate(&WorkloadConfig::default().with_sessions(0));
    }

    #[test]
    fn valid_config_passes_validation_and_generates() {
        let cfg = WorkloadConfig::default();
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(
            Workload::try_generate(&cfg).unwrap(),
            Workload::generate(&cfg)
        );
    }

    #[test]
    fn error_display_is_informative() {
        assert!(WorkloadError::NoSessions.to_string().contains("zero"));
        let e = WorkloadError::RatioOutOfRange {
            field: "hr_ratio",
            value: 2.0,
        };
        assert!(e.to_string().contains("hr_ratio"));
        let e = WorkloadError::InvertedFrames {
            field: "vod_frames",
            bounds: (9, 3),
        };
        assert!(e.to_string().contains("9"));
    }

    #[test]
    fn replay_sorts_by_time() {
        let mk = |id, t| SessionRequest {
            id,
            arrival_s: t,
            hr: false,
            live: false,
            frames: 10,
            seed: id,
        };
        let w = Workload::replay(vec![mk(0, 3.0), mk(1, 1.0), mk(2, 2.0)]);
        let ids: Vec<u64> = w.arrivals().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2, 0]);
    }
}
