//! Dispatch policies: which node serves the next arriving session.
//!
//! The dispatcher sees one [`NodeView`] per node — a *read-only* view of
//! active sessions, thread demand, instantaneous power, and the planning
//! shapes of the sessions already resident — and answers with a
//! placement, a deferral to the next epoch, or a rejection. (Views were
//! previously called "node snapshots"; that word now belongs exclusively
//! to [`PolicySnapshot`](mamut_core::snapshot::PolicySnapshot), the
//! portable learned-state capture.) Policies range from the oblivious
//! ([`RoundRobin`]) through load- and power-sensitive placement
//! ([`LeastLoaded`], [`PowerAware`]) to model-based admission control
//! ([`AdmissionGated`], which reuses the single-server
//! [`AdmissionPlanner`] from `mamut-transcode` to refuse placements the
//! shared-machine model predicts would sink every resident stream below
//! real time).

use mamut_platform::Platform;
use mamut_transcode::{AdmissionPlanner, StreamShape};

use crate::workload::SessionRequest;

/// A dispatcher's (or rebalancer's) read-only view of one node.
///
/// Produced by [`FleetNode::view`](crate::FleetNode::view) after an
/// explicit [`FleetNode::refresh`](crate::FleetNode::refresh) has pruned
/// finished sessions — building the view never mutates the node.
#[derive(Debug, Clone)]
pub struct NodeView {
    /// Node id (index in the fleet).
    pub node_id: usize,
    /// Sessions still transcoding.
    pub active_sessions: usize,
    /// Threads those sessions collectively request *right now* (a just-
    /// admitted session reports its starting knobs until its controller
    /// first acts).
    pub threads_demanded: u32,
    /// Thread demand of the resident planning shapes — what the sessions
    /// are expected to ramp to. Placement uses the max of both, so
    /// several sessions admitted within one epoch weigh in at full
    /// planned size rather than their not-yet-started defaults.
    pub planned_threads: u32,
    /// Hardware threads the node offers.
    pub hw_threads: u32,
    /// Instantaneous power at current knobs (W).
    pub power_w: f64,
    /// Node power budget (W) for headroom-based placement.
    pub power_cap_w: f64,
    /// Percentage of the resident sessions' frames delivered below the
    /// FPS target *over the last simulated epoch* (0.0 on an empty or
    /// freshly loaded node) — the QoS distress signal autoscalers and
    /// QoS-aware rebalancers act on. Windowed on purpose: a stream that
    /// suffered through a long-past burst must not read as distressed
    /// forever.
    pub qos_violation_percent: f64,
    /// Planning shapes of the resident (unfinished) sessions.
    pub resident_shapes: Vec<StreamShape>,
}

impl NodeView {
    /// Thread demand over hardware threads (may exceed 1.0). Uses the
    /// larger of current and planned demand — see [`NodeView::planned_threads`].
    pub fn utilization(&self) -> f64 {
        if self.hw_threads == 0 {
            0.0
        } else {
            f64::from(self.threads_demanded.max(self.planned_threads)) / f64::from(self.hw_threads)
        }
    }

    /// Power headroom under the node budget (may be negative).
    pub fn power_headroom_w(&self) -> f64 {
        self.power_cap_w - self.power_w
    }

    /// QoS slack in `[0, 1]`: the fraction of resident frames delivered
    /// on time (1.0 on an empty node — nothing is suffering).
    pub fn qos_slack(&self) -> f64 {
        (1.0 - self.qos_violation_percent / 100.0).clamp(0.0, 1.0)
    }
}

/// Outcome of one dispatch query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchDecision {
    /// Place the session on this node now.
    Assign(usize),
    /// Hold the session in the pending queue and retry next epoch.
    Queue,
    /// Turn the session away.
    Reject,
}

/// A fleet dispatch policy.
///
/// `Send` so a fleet (which owns its dispatcher) can move across threads;
/// dispatch itself always runs on the coordinating thread between epochs.
pub trait Dispatcher: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Decides where `request` goes given the current node snapshots.
    fn dispatch(&mut self, request: &SessionRequest, nodes: &[NodeView]) -> DispatchDecision;
}

/// Cycles through nodes in order, ignoring load entirely.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin dispatcher starting at node 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Dispatcher for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn dispatch(&mut self, _request: &SessionRequest, nodes: &[NodeView]) -> DispatchDecision {
        if nodes.is_empty() {
            return DispatchDecision::Reject;
        }
        let pick = self.next % nodes.len();
        self.next = (self.next + 1) % nodes.len();
        DispatchDecision::Assign(nodes[pick].node_id)
    }
}

/// Places each session on the node with the lowest thread utilization
/// (ties: fewer active sessions, then lower id).
#[derive(Debug, Clone, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// Creates a least-loaded dispatcher.
    pub fn new() -> Self {
        LeastLoaded
    }
}

impl Dispatcher for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn dispatch(&mut self, _request: &SessionRequest, nodes: &[NodeView]) -> DispatchDecision {
        let best = nodes.iter().min_by(|a, b| {
            a.utilization()
                .partial_cmp(&b.utilization())
                .expect("utilization is finite")
                .then(a.active_sessions.cmp(&b.active_sessions))
                .then(a.node_id.cmp(&b.node_id))
        });
        match best {
            Some(n) => DispatchDecision::Assign(n.node_id),
            None => DispatchDecision::Reject,
        }
    }
}

/// Places each session on the node with the most power headroom — the
/// fleet-level analogue of the paper's power-aware knob choices (a node
/// far below its budget can absorb a new stream without DVFS backoff).
#[derive(Debug, Clone, Default)]
pub struct PowerAware;

impl PowerAware {
    /// Creates a power-aware dispatcher.
    pub fn new() -> Self {
        PowerAware
    }
}

impl Dispatcher for PowerAware {
    fn name(&self) -> &'static str {
        "power-aware"
    }

    fn dispatch(&mut self, _request: &SessionRequest, nodes: &[NodeView]) -> DispatchDecision {
        let best = nodes.iter().max_by(|a, b| {
            a.power_headroom_w()
                .partial_cmp(&b.power_headroom_w())
                .expect("power is finite")
                // max_by keeps the *last* maximal element; order ids so
                // ties resolve to the lowest id deterministically.
                .then(b.node_id.cmp(&a.node_id))
        });
        match best {
            Some(n) => DispatchDecision::Assign(n.node_id),
            None => DispatchDecision::Reject,
        }
    }
}

/// What [`AdmissionGated`] does with a session no node can fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Park it in the queue and retry next epoch (until capacity drains).
    Queue,
    /// Turn it away immediately.
    Reject,
}

/// Model-based admission control around an inner placement policy.
///
/// The inner policy proposes a node; the gate asks the single-server
/// [`AdmissionPlanner`] whether that node, with the new stream added to
/// its resident shapes, is still predicted to hold every stream at the
/// target FPS. If not, the gate scans the remaining nodes in ascending
/// utilization order and takes the first feasible one; when none fits,
/// the session is queued or rejected per [`GateMode`].
pub struct AdmissionGated {
    inner: Box<dyn Dispatcher>,
    planner: AdmissionPlanner,
    mode: GateMode,
}

impl AdmissionGated {
    /// Gates `inner` with a planner for `platform` at `target_fps`.
    pub fn new(
        inner: Box<dyn Dispatcher>,
        platform: Platform,
        target_fps: f64,
        mode: GateMode,
    ) -> Self {
        AdmissionGated {
            inner,
            planner: AdmissionPlanner::new(platform, target_fps),
            mode,
        }
    }

    fn feasible_on(&self, node: &NodeView, shape: &StreamShape) -> bool {
        let mut mix = node.resident_shapes.clone();
        mix.push(shape.clone());
        self.planner.admit(&mix).feasible
    }
}

impl Dispatcher for AdmissionGated {
    fn name(&self) -> &'static str {
        "admission-gated"
    }

    fn dispatch(&mut self, request: &SessionRequest, nodes: &[NodeView]) -> DispatchDecision {
        if nodes.is_empty() {
            return DispatchDecision::Reject;
        }
        let shape = StreamShape::for_spec(&request.spec());
        // The inner policy's pick gets the first word…
        if let DispatchDecision::Assign(id) = self.inner.dispatch(request, nodes) {
            if let Some(node) = nodes.iter().find(|n| n.node_id == id) {
                if self.feasible_on(node, &shape) {
                    return DispatchDecision::Assign(id);
                }
            }
        }
        // …then any node, least-utilized first.
        let mut order: Vec<&NodeView> = nodes.iter().collect();
        order.sort_by(|a, b| {
            a.utilization()
                .partial_cmp(&b.utilization())
                .expect("utilization is finite")
                .then(a.node_id.cmp(&b.node_id))
        });
        for node in order {
            if self.feasible_on(node, &shape) {
                return DispatchDecision::Assign(node.node_id);
            }
        }
        match self.mode {
            GateMode::Queue => DispatchDecision::Queue,
            GateMode::Reject => DispatchDecision::Reject,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(node_id: usize, threads: u32, power_w: f64) -> NodeView {
        NodeView {
            node_id,
            active_sessions: (threads / 4) as usize,
            threads_demanded: threads,
            planned_threads: threads,
            hw_threads: 32,
            power_w,
            power_cap_w: 120.0,
            qos_violation_percent: 0.0,
            resident_shapes: Vec::new(),
        }
    }

    fn request(hr: bool) -> SessionRequest {
        SessionRequest {
            id: 0,
            arrival_s: 0.0,
            hr,
            live: false,
            frames: 100,
            seed: 7,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let nodes = vec![
            snapshot(0, 0, 60.0),
            snapshot(1, 0, 60.0),
            snapshot(2, 0, 60.0),
        ];
        let mut rr = RoundRobin::new();
        let picks: Vec<DispatchDecision> = (0..5)
            .map(|_| rr.dispatch(&request(true), &nodes))
            .collect();
        assert_eq!(
            picks,
            vec![
                DispatchDecision::Assign(0),
                DispatchDecision::Assign(1),
                DispatchDecision::Assign(2),
                DispatchDecision::Assign(0),
                DispatchDecision::Assign(1),
            ]
        );
    }

    #[test]
    fn least_loaded_picks_lowest_utilization() {
        let nodes = vec![
            snapshot(0, 24, 100.0),
            snapshot(1, 8, 70.0),
            snapshot(2, 16, 85.0),
        ];
        assert_eq!(
            LeastLoaded::new().dispatch(&request(true), &nodes),
            DispatchDecision::Assign(1)
        );
    }

    #[test]
    fn least_loaded_breaks_ties_by_id() {
        let nodes = vec![snapshot(1, 8, 70.0), snapshot(0, 8, 70.0)];
        assert_eq!(
            LeastLoaded::new().dispatch(&request(true), &nodes),
            DispatchDecision::Assign(0)
        );
    }

    #[test]
    fn power_aware_picks_most_headroom() {
        let nodes = vec![
            snapshot(0, 8, 110.0),
            snapshot(1, 8, 75.0),
            snapshot(2, 8, 90.0),
        ];
        assert_eq!(
            PowerAware::new().dispatch(&request(true), &nodes),
            DispatchDecision::Assign(1)
        );
        let tied = vec![snapshot(1, 8, 75.0), snapshot(0, 8, 75.0)];
        assert_eq!(
            PowerAware::new().dispatch(&request(true), &tied),
            DispatchDecision::Assign(0)
        );
    }

    #[test]
    fn empty_fleet_rejects() {
        assert_eq!(
            RoundRobin::new().dispatch(&request(true), &[]),
            DispatchDecision::Reject
        );
        assert_eq!(
            LeastLoaded::new().dispatch(&request(true), &[]),
            DispatchDecision::Reject
        );
        assert_eq!(
            PowerAware::new().dispatch(&request(true), &[]),
            DispatchDecision::Reject
        );
    }

    fn gated(mode: GateMode) -> AdmissionGated {
        AdmissionGated::new(
            Box::new(RoundRobin::new()),
            Platform::xeon_e5_2667_v4(),
            24.0,
            mode,
        )
    }

    #[test]
    fn gate_admits_on_an_empty_node() {
        let nodes = vec![snapshot(0, 0, 52.0)];
        assert_eq!(
            gated(GateMode::Queue).dispatch(&request(true), &nodes),
            DispatchDecision::Assign(0)
        );
    }

    #[test]
    fn gate_redirects_away_from_a_full_node() {
        // Node 0 packed with HR shapes (infeasible for one more), node 1
        // empty: round robin proposes 0 first, the gate lands on 1.
        let hr_shape = StreamShape::for_spec(&request(true).spec());
        let mut full = snapshot(0, 60, 130.0);
        full.resident_shapes = vec![hr_shape; 8];
        let nodes = vec![full, snapshot(1, 0, 52.0)];
        assert_eq!(
            gated(GateMode::Queue).dispatch(&request(true), &nodes),
            DispatchDecision::Assign(1)
        );
    }

    #[test]
    fn gate_queues_or_rejects_when_nothing_fits() {
        let hr_shape = StreamShape::for_spec(&request(true).spec());
        let mut full = snapshot(0, 60, 130.0);
        full.resident_shapes = vec![hr_shape; 8];
        let nodes = vec![full];
        assert_eq!(
            gated(GateMode::Queue).dispatch(&request(true), &nodes),
            DispatchDecision::Queue
        );
        assert_eq!(
            gated(GateMode::Reject).dispatch(&request(true), &nodes),
            DispatchDecision::Reject
        );
    }
}
