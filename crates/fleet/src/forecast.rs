//! Workload forecasting beyond EWMA: seasonal and trend-aware arrival
//! rate predictors that feed the elastic autoscaler.
//!
//! The [`PredictiveScaler`](crate::PredictiveScaler)'s EWMA answers
//! "what is the rate *now*" with a lag; real transcoding traffic has
//! *structure* — diurnal cycles, weekly seasonality, flash crowds around
//! live events (the dynamics motivating time-varying multi-user video
//! optimization and digital-twin collaborative transcoding). A
//! [`Forecaster`] exploits that structure: it observes one arrival count
//! per epoch and answers "what will the rate be `h` epochs from now", so
//! the [`ForecastScaler`](crate::ForecastScaler) can provision capacity
//! *ahead* of the rise instead of chasing it.
//!
//! Two predictors ship:
//!
//! * [`SeasonalNaive`] — the honest baseline: the forecast for epoch
//!   `t + h` is the observation from exactly one season earlier. Zero
//!   parameters beyond the period; surprisingly hard to beat on strongly
//!   periodic traffic.
//! * [`HoltWinters`] — additive Holt-Winters: smoothed level, additive
//!   trend and additive seasonal components. Tracks drifting baselines
//!   *and* the periodic shape, which the seasonal-naive cannot.
//!
//! Forecaster state is portable through the same std-only binary codec
//! as policy snapshots ([`Forecaster::snapshot_state`] /
//! [`Forecaster::restore_state`]): a scenario sweep can persist a primed
//! predictor and chain runs across process restarts, replaying
//! byte-for-byte.

use mamut_core::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Magic bytes opening every encoded forecaster state.
const FORECAST_MAGIC: &[u8; 8] = b"MAMUTFC\0";

/// Current forecaster-state codec version. Decoders reject newer.
pub const FORECAST_STATE_VERSION: u16 = 1;

/// An arrival-rate predictor consulted by the
/// [`ForecastScaler`](crate::ForecastScaler) once per epoch boundary.
///
/// `Send` for the same reason as [`Autoscaler`](crate::Autoscaler): the
/// fleet owning it may move across threads, but observation and
/// forecasting always run on the coordinating thread, so implementations
/// need no interior synchronization.
pub trait Forecaster: Send {
    /// Predictor name for reports and the state codec's type tag.
    fn name(&self) -> &'static str;

    /// Records one epoch's observed arrivals (`arrivals` sessions over
    /// `epoch_s` virtual seconds). Called once per boundary, in epoch
    /// order.
    fn observe(&mut self, arrivals: usize, epoch_s: f64);

    /// The predicted arrival rate (Hz) `horizon` epochs after the last
    /// observation (`horizon ≥ 1`; a horizon of 0 is treated as 1).
    /// Never negative.
    fn forecast_hz(&self, horizon: u64) -> f64;

    /// Serializes the predictor's full state through the std-only
    /// snapshot codec (magic + version + name tag + fields), so a primed
    /// predictor survives process restarts byte-for-byte.
    fn snapshot_state(&self) -> Vec<u8>;

    /// Restores state captured by [`Forecaster::snapshot_state`] from a
    /// predictor of the same type and shape.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the bytes are not a forecaster state, were
    /// written by a newer codec, carry a different predictor's tag, or
    /// disagree with this predictor's configured period.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;
}

/// Opens a forecaster-state stream: checks magic + version, then the
/// type tag against `expected`.
fn open_state<'a>(
    bytes: &'a [u8],
    expected: &'static str,
) -> Result<SnapshotReader<'a>, SnapshotError> {
    if bytes.len() < FORECAST_MAGIC.len() || &bytes[..FORECAST_MAGIC.len()] != FORECAST_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut r = SnapshotReader::new(&bytes[FORECAST_MAGIC.len()..]);
    let version = r.get_u16()?;
    if version > FORECAST_STATE_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let tag = r.get_str()?;
    if tag != expected {
        return Err(SnapshotError::WrongController {
            expected,
            found: tag,
        });
    }
    Ok(r)
}

/// Starts a forecaster-state stream with magic, version and type tag.
fn begin_state(tag: &str) -> SnapshotWriter {
    let mut w = SnapshotWriter::new();
    for &b in FORECAST_MAGIC {
        w.put_u8(b);
    }
    w.put_u16(FORECAST_STATE_VERSION);
    w.put_str(tag);
    w
}

/// Reads a finite f64 (forecaster state carries rates and smoothing
/// components; NaN/∞ would poison every later forecast).
fn get_finite(r: &mut SnapshotReader, what: &'static str) -> Result<f64, SnapshotError> {
    let v = r.get_f64()?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(SnapshotError::Corrupt(what))
    }
}

/// Seasonal-naive forecasting: the prediction for `h` epochs ahead is
/// the observation from exactly one season (or the fewest whole seasons
/// covering `h`) earlier.
///
/// Before a full season of history exists the forecast falls back to
/// the running mean of what has been observed (0 with no history) —
/// the same cold-start behavior as an unprimed EWMA. State is bounded:
/// only the newest observation per season slot is kept (a ring of
/// `period` rates), so memory and the persisted state stay O(period)
/// however long the run — forecasts only ever read the most recent
/// observation at the matching phase.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: usize,
    /// Newest rate per season slot (`slot = t % period`); filled in
    /// order during the first season, overwritten in place after.
    ring: Vec<f64>,
    /// Total epochs observed over the predictor's lifetime.
    observations: u64,
    /// Sum of the first (pre-priming) season's rates, for the
    /// cold-start mean.
    cold_sum: f64,
}

impl SeasonalNaive {
    /// A predictor for a season of `period_epochs` epochs (clamped to
    /// ≥ 1).
    pub fn new(period_epochs: usize) -> Self {
        SeasonalNaive {
            period: period_epochs.max(1),
            ring: Vec::new(),
            observations: 0,
            cold_sum: 0.0,
        }
    }

    /// The configured season length (epochs).
    pub fn period_epochs(&self) -> usize {
        self.period
    }

    /// Epochs observed over the predictor's lifetime.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &'static str {
        "seasonal-naive"
    }

    fn observe(&mut self, arrivals: usize, epoch_s: f64) {
        let rate = arrivals as f64 / epoch_s.max(1e-9);
        let slot = (self.observations % self.period as u64) as usize;
        if self.ring.len() < self.period {
            self.cold_sum += rate;
            self.ring.push(rate); // first season fills in slot order
        } else {
            self.ring[slot] = rate;
        }
        self.observations += 1;
    }

    fn forecast_hz(&self, horizon: u64) -> f64 {
        let h = horizon.max(1);
        if self.observations < self.period as u64 {
            // Cold start: the running mean of the partial first season.
            return if self.observations == 0 {
                0.0
            } else {
                (self.cold_sum / self.observations as f64).max(0.0)
            };
        }
        // ŷ(T+h) = y(T + h − m·⌈h/m⌉) — and since the lag is a whole
        // number of seasons, that is exactly the newest observation in
        // the target's season slot.
        let slot = ((self.observations + h - 1) % self.period as u64) as usize;
        self.ring[slot].max(0.0)
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = begin_state(self.name());
        w.put_u32(self.period as u32);
        w.put_u64(self.observations);
        w.put_f64(self.cold_sum);
        w.put_u32(self.ring.len() as u32);
        for &v in &self.ring {
            w.put_f64(v);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = open_state(bytes, self.name())?;
        let period = r.get_u32()? as usize;
        if period != self.period {
            return Err(SnapshotError::ShapeMismatch(
                "seasonal-naive period differs",
            ));
        }
        let observations = r.get_u64()?;
        let cold_sum = get_finite(&mut r, "non-finite cold-start sum")?;
        let n = r.get_u32()? as usize;
        if n > self.period || n as u64 > observations {
            return Err(SnapshotError::Corrupt("seasonal ring longer than history"));
        }
        if n > r.remaining() / 8 {
            return Err(SnapshotError::Truncated);
        }
        let mut ring = Vec::with_capacity(n);
        for _ in 0..n {
            ring.push(get_finite(&mut r, "non-finite rate in ring")?);
        }
        r.expect_end()?;
        self.ring = ring;
        self.observations = observations;
        self.cold_sum = cold_sum;
        Ok(())
    }
}

/// Additive Holt-Winters: exponential smoothing with a level, an
/// additive trend and an additive seasonal component of period `m`.
///
/// The first `m` observations prime the components (level = season mean,
/// trend = mean first-season slope, seasonal = deviations from the
/// mean); from then on the standard recurrences run per epoch:
///
/// ```text
/// ℓ_t = α (y_t − s_{t−m}) + (1 − α)(ℓ_{t−1} + b_{t−1})
/// b_t = β (ℓ_t − ℓ_{t−1}) + (1 − β) b_{t−1}
/// s_t = γ (y_t − ℓ_t)     + (1 − γ) s_{t−m}
/// ŷ_{t+h} = max(0, ℓ_t + h·b_t + s_{t+h−m})
/// ```
#[derive(Debug, Clone)]
pub struct HoltWinters {
    /// Level smoothing factor in `(0, 1]`.
    pub alpha: f64,
    /// Trend smoothing factor in `[0, 1]`.
    pub beta: f64,
    /// Seasonal smoothing factor in `[0, 1]`.
    pub gamma: f64,
    period: usize,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    /// Observations buffered until one full season primes the state.
    warmup: Vec<f64>,
    /// Observations consumed since priming (indexes the seasonal ring).
    steps: u64,
    primed: bool,
}

impl HoltWinters {
    /// A predictor for a season of `period_epochs` epochs (clamped to
    /// ≥ 1) with moderate defaults: α = 0.4, β = 0.1, γ = 0.3.
    pub fn new(period_epochs: usize) -> Self {
        let period = period_epochs.max(1);
        HoltWinters {
            alpha: 0.4,
            beta: 0.1,
            gamma: 0.3,
            period,
            level: 0.0,
            trend: 0.0,
            seasonal: vec![0.0; period],
            warmup: Vec::new(),
            steps: 0,
            primed: false,
        }
    }

    /// Overrides the smoothing factors (α clamped into `(0, 1]`, β and
    /// γ into `[0, 1]`).
    pub fn with_smoothing(mut self, alpha: f64, beta: f64, gamma: f64) -> Self {
        self.alpha = alpha.clamp(1e-6, 1.0);
        self.beta = beta.clamp(0.0, 1.0);
        self.gamma = gamma.clamp(0.0, 1.0);
        self
    }

    /// The configured season length (epochs).
    pub fn period_epochs(&self) -> usize {
        self.period
    }

    /// Whether a full season has primed the components.
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// The current smoothed level (Hz), 0 before priming.
    pub fn level_hz(&self) -> f64 {
        self.level
    }

    /// The current per-epoch trend (Hz/epoch), 0 before priming.
    pub fn trend_hz_per_epoch(&self) -> f64 {
        self.trend
    }
}

impl Forecaster for HoltWinters {
    fn name(&self) -> &'static str {
        "holt-winters"
    }

    fn observe(&mut self, arrivals: usize, epoch_s: f64) {
        let y = arrivals as f64 / epoch_s.max(1e-9);
        if !self.primed {
            self.warmup.push(y);
            if self.warmup.len() == self.period {
                let mean = self.warmup.iter().sum::<f64>() / self.period as f64;
                self.level = mean;
                self.trend = if self.period > 1 {
                    (self.warmup[self.period - 1] - self.warmup[0]) / (self.period - 1) as f64
                } else {
                    0.0
                };
                for (slot, &obs) in self.seasonal.iter_mut().zip(&self.warmup) {
                    *slot = obs - mean;
                }
                self.warmup.clear();
                self.primed = true;
            }
            return;
        }
        let s_idx = (self.steps % self.period as u64) as usize;
        let prev_level = self.level;
        self.level = self.alpha * (y - self.seasonal[s_idx])
            + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        self.seasonal[s_idx] =
            self.gamma * (y - self.level) + (1.0 - self.gamma) * self.seasonal[s_idx];
        self.steps += 1;
    }

    fn forecast_hz(&self, horizon: u64) -> f64 {
        let h = horizon.max(1);
        if !self.primed {
            // Cold start: the running mean of the warmup buffer.
            return if self.warmup.is_empty() {
                0.0
            } else {
                (self.warmup.iter().sum::<f64>() / self.warmup.len() as f64).max(0.0)
            };
        }
        let s_idx = ((self.steps + h - 1) % self.period as u64) as usize;
        (self.level + h as f64 * self.trend + self.seasonal[s_idx]).max(0.0)
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = begin_state(self.name());
        w.put_u32(self.period as u32);
        w.put_f64(self.alpha);
        w.put_f64(self.beta);
        w.put_f64(self.gamma);
        w.put_bool(self.primed);
        w.put_u64(self.steps);
        w.put_f64(self.level);
        w.put_f64(self.trend);
        for &s in &self.seasonal {
            w.put_f64(s);
        }
        w.put_u32(self.warmup.len() as u32);
        for &v in &self.warmup {
            w.put_f64(v);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = open_state(bytes, self.name())?;
        let period = r.get_u32()? as usize;
        if period != self.period {
            return Err(SnapshotError::ShapeMismatch("holt-winters period differs"));
        }
        let alpha = get_finite(&mut r, "non-finite alpha")?;
        let beta = get_finite(&mut r, "non-finite beta")?;
        let gamma = get_finite(&mut r, "non-finite gamma")?;
        let primed = r.get_bool()?;
        let steps = r.get_u64()?;
        let level = get_finite(&mut r, "non-finite level")?;
        let trend = get_finite(&mut r, "non-finite trend")?;
        let mut seasonal = Vec::with_capacity(period);
        for _ in 0..period {
            seasonal.push(get_finite(&mut r, "non-finite seasonal component")?);
        }
        let n = r.get_u32()? as usize;
        if n > r.remaining() / 8 {
            return Err(SnapshotError::Truncated);
        }
        let mut warmup = Vec::with_capacity(n);
        for _ in 0..n {
            warmup.push(get_finite(&mut r, "non-finite warmup rate")?);
        }
        r.expect_end()?;
        self.alpha = alpha;
        self.beta = beta;
        self.gamma = gamma;
        self.primed = primed;
        self.steps = steps;
        self.level = level;
        self.trend = trend;
        self.seasonal = seasonal;
        self.warmup = warmup;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One diurnal-ish period of arrival counts (epoch_s = 1).
    fn season() -> Vec<usize> {
        vec![1, 2, 4, 7, 9, 10, 9, 7, 4, 2, 1, 0]
    }

    fn feed(f: &mut dyn Forecaster, counts: &[usize]) {
        for &c in counts {
            f.observe(c, 1.0);
        }
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let mut f = SeasonalNaive::new(12);
        feed(&mut f, &season());
        // Next epoch aligns with the season's first slot.
        assert_eq!(f.forecast_hz(1), 1.0);
        assert_eq!(f.forecast_hz(5), 9.0);
        assert_eq!(f.forecast_hz(12), 0.0);
        // Beyond one season it wraps to the matching phase.
        assert_eq!(f.forecast_hz(13), 1.0);
    }

    #[test]
    fn seasonal_naive_state_stays_bounded_by_the_period() {
        // The predictor keeps one rate per season slot, so its memory
        // and persisted state must not grow with run length.
        let mut short = SeasonalNaive::new(4);
        feed(&mut short, &[1, 2, 3, 4]);
        let mut long = SeasonalNaive::new(4);
        for i in 0..10_000usize {
            long.observe(i % 7, 1.0);
        }
        assert_eq!(
            short.snapshot_state().len(),
            long.snapshot_state().len(),
            "state grew with observations"
        );
        // And the long-lived ring forecasts from the *latest* season:
        // the final observations t = 9996..9999 land in slots 0..3 with
        // rates t % 7 = 0, 1, 2, 3.
        assert_eq!(long.forecast_hz(1), 0.0); // slot (10000+0) % 4 = 0
        assert_eq!(long.forecast_hz(4), 3.0); // slot 3, newest = 9999
    }

    #[test]
    fn seasonal_naive_cold_start_uses_the_running_mean() {
        let mut f = SeasonalNaive::new(12);
        assert_eq!(f.forecast_hz(1), 0.0);
        feed(&mut f, &[4, 8]);
        assert!((f.forecast_hz(3) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_history_forecasts_zero_at_every_horizon() {
        // The RL featurizer's forecast-error bucket divides by the
        // forecast; a fresh predictor must answer a clean 0 Hz, not NaN.
        let sn = SeasonalNaive::new(6);
        let hw = HoltWinters::new(6);
        for h in [0u64, 1, 5, 100] {
            assert_eq!(sn.forecast_hz(h), 0.0, "seasonal-naive at h={h}");
            assert_eq!(hw.forecast_hz(h), 0.0, "holt-winters at h={h}");
        }
        // Snapshots of the empty state round-trip too.
        let mut sn2 = SeasonalNaive::new(6);
        sn2.restore_state(&sn.snapshot_state()).unwrap();
        assert_eq!(sn2.snapshot_state(), sn.snapshot_state());
        let mut hw2 = HoltWinters::new(6);
        hw2.restore_state(&hw.snapshot_state()).unwrap();
        assert_eq!(hw2.snapshot_state(), hw.snapshot_state());
    }

    #[test]
    fn partial_first_season_falls_back_to_the_running_mean() {
        // History shorter than one season: both predictors answer the
        // mean of what they have seen, independent of the horizon — the
        // honest cold-start before any seasonal structure exists.
        let mut sn = SeasonalNaive::new(12);
        let mut hw = HoltWinters::new(12);
        feed(&mut sn, &[2, 4, 6]);
        feed(&mut hw, &[2, 4, 6]);
        for h in 1..=24 {
            assert!((sn.forecast_hz(h) - 4.0).abs() < 1e-12, "sn at h={h}");
            assert!((hw.forecast_hz(h) - 4.0).abs() < 1e-12, "hw at h={h}");
        }
        assert!(!hw.is_primed(), "eleven of twelve slots must not prime");
        // One more epoch completes the season for neither (11 < 12)…
        feed(&mut hw, &[8; 8]);
        assert!(!hw.is_primed());
        // …the twelfth does.
        hw.observe(8, 1.0);
        assert!(hw.is_primed());
    }

    #[test]
    fn holt_winters_primes_after_one_season_and_tracks_the_shape() {
        let mut f = HoltWinters::new(12).with_smoothing(0.4, 0.1, 0.3);
        feed(&mut f, &season());
        assert!(f.is_primed());
        // After priming, the forecast follows the seasonal shape: the
        // next peak slot must be predicted far above the next trough.
        let peak = f.forecast_hz(6); // slot 5 (rate 10) comes 6 epochs on
        let trough = f.forecast_hz(12); // slot 11 (rate 0)
        assert!(
            peak > trough + 5.0,
            "seasonal shape lost: peak {peak}, trough {trough}"
        );
    }

    #[test]
    fn holt_winters_learns_a_trend() {
        // Flat season, then every epoch 0.5 higher than the matching
        // slot last season: the trend component must push forecasts up.
        let mut f = HoltWinters::new(4).with_smoothing(0.5, 0.5, 0.3);
        for i in 0..40 {
            f.observe(10 + i / 4, 1.0);
        }
        assert!(
            f.trend_hz_per_epoch() > 0.05,
            "trend {} never picked up",
            f.trend_hz_per_epoch()
        );
        assert!(f.forecast_hz(8) > f.forecast_hz(1));
    }

    #[test]
    fn forecasts_are_never_negative() {
        let mut f = HoltWinters::new(4);
        feed(&mut f, &[8, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        for h in 1..10 {
            assert!(f.forecast_hz(h) >= 0.0, "negative forecast at h={h}");
        }
    }

    #[test]
    fn zero_horizon_is_treated_as_one() {
        let mut f = SeasonalNaive::new(3);
        feed(&mut f, &[1, 2, 3]);
        assert_eq!(f.forecast_hz(0), f.forecast_hz(1));
        let mut hw = HoltWinters::new(3);
        feed(&mut hw, &[1, 2, 3, 1, 2, 3]);
        assert_eq!(hw.forecast_hz(0), hw.forecast_hz(1));
    }

    /// Both predictors: a restored clone must continue exactly like the
    /// original — same forecasts before and after further observations.
    #[test]
    fn state_round_trip_continues_identically() {
        let history = season();
        let future = [3usize, 6, 9, 6, 3, 1];
        let check = |mut a: Box<dyn Forecaster>, mut b: Box<dyn Forecaster>| {
            feed(a.as_mut(), &history);
            b.restore_state(&a.snapshot_state()).unwrap();
            for h in 1..=16 {
                assert_eq!(a.forecast_hz(h).to_bits(), b.forecast_hz(h).to_bits());
            }
            for &c in &future {
                a.observe(c, 2.0);
                b.observe(c, 2.0);
            }
            for h in 1..=16 {
                assert_eq!(a.forecast_hz(h).to_bits(), b.forecast_hz(h).to_bits());
            }
            assert_eq!(a.snapshot_state(), b.snapshot_state());
        };
        check(
            Box::new(SeasonalNaive::new(12)),
            Box::new(SeasonalNaive::new(12)),
        );
        check(
            Box::new(HoltWinters::new(12)),
            Box::new(HoltWinters::new(12)),
        );
        // Mid-warmup state also round-trips.
        let mut hw = HoltWinters::new(12);
        feed(&mut hw, &season()[..5]);
        let mut fresh = HoltWinters::new(12);
        fresh.restore_state(&hw.snapshot_state()).unwrap();
        assert!(!fresh.is_primed());
        assert_eq!(fresh.forecast_hz(1).to_bits(), hw.forecast_hz(1).to_bits());
    }

    #[test]
    fn state_codec_rejects_foreign_and_mangled_streams() {
        let mut sn = SeasonalNaive::new(4);
        feed(&mut sn, &[1, 2, 3, 4]);
        let bytes = sn.snapshot_state();
        // Wrong type tag.
        let mut hw = HoltWinters::new(4);
        assert!(matches!(
            hw.restore_state(&bytes),
            Err(SnapshotError::WrongController { .. })
        ));
        // Wrong period.
        let mut other = SeasonalNaive::new(8);
        assert!(matches!(
            other.restore_state(&bytes),
            Err(SnapshotError::ShapeMismatch(_))
        ));
        // Bad magic and truncation.
        let mut fresh = SeasonalNaive::new(4);
        assert_eq!(
            fresh.restore_state(b"JUNKJUNKJUNK"),
            Err(SnapshotError::BadMagic)
        );
        for cut in FORECAST_MAGIC.len()..bytes.len() {
            assert!(
                fresh.restore_state(&bytes[..cut]).is_err(),
                "cut at {cut} slipped through"
            );
        }
        // A failed restore leaves the original state untouched.
        assert_eq!(fresh.observations(), 0);
    }
}
