//! Inter-epoch session migration policies.
//!
//! At every epoch boundary — after all nodes have advanced to the same
//! virtual time and before the next wave of arrivals is dispatched — the
//! fleet asks its [`Rebalancer`] (if one is installed) which nodes
//! should shed load. The fleet then moves one live session per directive
//! (the node's [`migration_candidate`](crate::FleetNode::migration_candidate)),
//! controller and in-flight frame included, from the source to the
//! target node. Everything runs on the coordinating thread between
//! epochs, so migration is deterministic regardless of how many worker
//! threads advance the nodes.

use crate::dispatch::NodeView;

/// One migration order: move a session from node `from` to node `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationDirective {
    /// Node shedding a session.
    pub from: usize,
    /// Node receiving it.
    pub to: usize,
}

/// A fleet rebalance policy, consulted once per epoch boundary.
///
/// `Send` for the same reason as [`Dispatcher`](crate::Dispatcher): the
/// fleet owning it may move across threads, but planning itself always
/// runs on the coordinating thread.
pub trait Rebalancer: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Plans this boundary's migrations given read-only node views.
    /// Directives are executed in order; each moves at most one session.
    fn plan(&mut self, epoch: u64, nodes: &[NodeView]) -> Vec<MigrationDirective>;
}

/// Moves sessions from the most- to the least-utilized node whenever the
/// utilization gap exceeds a threshold — the fleet-level analogue of the
/// paper's thread-count knob, operating on placement instead of WPP
/// parallelism.
#[derive(Debug, Clone)]
pub struct UtilizationBalance {
    /// Minimum utilization gap (fraction of hardware threads) between
    /// donor and receiver before a move is worth its disruption.
    pub min_gap: f64,
    /// Directives per epoch boundary (each moves one session). Pairs are
    /// formed outside-in: busiest→idlest, then second-busiest→second-idlest.
    pub max_moves: usize,
}

impl UtilizationBalance {
    /// A conservative default: one move per boundary once the gap
    /// reaches 25 % of a node's hardware threads.
    pub fn new() -> Self {
        UtilizationBalance {
            min_gap: 0.25,
            max_moves: 1,
        }
    }

    /// Overrides the utilization gap threshold.
    pub fn with_min_gap(mut self, min_gap: f64) -> Self {
        self.min_gap = min_gap;
        self
    }

    /// Overrides the per-boundary move budget.
    pub fn with_max_moves(mut self, max_moves: usize) -> Self {
        self.max_moves = max_moves;
        self
    }
}

impl Default for UtilizationBalance {
    fn default() -> Self {
        UtilizationBalance::new()
    }
}

impl Rebalancer for UtilizationBalance {
    fn name(&self) -> &'static str {
        "utilization-balance"
    }

    fn plan(&mut self, _epoch: u64, nodes: &[NodeView]) -> Vec<MigrationDirective> {
        if nodes.len() < 2 {
            return Vec::new();
        }
        // Sort by utilization descending; ties by id so planning is
        // deterministic for identical loads.
        let mut order: Vec<&NodeView> = nodes.iter().collect();
        order.sort_by(|a, b| {
            b.utilization()
                .partial_cmp(&a.utilization())
                .expect("utilization is finite")
                .then(a.node_id.cmp(&b.node_id))
        });
        let mut directives = Vec::new();
        let pairs = self.max_moves.min(nodes.len() / 2);
        for i in 0..pairs {
            let donor = order[i];
            let receiver = order[order.len() - 1 - i];
            if donor.active_sessions == 0 {
                continue;
            }
            if donor.utilization() - receiver.utilization() < self.min_gap {
                break; // order is sorted: later pairs have smaller gaps
            }
            directives.push(MigrationDirective {
                from: donor.node_id,
                to: receiver.node_id,
            });
        }
        directives
    }
}

/// Moves sessions from the most- to the least-*distressed* node, where
/// distress blends power-budget pressure and QoS violations instead of
/// thread utilization alone. A node may look moderately utilized yet be
/// burning its entire power budget (dense HR streams at high frequency),
/// or look busy while every stream comfortably makes real time — this
/// policy reads the signals the paper actually constrains (power cap,
/// FPS target) rather than the proxy.
#[derive(Debug, Clone)]
pub struct PowerQosBalance {
    /// Weight of the power-pressure term (fraction of the node budget in
    /// use) in the distress score.
    pub power_weight: f64,
    /// Weight of the QoS term (fraction of resident frames under target)
    /// in the distress score.
    pub qos_weight: f64,
    /// Minimum donor-receiver distress gap before a move is worth its
    /// disruption.
    pub min_gap: f64,
    /// Directives per epoch boundary (each moves one session). Pairs are
    /// formed outside-in: most-distressed → least-distressed, and so on.
    pub max_moves: usize,
}

impl PowerQosBalance {
    /// Defaults: equal power/QoS weighting, one move per boundary once
    /// the distress gap reaches 0.2.
    pub fn new() -> Self {
        PowerQosBalance {
            power_weight: 1.0,
            qos_weight: 1.0,
            min_gap: 0.2,
            max_moves: 1,
        }
    }

    /// Overrides the power/QoS term weights.
    pub fn with_weights(mut self, power_weight: f64, qos_weight: f64) -> Self {
        self.power_weight = power_weight;
        self.qos_weight = qos_weight;
        self
    }

    /// Overrides the distress-gap threshold.
    pub fn with_min_gap(mut self, min_gap: f64) -> Self {
        self.min_gap = min_gap;
        self
    }

    /// Overrides the per-boundary move budget.
    pub fn with_max_moves(mut self, max_moves: usize) -> Self {
        self.max_moves = max_moves;
        self
    }

    /// A node's distress: how much of its power budget is spent plus how
    /// badly its residents miss real time, weighted. Higher = worse off.
    /// (Equivalently: low power headroom and low QoS slack score high.)
    pub fn distress(&self, node: &NodeView) -> f64 {
        let power_pressure = if node.power_cap_w > 0.0 {
            (node.power_w / node.power_cap_w).max(0.0)
        } else {
            0.0
        };
        self.power_weight * power_pressure + self.qos_weight * (1.0 - node.qos_slack())
    }
}

impl Default for PowerQosBalance {
    fn default() -> Self {
        PowerQosBalance::new()
    }
}

impl Rebalancer for PowerQosBalance {
    fn name(&self) -> &'static str {
        "power-qos-balance"
    }

    fn plan(&mut self, _epoch: u64, nodes: &[NodeView]) -> Vec<MigrationDirective> {
        if nodes.len() < 2 {
            return Vec::new();
        }
        // Sort by distress descending; ties by id so planning is
        // deterministic for identical loads.
        let mut order: Vec<&NodeView> = nodes.iter().collect();
        order.sort_by(|a, b| {
            self.distress(b)
                .partial_cmp(&self.distress(a))
                .expect("distress is finite")
                .then(a.node_id.cmp(&b.node_id))
        });
        let mut directives = Vec::new();
        let pairs = self.max_moves.min(nodes.len() / 2);
        for i in 0..pairs {
            let donor = order[i];
            let receiver = order[order.len() - 1 - i];
            if donor.active_sessions == 0 {
                continue;
            }
            if self.distress(donor) - self.distress(receiver) < self.min_gap {
                break; // order is sorted: later pairs have smaller gaps
            }
            directives.push(MigrationDirective {
                from: donor.node_id,
                to: receiver.node_id,
            });
        }
        directives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(node_id: usize, threads: u32, sessions: usize) -> NodeView {
        NodeView {
            node_id,
            active_sessions: sessions,
            threads_demanded: threads,
            planned_threads: threads,
            hw_threads: 32,
            power_w: 60.0,
            power_cap_w: 120.0,
            qos_violation_percent: 0.0,
            resident_shapes: Vec::new(),
        }
    }

    #[test]
    fn balanced_fleet_stays_put() {
        let nodes = vec![view(0, 8, 2), view(1, 8, 2)];
        assert!(UtilizationBalance::new().plan(0, &nodes).is_empty());
    }

    #[test]
    fn wide_gap_moves_busiest_to_idlest() {
        let nodes = vec![view(0, 4, 1), view(1, 28, 5), view(2, 12, 3)];
        let plan = UtilizationBalance::new().plan(3, &nodes);
        assert_eq!(plan, vec![MigrationDirective { from: 1, to: 0 }]);
    }

    #[test]
    fn empty_donor_is_skipped() {
        // Node 1 has high planned threads but zero live sessions (all
        // finished this epoch): nothing to move.
        let mut busy_but_empty = view(1, 28, 0);
        busy_but_empty.active_sessions = 0;
        let nodes = vec![view(0, 2, 1), busy_but_empty];
        assert!(UtilizationBalance::new().plan(0, &nodes).is_empty());
    }

    #[test]
    fn move_budget_caps_pairs() {
        let nodes = vec![view(0, 30, 6), view(1, 28, 5), view(2, 2, 1), view(3, 0, 0)];
        let plan = UtilizationBalance::new().with_max_moves(2).plan(0, &nodes);
        assert_eq!(
            plan,
            vec![
                MigrationDirective { from: 0, to: 3 },
                MigrationDirective { from: 1, to: 2 },
            ]
        );
    }

    #[test]
    fn single_node_never_plans() {
        assert!(UtilizationBalance::new()
            .plan(0, &[view(0, 30, 6)])
            .is_empty());
    }

    fn distressed(node_id: usize, power_w: f64, qos_violation: f64, sessions: usize) -> NodeView {
        let mut v = view(node_id, 8, sessions);
        v.power_w = power_w;
        v.qos_violation_percent = qos_violation;
        v
    }

    #[test]
    fn power_qos_moves_off_the_power_pressed_node_despite_equal_utilization() {
        // Same thread demand everywhere; node 1 burns its whole budget.
        let nodes = vec![
            distressed(0, 60.0, 0.0, 2),
            distressed(1, 118.0, 0.0, 2),
            distressed(2, 55.0, 0.0, 2),
        ];
        let plan = PowerQosBalance::new().plan(0, &nodes);
        assert_eq!(plan, vec![MigrationDirective { from: 1, to: 2 }]);
        // UtilizationBalance is blind to this: identical utilization.
        assert!(UtilizationBalance::new().plan(0, &nodes).is_empty());
    }

    #[test]
    fn power_qos_moves_off_the_qos_starved_node() {
        let nodes = vec![distressed(0, 60.0, 45.0, 3), distressed(1, 60.0, 0.0, 1)];
        let plan = PowerQosBalance::new().plan(0, &nodes);
        assert_eq!(plan, vec![MigrationDirective { from: 0, to: 1 }]);
    }

    #[test]
    fn power_qos_holds_inside_the_gap() {
        let nodes = vec![distressed(0, 62.0, 2.0, 2), distressed(1, 58.0, 0.0, 2)];
        assert!(PowerQosBalance::new().plan(0, &nodes).is_empty());
    }

    #[test]
    fn power_qos_weights_steer_the_score() {
        let power_pressed = distressed(0, 115.0, 0.0, 2);
        let qos_starved = distressed(1, 40.0, 80.0, 2);
        let power_first = PowerQosBalance::new().with_weights(1.0, 0.0);
        assert!(power_first.distress(&power_pressed) > power_first.distress(&qos_starved));
        let qos_first = PowerQosBalance::new().with_weights(0.0, 1.0);
        assert!(qos_first.distress(&qos_starved) > qos_first.distress(&power_pressed));
    }

    #[test]
    fn power_qos_skips_empty_donors_and_single_nodes() {
        let nodes = vec![distressed(0, 118.0, 0.0, 0), distressed(1, 40.0, 0.0, 1)];
        assert!(PowerQosBalance::new().plan(0, &nodes).is_empty());
        assert!(PowerQosBalance::new()
            .plan(0, &[distressed(0, 118.0, 50.0, 4)])
            .is_empty());
    }

    #[test]
    fn power_qos_move_budget_caps_pairs() {
        let nodes = vec![
            distressed(0, 118.0, 30.0, 4),
            distressed(1, 110.0, 20.0, 3),
            distressed(2, 45.0, 0.0, 1),
            distressed(3, 40.0, 0.0, 0),
        ];
        let plan = PowerQosBalance::new().with_max_moves(2).plan(0, &nodes);
        assert_eq!(
            plan,
            vec![
                MigrationDirective { from: 0, to: 3 },
                MigrationDirective { from: 1, to: 2 },
            ]
        );
    }
}
