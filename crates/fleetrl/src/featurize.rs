//! Fleet-state featurization: bucketing [`ScaleSignals`]-level
//! observations into a compact discrete state a tabular policy can
//! index.
//!
//! The paper's session agents discretize per-stream observations (FPS
//! error, thread count, frequency) into small Q-table states; the fleet
//! layer does the same one level up. Five signals cover what a scaling
//! and dispatch policy needs to know about the cluster:
//!
//! | feature | buckets | boundary intuition |
//! |---|---|---|
//! | mean utilization | 4 | idle / comfortable / busy / saturated |
//! | mean QoS violation % | 3 | healthy / strained / suffering |
//! | relative forecast error | 3 | over-forecast / on-track / under-forecast |
//! | mean power-headroom fraction | 3 | tight / moderate / ample |
//! | pool position | 4 | at-min / low / high / at-max |
//!
//! 432 joint states in all — small enough that the catalog's training
//! episodes visit the reachable region many times, large enough that
//! "saturated and under-forecast at max pool" and "idle at min pool"
//! never alias.

use mamut_fleet::ScaleSignals;

/// Bucket edges and pool limits for [`FleetFeaturizer`].
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Mean-utilization bucket edges (ascending, 3 edges → 4 buckets).
    pub util_edges: [f64; 3],
    /// Mean QoS violation-percent edges (2 edges → 3 buckets).
    pub qos_edges: [f64; 2],
    /// Symmetric relative forecast-error edge: error below `-edge` is
    /// over-forecast, above `+edge` under-forecast, else on-track.
    pub forecast_err_edge: f64,
    /// Mean power-headroom-fraction edges (2 edges → 3 buckets).
    pub headroom_edges: [f64; 2],
    /// Pool limits `(min, max)` the policy operates within; also the
    /// bounds of the pool-position feature.
    pub pool: (usize, usize),
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            util_edges: [0.30, 0.60, 0.85],
            qos_edges: [0.5, 5.0],
            forecast_err_edge: 0.25,
            headroom_edges: [0.25, 0.50],
            pool: (1, 32),
        }
    }
}

/// Buckets per feature, in index order (utilization, QoS, forecast
/// error, headroom, pool position).
const DIMS: [usize; 5] = [4, 3, 3, 3, 4];

/// A discretized fleet state (dense index plus the per-feature buckets
/// it was built from, for reports and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetState {
    /// Dense index in `0..FleetFeaturizer::n_states()`.
    pub index: usize,
    /// Per-feature bucket indices: utilization, QoS violation,
    /// forecast error, power headroom, pool position.
    pub buckets: [usize; 5],
}

/// Discretizes fleet observations into [`FleetState`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFeaturizer {
    config: FeatureConfig,
}

/// Index of `v` among ascending `edges` (0 below the first edge,
/// `edges.len()` at or above the last).
fn bucket(v: f64, edges: &[f64]) -> usize {
    edges.iter().take_while(|&&e| v >= e).count()
}

impl FleetFeaturizer {
    /// A featurizer over `config`'s buckets.
    pub fn new(config: FeatureConfig) -> Self {
        FleetFeaturizer { config }
    }

    /// The configured bucket edges and pool limits.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Number of joint states the featurizer can produce.
    pub fn n_states(&self) -> usize {
        DIMS.iter().product()
    }

    /// Discretizes one epoch boundary. `forecast_err` is the signed
    /// relative error of the previous boundary's one-step forecast
    /// against the rate that actually materialized (positive when
    /// arrivals exceeded the forecast; 0 before any forecast exists).
    pub fn featurize(&self, signals: &ScaleSignals, forecast_err: f64) -> FleetState {
        let c = &self.config;
        let util = bucket(signals.mean_utilization(), &c.util_edges);
        let qos = bucket(signals.mean_qos_violation_percent(), &c.qos_edges);
        let err = if !forecast_err.is_finite() || forecast_err.abs() <= c.forecast_err_edge {
            1
        } else if forecast_err < 0.0 {
            0
        } else {
            2
        };
        let headroom = if signals.active.is_empty() {
            DIMS[3] - 1
        } else {
            let mean_fraction = signals
                .active
                .iter()
                .map(|n| {
                    if n.power_cap_w > 0.0 {
                        (n.power_headroom_w() / n.power_cap_w).clamp(0.0, 1.0)
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
                / signals.active.len() as f64;
            bucket(mean_fraction, &c.headroom_edges)
        };
        let pool = self.pool_position(signals.active.len());
        let buckets = [util, qos, err, headroom, pool];
        let index = buckets
            .iter()
            .zip(DIMS)
            .fold(0usize, |acc, (&b, dim)| acc * dim + b);
        FleetState { index, buckets }
    }

    /// Pool-position bucket: at-min / lower half / upper half / at-max.
    fn pool_position(&self, active: usize) -> usize {
        let (min, max) = self.config.pool;
        if active <= min {
            0
        } else if active >= max {
            3
        } else if max <= min + 1 {
            0
        } else {
            let fraction = (active - min) as f64 / (max - min) as f64;
            if fraction < 0.5 {
                1
            } else {
                2
            }
        }
    }
}

impl Default for FleetFeaturizer {
    fn default() -> Self {
        FleetFeaturizer::new(FeatureConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_fleet::NodeView;

    fn view(node_id: usize, threads: u32, qos_violation: f64, power_w: f64) -> NodeView {
        NodeView {
            node_id,
            active_sessions: (threads / 4) as usize,
            threads_demanded: threads,
            planned_threads: threads,
            hw_threads: 32,
            power_w,
            power_cap_w: 120.0,
            qos_violation_percent: qos_violation,
            resident_shapes: Vec::new(),
        }
    }

    fn signals<'a>(active: &'a [NodeView], arrivals: usize) -> ScaleSignals<'a> {
        ScaleSignals {
            epoch: 0,
            epoch_s: 1.0,
            active,
            arrivals_due: arrivals,
            queued_sessions: 0,
            pending_sessions: 0,
        }
    }

    #[test]
    fn bucket_edges_are_half_open() {
        assert_eq!(bucket(0.0, &[0.3, 0.6, 0.85]), 0);
        assert_eq!(bucket(0.29, &[0.3, 0.6, 0.85]), 0);
        assert_eq!(bucket(0.3, &[0.3, 0.6, 0.85]), 1);
        assert_eq!(bucket(0.84, &[0.3, 0.6, 0.85]), 2);
        assert_eq!(bucket(2.0, &[0.3, 0.6, 0.85]), 3);
    }

    #[test]
    fn index_is_dense_and_in_range() {
        let f = FleetFeaturizer::default();
        assert_eq!(f.n_states(), 432);
        // Extremes of every feature stay inside the table.
        let idle = [view(0, 0, 0.0, 40.0)];
        let hot: Vec<NodeView> = (0..32).map(|i| view(i, 32, 60.0, 119.0)).collect();
        for (nodes, err) in [(&idle[..], -3.0), (&hot[..], 3.0)] {
            let s = f.featurize(&signals(nodes, 5), err);
            assert!(s.index < f.n_states(), "index {} out of range", s.index);
        }
    }

    #[test]
    fn distinct_conditions_map_to_distinct_states() {
        let f = FleetFeaturizer::default();
        let idle = [view(0, 2, 0.0, 40.0)];
        let saturated = [view(0, 32, 30.0, 118.0)];
        let a = f.featurize(&signals(&idle, 0), 0.0);
        let b = f.featurize(&signals(&saturated, 0), 0.0);
        assert_ne!(a.index, b.index);
        assert_eq!(a.buckets[0], 0, "2/32 threads is idle");
        assert_eq!(b.buckets[0], 3, "32/32 threads is saturated");
        assert_eq!(b.buckets[1], 2, "30% violations is suffering");
    }

    #[test]
    fn forecast_error_splits_three_ways_and_tolerates_nan() {
        let f = FleetFeaturizer::default();
        let pool = [view(0, 8, 0.0, 60.0)];
        let over = f.featurize(&signals(&pool, 0), -0.5);
        let on = f.featurize(&signals(&pool, 0), 0.1);
        let under = f.featurize(&signals(&pool, 0), 0.5);
        let nan = f.featurize(&signals(&pool, 0), f64::NAN);
        assert_eq!(over.buckets[2], 0);
        assert_eq!(on.buckets[2], 1);
        assert_eq!(under.buckets[2], 2);
        assert_eq!(nan.buckets[2], 1, "NaN error reads as on-track");
    }

    #[test]
    fn pool_position_tracks_the_limits() {
        let f = FleetFeaturizer::new(FeatureConfig {
            pool: (1, 9),
            ..FeatureConfig::default()
        });
        assert_eq!(f.pool_position(1), 0, "at min");
        assert_eq!(f.pool_position(2), 1, "lower half");
        assert_eq!(f.pool_position(6), 2, "upper half");
        assert_eq!(f.pool_position(9), 3, "at max");
        assert_eq!(f.pool_position(40), 3, "clamped above max");
        // Degenerate one-node pool never panics.
        let tiny = FleetFeaturizer::new(FeatureConfig {
            pool: (1, 1),
            ..FeatureConfig::default()
        });
        assert_eq!(tiny.pool_position(1), 0);
    }

    #[test]
    fn empty_pool_reads_as_ample_headroom() {
        let f = FleetFeaturizer::default();
        let s = f.featurize(&signals(&[], 0), 0.0);
        assert_eq!(s.buckets[3], 2, "no nodes → nothing power-constrained");
        assert!(s.index < f.n_states());
    }
}
