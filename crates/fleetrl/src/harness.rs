//! The offline training harness: seeded episode rollouts against the
//! scenario catalog plus replay passes over the recorded transitions.
//!
//! Training is simulation-native — no live fleet is touched. Each
//! episode reseeds a scenario, realizes its deterministic arrival
//! trace, and drives a [`FleetSim`] whose autoscaler and dispatcher are
//! the learned [`RlScaler`]/[`RlDispatch`] pair in ε-greedy training
//! mode; the driver records every `(s, a, r, s′)` step. After the
//! scenario's episodes, a seeded shuffle replays the accumulated buffer
//! through extra Q-backups — the usual experience-replay trick, here
//! fully deterministic so the 1/2/8-worker CI matrix trains
//! byte-identical policies.
//!
//! Everything the sim needs besides the policy — epoch grid, pool
//! limits, node platform, controller factory, rebalancer — comes from
//! `mamut_scenario::sizing`'s canonical sweep configuration, so a
//! trained policy races the heuristic stack on identical terms.

use mamut_core::snapshot::SnapshotError;
use mamut_core::{FixedController, KnobSettings};
use mamut_fleet::{ControllerFactory, FleetConfig, FleetSim, FleetSummary, PowerQosBalance};
use mamut_platform::Platform;
use mamut_scenario::sizing::{SWEEP_EPOCH_S, SWEEP_POOL, SWEEP_SESSIONS_PER_NODE};
use mamut_scenario::{sizing, Scenario};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::adapter::{PolicyDriver, RlConfig, RlDispatch, RlScaler, SharedDriver, Transition};
use crate::featurize::{FeatureConfig, FleetFeaturizer};
use crate::policy::{EpsilonSchedule, FleetPolicy};

/// Training-run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Reward weights and observation shape.
    pub rl: RlConfig,
    /// Q-learning rate.
    pub alpha: f64,
    /// Discount factor.
    pub gamma: f64,
    /// Exploration schedule across the whole run.
    pub schedule: EpsilonSchedule,
    /// Episodes rolled out per scenario (each reseeds the arrival
    /// process, so the policy sees fresh noise on the same shape).
    pub episodes_per_scenario: usize,
    /// Seeded-shuffle passes over a scenario's transition buffer after
    /// its episodes complete.
    pub replay_passes: usize,
    /// Master seed for exploration and replay shuffles.
    pub seed: u64,
    /// Fleet worker threads (results are identical for any value).
    pub workers: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            rl: RlConfig {
                features: FeatureConfig {
                    pool: SWEEP_POOL,
                    ..FeatureConfig::default()
                },
                sessions_per_node: SWEEP_SESSIONS_PER_NODE,
                ..RlConfig::default()
            },
            alpha: 0.15,
            gamma: 0.92,
            schedule: EpsilonSchedule::default(),
            episodes_per_scenario: 6,
            replay_passes: 2,
            seed: 9,
            workers: 4,
        }
    }
}

/// What one scenario's training pass produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Scenario name.
    pub scenario: String,
    /// Episodes rolled out.
    pub episodes: usize,
    /// Transitions recorded across those episodes.
    pub transitions: u64,
    /// Mean per-step reward over the recorded transitions.
    pub mean_reward: f64,
    /// The exploration rate after this scenario's training.
    pub epsilon_after: f64,
}

/// The canonical sweep controller factory (same knobs as
/// `examples/scenario_sweep.rs`, so RL and heuristic stacks transcode
/// identically).
pub fn sweep_factory() -> ControllerFactory {
    Box::new(|req| {
        let threads = if req.hr { 10 } else { 4 };
        Box::new(FixedController::new(KnobSettings::new(32, threads, 2.9)))
    })
}

/// Offline trainer: owns the shared [`PolicyDriver`] and rolls
/// episodes against scenarios.
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainConfig,
    driver: SharedDriver,
    transitions_seen: u64,
}

impl Trainer {
    /// A trainer with a fresh zero-initialized policy.
    pub fn new(cfg: TrainConfig) -> Self {
        let n_states = FleetFeaturizer::new(cfg.rl.features.clone()).n_states();
        let policy = FleetPolicy::new(n_states, cfg.seed)
            .with_learning(cfg.alpha, cfg.gamma)
            .with_schedule(cfg.schedule.clone());
        let driver = PolicyDriver::new(cfg.rl.clone(), policy).into_shared();
        Trainer {
            cfg,
            driver,
            transitions_seen: 0,
        }
    }

    /// The shared driver (for wiring extra adapters or inspection).
    pub fn driver(&self) -> SharedDriver {
        self.driver.clone()
    }

    /// Serializes the learned policy.
    pub fn snapshot(&self) -> Vec<u8> {
        self.driver.lock().expect("driver lock").snapshot_state()
    }

    /// Warm-starts the policy from a snapshot captured by another
    /// trainer (the transfer-study path: the restored ε-schedule
    /// position and Q-table carry over, so training continues instead
    /// of restarting).
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the bytes are not a fleet-policy state of
    /// matching shape.
    pub fn warm_start(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.driver
            .lock()
            .expect("driver lock")
            .restore_state(bytes)
    }

    /// Transitions consumed over the trainer's lifetime (rollout steps;
    /// replay passes revisit them without recounting).
    pub fn transitions_seen(&self) -> u64 {
        self.transitions_seen
    }

    /// Rolls `episodes_per_scenario` training episodes of `scenario`
    /// (each on a fresh arrival seed), then replays the recorded buffer
    /// `replay_passes` times in seeded-shuffle order.
    pub fn train_scenario(&mut self, scenario: &Scenario) -> TrainReport {
        let mut buffer: Vec<Transition> = Vec::new();
        for episode in 0..self.cfg.episodes_per_scenario {
            // Reseed deterministically per episode: same shape, fresh
            // Poisson noise.
            let reseeded = scenario
                .clone()
                .with_seed(scenario.seed().wrapping_add(7919 * (episode as u64 + 1)));
            let realized = reseeded.realize().expect("catalog scenarios are valid");
            {
                let mut d = self.driver.lock().expect("driver lock");
                d.set_train(true);
                d.begin_episode();
                d.set_mean_session_s(sizing::trace_mean_session_s(&realized));
            }
            self.run_fleet(&realized.workload());
            let mut fresh = self.driver.lock().expect("driver lock").take_transitions();
            self.transitions_seen += fresh.len() as u64;
            buffer.append(&mut fresh);
        }

        // Seeded-shuffle replay: extra backups over the same evidence.
        // The shuffle stream derives from the policy's own step counter
        // — restored with every snapshot — so a warm-started trainer
        // replays exactly like the original would have.
        let mut d = self.driver.lock().expect("driver lock");
        let mut replay_rng = StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add(d.policy().steps().wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let mut order: Vec<usize> = (0..buffer.len()).collect();
        for _ in 0..self.cfg.replay_passes {
            // Fisher–Yates over the scenario's buffer.
            for i in (1..order.len()).rev() {
                let j = replay_rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let t = buffer[i];
                d.policy_mut()
                    .update(t.state, t.action, t.reward, t.next_state);
            }
        }
        let mean_reward = if buffer.is_empty() {
            0.0
        } else {
            buffer.iter().map(|t| t.reward).sum::<f64>() / buffer.len() as f64
        };
        TrainReport {
            scenario: scenario.name().to_owned(),
            episodes: self.cfg.episodes_per_scenario,
            transitions: buffer.len() as u64,
            mean_reward,
            epsilon_after: d.policy().epsilon(),
        }
    }

    /// Trains every scenario in order, returning one report each.
    pub fn train_catalog(&mut self, scenarios: &[Scenario]) -> Vec<TrainReport> {
        scenarios.iter().map(|s| self.train_scenario(s)).collect()
    }

    /// Runs `scenario` (at its canonical seed) under the *greedy*
    /// policy — no exploration, no updates — and returns the fleet
    /// summary for comparison against heuristic stacks.
    pub fn evaluate(&self, scenario: &Scenario) -> FleetSummary {
        let realized = scenario.realize().expect("catalog scenarios are valid");
        {
            let mut d = self.driver.lock().expect("driver lock");
            d.set_train(false);
            d.begin_episode();
            d.set_mean_session_s(sizing::trace_mean_session_s(&realized));
        }
        self.run_fleet(&realized.workload())
    }

    /// One fleet run under the current driver mode, on the canonical
    /// sweep grid.
    fn run_fleet(&self, workload: &mamut_fleet::Workload) -> FleetSummary {
        let mut fleet = FleetSim::new(
            FleetConfig::default()
                .with_epoch_s(SWEEP_EPOCH_S)
                .with_worker_threads(self.cfg.workers),
            Box::new(RlDispatch::new(self.driver.clone())),
            workload.clone(),
        );
        fleet.add_node(sweep_factory());
        fleet.set_autoscaler(
            Box::new(RlScaler::new(self.driver.clone())),
            Box::new(|| (Platform::xeon_e5_2667_v4(), sweep_factory())),
        );
        fleet.set_rebalancer(Box::new(
            PowerQosBalance::new().with_min_gap(0.3).with_max_moves(2),
        ));
        fleet.run().expect("fleet run completes")
    }
}

/// The heuristic reference stack on the same grid: seasonal
/// Holt-Winters scaler, least-loaded dispatch, power/QoS rebalancing —
/// the strongest non-learned combination the repo ships. Used by the
/// example and tests as the baseline a trained policy must match.
pub fn heuristic_reference(scenario: &Scenario, workers: usize) -> FleetSummary {
    let realized = scenario.realize().expect("catalog scenarios are valid");
    let mut fleet = FleetSim::new(
        FleetConfig::default()
            .with_epoch_s(SWEEP_EPOCH_S)
            .with_worker_threads(workers),
        Box::new(mamut_fleet::LeastLoaded::new()),
        realized.workload(),
    );
    fleet.add_node(sweep_factory());
    fleet.set_autoscaler(
        Box::new(sizing::seasonal_sweep_scaler(&realized)),
        Box::new(|| (Platform::xeon_e5_2667_v4(), sweep_factory())),
    );
    fleet.set_rebalancer(Box::new(
        PowerQosBalance::new().with_min_gap(0.3).with_max_moves(2),
    ));
    fleet.run().expect("fleet run completes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_scenario::catalog;

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            episodes_per_scenario: 2,
            replay_passes: 1,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn training_records_transitions_and_decays_epsilon() {
        let mut t = Trainer::new(quick_cfg());
        let report = t.train_scenario(&catalog::daily_vod());
        assert_eq!(report.episodes, 2);
        // Three 16-epoch days plus the drain tail, minus the first
        // boundary, per episode.
        assert!(report.transitions > 80, "diurnal days are many epochs");
        assert_eq!(t.transitions_seen(), report.transitions);
        assert!(report.epsilon_after < EpsilonSchedule::default().start);
        assert!(report.mean_reward.is_finite());
    }

    #[test]
    fn training_is_deterministic_across_worker_counts() {
        let snap = |workers: usize| {
            let mut t = Trainer::new(TrainConfig {
                workers,
                ..quick_cfg()
            });
            t.train_scenario(&catalog::flash_mob());
            t.snapshot()
        };
        let reference = snap(1);
        assert_eq!(reference, snap(2), "2 workers diverged");
        assert_eq!(reference, snap(8), "8 workers diverged");
    }

    #[test]
    fn evaluation_is_greedy_and_repeatable() {
        let mut t = Trainer::new(quick_cfg());
        t.train_scenario(&catalog::daily_vod());
        let before = t.snapshot();
        let a = t.evaluate(&catalog::daily_vod());
        let b = t.evaluate(&catalog::daily_vod());
        assert_eq!(a.to_string(), b.to_string(), "greedy eval must repeat");
        assert_eq!(t.snapshot(), before, "evaluation must not learn");
        assert!(a.greedy_actions > 0, "eval decisions are all greedy");
        assert_eq!(a.exploratory_actions, 0);
    }

    #[test]
    fn warm_start_resumes_the_schedule_instead_of_restarting() {
        let mut donor = Trainer::new(quick_cfg());
        donor.train_scenario(&catalog::daily_vod());
        let bytes = donor.snapshot();

        let mut cold = Trainer::new(quick_cfg());
        let mut warm = Trainer::new(quick_cfg());
        warm.warm_start(&bytes).unwrap();
        let cold_report = cold.train_scenario(&catalog::live_final());
        let warm_report = warm.train_scenario(&catalog::live_final());
        // The restored ε-schedule position means the warm trainer
        // explores strictly less on the new scenario.
        assert!(warm_report.epsilon_after < cold_report.epsilon_after);
    }
}
