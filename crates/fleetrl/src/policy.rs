//! The fleet-level tabular Q-policy: a joint scale × dispatch action
//! space, ε-greedy selection on a decaying schedule, and a portable
//! state codec.
//!
//! This is the paper's per-session learning loop lifted one level up:
//! where a session agent picks QP/threads/DVFS from a small Q-table, the
//! fleet policy picks "grow, hold or shrink the pool" jointly with
//! "which placement preference the dispatcher should follow". The table
//! is tiny (432 states × 9 actions), so training against the scenario
//! catalog converges in seconds and the whole learned state travels in a
//! few tens of kilobytes through the same snapshot primitives as
//! controller policies and forecaster state.

use mamut_core::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Magic bytes opening every encoded fleet-policy state.
const POLICY_MAGIC: &[u8; 8] = b"MAMUTFP\0";

/// Current fleet-policy codec version. Decoders reject newer.
pub const FLEETRL_STATE_VERSION: u16 = 1;

/// Type tag carried in every encoded policy state.
const POLICY_TAG: &str = "fleet-q";

/// The pool-sizing component of a joint action: a learned residual on
/// the Little's-law base target the driver computes from its blended
/// forecast (see `PolicyDriver::plan` in the adapter module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleMove {
    /// Run one node *under* the forecast's base target.
    Shrink,
    /// Follow the base target exactly.
    Hold,
    /// Provision one node *over* the base target.
    Grow,
}

/// The dispatch-preference component of a joint action: which node
/// ordering the learned dispatcher follows until the next decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPref {
    /// Place on the least thread-utilized node.
    LeastLoaded,
    /// Place on the node with the most power headroom.
    PowerHeadroom,
    /// Place on the node with the most QoS slack.
    QosSlack,
}

/// One joint action: a scale move plus a dispatch preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JointAction {
    /// Pool-sizing component.
    pub scale: ScaleMove,
    /// Dispatch-preference component.
    pub pref: DispatchPref,
}

/// Scale moves in index order.
const SCALE_MOVES: [ScaleMove; 3] = [ScaleMove::Shrink, ScaleMove::Hold, ScaleMove::Grow];
/// Dispatch preferences in index order.
const PREFS: [DispatchPref; 3] = [
    DispatchPref::LeastLoaded,
    DispatchPref::PowerHeadroom,
    DispatchPref::QosSlack,
];

impl JointAction {
    /// Number of joint actions (3 scale moves × 3 preferences).
    pub const COUNT: usize = SCALE_MOVES.len() * PREFS.len();

    /// The action at dense index `i` (`i < JointAction::COUNT`).
    pub fn from_index(i: usize) -> JointAction {
        JointAction {
            scale: SCALE_MOVES[i / PREFS.len()],
            pref: PREFS[i % PREFS.len()],
        }
    }

    /// Dense index in `0..JointAction::COUNT`.
    pub fn index(&self) -> usize {
        let s = SCALE_MOVES
            .iter()
            .position(|m| m == &self.scale)
            .expect("listed");
        let p = PREFS.iter().position(|q| q == &self.pref).expect("listed");
        s * PREFS.len() + p
    }
}

/// Linearly decaying exploration-rate schedule: ε runs from `start` to
/// `end` over `decay_steps` policy decisions, then stays at `end`.
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonSchedule {
    /// ε at step 0.
    pub start: f64,
    /// ε after the decay completes.
    pub end: f64,
    /// Decisions over which ε decays (0 → always `end`).
    pub decay_steps: u64,
}

impl EpsilonSchedule {
    /// ε at decision `step`.
    pub fn value(&self, step: u64) -> f64 {
        if self.decay_steps == 0 || step >= self.decay_steps {
            return self.end;
        }
        let f = step as f64 / self.decay_steps as f64;
        self.start + (self.end - self.start) * f
    }
}

impl Default for EpsilonSchedule {
    fn default() -> Self {
        EpsilonSchedule {
            start: 0.4,
            end: 0.02,
            decay_steps: 4_000,
        }
    }
}

/// A tabular Q-learning policy over the joint fleet action space.
///
/// Selection and updates are fully deterministic for a given seed and
/// call sequence; [`FleetPolicy::snapshot_state`] captures everything —
/// Q-values, visit counts, the ε schedule position and the RNG state —
/// so a restored policy replays byte-identical decisions.
#[derive(Debug, Clone)]
pub struct FleetPolicy {
    n_states: usize,
    /// Dense row-major Q-values (`n_states × JointAction::COUNT`).
    q: Vec<f64>,
    /// Per-(state, action) selection counts, same layout as `q`.
    visits: Vec<u32>,
    /// Learning rate in `(0, 1]`.
    pub alpha: f64,
    /// Discount factor in `[0, 1)`.
    pub gamma: f64,
    schedule: EpsilonSchedule,
    /// Selections made over the policy's lifetime (drives the schedule).
    steps: u64,
    greedy_selections: u64,
    exploratory_selections: u64,
    rng: StdRng,
}

impl FleetPolicy {
    /// A zero-initialized policy over `n_states` featurizer states,
    /// seeded for reproducible exploration.
    pub fn new(n_states: usize, seed: u64) -> Self {
        FleetPolicy {
            n_states,
            q: vec![0.0; n_states * JointAction::COUNT],
            visits: vec![0; n_states * JointAction::COUNT],
            alpha: 0.15,
            gamma: 0.92,
            schedule: EpsilonSchedule::default(),
            steps: 0,
            greedy_selections: 0,
            exploratory_selections: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the learning rate and discount factor.
    pub fn with_learning(mut self, alpha: f64, gamma: f64) -> Self {
        self.alpha = alpha.clamp(1e-6, 1.0);
        self.gamma = gamma.clamp(0.0, 0.999_999);
        self
    }

    /// Overrides the exploration schedule.
    pub fn with_schedule(mut self, schedule: EpsilonSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// States in the Q-table.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Selections made over the policy's lifetime.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Greedy selections made over the policy's lifetime.
    pub fn greedy_selections(&self) -> u64 {
        self.greedy_selections
    }

    /// Exploratory (random) selections made over the policy's lifetime.
    pub fn exploratory_selections(&self) -> u64 {
        self.exploratory_selections
    }

    /// The exploration rate the *next* training selection will use.
    pub fn epsilon(&self) -> f64 {
        self.schedule.value(self.steps)
    }

    /// The Q-value of `(state, action)`.
    pub fn q_value(&self, state: usize, action: JointAction) -> f64 {
        self.q[state * JointAction::COUNT + action.index()]
    }

    /// Times `(state, action)` was selected.
    pub fn visit_count(&self, state: usize, action: JointAction) -> u32 {
        self.visits[state * JointAction::COUNT + action.index()]
    }

    /// Total selections recorded in the visit table.
    pub fn total_visits(&self) -> u64 {
        self.visits.iter().map(|&v| u64::from(v)).sum()
    }

    /// The greedy action in `state` (ties: lowest action index, so
    /// evaluation is deterministic).
    pub fn greedy(&self, state: usize) -> JointAction {
        let row = &self.q[state * JointAction::COUNT..(state + 1) * JointAction::COUNT];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > row[best] {
                best = i;
            }
        }
        JointAction::from_index(best)
    }

    /// ε-greedy training selection in `state`: with probability ε (from
    /// the decaying schedule) a uniformly random action, otherwise the
    /// greedy one. Advances the schedule, counters and visit table.
    /// Returns the action and whether it was exploratory.
    pub fn select(&mut self, state: usize) -> (JointAction, bool) {
        let eps = self.schedule.value(self.steps);
        self.steps += 1;
        // Both random draws happen unconditionally so the RNG stream —
        // and therefore every later decision — does not depend on which
        // branch a particular ε landed in.
        let explore = self.rng.gen_bool(eps);
        let random_index = self.rng.gen_range(0..JointAction::COUNT);
        let action = if explore {
            self.exploratory_selections += 1;
            JointAction::from_index(random_index)
        } else {
            self.greedy_selections += 1;
            self.greedy(state)
        };
        let cell = state * JointAction::COUNT + action.index();
        self.visits[cell] = self.visits[cell].saturating_add(1);
        (action, explore)
    }

    /// One Q-learning backup:
    /// `Q(s,a) += α (r + γ·max_a' Q(s',a') − Q(s,a))`.
    pub fn update(&mut self, state: usize, action: JointAction, reward: f64, next_state: usize) {
        let next_row =
            &self.q[next_state * JointAction::COUNT..(next_state + 1) * JointAction::COUNT];
        let max_next = next_row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cell = state * JointAction::COUNT + action.index();
        self.q[cell] += self.alpha * (reward + self.gamma * max_next - self.q[cell]);
    }

    /// Serializes the policy's full state — Q-values, visit counts,
    /// learning parameters, schedule position and RNG — through the
    /// std-only snapshot codec, so a restored policy replays
    /// byte-identical decisions. Encoding is canonical: encode → decode
    /// → encode round-trips to the very same bytes.
    pub fn snapshot_state(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        for &b in POLICY_MAGIC {
            w.put_u8(b);
        }
        w.put_u16(FLEETRL_STATE_VERSION);
        w.put_str(POLICY_TAG);
        w.put_u32(self.n_states as u32);
        w.put_u32(JointAction::COUNT as u32);
        w.put_f64(self.alpha);
        w.put_f64(self.gamma);
        w.put_f64(self.schedule.start);
        w.put_f64(self.schedule.end);
        w.put_u64(self.schedule.decay_steps);
        w.put_u64(self.steps);
        w.put_u64(self.greedy_selections);
        w.put_u64(self.exploratory_selections);
        for s in self.rng.state() {
            w.put_u64(s);
        }
        for &q in &self.q {
            w.put_f64(q);
        }
        for &v in &self.visits {
            w.put_u32(v);
        }
        w.into_bytes()
    }

    /// Restores state captured by [`FleetPolicy::snapshot_state`] into a
    /// policy of the same shape.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the bytes are not a fleet-policy state,
    /// were written by a newer codec, or disagree with this policy's
    /// state/action space. A failed restore leaves the policy untouched.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        if bytes.len() < POLICY_MAGIC.len() || &bytes[..POLICY_MAGIC.len()] != POLICY_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = SnapshotReader::new(&bytes[POLICY_MAGIC.len()..]);
        let version = r.get_u16()?;
        if version > FLEETRL_STATE_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let tag = r.get_str()?;
        if tag != POLICY_TAG {
            return Err(SnapshotError::WrongController {
                expected: POLICY_TAG,
                found: tag,
            });
        }
        let n_states = r.get_u32()? as usize;
        let n_actions = r.get_u32()? as usize;
        if n_states != self.n_states || n_actions != JointAction::COUNT {
            return Err(SnapshotError::ShapeMismatch(
                "fleet-policy table dimensions differ",
            ));
        }
        let alpha = get_finite(&mut r, "non-finite alpha")?;
        let gamma = get_finite(&mut r, "non-finite gamma")?;
        let eps_start = get_finite(&mut r, "non-finite epsilon start")?;
        let eps_end = get_finite(&mut r, "non-finite epsilon end")?;
        let decay_steps = r.get_u64()?;
        let steps = r.get_u64()?;
        let greedy_selections = r.get_u64()?;
        let exploratory_selections = r.get_u64()?;
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.get_u64()?;
        }
        let cells = n_states * n_actions;
        if cells > r.remaining() / 8 {
            return Err(SnapshotError::Truncated);
        }
        let mut q = Vec::with_capacity(cells);
        for _ in 0..cells {
            q.push(get_finite(&mut r, "non-finite q-value")?);
        }
        if cells > r.remaining() / 4 {
            return Err(SnapshotError::Truncated);
        }
        let mut visits = Vec::with_capacity(cells);
        for _ in 0..cells {
            visits.push(r.get_u32()?);
        }
        r.expect_end()?;
        self.alpha = alpha;
        self.gamma = gamma;
        self.schedule = EpsilonSchedule {
            start: eps_start,
            end: eps_end,
            decay_steps,
        };
        self.steps = steps;
        self.greedy_selections = greedy_selections;
        self.exploratory_selections = exploratory_selections;
        self.rng = StdRng::from_state(rng_state);
        self.q = q;
        self.visits = visits;
        Ok(())
    }
}

/// Reads a finite f64 (Q-values and learning parameters; NaN would
/// poison every later greedy selection).
fn get_finite(r: &mut SnapshotReader, what: &'static str) -> Result<f64, SnapshotError> {
    let v = r.get_f64()?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(SnapshotError::Corrupt(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_action_index_is_a_bijection() {
        for i in 0..JointAction::COUNT {
            assert_eq!(JointAction::from_index(i).index(), i);
        }
        assert_eq!(JointAction::COUNT, 9);
    }

    #[test]
    fn schedule_decays_linearly_then_floors() {
        let s = EpsilonSchedule {
            start: 0.5,
            end: 0.1,
            decay_steps: 4,
        };
        assert!((s.value(0) - 0.5).abs() < 1e-12);
        assert!((s.value(2) - 0.3).abs() < 1e-12);
        assert!((s.value(4) - 0.1).abs() < 1e-12);
        assert!((s.value(400) - 0.1).abs() < 1e-12);
        let flat = EpsilonSchedule {
            start: 0.9,
            end: 0.05,
            decay_steps: 0,
        };
        assert!((flat.value(0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn update_moves_q_toward_the_backup_target() {
        let mut p = FleetPolicy::new(4, 7).with_learning(0.5, 0.9);
        let a = JointAction::from_index(3);
        // Next state has a known best of 2.0.
        let best_next = JointAction::from_index(1);
        p.update(2, best_next, 2.0 / 0.5 * 1.0, 2); // seed Q(2,1) via a raw backup
        let seeded = p.q_value(2, best_next);
        assert!(seeded > 0.0);
        p.update(0, a, 1.0, 2);
        let expect = 0.5 * (1.0 + 0.9 * seeded);
        assert!((p.q_value(0, a) - expect).abs() < 1e-12);
    }

    #[test]
    fn greedy_breaks_ties_toward_the_lowest_index() {
        let p = FleetPolicy::new(2, 1);
        // All-zero row: the greedy action must be index 0, always.
        assert_eq!(p.greedy(0).index(), 0);
        assert_eq!(p.greedy(1).index(), 0);
    }

    #[test]
    fn selection_is_deterministic_for_a_seed_and_counts_sources() {
        let run = |seed| {
            let mut p = FleetPolicy::new(8, seed).with_schedule(EpsilonSchedule {
                start: 0.5,
                end: 0.5,
                decay_steps: 0,
            });
            (0..200)
                .map(|s| p.select(s % 8).0.index())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds explore differently");

        let mut p = FleetPolicy::new(8, 42).with_schedule(EpsilonSchedule {
            start: 0.5,
            end: 0.5,
            decay_steps: 0,
        });
        for s in 0..200 {
            p.select(s % 8);
        }
        assert_eq!(p.steps(), 200);
        assert_eq!(p.greedy_selections() + p.exploratory_selections(), 200);
        assert!(p.exploratory_selections() > 50, "ε = 0.5 must explore");
        assert_eq!(p.total_visits(), 200);
    }

    #[test]
    fn snapshot_round_trip_is_exact_and_continues_identically() {
        let mut a = FleetPolicy::new(6, 11);
        for s in 0..60usize {
            let (act, _) = a.select(s % 6);
            a.update(s % 6, act, (s % 3) as f64 - 1.0, (s + 1) % 6);
        }
        let bytes = a.snapshot_state();
        let mut b = FleetPolicy::new(6, 999); // seed overwritten by restore
        b.restore_state(&bytes).unwrap();
        assert_eq!(b.snapshot_state(), bytes, "canonical re-encode");
        // The restored policy replays the original's future exactly.
        for s in 0..60usize {
            let (aa, ae) = a.select(s % 6);
            let (ba, be) = b.select(s % 6);
            assert_eq!(aa, ba);
            assert_eq!(ae, be);
            a.update(s % 6, aa, 0.5, (s + 2) % 6);
            b.update(s % 6, ba, 0.5, (s + 2) % 6);
        }
        assert_eq!(a.snapshot_state(), b.snapshot_state());
    }

    #[test]
    fn codec_rejects_foreign_and_mangled_streams() {
        let p = FleetPolicy::new(4, 5);
        let bytes = p.snapshot_state();
        let mut fresh = FleetPolicy::new(4, 5);
        assert_eq!(
            fresh.restore_state(b"JUNKJUNKJUNK"),
            Err(SnapshotError::BadMagic)
        );
        // Wrong shape.
        let mut other = FleetPolicy::new(5, 5);
        assert!(matches!(
            other.restore_state(&bytes),
            Err(SnapshotError::ShapeMismatch(_))
        ));
        // Newer version.
        let mut newer = bytes.clone();
        newer[POLICY_MAGIC.len()] = 0xFF;
        assert!(matches!(
            fresh.restore_state(&newer),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        // Truncation at every length.
        for cut in POLICY_MAGIC.len()..bytes.len() {
            assert!(
                fresh.restore_state(&bytes[..cut]).is_err(),
                "cut at {cut} slipped through"
            );
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(fresh.restore_state(&long).is_err());
        // A failed restore leaves the policy untouched.
        assert_eq!(fresh.snapshot_state(), bytes);
    }
}
