//! Fleet-level RL control for MAMUT: learned dispatch and scaling
//! trained offline on the scenario catalog.
//!
//! The paper learns per-session knob control (QP, threads, DVFS) with
//! small tabular Q-agents. This crate applies the same recipe one level
//! up, to the decisions the *fleet* makes every epoch — how many nodes
//! to run and which node gets the next session:
//!
//! * [`FleetFeaturizer`] buckets the autoscaler's observations
//!   ([`ScaleSignals`](mamut_fleet::ScaleSignals)-level utilization,
//!   QoS slack, forecast error, power headroom, pool size) into a
//!   compact discrete state (432 states);
//! * [`FleetPolicy`] is a tabular Q-learner over the joint action space
//!   of scale moves × dispatch preferences ([`JointAction`], 9
//!   actions), ε-greedy on a decaying [`EpsilonSchedule`], with its
//!   full state — Q-table, visit counts, schedule position, RNG —
//!   portable through the `MAMUTFP` snapshot codec
//!   ([`FleetPolicy::snapshot_state`]);
//! * [`RlScaler`] / [`RlDispatch`] adapt one shared [`PolicyDriver`] to
//!   the fleet's existing [`Autoscaler`](mamut_fleet::Autoscaler) and
//!   [`Dispatcher`](mamut_fleet::Dispatcher) traits, so a learned
//!   policy drops into [`FleetSim`](mamut_fleet::FleetSim) wherever a
//!   heuristic went before — and reports its decision provenance
//!   (greedy vs. exploratory) into the fleet summary;
//! * [`Trainer`] rolls seeded episodes against
//!   `mamut_scenario::catalog` presets, records `(s, a, r, s′)`
//!   transitions, replays them in deterministic shuffled passes, and
//!   evaluates greedily — byte-identical for any fleet worker count.
//!
//! # Example
//!
//! ```
//! use mamut_fleetrl::{TrainConfig, Trainer};
//! use mamut_scenario::catalog;
//!
//! let mut trainer = Trainer::new(TrainConfig {
//!     episodes_per_scenario: 1,
//!     ..TrainConfig::default()
//! });
//! let report = trainer.train_scenario(&catalog::daily_vod());
//! assert!(report.transitions > 0);
//!
//! // The learned policy races the heuristic stack on identical terms:
//! let summary = trainer.evaluate(&catalog::daily_vod());
//! assert!(summary.greedy_actions > 0);
//!
//! // And travels as bytes, like every other learned state in MAMUT:
//! let snapshot = trainer.snapshot();
//! let mut fresh = Trainer::new(TrainConfig::default());
//! fresh.warm_start(&snapshot).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod featurize;
mod harness;
mod policy;

pub use adapter::{PolicyDriver, RlConfig, RlDispatch, RlScaler, SharedDriver, Transition};
pub use featurize::{FeatureConfig, FleetFeaturizer, FleetState};
pub use harness::{heuristic_reference, sweep_factory, TrainConfig, TrainReport, Trainer};
pub use policy::{
    DispatchPref, EpsilonSchedule, FleetPolicy, JointAction, ScaleMove, FLEETRL_STATE_VERSION,
};
