//! Fleet-loop adapters: one learned policy driving both the autoscaler
//! and the dispatcher.
//!
//! The policy's joint action couples a scale move with a dispatch
//! preference, but the fleet loop consults two separate traits
//! ([`Autoscaler`](mamut_fleet::Autoscaler) and
//! [`Dispatcher`](mamut_fleet::Dispatcher)). A shared [`PolicyDriver`]
//! bridges the two: [`RlScaler`] runs the whole per-epoch decision
//! (featurize → reward the previous action → Q-update → select) and
//! stashes the chosen dispatch preference; [`RlDispatch`] reads that
//! preference when sessions arrive within the epoch. Both run on the
//! coordinating thread, never nested, so the mutex is uncontended and
//! determinism for any worker count comes for free — exactly like every
//! other fleet policy.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use mamut_core::snapshot::SnapshotError;
use mamut_fleet::{
    Autoscaler, DispatchDecision, Dispatcher, Forecaster, HoltWinters, NodeView, PolicySource,
    ScaleDecision, ScaleSignals, SessionRequest,
};

use crate::featurize::{FeatureConfig, FleetFeaturizer};
use crate::policy::{DispatchPref, FleetPolicy, JointAction, ScaleMove};

/// Reward weights and observation shape for the learned fleet control.
#[derive(Debug, Clone, PartialEq)]
pub struct RlConfig {
    /// Featurizer bucket edges and pool limits.
    pub features: FeatureConfig,
    /// Reward penalty per unit of pool fraction (node-epochs are what
    /// the fleet pays for; this is the "smaller pool" pressure).
    pub w_pool: f64,
    /// Reward penalty per unit of mean power-cap fraction.
    pub w_power: f64,
    /// Season length (epochs) of the driver's internal Holt-Winters
    /// forecaster, whose one-step error feeds the state.
    pub season_epochs: usize,
    /// Concurrent sessions one node is sized for (the Little's-law
    /// divisor; keep in sync with the sweep's sizing constants).
    pub sessions_per_node: f64,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig {
            features: FeatureConfig::default(),
            w_pool: 0.6,
            w_power: 0.2,
            season_epochs: 16,
            sessions_per_node: 3.5,
        }
    }
}

/// One recorded `(s, a, r, s′)` step, consumed by the offline trainer's
/// replay passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Featurized state the action was taken in.
    pub state: usize,
    /// The joint action taken.
    pub action: JointAction,
    /// Reward observed at the next epoch boundary.
    pub reward: f64,
    /// Featurized successor state.
    pub next_state: usize,
}

/// The shared decision core behind [`RlScaler`] and [`RlDispatch`].
///
/// Owns the policy, the featurizer and a private arrival-rate
/// forecaster; records transitions for replay when in training mode.
#[derive(Debug)]
pub struct PolicyDriver {
    policy: FleetPolicy,
    featurizer: FleetFeaturizer,
    forecaster: HoltWinters,
    prev_forecast_hz: Option<f64>,
    prev: Option<(usize, JointAction)>,
    train: bool,
    pref: DispatchPref,
    last_source: PolicySource,
    transitions: Vec<Transition>,
    w_pool: f64,
    w_power: f64,
    season_epochs: usize,
    sessions_per_node: f64,
    /// Expected session residence (virtual seconds) — workload
    /// knowledge, set per scenario like the heuristic scalers'.
    mean_session_s: f64,
    /// Trailing observed arrival rates over one residence window, for
    /// the Little's-law base target.
    recent_hz: VecDeque<f64>,
}

/// A [`PolicyDriver`] shared between the scaler and dispatcher halves.
pub type SharedDriver = Arc<Mutex<PolicyDriver>>;

impl PolicyDriver {
    /// A driver around an explicit `policy` (its state count must match
    /// the featurizer `config` describes).
    ///
    /// # Panics
    ///
    /// When `policy.n_states()` differs from the featurizer's.
    pub fn new(config: RlConfig, policy: FleetPolicy) -> Self {
        let featurizer = FleetFeaturizer::new(config.features.clone());
        assert_eq!(
            policy.n_states(),
            featurizer.n_states(),
            "policy shape must match the featurizer"
        );
        PolicyDriver {
            policy,
            featurizer,
            forecaster: HoltWinters::new(config.season_epochs),
            prev_forecast_hz: None,
            prev: None,
            train: false,
            pref: DispatchPref::LeastLoaded,
            last_source: PolicySource::Heuristic,
            transitions: Vec::new(),
            w_pool: config.w_pool,
            w_power: config.w_power,
            season_epochs: config.season_epochs,
            sessions_per_node: config.sessions_per_node,
            mean_session_s: 10.0,
            recent_hz: VecDeque::new(),
        }
    }

    /// A driver with a fresh zero-initialized policy seeded from `seed`.
    pub fn seeded(config: RlConfig, seed: u64) -> Self {
        let n_states = FleetFeaturizer::new(config.features.clone()).n_states();
        PolicyDriver::new(config, FleetPolicy::new(n_states, seed))
    }

    /// Wraps the driver for sharing between [`RlScaler`] and
    /// [`RlDispatch`].
    pub fn into_shared(self) -> SharedDriver {
        Arc::new(Mutex::new(self))
    }

    /// Switches between ε-greedy training (transitions recorded, online
    /// Q-updates applied) and pure greedy evaluation.
    pub fn set_train(&mut self, train: bool) {
        self.train = train;
    }

    /// Resets per-episode observation state (forecaster, pending
    /// transition) without touching the learned policy — called between
    /// training episodes so one scenario's tail never rewards another's
    /// opening action.
    pub fn begin_episode(&mut self) {
        self.forecaster = HoltWinters::new(self.season_epochs);
        self.prev_forecast_hz = None;
        self.prev = None;
        self.pref = DispatchPref::LeastLoaded;
        self.last_source = PolicySource::Heuristic;
        self.recent_hz.clear();
    }

    /// Sets the expected session residence (virtual seconds) the
    /// Little's-law base target is computed from — workload knowledge
    /// the heuristic scalers also receive, not policy.
    pub fn set_mean_session_s(&mut self, mean_session_s: f64) {
        self.mean_session_s = mean_session_s.max(1e-9);
    }

    /// Drains the transitions recorded since the last call.
    pub fn take_transitions(&mut self) -> Vec<Transition> {
        std::mem::take(&mut self.transitions)
    }

    /// Read access to the learned policy.
    pub fn policy(&self) -> &FleetPolicy {
        &self.policy
    }

    /// Mutable access to the learned policy (replay passes go through
    /// here).
    pub fn policy_mut(&mut self) -> &mut FleetPolicy {
        &mut self.policy
    }

    /// Serializes the learned policy (see
    /// [`FleetPolicy::snapshot_state`]).
    pub fn snapshot_state(&self) -> Vec<u8> {
        self.policy.snapshot_state()
    }

    /// Restores the learned policy (see
    /// [`FleetPolicy::restore_state`]).
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the bytes are not a fleet-policy state of
    /// this policy's shape.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.policy.restore_state(bytes)
    }

    /// Mean-QoS-slack reward minus pool-size and power penalties.
    fn reward(&self, signals: &ScaleSignals) -> f64 {
        let (_, max_nodes) = self.featurizer.config().pool;
        if signals.active.is_empty() {
            // An empty pool serves nobody: the worst slack, no offsets.
            return 0.0;
        }
        let n = signals.active.len() as f64;
        let slack = signals.active.iter().map(NodeView::qos_slack).sum::<f64>() / n;
        let pool_fraction = n / (max_nodes.max(1) as f64);
        let power_fraction = signals
            .active
            .iter()
            .map(|v| {
                if v.power_cap_w > 0.0 {
                    (v.power_w / v.power_cap_w).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / n;
        slack - self.w_pool * pool_fraction - self.w_power * power_fraction
    }

    /// Epochs one session residence spans on this epoch grid.
    fn window_epochs(&self, epoch_s: f64) -> i64 {
        ((self.mean_session_s / epoch_s.max(1e-9)).ceil() as i64).max(1)
    }

    /// The rate at offset `j ≤ 0` epochs from the newest observation
    /// (0 = the current boundary; before the run = 0).
    fn observed_hz(&self, j: i64) -> f64 {
        let idx = self.recent_hz.len() as i64 - 1 + j;
        if idx >= 0 {
            self.recent_hz[idx as usize]
        } else {
            0.0
        }
    }

    /// The concurrency-driving rate (Hz) one epoch out: the mean
    /// arrival rate across the residence window ending at the next
    /// boundary — trailing observations blended with a one-step
    /// forecast. Mirrors
    /// [`ForecastScaler::planned_rate_hz`](mamut_fleet::ForecastScaler)
    /// at its sweep lead of 1.
    fn planned_rate_hz(&self, epoch_s: f64) -> f64 {
        let window = self.window_epochs(epoch_s);
        let sum: f64 = (2 - window..=1)
            .map(|j| {
                if j <= 0 {
                    self.observed_hz(j)
                } else {
                    self.forecaster.forecast_hz(j as u64)
                }
            })
            .sum();
        sum / window as f64
    }

    /// The whole per-epoch decision; called from [`RlScaler::plan`].
    ///
    /// The learned action is a *residual* on a Little's-law base
    /// target: the policy picks an offset of −1/0/+1 nodes around what
    /// the blended forecast says the pool should be, plus the dispatch
    /// preference. The base target carries the fleet through ramps the
    /// way the heuristic scalers do; the policy learns *when* the
    /// forecast under- or over-calls demand.
    fn plan(&mut self, signals: &ScaleSignals) -> ScaleDecision {
        let instant_hz = signals.arrivals_due as f64 / signals.epoch_s.max(1e-9);
        let forecast_err = match self.prev_forecast_hz {
            Some(f) => {
                let denom = 0.5 * (instant_hz + f);
                if denom <= 1e-9 {
                    0.0
                } else {
                    (instant_hz - f) / denom
                }
            }
            None => 0.0,
        };
        let state = self.featurizer.featurize(signals, forecast_err);

        // Reward the previous boundary's action with what it led to.
        if let Some((prev_state, prev_action)) = self.prev {
            let reward = self.reward(signals);
            if self.train {
                self.policy
                    .update(prev_state, prev_action, reward, state.index);
                self.transitions.push(Transition {
                    state: prev_state,
                    action: prev_action,
                    reward,
                    next_state: state.index,
                });
            }
        }

        let (action, exploratory) = if self.train {
            self.policy.select(state.index)
        } else {
            (self.policy.greedy(state.index), false)
        };
        self.pref = action.pref;
        self.last_source = if exploratory {
            PolicySource::Exploratory
        } else {
            PolicySource::Greedy
        };
        self.prev = Some((state.index, action));

        self.forecaster
            .observe(signals.arrivals_due, signals.epoch_s);
        self.recent_hz.push_back(instant_hz);
        while self.recent_hz.len() as i64 > self.window_epochs(signals.epoch_s) {
            self.recent_hz.pop_front();
        }
        self.prev_forecast_hz = Some(self.forecaster.forecast_hz(1));

        // Little's law on the blended rate, plus the queued backlog,
        // then the learned offset.
        let (min_nodes, max_nodes) = self.featurizer.config().pool;
        let expected = self.planned_rate_hz(signals.epoch_s) * self.mean_session_s
            + signals.queued_sessions as f64;
        let base = (expected / self.sessions_per_node).ceil() as i64;
        let offset = match action.scale {
            ScaleMove::Shrink => -1,
            ScaleMove::Hold => 0,
            ScaleMove::Grow => 1,
        };
        let desired = (base + offset).clamp(min_nodes as i64, max_nodes as i64) as usize;
        let pool = signals.active.len();
        match desired.cmp(&pool) {
            std::cmp::Ordering::Greater => ScaleDecision::Grow(desired - pool),
            std::cmp::Ordering::Less => ScaleDecision::Shrink(pool - desired),
            std::cmp::Ordering::Equal => ScaleDecision::Hold,
        }
    }

    /// Places `request` following the current dispatch preference.
    fn dispatch(&mut self, _request: &SessionRequest, nodes: &[NodeView]) -> DispatchDecision {
        if nodes.is_empty() {
            return DispatchDecision::Reject;
        }
        let pick = match self.pref {
            DispatchPref::LeastLoaded => nodes
                .iter()
                .min_by(|a, b| {
                    a.utilization()
                        .partial_cmp(&b.utilization())
                        .expect("utilization is finite")
                        .then(a.active_sessions.cmp(&b.active_sessions))
                        .then(a.node_id.cmp(&b.node_id))
                })
                .expect("non-empty"),
            DispatchPref::PowerHeadroom => nodes
                .iter()
                .max_by(|a, b| {
                    a.power_headroom_w()
                        .partial_cmp(&b.power_headroom_w())
                        .expect("power is finite")
                        .then(b.node_id.cmp(&a.node_id))
                })
                .expect("non-empty"),
            DispatchPref::QosSlack => nodes
                .iter()
                .max_by(|a, b| {
                    a.qos_slack()
                        .partial_cmp(&b.qos_slack())
                        .expect("slack is finite")
                        .then(
                            b.utilization()
                                .partial_cmp(&a.utilization())
                                .expect("utilization is finite"),
                        )
                        .then(b.node_id.cmp(&a.node_id))
                })
                .expect("non-empty"),
        };
        DispatchDecision::Assign(pick.node_id)
    }
}

/// The learned pool-sizing half: an [`Autoscaler`] that delegates every
/// epoch boundary to the shared [`PolicyDriver`].
#[derive(Debug)]
pub struct RlScaler {
    driver: SharedDriver,
}

impl RlScaler {
    /// A scaler over `driver`.
    pub fn new(driver: SharedDriver) -> Self {
        RlScaler { driver }
    }
}

impl Autoscaler for RlScaler {
    fn name(&self) -> &'static str {
        "rl-scaler"
    }

    fn plan(&mut self, signals: &ScaleSignals) -> ScaleDecision {
        self.driver.lock().expect("driver lock").plan(signals)
    }

    fn decision_source(&self) -> PolicySource {
        self.driver.lock().expect("driver lock").last_source
    }

    fn decision_detail(&self) -> Option<String> {
        let driver = self.driver.lock().expect("driver lock");
        driver.prev.map(|(state, action)| {
            format!(
                "state={state} scale={:?} pref={:?}",
                action.scale, action.pref
            )
        })
    }
}

/// The learned placement half: a [`Dispatcher`] that follows the
/// dispatch preference the policy chose at the last epoch boundary.
#[derive(Debug)]
pub struct RlDispatch {
    driver: SharedDriver,
}

impl RlDispatch {
    /// A dispatcher over `driver`.
    pub fn new(driver: SharedDriver) -> Self {
        RlDispatch { driver }
    }
}

impl Dispatcher for RlDispatch {
    fn name(&self) -> &'static str {
        "rl-dispatch"
    }

    fn dispatch(&mut self, request: &SessionRequest, nodes: &[NodeView]) -> DispatchDecision {
        self.driver
            .lock()
            .expect("driver lock")
            .dispatch(request, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(node_id: usize, threads: u32, qos_violation: f64, power_w: f64) -> NodeView {
        NodeView {
            node_id,
            active_sessions: (threads / 4) as usize,
            threads_demanded: threads,
            planned_threads: threads,
            hw_threads: 32,
            power_w,
            power_cap_w: 120.0,
            qos_violation_percent: qos_violation,
            resident_shapes: Vec::new(),
        }
    }

    fn signals<'a>(active: &'a [NodeView], arrivals: usize) -> ScaleSignals<'a> {
        ScaleSignals {
            epoch: 0,
            epoch_s: 1.0,
            active,
            arrivals_due: arrivals,
            queued_sessions: 0,
            pending_sessions: 0,
        }
    }

    fn request() -> SessionRequest {
        SessionRequest {
            id: 0,
            arrival_s: 0.0,
            hr: false,
            live: false,
            frames: 32,
            seed: 0,
        }
    }

    #[test]
    fn the_learned_offset_rides_a_clamped_littles_law_target() {
        let cfg = RlConfig {
            features: FeatureConfig {
                pool: (1, 2),
                ..FeatureConfig::default()
            },
            ..RlConfig::default()
        };
        let mut driver = PolicyDriver::seeded(cfg, 1);
        let one = [view(0, 4, 0.0, 50.0)];
        let two = [view(0, 4, 0.0, 50.0), view(1, 4, 0.0, 50.0)];
        // mean_session_s = 10, sessions_per_node = 3.5: zero arrivals
        // put the base target at the floor (1); 35 arrivals/epoch push
        // it far past the ceiling (2).
        for (nodes, arrivals, mv, expect) in [
            // Floor: desired = clamp(0 − 1) = 1 = pool.
            (&one[..], 0, ScaleMove::Shrink, ScaleDecision::Hold),
            // Even a +1 offset obeys the target: demand says one node.
            (&two[..], 0, ScaleMove::Grow, ScaleDecision::Shrink(1)),
            // Demand lifts the base target past the ceiling.
            (&one[..], 35, ScaleMove::Hold, ScaleDecision::Grow(1)),
            // Ceiling: desired clamps to 2 = pool.
            (&two[..], 35, ScaleMove::Grow, ScaleDecision::Hold),
        ] {
            driver.begin_episode();
            let s = driver.featurizer.featurize(&signals(nodes, arrivals), 0.0);
            let a = JointAction {
                scale: mv,
                pref: DispatchPref::LeastLoaded,
            };
            // Lift this action above everything else in this state so
            // the greedy pick is forced.
            driver.policy_mut().update(s.index, a, 1_000.0, s.index);
            assert_eq!(driver.plan(&signals(nodes, arrivals)), expect, "{mv:?}");
        }
    }

    #[test]
    fn eval_mode_is_greedy_and_records_nothing() {
        let mut driver = PolicyDriver::seeded(RlConfig::default(), 3);
        driver.set_train(false);
        let nodes = [view(0, 8, 0.0, 60.0)];
        for _ in 0..10 {
            driver.plan(&signals(&nodes, 1));
        }
        assert!(driver.take_transitions().is_empty());
        assert_eq!(driver.last_source, PolicySource::Greedy);
        assert_eq!(driver.policy().steps(), 0, "greedy eval never advances ε");
    }

    #[test]
    fn training_records_one_transition_per_boundary_after_the_first() {
        let mut driver = PolicyDriver::seeded(RlConfig::default(), 3);
        driver.set_train(true);
        let nodes = [view(0, 8, 0.0, 60.0)];
        for _ in 0..10 {
            driver.plan(&signals(&nodes, 1));
        }
        assert_eq!(driver.take_transitions().len(), 9);
        // A new episode severs the (s, a) chain.
        driver.begin_episode();
        driver.plan(&signals(&nodes, 1));
        assert!(driver.take_transitions().is_empty());
    }

    #[test]
    fn reward_prefers_healthy_small_low_power_fleets() {
        let driver = PolicyDriver::seeded(RlConfig::default(), 3);
        let healthy_small = [view(0, 8, 0.0, 50.0)];
        let suffering: Vec<NodeView> = (0..8).map(|i| view(i, 30, 40.0, 110.0)).collect();
        let r_good = driver.reward(&signals(&healthy_small, 0));
        let r_bad = driver.reward(&signals(&suffering, 0));
        assert!(
            r_good > r_bad + 0.3,
            "healthy {r_good} must clearly beat suffering {r_bad}"
        );
        assert_eq!(driver.reward(&signals(&[], 0)), 0.0);
    }

    #[test]
    fn dispatch_follows_the_stashed_preference() {
        let mut driver = PolicyDriver::seeded(RlConfig::default(), 3);
        // node 0: busy, lots of headroom; node 1: idle, little headroom,
        // poor QoS; node 2: idle, medium headroom, perfect QoS.
        let nodes = [
            view(0, 24, 2.0, 40.0),
            view(1, 2, 30.0, 110.0),
            view(2, 2, 0.0, 80.0),
        ];
        let req = request();
        for (pref, expect) in [
            (DispatchPref::LeastLoaded, 1), // ties on util broken by sessions/id
            (DispatchPref::PowerHeadroom, 0),
            (DispatchPref::QosSlack, 2),
        ] {
            driver.pref = pref;
            assert_eq!(
                driver.dispatch(&req, &nodes),
                DispatchDecision::Assign(expect),
                "{pref:?}"
            );
        }
        assert_eq!(driver.dispatch(&req, &[]), DispatchDecision::Reject);
    }
}
