//! Workload builders for the paper's two evaluation scenarios (§V-B, §V-C).

use mamut_video::{catalog, Playlist, SequenceSpec};

use crate::SessionConfig;

/// A workload mix: how many HR and LR streams run simultaneously.
///
/// Scenario I sweeps `1HR..5HR` and `1LR..8LR` (homogeneous); Scenario II
/// uses mixed batches `1HR1LR .. 3HR3LR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MixSpec {
    /// Number of simultaneous 1080p streams.
    pub n_hr: usize,
    /// Number of simultaneous 832×480 streams.
    pub n_lr: usize,
}

impl MixSpec {
    /// Creates a mix.
    pub fn new(n_hr: usize, n_lr: usize) -> Self {
        MixSpec { n_hr, n_lr }
    }

    /// Total simultaneous streams.
    pub fn total(&self) -> usize {
        self.n_hr + self.n_lr
    }

    /// Compact label used by the paper's tables ("2HR3LR", "4HR", "2LR").
    pub fn label(&self) -> String {
        match (self.n_hr, self.n_lr) {
            (0, 0) => "empty".to_owned(),
            (h, 0) => format!("{h}HR"),
            (0, l) => format!("{l}LR"),
            (h, l) => format!("{h}HR{l}LR"),
        }
    }
}

fn pick(pool: &[SequenceSpec], index: usize, frames: u64) -> SequenceSpec {
    let spec = &pool[index % pool.len()];
    spec.with_frame_count(frames)
        .expect("frame counts in scenarios are non-zero")
}

/// Scenario I sessions: `mix` simultaneous single videos of `frames` frames
/// each, cycling through the catalog (HR from class B, LR from class C).
///
/// Content seeds derive from `seed` so repetitions with different seeds see
/// different content realizations, as in the paper's five-run averages.
pub fn homogeneous_sessions(mix: MixSpec, frames: u64, seed: u64) -> Vec<SessionConfig> {
    let class_b = catalog::class_b();
    let class_c = catalog::class_c();
    let mut sessions = Vec::with_capacity(mix.total());
    for i in 0..mix.n_hr {
        let spec = pick(&class_b, i + seed as usize, frames);
        sessions.push(SessionConfig::single_video(
            spec,
            seed.wrapping_add(i as u64),
        ));
    }
    for i in 0..mix.n_lr {
        let spec = pick(&class_c, i + seed as usize, frames);
        sessions.push(SessionConfig::single_video(
            spec,
            seed.wrapping_add(1000 + i as u64),
        ));
    }
    sessions
}

/// Scenario II sessions: each stream is an initial video followed by
/// `followers` random same-resolution videos (§V-C: "each initial video is
/// followed by a sequence of four different videos of the same resolution,
/// randomly selected").
pub fn scenario_ii_sessions(
    mix: MixSpec,
    followers: usize,
    frames_per_video: u64,
    seed: u64,
) -> Vec<SessionConfig> {
    let class_b = catalog::class_b();
    let class_c = catalog::class_c();
    let pool: Vec<SequenceSpec> = catalog::all()
        .iter()
        .map(|s| {
            s.with_frame_count(frames_per_video)
                .expect("frame counts in scenarios are non-zero")
        })
        .collect();
    let mut sessions = Vec::with_capacity(mix.total());
    for i in 0..mix.n_hr {
        let initial = pick(&class_b, i + seed as usize, frames_per_video);
        let playlist =
            Playlist::scenario_ii(&initial, &pool, followers, seed.wrapping_add(77 + i as u64))
                .expect("catalog has same-resolution followers");
        sessions.push(SessionConfig::playlist(
            playlist,
            seed.wrapping_add(i as u64),
        ));
    }
    for i in 0..mix.n_lr {
        let initial = pick(&class_c, i + seed as usize, frames_per_video);
        let playlist = Playlist::scenario_ii(
            &initial,
            &pool,
            followers,
            seed.wrapping_add(777 + i as u64),
        )
        .expect("catalog has same-resolution followers");
        sessions.push(SessionConfig::playlist(
            playlist,
            seed.wrapping_add(1000 + i as u64),
        ));
    }
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(MixSpec::new(3, 0).label(), "3HR");
        assert_eq!(MixSpec::new(0, 8).label(), "8LR");
        assert_eq!(MixSpec::new(2, 3).label(), "2HR3LR");
        assert_eq!(MixSpec::new(0, 0).label(), "empty");
        assert_eq!(MixSpec::new(2, 3).total(), 5);
    }

    #[test]
    fn homogeneous_builds_requested_counts() {
        let sessions = homogeneous_sessions(MixSpec::new(2, 3), 100, 0);
        assert_eq!(sessions.len(), 5);
        let hr = sessions
            .iter()
            .filter(|s| s.playlist.get(0).unwrap().resolution().is_high_resolution())
            .count();
        assert_eq!(hr, 2);
    }

    #[test]
    fn homogeneous_truncates_frames() {
        let sessions = homogeneous_sessions(MixSpec::new(1, 0), 42, 0);
        assert_eq!(sessions[0].playlist.get(0).unwrap().frame_count(), 42);
    }

    #[test]
    fn scenario_ii_playlists_have_initial_plus_followers() {
        let sessions = scenario_ii_sessions(MixSpec::new(1, 1), 4, 50, 1);
        assert_eq!(sessions.len(), 2);
        for s in &sessions {
            assert_eq!(s.playlist.len(), 5);
            let res0 = s.playlist.get(0).unwrap().resolution();
            assert!(s.playlist.iter().all(|v| v.resolution() == res0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = scenario_ii_sessions(MixSpec::new(1, 0), 4, 50, 1);
        let b = scenario_ii_sessions(MixSpec::new(1, 0), 4, 50, 2);
        let names = |ss: &[SessionConfig]| -> Vec<String> {
            ss[0].playlist.iter().map(|v| v.name().to_owned()).collect()
        };
        // Either the initial video or the followers must differ.
        assert_ne!(names(&a), names(&b));
    }

    #[test]
    fn seeds_are_deterministic() {
        let a = scenario_ii_sessions(MixSpec::new(2, 2), 4, 50, 9);
        let b = scenario_ii_sessions(MixSpec::new(2, 2), 4, 50, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.playlist, y.playlist);
            assert_eq!(x.seed, y.seed);
        }
    }
}
