use mamut_metrics::RunningStats;

use crate::ServerSim;

/// Per-session results of a run — one row of a Table II-style report.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// Name of the (last) video transcoded.
    pub name: String,
    /// Controller that drove the session.
    pub controller: String,
    /// Whether the stream was high-resolution.
    pub is_hr: bool,
    /// Frames completed.
    pub frames: u64,
    /// Frames processed below the FPS target.
    pub violations: u64,
    /// The paper's ∆ — percentage of frames below target.
    pub violation_percent: f64,
    /// Violations surviving the play-out buffer, as a percentage.
    pub delivery_violation_percent: f64,
    /// Mean instantaneous FPS.
    pub mean_fps: f64,
    /// Mean PSNR (dB).
    pub mean_psnr_db: f64,
    /// Mean bitrate (Mb/s).
    pub mean_bitrate_mbps: f64,
    /// Mean thread count (the paper's `Nth`).
    pub mean_threads: f64,
    /// Mean DVFS frequency (GHz).
    pub mean_freq_ghz: f64,
}

/// Whole-run results: per-session rows plus server-level aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Per-session summaries in id order.
    pub sessions: Vec<SessionSummary>,
    /// Lifetime average server power (W).
    pub mean_power_w: f64,
    /// Total energy drawn (J).
    pub energy_j: f64,
    /// Virtual run duration (s).
    pub duration_s: f64,
}

impl RunSummary {
    pub(crate) fn from_server(server: &ServerSim) -> RunSummary {
        let sessions = server
            .sessions()
            .iter()
            .map(|s| SessionSummary {
                name: s.name().to_owned(),
                controller: s.controller().name().to_owned(),
                is_hr: s.is_high_resolution(),
                frames: s.frames_completed(),
                violations: s.qos().violations(),
                violation_percent: s.qos().violation_percent(),
                delivery_violation_percent: s.qos().delivery_violation_percent(),
                mean_fps: s.mean_fps(),
                mean_psnr_db: s.mean_psnr_db(),
                mean_bitrate_mbps: s.mean_bitrate_mbps(),
                mean_threads: s.mean_threads(),
                mean_freq_ghz: s.mean_freq_ghz(),
            })
            .collect();
        RunSummary {
            sessions,
            mean_power_w: server.sensor().lifetime_average(),
            energy_j: server.sensor().total_energy_j(),
            duration_s: server.time(),
        }
    }

    /// Mean of `select` across sessions (0.0 when there are none).
    pub fn session_mean<F: FnMut(&SessionSummary) -> f64>(&self, select: F) -> f64 {
        RunningStats::from_samples(self.sessions.iter().map(select).collect::<Vec<_>>()).mean()
    }

    /// Mean ∆ (violation percentage) across sessions.
    pub fn mean_violation_percent(&self) -> f64 {
        self.session_mean(|s| s.violation_percent)
    }

    /// Mean FPS across sessions.
    pub fn mean_fps(&self) -> f64 {
        self.session_mean(|s| s.mean_fps)
    }

    /// Mean thread count across sessions (the paper's `Nth` column).
    pub fn mean_threads(&self) -> f64 {
        self.session_mean(|s| s.mean_threads)
    }

    /// Mean frequency across sessions (GHz).
    pub fn mean_freq_ghz(&self) -> f64 {
        self.session_mean(|s| s.mean_freq_ghz)
    }

    /// Mean PSNR across sessions (dB).
    pub fn mean_psnr_db(&self) -> f64 {
        self.session_mean(|s| s.mean_psnr_db)
    }

    /// Summaries restricted to HR (`true`) or LR (`false`) sessions.
    pub fn by_resolution(&self, hr: bool) -> Vec<&SessionSummary> {
        self.sessions.iter().filter(|s| s.is_hr == hr).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(rows: Vec<SessionSummary>) -> RunSummary {
        RunSummary {
            sessions: rows,
            mean_power_w: 90.0,
            energy_j: 900.0,
            duration_s: 10.0,
        }
    }

    fn row(is_hr: bool, viol: f64, fps: f64) -> SessionSummary {
        SessionSummary {
            name: "X".into(),
            controller: "fixed".into(),
            is_hr,
            frames: 100,
            violations: viol as u64,
            violation_percent: viol,
            delivery_violation_percent: viol / 2.0,
            mean_fps: fps,
            mean_psnr_db: 34.0,
            mean_bitrate_mbps: 4.0,
            mean_threads: 8.0,
            mean_freq_ghz: 2.6,
        }
    }

    #[test]
    fn means_across_sessions() {
        let s = summary(vec![row(true, 10.0, 25.0), row(false, 30.0, 27.0)]);
        assert!((s.mean_violation_percent() - 20.0).abs() < 1e-12);
        assert!((s.mean_fps() - 26.0).abs() < 1e-12);
        assert!((s.mean_threads() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn by_resolution_filters() {
        let s = summary(vec![row(true, 10.0, 25.0), row(false, 30.0, 27.0)]);
        assert_eq!(s.by_resolution(true).len(), 1);
        assert_eq!(s.by_resolution(false).len(), 1);
        assert!(s.by_resolution(true)[0].is_hr);
    }

    #[test]
    fn empty_summary_means_are_zero() {
        let s = summary(vec![]);
        assert_eq!(s.mean_violation_percent(), 0.0);
        assert_eq!(s.mean_fps(), 0.0);
    }
}
