use std::collections::VecDeque;

use mamut_core::snapshot::{SnapshotReader, SnapshotWriter};
use mamut_core::{
    Constraints, Controller, KnobSettings, Observation, PolicySnapshot, SnapshotError,
};
use mamut_encoder::{wpp, EncodeOutcome, HevcDecoder, HevcEncoder, Preset};
use mamut_metrics::{QosTracker, RunningStats, Trace, TraceRow};
use mamut_video::{ContentState, Playlist, Resolution, SequenceSpec, SourceState, VideoSource};

/// Current session-checkpoint codec version. Decoders reject newer.
pub const SESSION_CHECKPOINT_VERSION: u16 = 1;

/// Static configuration of one transcoding session (one user).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Videos transcoded back to back.
    pub playlist: Playlist,
    /// Encoder effort preset (the paper: ultrafast for HR, slow for LR).
    pub preset: Preset,
    /// QoS constraints for this user.
    pub constraints: Constraints,
    /// Content RNG seed (each playlist item uses `seed + position`).
    pub seed: u64,
    /// Completion-window length for the FPS observation (frames).
    pub fps_window: usize,
    /// Record a per-frame execution trace (Fig. 5 data).
    pub record_trace: bool,
}

impl SessionConfig {
    /// Config for a single video with paper-default constraints and the
    /// paper's preset for its resolution.
    pub fn single_video(spec: SequenceSpec, seed: u64) -> Self {
        let preset = Preset::for_resolution(spec.resolution());
        SessionConfig {
            playlist: Playlist::single(spec),
            preset,
            constraints: Constraints::paper_defaults(),
            seed,
            fps_window: 6,
            record_trace: false,
        }
    }

    /// Config for a playlist (Scenario II batches).
    pub fn playlist(playlist: Playlist, seed: u64) -> Self {
        let preset = Preset::for_resolution(
            playlist
                .get(0)
                .expect("playlists are non-empty by construction")
                .resolution(),
        );
        SessionConfig {
            playlist,
            preset,
            constraints: Constraints::paper_defaults(),
            seed,
            fps_window: 6,
            record_trace: false,
        }
    }

    /// Enables per-frame trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Overrides the constraints.
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }
}

/// A frame currently being encoded.
///
/// Remaining work is accounted *lazily*: `work_remaining` is the cycle
/// count as of `anchor_time`, and the frame burns cycles at the rate the
/// server cached for its session. The server re-materializes
/// (`work_remaining -= rate · (now − anchor_time)`, anchor moved to
/// `now`) only when the session's effective rate actually changes — a
/// rate-epoch bump or a migration — so steady-state events never touch
/// the frames that are not completing.
#[derive(Debug, Clone)]
pub(crate) struct InFlight {
    /// Cycles left as of `anchor_time` (not "as of now").
    pub work_remaining: f64,
    pub work_total: f64,
    pub outcome: EncodeOutcome,
    pub started_at: f64,
    /// Virtual time `work_remaining` refers to.
    pub anchor_time: f64,
}

/// Live state of one transcoding session inside the simulator.
///
/// Owned and driven by [`ServerSim`](crate::ServerSim); exposed read-only
/// for inspection and summaries.
pub struct TranscodeSession {
    id: usize,
    name: String,
    config: SessionConfig,
    playlist_pos: usize,
    source: VideoSource,
    encoder: HevcEncoder,
    decoder: HevcDecoder,
    controller: Box<dyn Controller>,
    knobs: KnobSettings,
    frame_counter: u64,
    pub(crate) in_flight: Option<InFlight>,
    completions: VecDeque<f64>,
    last_obs: Observation,
    qos: QosTracker,
    fps_stats: RunningStats,
    psnr_stats: RunningStats,
    bitrate_stats: RunningStats,
    thread_stats: RunningStats,
    freq_stats: RunningStats,
    trace: Trace,
    finished: bool,
}

impl std::fmt::Debug for TranscodeSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TranscodeSession")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("frame_counter", &self.frame_counter)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl TranscodeSession {
    pub(crate) fn new(id: usize, config: SessionConfig, controller: Box<dyn Controller>) -> Self {
        let first = config
            .playlist
            .get(0)
            .expect("playlists are non-empty by construction")
            .clone();
        let resolution = first.resolution();
        let source = VideoSource::new(&first, config.seed);
        let target = config.constraints.target_fps;
        // Neutral starting observation: at target, mid quality, modest rate.
        let last_obs = Observation {
            fps: target,
            psnr_db: 35.0,
            bitrate_mbps: 3.5,
            power_w: 50.0,
        };
        TranscodeSession {
            id,
            name: first.name().to_owned(),
            encoder: HevcEncoder::new(resolution, config.preset),
            decoder: HevcDecoder::new(resolution),
            source,
            controller,
            knobs: KnobSettings::new(32, 4, 2.6),
            frame_counter: 0,
            in_flight: None,
            completions: VecDeque::with_capacity(config.fps_window + 1),
            last_obs,
            qos: QosTracker::new(target),
            fps_stats: RunningStats::new(),
            psnr_stats: RunningStats::new(),
            bitrate_stats: RunningStats::new(),
            thread_stats: RunningStats::new(),
            freq_stats: RunningStats::new(),
            trace: Trace::new(),
            playlist_pos: 0,
            config,
            finished: false,
        }
    }

    /// Session id (stable handle inside one [`ServerSim`](crate::ServerSim)).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Re-ids the session when it attaches to another server (migration).
    pub(crate) fn set_id(&mut self, id: usize) {
        self.id = id;
    }

    /// Name of the video currently being transcoded.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resolution of the current video.
    pub fn resolution(&self) -> Resolution {
        self.encoder.resolution()
    }

    /// Whether the stream is a high-resolution ("HR") stream.
    pub fn is_high_resolution(&self) -> bool {
        self.resolution().is_high_resolution()
    }

    /// Whether the whole playlist has been transcoded.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Knobs currently in force.
    pub fn knobs(&self) -> KnobSettings {
        self.knobs
    }

    /// Constraints currently in force.
    pub fn constraints(&self) -> Constraints {
        self.config.constraints
    }

    /// Updates the constraints mid-run (failure injection, live events).
    pub fn set_constraints(&mut self, constraints: Constraints) {
        self.config.constraints = constraints;
    }

    /// Frames completed so far (across the whole playlist).
    pub fn frames_completed(&self) -> u64 {
        self.qos.frames()
    }

    /// Frames in the whole playlist.
    pub fn frames_total(&self) -> u64 {
        self.config.playlist.total_frames()
    }

    /// Frames still to transcode (0 once finished) — what a rebalancer
    /// weighs when choosing which session is worth migrating.
    pub fn frames_remaining(&self) -> u64 {
        self.frames_total().saturating_sub(self.frames_completed())
    }

    /// QoS accounting.
    pub fn qos(&self) -> &QosTracker {
        &self.qos
    }

    /// The recorded execution trace (empty unless enabled in the config).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The controller, for diagnostics (e.g. MAMUT maturity reports).
    pub fn controller(&self) -> &dyn Controller {
        self.controller.as_ref()
    }

    /// Consumes the session, returning its controller (e.g. to reuse a
    /// trained controller in a follow-up run).
    pub fn into_controller(self) -> Box<dyn Controller> {
        self.controller
    }

    /// Mean observed instantaneous FPS.
    pub fn mean_fps(&self) -> f64 {
        self.fps_stats.mean()
    }

    /// Mean PSNR over completed frames (dB).
    pub fn mean_psnr_db(&self) -> f64 {
        self.psnr_stats.mean()
    }

    /// Mean bitrate over completed frames (Mb/s).
    pub fn mean_bitrate_mbps(&self) -> f64 {
        self.bitrate_stats.mean()
    }

    /// Mean thread count over completed frames.
    pub fn mean_threads(&self) -> f64 {
        self.thread_stats.mean()
    }

    /// Mean frequency over completed frames (GHz).
    pub fn mean_freq_ghz(&self) -> f64 {
        self.freq_stats.mean()
    }

    /// Effective WPP parallel speedup at the current knobs.
    pub(crate) fn wpp_speedup(&self) -> f64 {
        wpp::speedup_at(self.resolution(), self.knobs.threads)
    }

    /// Starts the next frame if idle. Returns false when the playlist is
    /// exhausted (session transitions to finished).
    pub(crate) fn start_next_frame(&mut self, now: f64) -> bool {
        if self.finished || self.in_flight.is_some() {
            return !self.finished;
        }
        // Advance the playlist when the current source is exhausted.
        let frame = loop {
            match self.source.next_frame() {
                Some(f) => break f,
                None => {
                    self.playlist_pos += 1;
                    match self.config.playlist.get(self.playlist_pos) {
                        Some(spec) => {
                            self.name = spec.name().to_owned();
                            self.encoder = HevcEncoder::new(spec.resolution(), self.config.preset);
                            self.decoder = HevcDecoder::new(spec.resolution());
                            self.source = VideoSource::new(
                                spec,
                                self.config.seed.wrapping_add(self.playlist_pos as u64),
                            );
                        }
                        None => {
                            self.finished = true;
                            return false;
                        }
                    }
                }
            }
        };

        // Controller decision right before the frame starts.
        if let Some(new_knobs) = self.controller.begin_frame(
            self.frame_counter,
            &self.last_obs,
            &self.config.constraints,
        ) {
            self.knobs = clamp_knobs(new_knobs);
        }

        let outcome = self
            .encoder
            .encode(self.knobs.qp, &frame)
            .expect("clamped QP is always valid");
        let work = outcome.cycles + self.decoder.decode_cycles(&frame);
        self.in_flight = Some(InFlight {
            work_remaining: work,
            work_total: work,
            outcome,
            started_at: now,
            anchor_time: now,
        });
        true
    }

    /// Completes the in-flight frame at time `now` with the server power
    /// measurement, notifying the controller and updating metrics.
    pub(crate) fn complete_frame(&mut self, now: f64, power_w: f64) {
        let fly = self
            .in_flight
            .take()
            .expect("complete_frame requires an in-flight frame");
        debug_assert!(fly.work_remaining <= fly.work_total);
        let frame_time = (now - fly.started_at).max(1e-12);

        self.completions.push_back(now);
        while self.completions.len() > self.config.fps_window {
            self.completions.pop_front();
        }
        // The throughput everyone works with — controller observation, the
        // ∆ metric, traces — is the short-window reading a deployment's
        // monitor reports (the signal of the paper's Fig. 5). Counting ∆
        // on one signal while the controller optimizes another would make
        // the comparison incoherent; the per-frame jitter is still tracked
        // by the QoS tracker as `raw_violations`.
        let windowed_fps = if self.completions.len() >= 2 {
            let first = *self.completions.front().expect("len >= 2");
            let span = now - first;
            if span > 0.0 {
                (self.completions.len() - 1) as f64 / span
            } else {
                1.0 / frame_time
            }
        } else {
            1.0 / frame_time
        };
        self.qos.record_frame(frame_time, windowed_fps);

        self.fps_stats.push(windowed_fps);
        self.psnr_stats.push(fly.outcome.psnr_db);
        self.bitrate_stats.push(fly.outcome.bitrate_mbps);
        self.thread_stats.push(f64::from(self.knobs.threads));
        self.freq_stats.push(self.knobs.freq_ghz);

        let obs = Observation {
            fps: windowed_fps,
            psnr_db: fly.outcome.psnr_db,
            bitrate_mbps: fly.outcome.bitrate_mbps,
            power_w,
        };
        self.last_obs = obs;
        self.controller
            .end_frame(self.frame_counter, &obs, &self.config.constraints);

        if self.config.record_trace {
            self.trace.push(TraceRow {
                time_s: now,
                frame: self.frame_counter,
                fps: windowed_fps,
                psnr_db: fly.outcome.psnr_db,
                bitrate_mbps: fly.outcome.bitrate_mbps,
                qp: self.knobs.qp,
                threads: self.knobs.threads,
                freq_ghz: self.knobs.freq_ghz,
                power_w,
            });
        }

        self.frame_counter += 1;
    }

    /// Serializes the session's complete dynamic state — controller,
    /// content process, in-flight frame, observation window, QoS and
    /// statistics accumulators, trace — so the session can later be
    /// rebuilt mid-frame, bit-exactly, by
    /// [`TranscodeSession::restore_checkpoint`].
    ///
    /// `rate` and `now` materialize the lazily accounted in-flight work
    /// exactly as a detach would (`work_remaining -= rate · (now −
    /// anchor)`), but without mutating the live session: the capture is
    /// an observer, not a migration.
    pub(crate) fn checkpoint_bytes(&self, rate: f64, now: f64) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_u16(SESSION_CHECKPOINT_VERSION);
        w.put_u32(self.playlist_pos as u32);
        w.put_bool(self.finished);
        w.put_u64(self.frame_counter);
        w.put_u8(self.knobs.qp);
        w.put_u32(self.knobs.threads);
        w.put_f64(self.knobs.freq_ghz);
        let c = &self.config.constraints;
        w.put_f64(c.target_fps);
        w.put_f64(c.bandwidth_mbps);
        w.put_f64(c.power_cap_w);
        let source = self.source.state();
        for word in source.content.rng {
            w.put_u64(word);
        }
        w.put_f64(source.content.level);
        w.put_f64(source.content.current);
        w.put_u64(source.content.next_index);
        w.put_u64(source.remaining);
        w.put_bytes(&self.controller.snapshot().to_bytes());
        match &self.in_flight {
            None => w.put_bool(false),
            Some(fly) => {
                w.put_bool(true);
                let drained = if rate != 0.0 {
                    rate * (now - fly.anchor_time)
                } else {
                    0.0
                };
                w.put_f64(fly.work_remaining - drained);
                w.put_f64(fly.work_total);
                w.put_f64(fly.outcome.cycles);
                w.put_f64(fly.outcome.psnr_db);
                w.put_f64(fly.outcome.bitrate_mbps);
                w.put_f64(fly.started_at);
                w.put_f64(now);
            }
        }
        w.put_u32(self.completions.len() as u32);
        for &t in &self.completions {
            w.put_f64(t);
        }
        w.put_f64(self.last_obs.fps);
        w.put_f64(self.last_obs.psnr_db);
        w.put_f64(self.last_obs.bitrate_mbps);
        w.put_f64(self.last_obs.power_w);
        let (target, frames, violations, raw, delivery, credit, cap) = self.qos.raw_parts();
        w.put_f64(target);
        w.put_u64(frames);
        w.put_u64(violations);
        w.put_u64(raw);
        w.put_u64(delivery);
        w.put_f64(credit);
        w.put_f64(cap);
        for stats in [
            &self.fps_stats,
            &self.psnr_stats,
            &self.bitrate_stats,
            &self.thread_stats,
            &self.freq_stats,
        ] {
            let (count, mean, m2, min, max) = stats.raw_parts();
            w.put_u64(count);
            w.put_f64(mean);
            w.put_f64(m2);
            w.put_f64(min);
            w.put_f64(max);
        }
        w.put_u32(self.trace.len() as u32);
        for row in self.trace.iter() {
            w.put_f64(row.time_s);
            w.put_u64(row.frame);
            w.put_f64(row.fps);
            w.put_f64(row.psnr_db);
            w.put_f64(row.bitrate_mbps);
            w.put_u8(row.qp);
            w.put_u32(row.threads);
            w.put_f64(row.freq_ghz);
            w.put_f64(row.power_w);
        }
        w.into_bytes()
    }

    /// Rebuilds a session from `config`, a freshly constructed
    /// `controller` of the same kind, and checkpoint `bytes` captured by
    /// the server's checkpoint pass. The restored session resumes its
    /// frame stream, in-flight work, observation window and statistics
    /// bit-exactly from the capture point; the controller adopts the
    /// checkpointed snapshot (full execution state, not knowledge-only),
    /// so its decision sequence replays identically.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the bytes are not a session checkpoint,
    /// were written by a newer codec, or the embedded policy snapshot
    /// does not fit the provided controller.
    pub fn restore_checkpoint(
        config: SessionConfig,
        controller: Box<dyn Controller>,
        bytes: &[u8],
    ) -> Result<TranscodeSession, SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        let version = r.get_u16()?;
        if version > SESSION_CHECKPOINT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let playlist_pos = r.get_u32()? as usize;
        let finished = r.get_bool()?;
        let frame_counter = r.get_u64()?;
        let knobs = KnobSettings::new(r.get_u8()?, r.get_u32()?, r.get_f64()?);
        let constraints = Constraints {
            target_fps: r.get_f64()?,
            bandwidth_mbps: r.get_f64()?,
            power_cap_w: r.get_f64()?,
        };
        let source_state = SourceState {
            content: ContentState {
                rng: [r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?],
                level: r.get_f64()?,
                current: r.get_f64()?,
                next_index: r.get_u64()?,
            },
            remaining: r.get_u64()?,
        };
        let policy = PolicySnapshot::from_bytes(&r.get_bytes()?)?;
        let in_flight = if r.get_bool()? {
            Some(InFlight {
                work_remaining: r.get_f64()?,
                work_total: r.get_f64()?,
                outcome: EncodeOutcome {
                    cycles: r.get_f64()?,
                    psnr_db: r.get_f64()?,
                    bitrate_mbps: r.get_f64()?,
                },
                started_at: r.get_f64()?,
                anchor_time: r.get_f64()?,
            })
        } else {
            None
        };
        let n_completions = r.get_u32()?;
        let mut completions = VecDeque::with_capacity(config.fps_window + 1);
        for _ in 0..n_completions {
            completions.push_back(r.get_f64()?);
        }
        let last_obs = Observation {
            fps: r.get_f64()?,
            psnr_db: r.get_f64()?,
            bitrate_mbps: r.get_f64()?,
            power_w: r.get_f64()?,
        };
        let qos = {
            let target = r.get_f64()?;
            let frames = r.get_u64()?;
            let violations = r.get_u64()?;
            let raw = r.get_u64()?;
            let delivery = r.get_u64()?;
            let credit = r.get_f64()?;
            let cap = r.get_f64()?;
            QosTracker::from_raw_parts(target, frames, violations, raw, delivery, credit, cap)
        };
        let mut stats = [RunningStats::new(); 5];
        for slot in &mut stats {
            let count = r.get_u64()?;
            let mean = r.get_f64()?;
            let m2 = r.get_f64()?;
            let min = r.get_f64()?;
            let max = r.get_f64()?;
            *slot = RunningStats::from_raw_parts(count, mean, m2, min, max);
        }
        let n_rows = r.get_u32()?;
        let mut trace = Trace::new();
        for _ in 0..n_rows {
            trace.push(TraceRow {
                time_s: r.get_f64()?,
                frame: r.get_u64()?,
                fps: r.get_f64()?,
                psnr_db: r.get_f64()?,
                bitrate_mbps: r.get_f64()?,
                qp: r.get_u8()?,
                threads: r.get_u32()?,
                freq_ghz: r.get_f64()?,
                power_w: r.get_f64()?,
            });
        }
        r.expect_end()?;

        let mut session = TranscodeSession::new(0, config, controller);
        session.controller.restore(&policy)?;
        // Rebuild the playlist-position artifacts exactly as the
        // playlist-advance loop in start_next_frame would have: name,
        // encoder, decoder and source derive from the spec at the
        // (clamped) position, with the per-position content seed.
        let last = session.config.playlist.len().saturating_sub(1);
        let pos = playlist_pos.min(last);
        if pos > 0 {
            let spec = session
                .config
                .playlist
                .get(pos)
                .expect("clamped position is in range")
                .clone();
            session.name = spec.name().to_owned();
            session.encoder = HevcEncoder::new(spec.resolution(), session.config.preset);
            session.decoder = HevcDecoder::new(spec.resolution());
            session.source = VideoSource::new(&spec, session.config.seed.wrapping_add(pos as u64));
        }
        session.playlist_pos = playlist_pos;
        session.source.restore_state(&source_state);
        session.config.constraints = constraints;
        session.knobs = knobs;
        session.frame_counter = frame_counter;
        session.in_flight = in_flight;
        session.completions = completions;
        session.last_obs = last_obs;
        session.qos = qos;
        [
            session.fps_stats,
            session.psnr_stats,
            session.bitrate_stats,
            session.thread_stats,
            session.freq_stats,
        ] = stats;
        session.trace = trace;
        session.finished = finished;
        Ok(session)
    }
}

/// Clamps controller output into physically meaningful ranges.
fn clamp_knobs(mut k: KnobSettings) -> KnobSettings {
    k.qp = k.qp.min(51);
    k.threads = k.threads.clamp(1, 64);
    if !(k.freq_ghz.is_finite() && k.freq_ghz > 0.0) {
        k.freq_ghz = 1.6;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_core::FixedController;
    use mamut_video::catalog;

    fn session(frames: u64) -> TranscodeSession {
        let spec = catalog::by_name("Kimono")
            .unwrap()
            .with_frame_count(frames)
            .unwrap();
        TranscodeSession::new(
            0,
            SessionConfig::single_video(spec, 1).with_trace(),
            Box::new(FixedController::new(KnobSettings::new(32, 8, 2.9))),
        )
    }

    #[test]
    fn preset_follows_resolution() {
        let hr = SessionConfig::single_video(catalog::by_name("Cactus").unwrap(), 0);
        assert_eq!(hr.preset, Preset::Ultrafast);
        let lr = SessionConfig::single_video(catalog::by_name("BQMall").unwrap(), 0);
        assert_eq!(lr.preset, Preset::Slow);
    }

    #[test]
    fn start_and_complete_one_frame() {
        let mut s = session(5);
        assert!(s.start_next_frame(0.0));
        assert!(s.in_flight.is_some());
        let work = s.in_flight.as_ref().unwrap().work_total;
        assert!(work > 1e8, "an HR frame is hundreds of megacycles: {work}");
        s.complete_frame(0.04, 75.0);
        assert_eq!(s.frames_completed(), 1);
        assert_eq!(s.trace().len(), 1);
        assert!(!s.is_finished());
    }

    #[test]
    fn finishes_after_playlist() {
        let mut s = session(3);
        for i in 0..3 {
            assert!(s.start_next_frame(i as f64 * 0.04));
            s.complete_frame(i as f64 * 0.04 + 0.04, 70.0);
        }
        assert!(!s.is_finished());
        assert!(!s.start_next_frame(0.2));
        assert!(s.is_finished());
        assert_eq!(s.frames_completed(), 3);
    }

    #[test]
    fn playlist_advances_to_next_video() {
        let a = catalog::by_name("Kimono")
            .unwrap()
            .with_frame_count(2)
            .unwrap();
        let b = catalog::by_name("Cactus")
            .unwrap()
            .with_frame_count(2)
            .unwrap();
        let playlist = Playlist::new(vec![a, b]).unwrap();
        let mut s = TranscodeSession::new(
            0,
            SessionConfig::playlist(playlist, 3),
            Box::new(FixedController::new(KnobSettings::new(32, 8, 2.9))),
        );
        assert_eq!(s.name(), "Kimono");
        for i in 0..2 {
            s.start_next_frame(i as f64);
            s.complete_frame(i as f64 + 0.5, 70.0);
        }
        assert!(s.start_next_frame(2.0));
        assert_eq!(s.name(), "Cactus");
        assert!(!s.is_finished());
    }

    #[test]
    fn windowed_fps_reflects_completion_times() {
        let mut s = session(20);
        let mut t = 0.0;
        for _ in 0..10 {
            s.start_next_frame(t);
            t += 1.0 / 30.0; // steady 30 FPS
            s.complete_frame(t, 70.0);
        }
        assert!(
            (s.last_obs.fps - 30.0).abs() < 0.5,
            "fps = {}",
            s.last_obs.fps
        );
    }

    #[test]
    fn violations_counted_for_slow_frames() {
        let mut s = session(10);
        let mut t = 0.0;
        for _ in 0..10 {
            s.start_next_frame(t);
            t += 0.1; // 10 FPS < 24 target
            s.complete_frame(t, 70.0);
        }
        assert_eq!(s.qos().violations(), 10);
    }

    #[test]
    fn clamping_sanitizes_controller_output() {
        let k = clamp_knobs(KnobSettings::new(99, 0, f64::NAN));
        assert_eq!(k.qp, 51);
        assert_eq!(k.threads, 1);
        assert_eq!(k.freq_ghz, 1.6);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = session(4);
        let mut t = 0.0;
        for _ in 0..4 {
            s.start_next_frame(t);
            t += 0.05;
            s.complete_frame(t, 70.0);
        }
        assert!((s.mean_threads() - 8.0).abs() < 1e-12);
        assert!((s.mean_freq_ghz() - 2.9).abs() < 1e-12);
        assert!(s.mean_psnr_db() > 25.0);
        assert!(s.mean_bitrate_mbps() > 0.5);
        assert!((s.mean_fps() - 20.0).abs() < 1.0);
    }

    #[test]
    fn checkpoint_round_trip_continues_bit_identically() {
        let spec = catalog::by_name("Kimono")
            .unwrap()
            .with_frame_count(40)
            .unwrap();
        let config = SessionConfig::single_video(spec, 9).with_trace();
        let mut original = TranscodeSession::new(
            0,
            config.clone(),
            Box::new(FixedController::new(KnobSettings::new(30, 6, 3.2))),
        );
        let mut t = 0.0;
        for _ in 0..17 {
            original.start_next_frame(t);
            t += 0.05;
            original.complete_frame(t, 72.0);
        }
        // Capture mid-frame: a frame is in flight with some work drained.
        original.start_next_frame(t);
        let bytes = original.checkpoint_bytes(2.0e9, t + 0.01);
        let mut restored = TranscodeSession::restore_checkpoint(
            config,
            Box::new(FixedController::new(KnobSettings::new(30, 6, 3.2))),
            &bytes,
        )
        .expect("checkpoint decodes");
        let drained = 2.0e9 * 0.01;
        let fly = original.in_flight.as_ref().unwrap();
        let fly_r = restored.in_flight.as_ref().unwrap();
        assert_eq!(fly_r.work_remaining, fly.work_remaining - drained);
        assert_eq!(fly_r.work_total, fly.work_total);
        // Drive both to completion on the same schedule (account the
        // restored session's already-drained work as a head start).
        original.complete_frame(t + 0.08, 70.0);
        restored.complete_frame(t + 0.08, 70.0);
        while original.start_next_frame(t) {
            assert!(restored.start_next_frame(t));
            t += 0.05;
            original.complete_frame(t, 70.0);
            restored.complete_frame(t, 70.0);
        }
        assert!(!restored.start_next_frame(t));
        assert_eq!(restored.frames_completed(), original.frames_completed());
        assert_eq!(restored.qos(), original.qos());
        assert_eq!(restored.name(), original.name());
        assert_eq!(
            restored.trace().to_csv(),
            original.trace().to_csv(),
            "traces must match row for row"
        );
        assert_eq!(restored.knobs(), original.knobs());
        assert_eq!(
            restored.checkpoint_bytes(0.0, t),
            original.checkpoint_bytes(0.0, t),
            "full dynamic state must re-encode identically"
        );
    }

    #[test]
    fn checkpoint_restore_rejects_mangled_streams() {
        let mut s = session(10);
        s.start_next_frame(0.0);
        s.complete_frame(0.04, 70.0);
        let bytes = s.checkpoint_bytes(0.0, 0.04);
        let rebuild = || {
            let spec = catalog::by_name("Kimono")
                .unwrap()
                .with_frame_count(10)
                .unwrap();
            (
                SessionConfig::single_video(spec, 1).with_trace(),
                Box::new(FixedController::new(KnobSettings::new(32, 8, 2.9)))
                    as Box<dyn Controller>,
            )
        };
        let mut newer = bytes.clone();
        newer[0] = 0xFF;
        let (cfg, ctl) = rebuild();
        assert!(matches!(
            TranscodeSession::restore_checkpoint(cfg, ctl, &newer),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        for cut in [0, 8, bytes.len() / 2, bytes.len() - 1] {
            let (cfg, ctl) = rebuild();
            assert!(
                TranscodeSession::restore_checkpoint(cfg, ctl, &bytes[..cut]).is_err(),
                "cut at {cut} slipped through"
            );
        }
    }

    #[test]
    fn constraints_can_change_mid_run() {
        let mut s = session(5);
        let mut c = s.constraints();
        c.bandwidth_mbps = 3.0;
        s.set_constraints(c);
        assert_eq!(s.constraints().bandwidth_mbps, 3.0);
    }
}
