use mamut_core::{Constraints, Controller};
use mamut_platform::{Platform, PowerSensor, SessionLoad};

use crate::{RunSummary, SessionConfig, TranscodeError, TranscodeSession};

/// Work below this many cycles counts as frame completion (guards float
/// residue; one cycle at 3.2 GHz is ≈0.3 ns of work).
const COMPLETION_EPSILON_CYCLES: f64 = 1.0;

/// Power-observation smoothing window in seconds (≈ a RAPL sampling span).
const POWER_WINDOW_S: f64 = 0.25;

/// Outcome of one bounded simulation step.
enum BoundedStep {
    /// A frame completion was processed.
    Event,
    /// The time bound was reached first; the clock (and energy) advanced
    /// to the bound, in-flight frames stay anchored where they were.
    Boundary,
    /// No session has work in flight (everything finished or empty).
    Idle,
}

/// One session position on the server. Ids are slot indices and must
/// stay stable for the server's whole life, so a session migrated to
/// another node leaves a vacated slot behind instead of shifting its
/// neighbours.
enum SessionSlot {
    /// A session lives here (finished or not). Boxed: a vacated slot is
    /// a tombstone and should not keep a session-sized footprint.
    Occupied(Box<TranscodeSession>),
    /// The session that lived here was detached (migrated away).
    Vacated,
}

impl SessionSlot {
    fn get(&self) -> Option<&TranscodeSession> {
        match self {
            SessionSlot::Occupied(s) => Some(s),
            SessionSlot::Vacated => None,
        }
    }

    fn get_mut(&mut self) -> Option<&mut TranscodeSession> {
        match self {
            SessionSlot::Occupied(s) => Some(s),
            SessionSlot::Vacated => None,
        }
    }
}

/// Snapshot of a server's instantaneous load (dispatcher's view).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerLoad {
    /// Sessions still transcoding (not yet through their playlists).
    pub active_sessions: usize,
    /// Threads those sessions collectively request.
    pub threads_demanded: u32,
    /// Hardware threads the platform offers.
    pub hw_threads: u32,
    /// Instantaneous power at the current knobs (W).
    pub power_w: f64,
}

impl ServerLoad {
    /// Thread demand as a fraction of hardware threads (can exceed 1.0
    /// when the box is oversubscribed).
    pub fn utilization(&self) -> f64 {
        if self.hw_threads == 0 {
            0.0
        } else {
            f64::from(self.threads_demanded) / f64::from(self.hw_threads)
        }
    }
}

/// Index min-heap of predicted completion deadlines, keyed by virtual
/// time with the session id as payload. Rebuilt wholesale on rate-epoch
/// bumps (Floyd heapify over the persistent buffer); between bumps the
/// only traffic is pop-the-earliest and push-the-successor, so the
/// steady-state cost per event is O(log sessions) with zero allocations.
#[derive(Debug, Default)]
struct DeadlineHeap {
    entries: Vec<(f64, u32)>,
}

impl DeadlineHeap {
    fn peek(&self) -> Option<(f64, u32)> {
        self.entries.first().copied()
    }

    fn push(&mut self, deadline: f64, id: u32) {
        self.entries.push((deadline, id));
        self.sift_up(self.entries.len() - 1);
    }

    fn pop(&mut self) -> Option<(f64, u32)> {
        if self.entries.is_empty() {
            return None;
        }
        let top = self.entries.swap_remove(0);
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        Some(top)
    }

    fn heapify(&mut self) {
        for i in (0..self.entries.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i].0 < self.entries[parent].0 {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let left = 2 * i + 1;
            let right = left + 1;
            let mut min = i;
            if left < n && self.entries[left].0 < self.entries[min].0 {
                min = left;
            }
            if right < n && self.entries[right].0 < self.entries[min].0 {
                min = right;
            }
            if min == i {
                break;
            }
            self.entries.swap(i, min);
            i = min;
        }
    }
}

/// The hot per-session state of the event engine, hoisted out of the
/// session objects into dense arrays (indexed by slot id) plus the
/// cached rate-epoch aggregates. All buffers are persistent: steady-state
/// stepping reuses them without touching the allocator.
///
/// # The rate-epoch invariant
///
/// Between two *rate-epoch bumps* every active session's effective rate
/// (`dvfs-snapped freq · wpp(resolution, threads) · contention scale`),
/// the total thread demand, the throughput scale and the instantaneous
/// power draw are all constant — nothing in the model can move them
/// except a knob change, a session-set change, or a constraint change,
/// and each of those sets `dirty`. While clean, each in-flight frame's
/// completion instant is therefore a fixed point in time (its
/// `deadline`), and an event costs one heap pop + one push instead of an
/// O(sessions) model re-evaluation.
#[derive(Debug, Default)]
struct HotState {
    /// A knob/session-set/constraint change happened: the cached rates,
    /// aggregates and heap must be rebuilt before the next event.
    dirty: bool,
    /// Times the rate epoch was rebuilt (diagnostics: how incremental a
    /// run actually was).
    rate_epochs: u64,
    /// Per-slot effective rate in cycles/s (0.0 = slot not anchored).
    rate: Vec<f64>,
    /// Per-slot predicted completion time (NaN = needs re-anchoring).
    deadline: Vec<f64>,
    /// Per-slot thread knob the cached rate was derived from.
    threads: Vec<u32>,
    /// Per-slot frequency knob the cached rate was derived from.
    freq: Vec<f64>,
    /// Per-slot CTU row count the cached WPP factor was derived from
    /// (changes when a playlist advances across resolutions).
    ctu_rows: Vec<u32>,
    /// Epoch aggregate: total threads demanded by active sessions.
    total_threads: u32,
    /// Epoch aggregate: contention throughput scale at `total_threads`.
    scale: f64,
    /// Epoch aggregate: instantaneous power draw (W).
    power: f64,
    /// Active (in-flight) session ids in ascending order.
    active: Vec<u32>,
    /// Earliest-completion queue over the active sessions.
    heap: DeadlineHeap,
    /// Scratch: ids completing at the current event, ascending.
    due: Vec<u32>,
}

impl HotState {
    /// Registers a fresh slot (new or attached session).
    fn push_slot(&mut self) {
        self.rate.push(0.0);
        self.deadline.push(f64::NAN);
        self.threads.push(0);
        self.freq.push(0.0);
        self.ctu_rows.push(0);
    }

    /// Drops a slot's cached state (detached or finished session).
    fn clear_slot(&mut self, id: usize) {
        self.rate[id] = 0.0;
        self.deadline[id] = f64::NAN;
    }

    /// Rebuilds the earliest-completion heap from the active deadlines.
    fn rebuild_heap(&mut self) {
        let mut entries = std::mem::take(&mut self.heap.entries);
        entries.clear();
        entries.extend(
            self.active
                .iter()
                .map(|&id| (self.deadline[id as usize], id)),
        );
        self.heap.entries = entries;
        self.heap.heapify();
    }

    /// Earliest deadline among active sessions, or `None` when idle.
    /// The naive oracle scans the dense array (first minimum in id
    /// order); the engine peeks the heap — both must agree bitwise.
    fn next_deadline(&self, naive: bool) -> Option<f64> {
        if naive {
            let mut best: Option<f64> = None;
            for &id in &self.active {
                let d = self.deadline[id as usize];
                if best.is_none_or(|b| d < b) {
                    best = Some(d);
                }
            }
            best
        } else {
            self.heap.peek().map(|(d, _)| d)
        }
    }

    /// Collects every session due at `t` into `due`, ascending by id.
    /// Ties (bit-equal deadlines) complete together in both modes.
    fn collect_due(&mut self, t: f64, naive: bool) {
        self.due.clear();
        if naive {
            for &id in &self.active {
                if self.deadline[id as usize] <= t {
                    self.due.push(id);
                }
            }
        } else {
            while let Some((d, id)) = self.heap.peek() {
                if d <= t {
                    self.heap.pop();
                    self.due.push(id);
                } else {
                    break;
                }
            }
            self.due.sort_unstable();
        }
    }
}

/// The multi-user transcoding server: platform + sessions + virtual clock.
///
/// See the [crate documentation](crate) for the event-loop semantics and
/// the README's "Hot path" section for the incremental engine design
/// (rate epochs, lazy work anchoring, the deadline heap).
///
/// # Example
///
/// ```
/// use mamut_core::{FixedController, KnobSettings};
/// use mamut_transcode::{ServerSim, SessionConfig};
/// use mamut_video::catalog;
///
/// let mut server = ServerSim::with_default_platform();
/// for (i, name) in ["Kimono", "BQMall"].iter().enumerate() {
///     let spec = catalog::by_name(name).unwrap().with_frame_count(24).unwrap();
///     server.add_session(
///         SessionConfig::single_video(spec, i as u64),
///         Box::new(FixedController::new(KnobSettings::new(32, 6, 2.9))),
///     );
/// }
/// let summary = server.run_to_completion(1_000_000).unwrap();
/// assert_eq!(summary.sessions.len(), 2);
/// assert!(summary.mean_power_w > 40.0);
/// ```
pub struct ServerSim {
    platform: Platform,
    sessions: Vec<SessionSlot>,
    time: f64,
    sensor: PowerSensor,
    events: u64,
    hot: HotState,
    /// Count of resident sessions whose playlist is not yet exhausted —
    /// maintained on every transition so [`ServerSim::all_finished`]
    /// never rescans the slots.
    unfinished: usize,
    /// Frame threshold a [`ServerSim::run_frames`] call is driving
    /// toward (`u64::MAX` when no such call is active).
    milestone_frames: u64,
    /// Sessions still unfinished *and* below `milestone_frames`.
    milestone_pending: usize,
    /// Oracle mode: re-derive every rate from scratch on every event and
    /// use the linear earliest-completion scan. Only settable with the
    /// `oracle` feature; the engine must match it bit for bit.
    naive: bool,
    /// Thermal-throttle ceiling: when set, every session's effective
    /// frequency is clamped to this before the DVFS snap, without
    /// touching the controllers' announced knobs (they keep steering
    /// toward their targets and regain them when the cap lifts).
    freq_cap_ghz: Option<f64>,
}

impl std::fmt::Debug for ServerSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerSim")
            .field("time", &self.time)
            .field("sessions", &self.sessions.len())
            .field("events", &self.events)
            .field("rate_epochs", &self.hot.rate_epochs)
            .finish_non_exhaustive()
    }
}

impl ServerSim {
    /// Creates a server over an explicit platform model.
    pub fn new(platform: Platform) -> Self {
        ServerSim {
            platform,
            sessions: Vec::new(),
            time: 0.0,
            sensor: PowerSensor::new(POWER_WINDOW_S),
            events: 0,
            hot: HotState {
                dirty: true,
                ..HotState::default()
            },
            unfinished: 0,
            milestone_frames: u64::MAX,
            milestone_pending: 0,
            naive: false,
            freq_cap_ghz: None,
        }
    }

    /// Creates a server over the paper's dual Xeon E5-2667 v4 platform.
    pub fn with_default_platform() -> Self {
        ServerSim::new(Platform::xeon_e5_2667_v4())
    }

    /// Switches this server to the naive oracle engine: every event
    /// re-derives the active set, thread total, throughput scale, power
    /// draw and per-session rates from scratch and finds the earliest
    /// completion by linear scan — no cache survives an event. Exists to
    /// *prove* the incremental bookkeeping right: equivalence tests
    /// drive a naive and an incremental twin through identical command
    /// sequences and require bit-identical outcomes, so any missed
    /// invalidation, stale aggregate, or heap-vs-scan disagreement
    /// surfaces as a divergence.
    ///
    /// Scope: both modes share the anchored-work arithmetic (that *is*
    /// the event semantics now), so this oracle checks the caching, not
    /// the physics. The physics are pinned separately — the
    /// hand-computation, epoch-slicing, migration frame-count and
    /// materialization tests, plus the exact-gated bench canary.
    #[cfg(feature = "oracle")]
    pub fn set_naive_engine(&mut self, naive: bool) {
        self.naive = naive;
    }

    /// How many times the cached rate vector was rebuilt so far. In a
    /// steady state (no knob churn, no session churn) this stays frozen
    /// while events keep flowing — the measure of how incremental a run
    /// actually was.
    pub fn rate_epochs(&self) -> u64 {
        self.hot.rate_epochs
    }

    /// Adds a session; returns its id.
    pub fn add_session(&mut self, config: SessionConfig, controller: Box<dyn Controller>) -> usize {
        let id = self.sessions.len();
        self.sessions
            .push(SessionSlot::Occupied(Box::new(TranscodeSession::new(
                id, config, controller,
            ))));
        self.hot.push_slot();
        self.hot.dirty = true;
        self.unfinished += 1;
        id
    }

    /// Detaches a session for migration to another server, leaving its
    /// slot vacated (ids of the remaining sessions do not move). The
    /// returned session carries its controller, playlist position,
    /// in-flight frame (with its remaining work materialized at the
    /// current clock) and QoS history; hand it to
    /// [`ServerSim::attach_session`] on the target server.
    ///
    /// Only meaningful when both servers' clocks agree (e.g. at a fleet
    /// epoch boundary) — the session's completion timestamps stay on the
    /// same virtual timeline.
    ///
    /// # Errors
    ///
    /// Returns [`TranscodeError::UnknownSession`] for a bad or already
    /// vacated id.
    pub fn detach_session(&mut self, id: usize) -> Result<TranscodeSession, TranscodeError> {
        let now = self.time;
        let rate = self.hot.rate.get(id).copied().unwrap_or(0.0);
        let slot = self
            .sessions
            .get_mut(id)
            .ok_or(TranscodeError::UnknownSession(id))?;
        match std::mem::replace(slot, SessionSlot::Vacated) {
            SessionSlot::Occupied(mut s) => {
                // The lazily accounted frame must travel with its true
                // remaining work: burn the cycles since its anchor at the
                // rate that was in force here.
                if let Some(fly) = s.in_flight.as_mut() {
                    if rate != 0.0 {
                        fly.work_remaining -= rate * (now - fly.anchor_time);
                        fly.anchor_time = now;
                    }
                }
                if !s.is_finished() {
                    self.unfinished -= 1;
                }
                self.hot.clear_slot(id);
                self.hot.dirty = true;
                Ok(*s)
            }
            SessionSlot::Vacated => Err(TranscodeError::UnknownSession(id)),
        }
    }

    /// Attaches a session detached from another server, assigning it a
    /// fresh id here (returned). The inverse of
    /// [`ServerSim::detach_session`].
    pub fn attach_session(&mut self, mut session: TranscodeSession) -> usize {
        let id = self.sessions.len();
        session.set_id(id);
        if !session.is_finished() {
            self.unfinished += 1;
        }
        self.sessions.push(SessionSlot::Occupied(Box::new(session)));
        self.hot.push_slot();
        self.hot.dirty = true;
        id
    }

    /// Current virtual time (seconds).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Fast-forwards an *empty* server's clock to `target` without
    /// charging energy — a node commissioned mid-run by a fleet
    /// autoscaler did not exist (and drew no idle power) before that
    /// instant, but must join its peers time-aligned so sessions can
    /// migrate onto it at the next epoch boundary.
    ///
    /// # Errors
    ///
    /// [`TranscodeError::CannotAlignClock`] if the server holds any
    /// session (finished or not) or `target` lies behind the current
    /// clock — skipping time under live sessions would corrupt their
    /// QoS timelines.
    pub fn align_clock(&mut self, target: f64) -> Result<(), TranscodeError> {
        if !self.sessions.is_empty() || target < self.time {
            return Err(TranscodeError::CannotAlignClock {
                time: self.time,
                target,
                sessions: self.sessions.len(),
            });
        }
        self.time = target;
        Ok(())
    }

    /// Resident sessions in id order (vacated slots of migrated-away
    /// sessions are skipped, so ids may have gaps).
    pub fn sessions(&self) -> Vec<&TranscodeSession> {
        self.sessions.iter().filter_map(SessionSlot::get).collect()
    }

    /// One session by id.
    ///
    /// # Errors
    ///
    /// Returns [`TranscodeError::UnknownSession`] for a bad or vacated id.
    pub fn session(&self, id: usize) -> Result<&TranscodeSession, TranscodeError> {
        self.sessions
            .get(id)
            .and_then(SessionSlot::get)
            .ok_or(TranscodeError::UnknownSession(id))
    }

    /// Replaces a session's constraints mid-run (failure injection).
    ///
    /// # Errors
    ///
    /// Returns [`TranscodeError::UnknownSession`] for a bad or vacated id.
    pub fn set_constraints(
        &mut self,
        id: usize,
        constraints: Constraints,
    ) -> Result<(), TranscodeError> {
        self.sessions
            .get_mut(id)
            .and_then(SessionSlot::get_mut)
            .ok_or(TranscodeError::UnknownSession(id))?
            .set_constraints(constraints);
        self.hot.dirty = true;
        Ok(())
    }

    /// Applies new constraints to every session (e.g. a power-cap change).
    pub fn set_constraints_all(&mut self, constraints: Constraints) {
        for s in self.sessions.iter_mut().filter_map(SessionSlot::get_mut) {
            s.set_constraints(constraints);
        }
        self.hot.dirty = true;
    }

    /// Sets (or clears, with `None`) a thermal-throttle frequency ceiling
    /// in GHz. While capped, every session's effective clock is
    /// `min(knob, cap)` before the DVFS snap — power and throughput drop
    /// accordingly — but the controllers' announced knobs are untouched,
    /// so the server recovers its full rates the instant the cap lifts.
    pub fn set_freq_cap(&mut self, cap_ghz: Option<f64>) {
        if self.freq_cap_ghz != cap_ghz {
            self.freq_cap_ghz = cap_ghz;
            self.hot.dirty = true;
        }
    }

    /// The active thermal-throttle frequency ceiling, if any.
    pub fn freq_cap_ghz(&self) -> Option<f64> {
        self.freq_cap_ghz
    }

    /// A knob frequency clamped to the thermal ceiling (identity when
    /// no cap is in force).
    fn effective_freq(&self, freq_ghz: f64) -> f64 {
        match self.freq_cap_ghz {
            Some(cap) => freq_ghz.min(cap),
            None => freq_ghz,
        }
    }

    /// Serializes one session's complete dynamic state without
    /// disturbing it: the in-flight frame's remaining work is
    /// materialized at the current clock inside the byte stream (the
    /// same arithmetic [`ServerSim::detach_session`] applies), while the
    /// live session keeps its lazy anchor. Returns `None` for a bad or
    /// vacated id. Feed the bytes to
    /// [`TranscodeSession::restore_checkpoint`] to rebuild the session.
    pub fn checkpoint_session(&self, id: usize) -> Option<Vec<u8>> {
        let session = self.sessions.get(id).and_then(SessionSlot::get)?;
        let rate = self.hot.rate.get(id).copied().unwrap_or(0.0);
        Some(session.checkpoint_bytes(rate, self.time))
    }

    /// The platform model.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The power sensor (lifetime energy, windowed averages).
    pub fn sensor(&self) -> &PowerSensor {
        &self.sensor
    }

    /// Whether every resident session has finished its playlist (vacated
    /// slots count as done — their work continues elsewhere). O(1): the
    /// engine maintains the unfinished count across every transition.
    pub fn all_finished(&self) -> bool {
        self.unfinished == 0
    }

    /// Runs until all sessions finish or the event budget is exhausted.
    ///
    /// # Errors
    ///
    /// [`TranscodeError::NoSessions`] if nothing was added;
    /// [`TranscodeError::EventBudgetExhausted`] if `max_events` elapsed
    /// first (a guard against misconfigured runs, not a normal outcome).
    pub fn run_to_completion(&mut self, max_events: u64) -> Result<RunSummary, TranscodeError> {
        if self.sessions.is_empty() {
            return Err(TranscodeError::NoSessions);
        }
        let start_events = self.events;
        while !self.all_finished() {
            if self.events - start_events >= max_events {
                return Err(TranscodeError::EventBudgetExhausted {
                    events: self.events - start_events,
                });
            }
            self.step();
        }
        Ok(self.summary())
    }

    /// Runs until every session has completed at least `frames` frames or
    /// finished, within the event budget. The done-check is a maintained
    /// counter (sessions still below the threshold), updated as frames
    /// complete — not a per-event rescan of every slot.
    ///
    /// # Errors
    ///
    /// Same as [`ServerSim::run_to_completion`].
    pub fn run_frames(
        &mut self,
        frames: u64,
        max_events: u64,
    ) -> Result<RunSummary, TranscodeError> {
        if self.sessions.is_empty() {
            return Err(TranscodeError::NoSessions);
        }
        let start_events = self.events;
        self.milestone_frames = frames;
        self.milestone_pending = self
            .sessions
            .iter()
            .filter_map(SessionSlot::get)
            .filter(|s| !s.is_finished() && s.frames_completed() < frames)
            .count();
        let result = loop {
            if self.milestone_pending == 0 {
                break Ok(self.summary());
            }
            if self.events - start_events >= max_events {
                break Err(TranscodeError::EventBudgetExhausted {
                    events: self.events - start_events,
                });
            }
            if !self.step() {
                // Unreachable while pending > 0 (an unfinished session
                // always has a frame to run), but never spin on Idle.
                break Ok(self.summary());
            }
        };
        self.milestone_frames = u64::MAX;
        self.milestone_pending = 0;
        result
    }

    /// Advances the simulation by one event (the next frame completion).
    ///
    /// Returns `false` when everything is finished (no event processed).
    pub fn step(&mut self) -> bool {
        matches!(self.step_bounded(f64::INFINITY), BoundedStep::Event)
    }

    /// Rebuilds the rate epoch at the current clock: starts any pending
    /// frames (controller decisions), re-derives the active set, thread
    /// total, contention scale, power draw and per-session rates, and
    /// re-anchors exactly the frames whose effective rate actually
    /// changed (bitwise) — everyone else keeps their deadline, so an
    /// epoch bump perturbs nothing it does not have to.
    fn rebuild_epoch(&mut self) {
        let now = self.time;
        let cap = self.freq_cap_ghz;
        let eff = |freq_ghz: f64| match cap {
            Some(c) => freq_ghz.min(c),
            None => freq_ghz,
        };
        self.hot.rate_epochs += 1;

        // 1. Every unfinished session gets a frame in flight.
        for id in 0..self.sessions.len() {
            let Some(s) = self.sessions[id].get_mut() else {
                continue;
            };
            if !s.is_finished() && s.in_flight.is_none() {
                self.hot.deadline[id] = f64::NAN; // fresh frame: anchor below
                if !s.start_next_frame(now) {
                    // Playlist exhausted on the spot.
                    let frames = s.frames_completed();
                    self.unfinished -= 1;
                    self.hot.clear_slot(id);
                    if self.milestone_frames != u64::MAX && frames < self.milestone_frames {
                        self.milestone_pending = self.milestone_pending.saturating_sub(1);
                    }
                }
            }
        }

        // 2. Active set + aggregates (id order = float summation order).
        self.hot.active.clear();
        let mut total: u32 = 0;
        for (id, slot) in self.sessions.iter().enumerate() {
            let Some(s) = slot.get() else { continue };
            if s.in_flight.is_some() {
                self.hot.active.push(id as u32);
                total += s.knobs().threads;
            }
        }
        self.hot.total_threads = total;
        if self.hot.active.is_empty() {
            self.hot.rebuild_heap(); // empties the queue
            self.hot.dirty = false;
            return;
        }
        self.hot.scale = self.platform.throughput_scale(total);
        let sessions = &self.sessions;
        self.hot.power = self
            .platform
            .power_draw_for(self.hot.active.iter().map(|&id| {
                let k = sessions[id as usize]
                    .get()
                    .expect("active slot is occupied")
                    .knobs();
                SessionLoad::new(k.threads, eff(k.freq_ghz))
            }));

        // 3. Per-session rates; re-anchor only on a real change.
        for idx in 0..self.hot.active.len() {
            let id = self.hot.active[idx] as usize;
            let s = self.sessions[id]
                .get_mut()
                .expect("active slot is occupied");
            let k = s.knobs();
            let rows = s.resolution().ctu_rows();
            let level = self.platform.dvfs().nearest(eff(k.freq_ghz));
            let r_new = level.freq_ghz * 1e9 * s.wpp_speedup() * self.hot.scale;
            self.hot.threads[id] = k.threads;
            self.hot.freq[id] = k.freq_ghz;
            self.hot.ctu_rows[id] = rows;
            let r_old = self.hot.rate[id];
            if r_new.to_bits() != r_old.to_bits() || self.hot.deadline[id].is_nan() {
                let fly = s.in_flight.as_mut().expect("active has in-flight");
                if r_old != 0.0 {
                    fly.work_remaining -= r_old * (now - fly.anchor_time);
                }
                fly.anchor_time = now;
                self.hot.rate[id] = r_new;
                self.hot.deadline[id] = if fly.work_remaining <= COMPLETION_EPSILON_CYCLES {
                    now
                } else {
                    now + fly.work_remaining / r_new
                };
            }
        }

        // 4. Fresh earliest-completion queue.
        self.hot.rebuild_heap();
        self.hot.dirty = false;
    }

    /// Advances to the next frame completion, but never past virtual time
    /// `limit`: if the earliest completion lies beyond it, the clock and
    /// energy advance to `limit` exactly and every in-flight frame stays
    /// anchored — its deadline is a fixed instant, so crossing an epoch
    /// boundary cannot perturb any server's own event sequence. This is
    /// what lets a fleet advance many servers in lockstep epochs.
    fn step_bounded(&mut self, limit: f64) -> BoundedStep {
        if self.naive {
            self.hot.dirty = true;
        }
        if self.hot.dirty {
            self.rebuild_epoch();
        }
        let Some(t_next) = self.hot.next_deadline(self.naive) else {
            return BoundedStep::Idle;
        };
        debug_assert!(t_next >= self.time);

        // Next completion beyond the bound: charge energy up to the bound
        // and stop there; deadlines are untouched. Frames that run dry
        // exactly at the bound complete within this epoch.
        if t_next > limit {
            let dt = limit - self.time;
            if dt > 0.0 {
                self.time = limit;
                self.sensor.record(self.hot.power, dt);
            }
            return BoundedStep::Boundary;
        }

        // Advance the clock and charge energy for the interval.
        let dt = t_next - self.time;
        self.time = t_next;
        self.sensor.record(self.hot.power, dt);
        let power_obs = self.sensor.window_average();

        // Complete every frame due now (ties complete together), start
        // successors, and keep the caches honest: a knob or resolution
        // change — or a session finishing — bumps the rate epoch; an
        // unchanged session just pushes its next deadline.
        self.hot.collect_due(t_next, self.naive);
        for k in 0..self.hot.due.len() {
            let id = self.hot.due[k] as usize;
            let (alive, frames_after) = {
                let s = self.sessions[id].get_mut().expect("due slot is occupied");
                s.complete_frame(t_next, power_obs);
                (s.start_next_frame(t_next), s.frames_completed())
            };
            if alive {
                let s = self.sessions[id].get().expect("due slot is occupied");
                let knobs = s.knobs();
                let rows = s.resolution().ctu_rows();
                if knobs.threads != self.hot.threads[id]
                    || knobs.freq_ghz.to_bits() != self.hot.freq[id].to_bits()
                    || rows != self.hot.ctu_rows[id]
                {
                    self.hot.dirty = true;
                    self.hot.deadline[id] = f64::NAN;
                } else {
                    let fly = s.in_flight.as_ref().expect("frame just started");
                    let d = if fly.work_remaining <= COMPLETION_EPSILON_CYCLES {
                        t_next
                    } else {
                        t_next + fly.work_remaining / self.hot.rate[id]
                    };
                    self.hot.deadline[id] = d;
                    if !self.hot.dirty {
                        self.hot.heap.push(d, id as u32);
                    }
                }
            } else {
                self.unfinished -= 1;
                self.hot.clear_slot(id);
                self.hot.dirty = true;
            }
            if self.milestone_frames != u64::MAX {
                let was_counted = frames_after <= self.milestone_frames;
                let now_counted = alive && frames_after < self.milestone_frames;
                if was_counted && !now_counted {
                    self.milestone_pending = self.milestone_pending.saturating_sub(1);
                }
            }
        }

        self.events += 1;
        BoundedStep::Event
    }

    /// Runs until virtual time `until`, processing every frame completion
    /// on the way. Unlike [`ServerSim::run_to_completion`] this is happy
    /// with an empty or fully finished server: the clock idles forward to
    /// `until` while the platform's idle power keeps being charged, so a
    /// fleet's drained node stays time-aligned (and power-accounted) with
    /// its busy peers.
    ///
    /// Returns the number of events processed in this epoch.
    ///
    /// # Errors
    ///
    /// [`TranscodeError::EventBudgetExhausted`] if more than `max_events`
    /// completions fire before `until` is reached.
    pub fn run_epoch(&mut self, until: f64, max_events: u64) -> Result<u64, TranscodeError> {
        let start_events = self.events;
        while self.time < until {
            if self.events - start_events >= max_events {
                return Err(TranscodeError::EventBudgetExhausted {
                    events: self.events - start_events,
                });
            }
            match self.step_bounded(until) {
                BoundedStep::Event => {}
                BoundedStep::Boundary => break,
                BoundedStep::Idle => {
                    let dt = until - self.time;
                    self.sensor.record(self.platform.power_draw(&[]), dt);
                    self.time = until;
                    break;
                }
            }
        }
        Ok(self.events - start_events)
    }

    /// Instantaneous load of the server: what a fleet dispatcher inspects
    /// before placing the next session. Cold path (once per placement
    /// query, never per event), so it favors the straightforward
    /// collect over the engine's allocation-free machinery.
    pub fn load(&self) -> ServerLoad {
        let loads: Vec<SessionLoad> = self
            .sessions
            .iter()
            .filter_map(SessionSlot::get)
            .filter(|s| !s.is_finished())
            .map(|s| {
                let k = s.knobs();
                SessionLoad::new(k.threads, self.effective_freq(k.freq_ghz))
            })
            .collect();
        ServerLoad {
            active_sessions: loads.len(),
            threads_demanded: loads.iter().map(|l| l.threads).sum(),
            hw_threads: self.platform.topology().hw_threads(),
            power_w: self.platform.power_draw(&loads),
        }
    }

    /// Builds the summary of everything measured so far.
    pub fn summary(&self) -> RunSummary {
        RunSummary::from_server(self)
    }

    /// Consumes the server, returning each resident session's controller
    /// in id order (migrated-away sessions took their controllers with
    /// them) — used to carry trained controllers into a follow-up run.
    pub fn into_controllers(self) -> Vec<Box<dyn Controller>> {
        self.sessions
            .into_iter()
            .filter_map(|slot| match slot {
                SessionSlot::Occupied(s) => Some(s.into_controller()),
                SessionSlot::Vacated => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_core::{FixedController, KnobSettings};
    use mamut_video::catalog;

    fn hr_spec(frames: u64) -> mamut_video::SequenceSpec {
        catalog::by_name("Kimono")
            .unwrap()
            .with_frame_count(frames)
            .unwrap()
    }

    fn lr_spec(frames: u64) -> mamut_video::SequenceSpec {
        catalog::by_name("BQMall")
            .unwrap()
            .with_frame_count(frames)
            .unwrap()
    }

    fn fixed(threads: u32, freq: f64) -> Box<dyn Controller> {
        Box::new(FixedController::new(KnobSettings::new(32, threads, freq)))
    }

    #[test]
    fn empty_server_errors() {
        let mut srv = ServerSim::with_default_platform();
        assert_eq!(
            srv.run_to_completion(10).unwrap_err(),
            TranscodeError::NoSessions
        );
    }

    #[test]
    fn single_hr_session_completes_all_frames() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(50), 1), fixed(10, 3.2));
        let summary = srv.run_to_completion(10_000).unwrap();
        assert_eq!(summary.sessions[0].frames, 50);
        assert!(srv.all_finished());
        assert!(srv.time() > 0.0);
    }

    #[test]
    fn hr_at_full_knobs_is_real_time() {
        // Fig. 2 envelope: 10 threads @ 3.2 GHz comfortably exceeds 24 FPS.
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(100), 1), fixed(10, 3.2));
        let summary = srv.run_to_completion(10_000).unwrap();
        assert!(
            summary.sessions[0].mean_fps > 24.0,
            "mean fps = {}",
            summary.sessions[0].mean_fps
        );
        assert!(summary.sessions[0].violation_percent < 20.0);
    }

    #[test]
    fn hr_single_thread_misses_realtime() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(30), 1), fixed(1, 3.2));
        let summary = srv.run_to_completion(10_000).unwrap();
        assert_eq!(summary.sessions[0].violation_percent, 100.0);
    }

    #[test]
    fn contention_slows_everyone() {
        let run = |n: usize| {
            let mut srv = ServerSim::with_default_platform();
            for i in 0..n {
                srv.add_session(
                    SessionConfig::single_video(hr_spec(40), i as u64),
                    fixed(12, 3.2),
                );
            }
            srv.run_to_completion(100_000).unwrap().sessions[0].mean_fps
        };
        let alone = run(1);
        let crowded = run(4); // 48 threads on a 32-hw-thread box
        assert!(
            crowded < alone * 0.8,
            "alone = {alone}, crowded = {crowded}"
        );
    }

    #[test]
    fn power_rises_with_load() {
        let run = |n: usize| {
            let mut srv = ServerSim::with_default_platform();
            for i in 0..n {
                srv.add_session(
                    SessionConfig::single_video(lr_spec(40), i as u64),
                    fixed(4, 2.9),
                );
            }
            srv.run_to_completion(100_000).unwrap().mean_power_w
        };
        let one = run(1);
        let four = run(4);
        assert!(four > one + 5.0, "one = {one}, four = {four}");
    }

    #[test]
    fn virtual_time_matches_work_rate_hand_computation() {
        // One LR session, fixed knobs, known model: the first frame's wall
        // time must equal work / (freq · wpp · 1.0).
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(lr_spec(1), 7), fixed(4, 3.2));
        srv.step();
        let s = srv.session(0).unwrap();
        assert!(s.is_finished() || s.frames_completed() == 1);
        let speedup = mamut_encoder::wpp::speedup_at(s.resolution(), 4);
        // time = work / rate; reconstruct work from the recorded fps.
        let fps = s.mean_fps();
        let implied_work = 3.2e9 * speedup / fps;
        assert!(
            implied_work > 1e8 && implied_work < 1e9,
            "work = {implied_work}"
        );
    }

    #[test]
    fn run_frames_stops_early() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(500), 1), fixed(10, 3.2));
        let summary = srv.run_frames(20, 100_000).unwrap();
        assert!(summary.sessions[0].frames >= 20);
        assert!(summary.sessions[0].frames < 500);
    }

    #[test]
    fn run_frames_twice_reuses_the_milestone_counter_correctly() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(500), 1), fixed(10, 3.2));
        srv.add_session(SessionConfig::single_video(lr_spec(30), 2), fixed(4, 2.6));
        srv.run_frames(20, 100_000).unwrap();
        // Second call: the LR session finishes before reaching 200 frames,
        // the HR one must still be driven to the new milestone.
        let summary = srv.run_frames(200, 1_000_000).unwrap();
        assert!(summary.sessions[0].frames >= 200);
        assert_eq!(summary.sessions[1].frames, 30);
    }

    #[test]
    fn event_budget_guard_fires() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(500), 1), fixed(10, 3.2));
        assert!(matches!(
            srv.run_to_completion(5),
            Err(TranscodeError::EventBudgetExhausted { events: 5 })
        ));
    }

    #[test]
    fn determinism_same_setup_same_results() {
        let run = || {
            let mut srv = ServerSim::with_default_platform();
            srv.add_session(SessionConfig::single_video(hr_spec(60), 42), fixed(8, 2.9));
            srv.add_session(SessionConfig::single_video(lr_spec(60), 43), fixed(4, 2.6));
            let s = srv.run_to_completion(100_000).unwrap();
            (s.duration_s, s.mean_power_w, s.sessions[0].mean_fps)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn into_controllers_returns_all() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(5), 1), fixed(8, 2.9));
        srv.add_session(SessionConfig::single_video(lr_spec(5), 2), fixed(4, 2.6));
        srv.run_to_completion(10_000).unwrap();
        let ctls = srv.into_controllers();
        assert_eq!(ctls.len(), 2);
        assert_eq!(ctls[0].name(), "fixed");
    }

    #[test]
    fn run_epoch_stops_exactly_at_the_boundary() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(500), 1), fixed(10, 3.2));
        srv.run_epoch(0.5, 100_000).unwrap();
        assert_eq!(srv.time(), 0.5);
        let mid_frames = srv.session(0).unwrap().frames_completed();
        assert!(mid_frames > 0, "an epoch should complete frames");
        srv.run_epoch(1.0, 100_000).unwrap();
        assert_eq!(srv.time(), 1.0);
        assert!(srv.session(0).unwrap().frames_completed() > mid_frames);
    }

    #[test]
    fn epoch_slicing_matches_an_unsliced_run() {
        // Advancing in epochs must not perturb the event sequence: same
        // final state as one uninterrupted run. With anchored deadlines
        // this is exact by construction — a boundary touches the clock,
        // never the frames.
        // Both runs cover the same horizon (completion plus an idle tail)
        // so the energy integrals are directly comparable.
        let horizon = 10.0;
        let run_sliced = |epoch: f64| {
            let mut srv = ServerSim::with_default_platform();
            srv.add_session(SessionConfig::single_video(hr_spec(60), 42), fixed(8, 2.9));
            srv.add_session(SessionConfig::single_video(lr_spec(60), 43), fixed(4, 2.6));
            let mut t = 0.0;
            while t < horizon {
                t += epoch;
                srv.run_epoch(t.min(horizon), 100_000).unwrap();
            }
            assert!(srv.all_finished(), "horizon must cover the whole run");
            let s = srv.summary();
            (s.energy_j, s.sessions[0].mean_fps, s.sessions[1].mean_fps)
        };
        let mut whole = ServerSim::with_default_platform();
        whole.add_session(SessionConfig::single_video(hr_spec(60), 42), fixed(8, 2.9));
        whole.add_session(SessionConfig::single_video(lr_spec(60), 43), fixed(4, 2.6));
        whole.run_to_completion(100_000).unwrap();
        whole.run_epoch(horizon, 100_000).unwrap();
        let s = whole.summary();
        let unsliced = (s.energy_j, s.sessions[0].mean_fps, s.sessions[1].mean_fps);
        assert_eq!(run_sliced(0.25), unsliced);
        assert_eq!(run_sliced(1.0), unsliced);
    }

    #[test]
    fn idle_server_advances_clock_and_charges_idle_power() {
        let mut srv = ServerSim::with_default_platform();
        let events = srv.run_epoch(2.0, 10).unwrap();
        assert_eq!(events, 0);
        assert_eq!(srv.time(), 2.0);
        let idle = srv.platform().idle_power_w();
        assert!((srv.sensor().lifetime_average() - idle).abs() < 1e-9);
    }

    #[test]
    fn load_reports_demand_and_drops_finished_sessions() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(5), 1), fixed(10, 3.2));
        srv.add_session(SessionConfig::single_video(lr_spec(400), 2), fixed(4, 2.6));
        srv.step(); // apply each controller's announced knobs
        let load = srv.load();
        assert_eq!(load.active_sessions, 2);
        assert_eq!(load.threads_demanded, 14);
        assert_eq!(load.hw_threads, 32);
        assert!(load.power_w > srv.platform().idle_power_w());
        assert!((load.utilization() - 14.0 / 32.0).abs() < 1e-12);
        // Let the short HR session finish: demand shrinks.
        srv.run_epoch(1_000.0, 1_000_000).unwrap();
        assert!(srv.load().active_sessions <= 1);
    }

    #[test]
    fn unknown_session_id_errors() {
        let srv = ServerSim::with_default_platform();
        assert!(matches!(
            srv.session(3),
            Err(TranscodeError::UnknownSession(3))
        ));
    }

    #[test]
    fn detach_vacates_the_slot_without_moving_neighbours() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(400), 1), fixed(8, 2.9));
        srv.add_session(SessionConfig::single_video(lr_spec(400), 2), fixed(4, 2.6));
        srv.run_epoch(1.0, 100_000).unwrap();
        let detached = srv.detach_session(0).unwrap();
        assert_eq!(detached.name(), "Kimono");
        assert!(detached.frames_completed() > 0);
        // Slot 0 is gone, slot 1 still answers to its old id.
        assert!(matches!(
            srv.session(0),
            Err(TranscodeError::UnknownSession(0))
        ));
        assert_eq!(srv.session(1).unwrap().name(), "BQMall");
        assert_eq!(srv.sessions().len(), 1);
        // Double detach is an error.
        assert!(srv.detach_session(0).is_err());
    }

    #[test]
    fn migrated_session_finishes_on_the_target_server() {
        let frames = 200;
        let mut a = ServerSim::with_default_platform();
        a.add_session(
            SessionConfig::single_video(hr_spec(frames), 1),
            fixed(8, 2.9),
        );
        let mut b = ServerSim::with_default_platform();
        a.run_epoch(1.0, 100_000).unwrap();
        b.run_epoch(1.0, 100_000).unwrap(); // clocks aligned at the boundary
        let done_before = a.session(0).unwrap().frames_completed();
        assert!(done_before > 0 && done_before < frames);
        let session = a.detach_session(0).unwrap();
        let new_id = b.attach_session(session);
        let moved = b.session(new_id).unwrap();
        assert_eq!(moved.id(), new_id);
        assert_eq!(moved.frames_completed(), done_before, "history travels");
        b.run_epoch(1_000.0, 1_000_000).unwrap();
        assert!(b.all_finished());
        assert_eq!(b.session(new_id).unwrap().frames_completed(), frames);
        // The source idles on: vacated slots never block completion.
        assert!(a.all_finished());
        a.run_epoch(2.0, 100).unwrap();
        assert_eq!(a.time(), 2.0);
    }

    #[test]
    fn align_clock_commissions_an_empty_server_without_energy() {
        let mut srv = ServerSim::with_default_platform();
        srv.align_clock(20.0).unwrap();
        assert_eq!(srv.time(), 20.0);
        assert_eq!(
            srv.sensor().total_energy_j(),
            0.0,
            "the skipped span was never powered"
        );
        assert_eq!(srv.sensor().total_time_s(), 0.0);
        // From here the server behaves like any other: idle power accrues.
        srv.run_epoch(22.0, 10).unwrap();
        assert_eq!(srv.time(), 22.0);
        assert!((srv.sensor().total_time_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn align_clock_refuses_sessions_and_backward_jumps() {
        let mut srv = ServerSim::with_default_platform();
        srv.run_epoch(5.0, 10).unwrap();
        assert_eq!(
            srv.align_clock(3.0).unwrap_err(),
            TranscodeError::CannotAlignClock {
                time: 5.0,
                target: 3.0,
                sessions: 0,
            }
        );
        srv.add_session(SessionConfig::single_video(hr_spec(10), 1), fixed(8, 2.9));
        assert!(matches!(
            srv.align_clock(9.0),
            Err(TranscodeError::CannotAlignClock { sessions: 1, .. })
        ));
    }

    #[test]
    fn mid_frame_work_survives_migration() {
        // Detach with a frame in flight: the partial frame's remaining
        // cycles continue on the target, so total completed frames match
        // an unmigrated run.
        let frames = 50;
        let run_unmigrated = || {
            let mut srv = ServerSim::with_default_platform();
            srv.add_session(
                SessionConfig::single_video(hr_spec(frames), 9),
                fixed(8, 2.9),
            );
            srv.run_to_completion(100_000).unwrap();
            srv.session(0).unwrap().frames_completed()
        };
        let mut a = ServerSim::with_default_platform();
        a.add_session(
            SessionConfig::single_video(hr_spec(frames), 9),
            fixed(8, 2.9),
        );
        a.run_epoch(0.33, 100_000).unwrap(); // boundary mid-frame
        let mut b = ServerSim::with_default_platform();
        b.run_epoch(0.33, 100_000).unwrap();
        let id = b.attach_session(a.detach_session(0).unwrap());
        b.run_epoch(1_000.0, 1_000_000).unwrap();
        assert_eq!(b.session(id).unwrap().frames_completed(), run_unmigrated());
    }

    #[test]
    fn detach_materializes_in_flight_work_at_the_boundary() {
        // A frame caught mid-encode by a migration must leave with its
        // true remaining work: exactly `total − rate · elapsed`, with the
        // rate recomputed here from first principles (DVFS snap × WPP ×
        // contention) rather than read from the engine's cache — an
        // independent check on the materialization arithmetic itself.
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(500), 3), fixed(8, 2.9));
        srv.run_epoch(0.333, 100_000).unwrap();
        let scale = srv.platform().throughput_scale(8);
        let level = srv.platform().dvfs().nearest(2.9);
        let s = srv.detach_session(0).unwrap();
        let rate = level.freq_ghz * 1e9 * s.wpp_speedup() * scale;
        let fly = s
            .in_flight
            .as_ref()
            .expect("a long run keeps frames in flight");
        let expected = fly.work_total - rate * (0.333 - fly.started_at);
        assert_eq!(
            fly.work_remaining.to_bits(),
            expected.to_bits(),
            "materialized work must be total − rate·elapsed: {} vs {}",
            fly.work_remaining,
            expected
        );
        assert!(fly.work_remaining > 0.0, "boundary lands mid-frame");
        assert!(fly.work_remaining < fly.work_total);
        assert_eq!(fly.anchor_time, 0.333, "anchor moves to the detach instant");
    }

    #[test]
    fn freq_cap_slows_throughput_and_lifts_cleanly() {
        let run = |cap: Option<f64>| {
            let mut srv = ServerSim::with_default_platform();
            srv.add_session(SessionConfig::single_video(hr_spec(400), 5), fixed(8, 3.2));
            srv.set_freq_cap(cap);
            srv.run_epoch(2.0, 100_000).unwrap();
            srv
        };
        let free = run(None);
        let capped = run(Some(1.2));
        let f_free = free.session(0).unwrap().frames_completed();
        let f_capped = capped.session(0).unwrap().frames_completed();
        assert!(
            f_capped < f_free,
            "throttle must cost frames: {f_capped} vs {f_free}"
        );
        assert!(capped.sensor().total_energy_j() < free.sensor().total_energy_j());
        // A cap above every knob is a no-op, bit for bit.
        let loose = run(Some(10.0));
        assert_eq!(
            loose.session(0).unwrap().frames_completed(),
            f_free,
            "a non-binding cap must not perturb the run"
        );
        assert_eq!(
            loose.sensor().total_energy_j().to_bits(),
            free.sensor().total_energy_j().to_bits()
        );
    }

    #[test]
    fn checkpoint_session_is_non_destructive() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(300), 11), fixed(8, 2.9));
        srv.run_epoch(0.7, 100_000).unwrap();
        let bytes = srv.checkpoint_session(0).expect("live slot");
        assert!(!bytes.is_empty());
        assert!(srv.checkpoint_session(5).is_none());
        // The capture must not perturb the ongoing run: a twin that never
        // checkpointed finishes bit-identically.
        let mut twin = ServerSim::with_default_platform();
        twin.add_session(SessionConfig::single_video(hr_spec(300), 11), fixed(8, 2.9));
        twin.run_epoch(0.7, 100_000).unwrap();
        srv.run_epoch(1_000.0, 1_000_000).unwrap();
        twin.run_epoch(1_000.0, 1_000_000).unwrap();
        assert_eq!(
            srv.sensor().total_energy_j().to_bits(),
            twin.sensor().total_energy_j().to_bits()
        );
        assert_eq!(
            srv.session(0).unwrap().frames_completed(),
            twin.session(0).unwrap().frames_completed()
        );
    }

    #[test]
    fn steady_state_run_bumps_the_rate_epoch_only_at_churn_points() {
        // Fixed controllers never change knobs after their first frame, so
        // the only epoch bumps are the initial build and the two session
        // finishes — thousands of events reuse the cached rate vector.
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(400), 1), fixed(10, 3.2));
        srv.add_session(SessionConfig::single_video(lr_spec(400), 2), fixed(4, 2.6));
        srv.run_to_completion(100_000).unwrap();
        assert!(srv.rate_epochs() <= 4, "epochs = {}", srv.rate_epochs());
        assert!(
            srv.session(0).unwrap().frames_completed() == 400
                && srv.session(1).unwrap().frames_completed() == 400
        );
    }
}
