use mamut_core::{Constraints, Controller};
use mamut_platform::{Platform, PowerSensor, SessionLoad};

use crate::{RunSummary, SessionConfig, TranscodeError, TranscodeSession};

/// Work below this many cycles counts as frame completion (guards float
/// residue; one cycle at 3.2 GHz is ≈0.3 ns of work).
const COMPLETION_EPSILON_CYCLES: f64 = 1.0;

/// Power-observation smoothing window in seconds (≈ a RAPL sampling span).
const POWER_WINDOW_S: f64 = 0.25;

/// Outcome of one bounded simulation step.
enum BoundedStep {
    /// A frame completion was processed.
    Event,
    /// The time bound was reached first; partial work was retired.
    Boundary,
    /// No session has work in flight (everything finished or empty).
    Idle,
}

/// One session position on the server. Ids are slot indices and must
/// stay stable for the server's whole life, so a session migrated to
/// another node leaves a vacated slot behind instead of shifting its
/// neighbours.
enum SessionSlot {
    /// A session lives here (finished or not). Boxed: a vacated slot is
    /// a tombstone and should not keep a session-sized footprint.
    Occupied(Box<TranscodeSession>),
    /// The session that lived here was detached (migrated away).
    Vacated,
}

impl SessionSlot {
    fn get(&self) -> Option<&TranscodeSession> {
        match self {
            SessionSlot::Occupied(s) => Some(s),
            SessionSlot::Vacated => None,
        }
    }

    fn get_mut(&mut self) -> Option<&mut TranscodeSession> {
        match self {
            SessionSlot::Occupied(s) => Some(s),
            SessionSlot::Vacated => None,
        }
    }
}

/// Snapshot of a server's instantaneous load (dispatcher's view).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerLoad {
    /// Sessions still transcoding (not yet through their playlists).
    pub active_sessions: usize,
    /// Threads those sessions collectively request.
    pub threads_demanded: u32,
    /// Hardware threads the platform offers.
    pub hw_threads: u32,
    /// Instantaneous power at the current knobs (W).
    pub power_w: f64,
}

impl ServerLoad {
    /// Thread demand as a fraction of hardware threads (can exceed 1.0
    /// when the box is oversubscribed).
    pub fn utilization(&self) -> f64 {
        if self.hw_threads == 0 {
            0.0
        } else {
            f64::from(self.threads_demanded) / f64::from(self.hw_threads)
        }
    }
}

/// The multi-user transcoding server: platform + sessions + virtual clock.
///
/// See the [crate documentation](crate) for the event-loop semantics.
///
/// # Example
///
/// ```
/// use mamut_core::{FixedController, KnobSettings};
/// use mamut_transcode::{ServerSim, SessionConfig};
/// use mamut_video::catalog;
///
/// let mut server = ServerSim::with_default_platform();
/// for (i, name) in ["Kimono", "BQMall"].iter().enumerate() {
///     let spec = catalog::by_name(name).unwrap().with_frame_count(24).unwrap();
///     server.add_session(
///         SessionConfig::single_video(spec, i as u64),
///         Box::new(FixedController::new(KnobSettings::new(32, 6, 2.9))),
///     );
/// }
/// let summary = server.run_to_completion(1_000_000).unwrap();
/// assert_eq!(summary.sessions.len(), 2);
/// assert!(summary.mean_power_w > 40.0);
/// ```
pub struct ServerSim {
    platform: Platform,
    sessions: Vec<SessionSlot>,
    time: f64,
    sensor: PowerSensor,
    events: u64,
}

impl std::fmt::Debug for ServerSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerSim")
            .field("time", &self.time)
            .field("sessions", &self.sessions.len())
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl ServerSim {
    /// Creates a server over an explicit platform model.
    pub fn new(platform: Platform) -> Self {
        ServerSim {
            platform,
            sessions: Vec::new(),
            time: 0.0,
            sensor: PowerSensor::new(POWER_WINDOW_S),
            events: 0,
        }
    }

    /// Creates a server over the paper's dual Xeon E5-2667 v4 platform.
    pub fn with_default_platform() -> Self {
        ServerSim::new(Platform::xeon_e5_2667_v4())
    }

    /// Adds a session; returns its id.
    pub fn add_session(&mut self, config: SessionConfig, controller: Box<dyn Controller>) -> usize {
        let id = self.sessions.len();
        self.sessions
            .push(SessionSlot::Occupied(Box::new(TranscodeSession::new(
                id, config, controller,
            ))));
        id
    }

    /// Detaches a session for migration to another server, leaving its
    /// slot vacated (ids of the remaining sessions do not move). The
    /// returned session carries its controller, playlist position,
    /// in-flight frame and QoS history; hand it to
    /// [`ServerSim::attach_session`] on the target server.
    ///
    /// Only meaningful when both servers' clocks agree (e.g. at a fleet
    /// epoch boundary) — the session's completion timestamps stay on the
    /// same virtual timeline.
    ///
    /// # Errors
    ///
    /// Returns [`TranscodeError::UnknownSession`] for a bad or already
    /// vacated id.
    pub fn detach_session(&mut self, id: usize) -> Result<TranscodeSession, TranscodeError> {
        let slot = self
            .sessions
            .get_mut(id)
            .ok_or(TranscodeError::UnknownSession(id))?;
        match std::mem::replace(slot, SessionSlot::Vacated) {
            SessionSlot::Occupied(s) => Ok(*s),
            SessionSlot::Vacated => Err(TranscodeError::UnknownSession(id)),
        }
    }

    /// Attaches a session detached from another server, assigning it a
    /// fresh id here (returned). The inverse of
    /// [`ServerSim::detach_session`].
    pub fn attach_session(&mut self, mut session: TranscodeSession) -> usize {
        let id = self.sessions.len();
        session.set_id(id);
        self.sessions.push(SessionSlot::Occupied(Box::new(session)));
        id
    }

    /// Current virtual time (seconds).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Fast-forwards an *empty* server's clock to `target` without
    /// charging energy — a node commissioned mid-run by a fleet
    /// autoscaler did not exist (and drew no idle power) before that
    /// instant, but must join its peers time-aligned so sessions can
    /// migrate onto it at the next epoch boundary.
    ///
    /// # Errors
    ///
    /// [`TranscodeError::CannotAlignClock`] if the server holds any
    /// session (finished or not) or `target` lies behind the current
    /// clock — skipping time under live sessions would corrupt their
    /// QoS timelines.
    pub fn align_clock(&mut self, target: f64) -> Result<(), TranscodeError> {
        if !self.sessions.is_empty() || target < self.time {
            return Err(TranscodeError::CannotAlignClock {
                time: self.time,
                target,
                sessions: self.sessions.len(),
            });
        }
        self.time = target;
        Ok(())
    }

    /// Resident sessions in id order (vacated slots of migrated-away
    /// sessions are skipped, so ids may have gaps).
    pub fn sessions(&self) -> Vec<&TranscodeSession> {
        self.sessions.iter().filter_map(SessionSlot::get).collect()
    }

    /// One session by id.
    ///
    /// # Errors
    ///
    /// Returns [`TranscodeError::UnknownSession`] for a bad or vacated id.
    pub fn session(&self, id: usize) -> Result<&TranscodeSession, TranscodeError> {
        self.sessions
            .get(id)
            .and_then(SessionSlot::get)
            .ok_or(TranscodeError::UnknownSession(id))
    }

    /// Replaces a session's constraints mid-run (failure injection).
    ///
    /// # Errors
    ///
    /// Returns [`TranscodeError::UnknownSession`] for a bad or vacated id.
    pub fn set_constraints(
        &mut self,
        id: usize,
        constraints: Constraints,
    ) -> Result<(), TranscodeError> {
        self.sessions
            .get_mut(id)
            .and_then(SessionSlot::get_mut)
            .ok_or(TranscodeError::UnknownSession(id))?
            .set_constraints(constraints);
        Ok(())
    }

    /// Applies new constraints to every session (e.g. a power-cap change).
    pub fn set_constraints_all(&mut self, constraints: Constraints) {
        for s in self.sessions.iter_mut().filter_map(SessionSlot::get_mut) {
            s.set_constraints(constraints);
        }
    }

    /// The platform model.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The power sensor (lifetime energy, windowed averages).
    pub fn sensor(&self) -> &PowerSensor {
        &self.sensor
    }

    /// Whether every resident session has finished its playlist (vacated
    /// slots count as done — their work continues elsewhere).
    pub fn all_finished(&self) -> bool {
        self.sessions
            .iter()
            .filter_map(SessionSlot::get)
            .all(TranscodeSession::is_finished)
    }

    /// Shared access to an occupied slot the active list vouched for.
    fn active_session(&self, id: usize) -> &TranscodeSession {
        self.sessions[id].get().expect("active slot is occupied")
    }

    /// Mutable access to an occupied slot the active list vouched for.
    fn active_session_mut(&mut self, id: usize) -> &mut TranscodeSession {
        self.sessions[id]
            .get_mut()
            .expect("active slot is occupied")
    }

    /// Runs until all sessions finish or the event budget is exhausted.
    ///
    /// # Errors
    ///
    /// [`TranscodeError::NoSessions`] if nothing was added;
    /// [`TranscodeError::EventBudgetExhausted`] if `max_events` elapsed
    /// first (a guard against misconfigured runs, not a normal outcome).
    pub fn run_to_completion(&mut self, max_events: u64) -> Result<RunSummary, TranscodeError> {
        if self.sessions.is_empty() {
            return Err(TranscodeError::NoSessions);
        }
        let start_events = self.events;
        while !self.all_finished() {
            if self.events - start_events >= max_events {
                return Err(TranscodeError::EventBudgetExhausted {
                    events: self.events - start_events,
                });
            }
            self.step();
        }
        Ok(self.summary())
    }

    /// Runs until every session has completed at least `frames` frames or
    /// finished, within the event budget.
    ///
    /// # Errors
    ///
    /// Same as [`ServerSim::run_to_completion`].
    pub fn run_frames(
        &mut self,
        frames: u64,
        max_events: u64,
    ) -> Result<RunSummary, TranscodeError> {
        if self.sessions.is_empty() {
            return Err(TranscodeError::NoSessions);
        }
        let start_events = self.events;
        loop {
            let done = self
                .sessions
                .iter()
                .filter_map(SessionSlot::get)
                .all(|s| s.is_finished() || s.frames_completed() >= frames);
            if done {
                return Ok(self.summary());
            }
            if self.events - start_events >= max_events {
                return Err(TranscodeError::EventBudgetExhausted {
                    events: self.events - start_events,
                });
            }
            self.step();
        }
    }

    /// Advances the simulation by one event (the next frame completion).
    ///
    /// Returns `false` when everything is finished (no event processed).
    pub fn step(&mut self) -> bool {
        matches!(self.step_bounded(f64::INFINITY), BoundedStep::Event)
    }

    /// Advances to the next frame completion, but never past virtual time
    /// `limit`: if the earliest completion lies beyond it, work and energy
    /// are retired up to `limit` exactly and the partial frame stays in
    /// flight. This is what lets a fleet advance many servers in lockstep
    /// epochs without perturbing any server's own event sequence.
    fn step_bounded(&mut self, limit: f64) -> BoundedStep {
        // 1. Make sure every unfinished session has a frame in flight.
        let now = self.time;
        for s in self.sessions.iter_mut().filter_map(SessionSlot::get_mut) {
            if !s.is_finished() && s.in_flight.is_none() {
                s.start_next_frame(now);
            }
        }

        // 2. Gather active loads.
        let active: Vec<usize> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.get().is_some_and(|s| s.in_flight.is_some()))
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            return BoundedStep::Idle;
        }
        let total_threads: u32 = active
            .iter()
            .map(|&i| self.active_session(i).knobs().threads)
            .sum();
        let scale = self.platform.throughput_scale(total_threads);
        let loads: Vec<SessionLoad> = active
            .iter()
            .map(|&i| {
                let k = self.active_session(i).knobs();
                SessionLoad::new(k.threads, k.freq_ghz)
            })
            .collect();
        let power = self.platform.power_draw(&loads);

        // 3. Per-session effective rates (cycles/second).
        let rates: Vec<f64> = active
            .iter()
            .map(|&i| {
                let s = self.active_session(i);
                let k = s.knobs();
                let level = self.platform.dvfs().nearest(k.freq_ghz);
                level.freq_ghz * 1e9 * s.wpp_speedup() * scale
            })
            .collect();

        // 4. Time to the earliest completion.
        let mut dt = f64::INFINITY;
        for (idx, &i) in active.iter().enumerate() {
            let fly = self
                .active_session(i)
                .in_flight
                .as_ref()
                .expect("active has in-flight");
            let t = fly.work_remaining / rates[idx];
            if t < dt {
                dt = t;
            }
        }
        debug_assert!(dt.is_finite() && dt >= 0.0);

        // 4b. Next completion beyond the bound: retire partial work up to
        // the bound and stop there. Frames that happen to run dry exactly
        // at the bound complete on the next call with a zero-length step.
        if self.time + dt > limit {
            let dt = limit - self.time;
            if dt > 0.0 {
                self.time = limit;
                self.sensor.record(power, dt);
                for (idx, &i) in active.iter().enumerate() {
                    let fly = self
                        .active_session_mut(i)
                        .in_flight
                        .as_mut()
                        .expect("active has in-flight");
                    fly.work_remaining -= rates[idx] * dt;
                }
            }
            return BoundedStep::Boundary;
        }

        // 5. Advance the clock, charge energy, retire work.
        self.time += dt;
        self.sensor.record(power, dt);
        for (idx, &i) in active.iter().enumerate() {
            let fly = self
                .active_session_mut(i)
                .in_flight
                .as_mut()
                .expect("active has in-flight");
            fly.work_remaining -= rates[idx] * dt;
        }

        // 6. Complete every frame that ran dry (ties complete together).
        let now = self.time;
        let power_obs = self.sensor.window_average();
        for &i in &active {
            let done = {
                let fly = self
                    .active_session(i)
                    .in_flight
                    .as_ref()
                    .expect("in-flight");
                fly.work_remaining <= COMPLETION_EPSILON_CYCLES
            };
            if done {
                self.active_session_mut(i).complete_frame(now, power_obs);
            }
        }

        self.events += 1;
        BoundedStep::Event
    }

    /// Runs until virtual time `until`, processing every frame completion
    /// on the way. Unlike [`ServerSim::run_to_completion`] this is happy
    /// with an empty or fully finished server: the clock idles forward to
    /// `until` while the platform's idle power keeps being charged, so a
    /// fleet's drained node stays time-aligned (and power-accounted) with
    /// its busy peers.
    ///
    /// Returns the number of events processed in this epoch.
    ///
    /// # Errors
    ///
    /// [`TranscodeError::EventBudgetExhausted`] if more than `max_events`
    /// completions fire before `until` is reached.
    pub fn run_epoch(&mut self, until: f64, max_events: u64) -> Result<u64, TranscodeError> {
        let start_events = self.events;
        while self.time < until {
            if self.events - start_events >= max_events {
                return Err(TranscodeError::EventBudgetExhausted {
                    events: self.events - start_events,
                });
            }
            match self.step_bounded(until) {
                BoundedStep::Event => {}
                BoundedStep::Boundary => break,
                BoundedStep::Idle => {
                    let dt = until - self.time;
                    self.sensor.record(self.platform.power_draw(&[]), dt);
                    self.time = until;
                    break;
                }
            }
        }
        Ok(self.events - start_events)
    }

    /// Instantaneous load of the server: what a fleet dispatcher inspects
    /// before placing the next session.
    pub fn load(&self) -> ServerLoad {
        let loads: Vec<SessionLoad> = self
            .sessions
            .iter()
            .filter_map(SessionSlot::get)
            .filter(|s| !s.is_finished())
            .map(|s| {
                let k = s.knobs();
                SessionLoad::new(k.threads, k.freq_ghz)
            })
            .collect();
        ServerLoad {
            active_sessions: loads.len(),
            threads_demanded: loads.iter().map(|l| l.threads).sum(),
            hw_threads: self.platform.topology().hw_threads(),
            power_w: self.platform.power_draw(&loads),
        }
    }

    /// Builds the summary of everything measured so far.
    pub fn summary(&self) -> RunSummary {
        RunSummary::from_server(self)
    }

    /// Consumes the server, returning each resident session's controller
    /// in id order (migrated-away sessions took their controllers with
    /// them) — used to carry trained controllers into a follow-up run.
    pub fn into_controllers(self) -> Vec<Box<dyn Controller>> {
        self.sessions
            .into_iter()
            .filter_map(|slot| match slot {
                SessionSlot::Occupied(s) => Some(s.into_controller()),
                SessionSlot::Vacated => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_core::{FixedController, KnobSettings};
    use mamut_video::catalog;

    fn hr_spec(frames: u64) -> mamut_video::SequenceSpec {
        catalog::by_name("Kimono")
            .unwrap()
            .with_frame_count(frames)
            .unwrap()
    }

    fn lr_spec(frames: u64) -> mamut_video::SequenceSpec {
        catalog::by_name("BQMall")
            .unwrap()
            .with_frame_count(frames)
            .unwrap()
    }

    fn fixed(threads: u32, freq: f64) -> Box<dyn Controller> {
        Box::new(FixedController::new(KnobSettings::new(32, threads, freq)))
    }

    #[test]
    fn empty_server_errors() {
        let mut srv = ServerSim::with_default_platform();
        assert_eq!(
            srv.run_to_completion(10).unwrap_err(),
            TranscodeError::NoSessions
        );
    }

    #[test]
    fn single_hr_session_completes_all_frames() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(50), 1), fixed(10, 3.2));
        let summary = srv.run_to_completion(10_000).unwrap();
        assert_eq!(summary.sessions[0].frames, 50);
        assert!(srv.all_finished());
        assert!(srv.time() > 0.0);
    }

    #[test]
    fn hr_at_full_knobs_is_real_time() {
        // Fig. 2 envelope: 10 threads @ 3.2 GHz comfortably exceeds 24 FPS.
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(100), 1), fixed(10, 3.2));
        let summary = srv.run_to_completion(10_000).unwrap();
        assert!(
            summary.sessions[0].mean_fps > 24.0,
            "mean fps = {}",
            summary.sessions[0].mean_fps
        );
        assert!(summary.sessions[0].violation_percent < 20.0);
    }

    #[test]
    fn hr_single_thread_misses_realtime() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(30), 1), fixed(1, 3.2));
        let summary = srv.run_to_completion(10_000).unwrap();
        assert_eq!(summary.sessions[0].violation_percent, 100.0);
    }

    #[test]
    fn contention_slows_everyone() {
        let run = |n: usize| {
            let mut srv = ServerSim::with_default_platform();
            for i in 0..n {
                srv.add_session(
                    SessionConfig::single_video(hr_spec(40), i as u64),
                    fixed(12, 3.2),
                );
            }
            srv.run_to_completion(100_000).unwrap().sessions[0].mean_fps
        };
        let alone = run(1);
        let crowded = run(4); // 48 threads on a 32-hw-thread box
        assert!(
            crowded < alone * 0.8,
            "alone = {alone}, crowded = {crowded}"
        );
    }

    #[test]
    fn power_rises_with_load() {
        let run = |n: usize| {
            let mut srv = ServerSim::with_default_platform();
            for i in 0..n {
                srv.add_session(
                    SessionConfig::single_video(lr_spec(40), i as u64),
                    fixed(4, 2.9),
                );
            }
            srv.run_to_completion(100_000).unwrap().mean_power_w
        };
        let one = run(1);
        let four = run(4);
        assert!(four > one + 5.0, "one = {one}, four = {four}");
    }

    #[test]
    fn virtual_time_matches_work_rate_hand_computation() {
        // One LR session, fixed knobs, known model: the first frame's wall
        // time must equal work / (freq · wpp · 1.0).
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(lr_spec(1), 7), fixed(4, 3.2));
        srv.step();
        let s = srv.session(0).unwrap();
        assert!(s.is_finished() || s.frames_completed() == 1);
        let speedup = mamut_encoder::wpp::speedup_at(s.resolution(), 4);
        // time = work / rate; reconstruct work from the recorded fps.
        let fps = s.mean_fps();
        let implied_work = 3.2e9 * speedup / fps;
        assert!(
            implied_work > 1e8 && implied_work < 1e9,
            "work = {implied_work}"
        );
    }

    #[test]
    fn run_frames_stops_early() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(500), 1), fixed(10, 3.2));
        let summary = srv.run_frames(20, 100_000).unwrap();
        assert!(summary.sessions[0].frames >= 20);
        assert!(summary.sessions[0].frames < 500);
    }

    #[test]
    fn event_budget_guard_fires() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(500), 1), fixed(10, 3.2));
        assert!(matches!(
            srv.run_to_completion(5),
            Err(TranscodeError::EventBudgetExhausted { events: 5 })
        ));
    }

    #[test]
    fn determinism_same_setup_same_results() {
        let run = || {
            let mut srv = ServerSim::with_default_platform();
            srv.add_session(SessionConfig::single_video(hr_spec(60), 42), fixed(8, 2.9));
            srv.add_session(SessionConfig::single_video(lr_spec(60), 43), fixed(4, 2.6));
            let s = srv.run_to_completion(100_000).unwrap();
            (s.duration_s, s.mean_power_w, s.sessions[0].mean_fps)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn into_controllers_returns_all() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(5), 1), fixed(8, 2.9));
        srv.add_session(SessionConfig::single_video(lr_spec(5), 2), fixed(4, 2.6));
        srv.run_to_completion(10_000).unwrap();
        let ctls = srv.into_controllers();
        assert_eq!(ctls.len(), 2);
        assert_eq!(ctls[0].name(), "fixed");
    }

    #[test]
    fn run_epoch_stops_exactly_at_the_boundary() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(500), 1), fixed(10, 3.2));
        srv.run_epoch(0.5, 100_000).unwrap();
        assert_eq!(srv.time(), 0.5);
        let mid_frames = srv.session(0).unwrap().frames_completed();
        assert!(mid_frames > 0, "an epoch should complete frames");
        srv.run_epoch(1.0, 100_000).unwrap();
        assert_eq!(srv.time(), 1.0);
        assert!(srv.session(0).unwrap().frames_completed() > mid_frames);
    }

    #[test]
    fn epoch_slicing_matches_an_unsliced_run() {
        // Advancing in epochs must not perturb the event sequence: same
        // final state as one uninterrupted run.
        // Both runs cover the same horizon (completion plus an idle tail)
        // so the energy integrals are directly comparable.
        let horizon = 10.0;
        let run_sliced = |epoch: f64| {
            let mut srv = ServerSim::with_default_platform();
            srv.add_session(SessionConfig::single_video(hr_spec(60), 42), fixed(8, 2.9));
            srv.add_session(SessionConfig::single_video(lr_spec(60), 43), fixed(4, 2.6));
            let mut t = 0.0;
            while t < horizon {
                t += epoch;
                srv.run_epoch(t.min(horizon), 100_000).unwrap();
            }
            assert!(srv.all_finished(), "horizon must cover the whole run");
            let s = srv.summary();
            (s.energy_j, s.sessions[0].mean_fps, s.sessions[1].mean_fps)
        };
        let mut whole = ServerSim::with_default_platform();
        whole.add_session(SessionConfig::single_video(hr_spec(60), 42), fixed(8, 2.9));
        whole.add_session(SessionConfig::single_video(lr_spec(60), 43), fixed(4, 2.6));
        whole.run_to_completion(100_000).unwrap();
        whole.run_epoch(horizon, 100_000).unwrap();
        let s = whole.summary();
        let unsliced = (s.energy_j, s.sessions[0].mean_fps, s.sessions[1].mean_fps);
        assert_eq!(run_sliced(0.25), unsliced);
        assert_eq!(run_sliced(1.0), unsliced);
    }

    #[test]
    fn idle_server_advances_clock_and_charges_idle_power() {
        let mut srv = ServerSim::with_default_platform();
        let events = srv.run_epoch(2.0, 10).unwrap();
        assert_eq!(events, 0);
        assert_eq!(srv.time(), 2.0);
        let idle = srv.platform().idle_power_w();
        assert!((srv.sensor().lifetime_average() - idle).abs() < 1e-9);
    }

    #[test]
    fn load_reports_demand_and_drops_finished_sessions() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(5), 1), fixed(10, 3.2));
        srv.add_session(SessionConfig::single_video(lr_spec(400), 2), fixed(4, 2.6));
        srv.step(); // apply each controller's announced knobs
        let load = srv.load();
        assert_eq!(load.active_sessions, 2);
        assert_eq!(load.threads_demanded, 14);
        assert_eq!(load.hw_threads, 32);
        assert!(load.power_w > srv.platform().idle_power_w());
        assert!((load.utilization() - 14.0 / 32.0).abs() < 1e-12);
        // Let the short HR session finish: demand shrinks.
        srv.run_epoch(1_000.0, 1_000_000).unwrap();
        assert!(srv.load().active_sessions <= 1);
    }

    #[test]
    fn unknown_session_id_errors() {
        let srv = ServerSim::with_default_platform();
        assert!(matches!(
            srv.session(3),
            Err(TranscodeError::UnknownSession(3))
        ));
    }

    #[test]
    fn detach_vacates_the_slot_without_moving_neighbours() {
        let mut srv = ServerSim::with_default_platform();
        srv.add_session(SessionConfig::single_video(hr_spec(400), 1), fixed(8, 2.9));
        srv.add_session(SessionConfig::single_video(lr_spec(400), 2), fixed(4, 2.6));
        srv.run_epoch(1.0, 100_000).unwrap();
        let detached = srv.detach_session(0).unwrap();
        assert_eq!(detached.name(), "Kimono");
        assert!(detached.frames_completed() > 0);
        // Slot 0 is gone, slot 1 still answers to its old id.
        assert!(matches!(
            srv.session(0),
            Err(TranscodeError::UnknownSession(0))
        ));
        assert_eq!(srv.session(1).unwrap().name(), "BQMall");
        assert_eq!(srv.sessions().len(), 1);
        // Double detach is an error.
        assert!(srv.detach_session(0).is_err());
    }

    #[test]
    fn migrated_session_finishes_on_the_target_server() {
        let frames = 200;
        let mut a = ServerSim::with_default_platform();
        a.add_session(
            SessionConfig::single_video(hr_spec(frames), 1),
            fixed(8, 2.9),
        );
        let mut b = ServerSim::with_default_platform();
        a.run_epoch(1.0, 100_000).unwrap();
        b.run_epoch(1.0, 100_000).unwrap(); // clocks aligned at the boundary
        let done_before = a.session(0).unwrap().frames_completed();
        assert!(done_before > 0 && done_before < frames);
        let session = a.detach_session(0).unwrap();
        let new_id = b.attach_session(session);
        let moved = b.session(new_id).unwrap();
        assert_eq!(moved.id(), new_id);
        assert_eq!(moved.frames_completed(), done_before, "history travels");
        b.run_epoch(1_000.0, 1_000_000).unwrap();
        assert!(b.all_finished());
        assert_eq!(b.session(new_id).unwrap().frames_completed(), frames);
        // The source idles on: vacated slots never block completion.
        assert!(a.all_finished());
        a.run_epoch(2.0, 100).unwrap();
        assert_eq!(a.time(), 2.0);
    }

    #[test]
    fn align_clock_commissions_an_empty_server_without_energy() {
        let mut srv = ServerSim::with_default_platform();
        srv.align_clock(20.0).unwrap();
        assert_eq!(srv.time(), 20.0);
        assert_eq!(
            srv.sensor().total_energy_j(),
            0.0,
            "the skipped span was never powered"
        );
        assert_eq!(srv.sensor().total_time_s(), 0.0);
        // From here the server behaves like any other: idle power accrues.
        srv.run_epoch(22.0, 10).unwrap();
        assert_eq!(srv.time(), 22.0);
        assert!((srv.sensor().total_time_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn align_clock_refuses_sessions_and_backward_jumps() {
        let mut srv = ServerSim::with_default_platform();
        srv.run_epoch(5.0, 10).unwrap();
        assert_eq!(
            srv.align_clock(3.0).unwrap_err(),
            TranscodeError::CannotAlignClock {
                time: 5.0,
                target: 3.0,
                sessions: 0,
            }
        );
        srv.add_session(SessionConfig::single_video(hr_spec(10), 1), fixed(8, 2.9));
        assert!(matches!(
            srv.align_clock(9.0),
            Err(TranscodeError::CannotAlignClock { sessions: 1, .. })
        ));
    }

    #[test]
    fn mid_frame_work_survives_migration() {
        // Detach with a frame in flight: the partial frame's remaining
        // cycles continue on the target, so total completed frames match
        // an unmigrated run.
        let frames = 50;
        let run_unmigrated = || {
            let mut srv = ServerSim::with_default_platform();
            srv.add_session(
                SessionConfig::single_video(hr_spec(frames), 9),
                fixed(8, 2.9),
            );
            srv.run_to_completion(100_000).unwrap();
            srv.session(0).unwrap().frames_completed()
        };
        let mut a = ServerSim::with_default_platform();
        a.add_session(
            SessionConfig::single_video(hr_spec(frames), 9),
            fixed(8, 2.9),
        );
        a.run_epoch(0.33, 100_000).unwrap(); // boundary mid-frame
        let mut b = ServerSim::with_default_platform();
        b.run_epoch(0.33, 100_000).unwrap();
        let id = b.attach_session(a.detach_session(0).unwrap());
        b.run_epoch(1_000.0, 1_000_000).unwrap();
        assert_eq!(b.session(id).unwrap().frames_completed(), run_unmigrated());
    }
}
