//! Discrete-event multi-user transcoding server simulator.
//!
//! This crate replaces the paper's physical testbed: a dual-socket Xeon
//! server running one Kvazaar transcoding pipeline per user. Sessions share
//! the machine through processor-sharing semantics and the platform's
//! contention model; controllers (MAMUT or the baselines) actuate knobs at
//! frame boundaries exactly as the paper's run-time manager does.
//!
//! # Simulation model
//!
//! Time is virtual. Each active session always has one frame in flight
//! (work-conserving: a VoD transcoder encodes ahead and buffers, §III-D).
//! Between events every session retires `rate · dt` cycles where
//!
//! ```text
//! rate = freq · threads · WPP_efficiency(resolution, threads) · contention_scale
//! ```
//!
//! The next event is the earliest frame completion; power is integrated
//! over the interval, then completed frames trigger controller callbacks
//! (`end_frame` with the measured observation, `begin_frame` for the next
//! frame) — so a knob change on any session reshapes everyone's progress
//! from that instant on, exactly like rescheduling threads on a real
//! machine.
//!
//! # Incremental event engine
//!
//! Between controller decisions nothing can move the rate vector, so the
//! engine caches it per *rate epoch*: each in-flight frame's remaining
//! work is anchored at the last rate change and its completion instant
//! is a fixed deadline in an index min-heap. A steady-state event is one
//! heap pop plus one push — no per-session rescans, no model
//! re-evaluation, no allocations. Knob, constraint, session-set or
//! resolution changes bump the epoch and rebuild exactly the state they
//! invalidate; the `oracle` feature compiles a naive per-event
//! recomputation path that the test suite holds bit-identical to the
//! incremental engine.
//!
//! # Example
//!
//! ```
//! use mamut_core::{FixedController, KnobSettings};
//! use mamut_transcode::{ServerSim, SessionConfig};
//! use mamut_video::catalog;
//!
//! let mut server = ServerSim::with_default_platform();
//! let spec = catalog::by_name("Kimono").unwrap().with_frame_count(48).unwrap();
//! let cfg = SessionConfig::single_video(spec, 1);
//! server.add_session(cfg, Box::new(FixedController::new(KnobSettings::new(32, 10, 3.2))));
//! let summary = server.run_to_completion(100_000).unwrap();
//! assert_eq!(summary.sessions[0].frames, 48);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod error;
mod scenario;
mod server;
mod session;
mod summary;

pub use admission::{AdmissionPlanner, AdmissionVerdict, StreamShape};
pub use error::TranscodeError;
pub use scenario::{homogeneous_sessions, scenario_ii_sessions, MixSpec};
pub use server::{ServerLoad, ServerSim};
pub use session::{SessionConfig, TranscodeSession, SESSION_CHECKPOINT_VERSION};
pub use summary::{RunSummary, SessionSummary};
