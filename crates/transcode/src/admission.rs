//! Capacity planning / admission control.
//!
//! The paper motivates the Eq. 1 overshoot penalty with "achieving larger
//! FPS may result in wasting resources, which ultimately means fewer
//! users can be served" (§III-D). This module answers the operator-side
//! question directly: *how many streams of a given shape fit on the
//! server in real time?* It uses the same encoder/platform models as the
//! simulator, so its verdicts are consistent with what a run would show.

use mamut_core::KnobSettings;
use mamut_encoder::{wpp, HevcEncoder, Preset};
use mamut_platform::{Platform, SessionLoad};
use mamut_video::{FrameInfo, Resolution, SequenceSpec};

/// A stream shape to be admitted: resolution, preset and the knobs it
/// would run at.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamShape {
    /// Frame resolution.
    pub resolution: Resolution,
    /// Encoder preset.
    pub preset: Preset,
    /// Knobs assumed for planning (a controller may do better).
    pub knobs: KnobSettings,
    /// Content complexity to plan for (1.0 nominal; plan with headroom).
    pub complexity: f64,
}

impl StreamShape {
    /// Planning shape from a catalog entry: the paper's preset for its
    /// resolution, saturation threads, top frequency, QP 32, and the
    /// sequence's mean complexity with 20 % headroom.
    pub fn for_spec(spec: &SequenceSpec) -> StreamShape {
        let resolution = spec.resolution();
        StreamShape {
            resolution,
            preset: Preset::for_resolution(resolution),
            knobs: KnobSettings::new(32, wpp::saturation_threads(resolution), 3.2),
            complexity: (spec.content().mean_complexity * 1.2).min(3.0),
        }
    }
}

/// Verdict for one admission query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionVerdict {
    /// Whether every stream is predicted to sustain the target FPS.
    pub feasible: bool,
    /// Predicted per-stream FPS of the *slowest* stream.
    pub worst_fps: f64,
    /// Predicted server power (W).
    pub power_w: f64,
    /// Total threads requested by the mix.
    pub total_threads: u32,
}

/// Model-based admission control for a set of streams on a platform.
///
/// # Example
///
/// ```
/// use mamut_core::KnobSettings;
/// use mamut_encoder::Preset;
/// use mamut_platform::Platform;
/// use mamut_transcode::{AdmissionPlanner, StreamShape};
/// use mamut_video::Resolution;
///
/// let planner = AdmissionPlanner::new(Platform::xeon_e5_2667_v4(), 24.0);
/// let hr = StreamShape {
///     resolution: Resolution::FULL_HD,
///     preset: Preset::Ultrafast,
///     knobs: KnobSettings::new(32, 12, 3.2),
///     complexity: 1.2,
/// };
/// // One 1080p stream fits comfortably; a dozen do not.
/// assert!(planner.admit(&vec![hr.clone(); 1]).feasible);
/// assert!(!planner.admit(&vec![hr; 12]).feasible);
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionPlanner {
    platform: Platform,
    target_fps: f64,
}

impl AdmissionPlanner {
    /// Creates a planner for `platform` and a target frame rate.
    pub fn new(platform: Platform, target_fps: f64) -> Self {
        AdmissionPlanner {
            platform,
            target_fps: if target_fps.is_finite() && target_fps > 0.0 {
                target_fps
            } else {
                24.0
            },
        }
    }

    /// Predicted steady-state FPS of each stream if all run concurrently.
    pub fn predict_fps(&self, streams: &[StreamShape]) -> Vec<f64> {
        let total_threads: u32 = streams.iter().map(|s| s.knobs.threads).sum();
        let scale = self.platform.throughput_scale(total_threads);
        streams
            .iter()
            .map(|s| {
                let enc = HevcEncoder::new(s.resolution, s.preset);
                let frame = FrameInfo {
                    index: 0,
                    complexity: s.complexity.clamp(0.25, 3.0),
                    scene_cut: false,
                };
                let outcome = enc
                    .encode(s.knobs.qp.min(51), &frame)
                    .expect("clamped QP is valid");
                let level = self.platform.dvfs().nearest(s.knobs.freq_ghz);
                let speedup = wpp::speedup_at(s.resolution, s.knobs.threads);
                level.freq_ghz * 1e9 * speedup * scale / outcome.cycles
            })
            .collect()
    }

    /// Full verdict for the mix.
    pub fn admit(&self, streams: &[StreamShape]) -> AdmissionVerdict {
        let fps = self.predict_fps(streams);
        let worst = fps.iter().copied().fold(f64::INFINITY, f64::min);
        let loads: Vec<SessionLoad> = streams
            .iter()
            .map(|s| SessionLoad::new(s.knobs.threads, s.knobs.freq_ghz))
            .collect();
        AdmissionVerdict {
            feasible: streams.is_empty() || worst >= self.target_fps,
            worst_fps: if streams.is_empty() {
                f64::INFINITY
            } else {
                worst
            },
            power_w: self.platform.power_draw(&loads),
            total_threads: streams.iter().map(|s| s.knobs.threads).sum(),
        }
    }

    /// The largest `n` such that `n` copies of `shape` are all feasible
    /// (0 if even one is not), searched up to `max_streams`.
    pub fn max_streams(&self, shape: &StreamShape, max_streams: usize) -> usize {
        let mut best = 0;
        for n in 1..=max_streams {
            let mix = vec![shape.clone(); n];
            if self.admit(&mix).feasible {
                best = n;
            } else {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_video::catalog;

    fn planner() -> AdmissionPlanner {
        AdmissionPlanner::new(Platform::xeon_e5_2667_v4(), 24.0)
    }

    fn hr_shape() -> StreamShape {
        StreamShape {
            resolution: Resolution::FULL_HD,
            preset: Preset::Ultrafast,
            knobs: KnobSettings::new(32, 12, 3.2),
            complexity: 1.1,
        }
    }

    fn lr_shape() -> StreamShape {
        StreamShape {
            resolution: Resolution::WVGA,
            preset: Preset::Slow,
            knobs: KnobSettings::new(32, 5, 3.2),
            complexity: 1.1,
        }
    }

    #[test]
    fn single_streams_fit() {
        assert!(planner().admit(&[hr_shape()]).feasible);
        assert!(planner().admit(&[lr_shape()]).feasible);
    }

    #[test]
    fn capacity_is_finite_and_ordered() {
        let p = planner();
        let hr_max = p.max_streams(&hr_shape(), 16);
        let lr_max = p.max_streams(&lr_shape(), 32);
        assert!(hr_max >= 2, "at least a couple of HR streams fit: {hr_max}");
        assert!(hr_max <= 8, "HR capacity implausibly high: {hr_max}");
        assert!(
            lr_max > hr_max,
            "LR streams are cheaper: lr {lr_max} vs hr {hr_max}"
        );
    }

    #[test]
    fn verdict_matches_paper_scenario_magnitudes() {
        // The paper serves up to 5 HR / 8 LR simultaneously with degraded
        // QoS at the top end — our planner should place the feasibility
        // edge in that neighbourhood.
        let p = planner();
        let hr_max = p.max_streams(&hr_shape(), 16);
        assert!((2..=6).contains(&hr_max), "hr capacity {hr_max}");
    }

    #[test]
    fn power_and_threads_accumulate() {
        let p = planner();
        let one = p.admit(&[hr_shape()]);
        let three = p.admit(&vec![hr_shape(); 3]);
        assert!(three.power_w > one.power_w);
        assert_eq!(three.total_threads, 36);
        assert!(three.worst_fps < one.worst_fps);
    }

    #[test]
    fn empty_mix_is_trivially_feasible() {
        let v = planner().admit(&[]);
        assert!(v.feasible);
        assert_eq!(v.total_threads, 0);
    }

    #[test]
    fn planner_prediction_matches_simulation() {
        // The planner and the simulator share models: a fixed-knob run
        // must land near the predicted FPS.
        use crate::{ServerSim, SessionConfig};
        use mamut_core::FixedController;

        let spec = catalog::by_name("Cactus")
            .expect("catalog")
            .with_frame_count(60)
            .expect("frames");
        let shape = StreamShape {
            resolution: spec.resolution(),
            preset: Preset::Ultrafast,
            knobs: KnobSettings::new(32, 10, 2.9),
            complexity: spec.content().mean_complexity,
        };
        let predicted = planner().predict_fps(&[shape])[0];

        let mut server = ServerSim::with_default_platform();
        server.add_session(
            SessionConfig::single_video(spec, 3),
            Box::new(FixedController::new(KnobSettings::new(32, 10, 2.9))),
        );
        let summary = server.run_to_completion(1_000_000).expect("run completes");
        let measured = summary.sessions[0].mean_fps;
        let ratio = measured / predicted;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "planner {predicted:.1} vs simulated {measured:.1} FPS"
        );
    }

    #[test]
    fn for_spec_uses_saturation_threads_and_headroom() {
        let spec = catalog::by_name("RaceHorses").expect("catalog");
        let shape = StreamShape::for_spec(&spec);
        assert_eq!(shape.knobs.threads, 5);
        assert_eq!(shape.preset, Preset::Slow);
        assert!(shape.complexity > spec.content().mean_complexity);
    }
}
