use std::error::Error;
use std::fmt;

/// Errors produced by the transcoding simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TranscodeError {
    /// The event budget ran out before every session finished.
    EventBudgetExhausted {
        /// Events processed before giving up.
        events: u64,
    },
    /// A session id does not exist.
    UnknownSession(usize),
    /// The simulation has no sessions to run.
    NoSessions,
    /// The encoder rejected a knob setting (propagated).
    Encoder(String),
    /// `align_clock` was asked to move a clock backwards or to skip time
    /// on a server that still holds sessions (only a freshly
    /// commissioned, empty server may jump its clock forward).
    CannotAlignClock {
        /// The server's current virtual time (s).
        time: f64,
        /// The requested target time (s).
        target: f64,
        /// Sessions resident on the server.
        sessions: usize,
    },
}

impl fmt::Display for TranscodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranscodeError::EventBudgetExhausted { events } => {
                write!(f, "event budget exhausted after {events} events")
            }
            TranscodeError::UnknownSession(id) => write!(f, "no session with id {id}"),
            TranscodeError::NoSessions => write!(f, "simulation has no sessions"),
            TranscodeError::Encoder(msg) => write!(f, "encoder error: {msg}"),
            TranscodeError::CannotAlignClock {
                time,
                target,
                sessions,
            } => write!(
                f,
                "cannot align clock from {time} s to {target} s with {sessions} session(s) resident"
            ),
        }
    }
}

impl Error for TranscodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TranscodeError::UnknownSession(7).to_string().contains('7'));
        assert!(TranscodeError::EventBudgetExhausted { events: 42 }
            .to_string()
            .contains("42"));
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<T: Error + Send + Sync>() {}
        assert_bounds::<TranscodeError>();
    }
}
