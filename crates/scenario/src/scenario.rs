//! Scenario composition and realization: phases chain into a seeded,
//! deterministic non-homogeneous arrival process, realized into the
//! fleet's [`Workload`] form by thinning.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mamut_fleet::{SessionRequest, Workload};

use crate::phase::Phase;

/// A structurally invalid [`Scenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The scenario has no phases — it would realize into nothing.
    NoPhases,
    /// A phase carried an out-of-range or non-finite parameter.
    InvalidPhase {
        /// Index of the offending phase.
        phase: usize,
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NoPhases => write!(f, "scenario has no phases"),
            ScenarioError::InvalidPhase { phase, what, value } => {
                write!(f, "phase {phase}: invalid {what} ({value})")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A seeded, deterministic composition of arrival phases.
///
/// A scenario is a *description*: phases chained back-to-back, plus the
/// RNG seed that makes its realization a pure function of the value.
/// [`Scenario::realize`] turns it into a concrete
/// [`RealizedScenario`] — timed session arrivals plus phase-boundary
/// marks — by thinning a homogeneous arrival process against each
/// phase's instantaneous rate curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    seed: u64,
    phases: Vec<Phase>,
}

impl Scenario {
    /// An empty scenario; chain phases with [`Scenario::then`].
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Scenario {
            name: name.into(),
            seed,
            phases: Vec::new(),
        }
    }

    /// Appends a phase after everything added so far.
    #[must_use]
    pub fn then(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The realization seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Overrides the realization seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The composed phases, in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total scenario length (sum of phase durations, virtual seconds).
    pub fn horizon_s(&self) -> f64 {
        self.phases.iter().map(Phase::duration_s).sum()
    }

    /// The instantaneous arrival rate at absolute time `t` (0 outside
    /// the scenario).
    pub fn rate_hz_at(&self, t: f64) -> f64 {
        let mut start = 0.0;
        for phase in &self.phases {
            let end = start + phase.duration_s();
            if t < end {
                return if t >= start {
                    phase.rate_hz_at(t - start)
                } else {
                    0.0
                };
            }
            start = end;
        }
        0.0
    }

    /// Phase boundaries as `(start_s, label)`, in order.
    pub fn phase_starts(&self) -> Vec<(f64, &'static str)> {
        let mut out = Vec::with_capacity(self.phases.len());
        let mut start = 0.0;
        for phase in &self.phases {
            out.push((start, phase.label()));
            start += phase.duration_s();
        }
        out
    }

    /// Validates every phase.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::NoPhases`] for an empty scenario, or the first
    /// [`ScenarioError::InvalidPhase`] found.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.phases.is_empty() {
            return Err(ScenarioError::NoPhases);
        }
        for (i, phase) in self.phases.iter().enumerate() {
            phase.validate(i)?;
        }
        Ok(())
    }

    /// Realizes the scenario into timed arrivals (deterministic: same
    /// scenario value ⇒ byte-identical realization).
    ///
    /// Arrivals come from thinning: within each phase a homogeneous
    /// process at the phase's peak rate proposes candidate instants
    /// (exponential gaps), and each candidate survives with probability
    /// `λ(t) / λ_max` — the standard exact simulation of a
    /// non-homogeneous Poisson process. Surviving arrivals draw their
    /// class, length and content seed from the phase's mix *at that
    /// instant*, so evolving mixes (regional shift, content drift) show
    /// up inside a single phase.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] when [`Scenario::validate`] rejects the
    /// description.
    pub fn realize(&self) -> Result<RealizedScenario, ScenarioError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut arrivals = Vec::new();
        let mut marks = Vec::with_capacity(self.phases.len());
        let mut phase_start = 0.0;
        for phase in &self.phases {
            marks.push((phase_start, phase.label().to_owned()));
            let duration = phase.duration_s();
            let lambda_max = phase.peak_rate_hz();
            if lambda_max > 0.0 {
                let mut t = 0.0;
                loop {
                    // Candidate gap at the envelope rate: -ln(1 − U)/λ_max.
                    let u: f64 = rng.gen_range(0.0..1.0);
                    t += -(1.0 - u).ln() / lambda_max;
                    if t >= duration {
                        break;
                    }
                    let keep: f64 = rng.gen_range(0.0..1.0);
                    if keep * lambda_max <= phase.rate_hz_at(t) {
                        let mix = phase.mix_at(t);
                        let hr = rng.gen_bool(mix.hr_ratio.clamp(0.0, 1.0));
                        let live = rng.gen_bool(mix.live_ratio.clamp(0.0, 1.0));
                        let (lo, hi) = if live {
                            mix.live_frames
                        } else {
                            mix.vod_frames
                        };
                        let frames = rng.gen_range(lo..=hi.max(lo));
                        let seed = rng.gen_range(0..u64::MAX);
                        arrivals.push(SessionRequest {
                            id: 0, // assigned below, once the count is known
                            arrival_s: phase_start + t,
                            hr,
                            live,
                            frames,
                            seed,
                        });
                    }
                }
            }
            phase_start += duration;
        }
        for (id, request) in arrivals.iter_mut().enumerate() {
            request.id = id as u64;
        }
        Ok(RealizedScenario {
            name: self.name.clone(),
            seed: self.seed,
            horizon_s: phase_start,
            arrivals,
            marks,
        })
    }
}

/// A realized scenario: the concrete arrival trace one [`Scenario`]
/// value deterministically produces, plus its phase-boundary marks.
///
/// This is the replayable unit: feed [`RealizedScenario::workload`] to
/// a `FleetSim`, annotate the run with
/// [`RealizedScenario::phase_marks`], and persist the whole thing
/// byte-for-byte through [`RealizedScenario::to_bytes`] (see
/// [`crate::trace`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedScenario {
    /// The producing scenario's name.
    pub name: String,
    /// The producing scenario's seed.
    pub seed: u64,
    /// Total scenario length (virtual seconds).
    pub horizon_s: f64,
    /// Timed session arrivals, sorted by arrival time.
    pub arrivals: Vec<SessionRequest>,
    /// Phase boundaries as `(start_s, label)`.
    pub marks: Vec<(f64, String)>,
}

impl RealizedScenario {
    /// The realized arrivals as a fleet [`Workload`] (replay path).
    pub fn workload(&self) -> Workload {
        Workload::replay(self.arrivals.clone())
    }

    /// Number of realized arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the realization produced no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Splits the realized arrivals into `regions` per-shard workloads
    /// for a sharded fleet: each arrival is assigned a region by a
    /// seeded draw (one `StdRng` stream derived from the scenario seed
    /// and the region count, consumed in arrival order), so the split
    /// is deterministic, every arrival lands in exactly one region, and
    /// re-splitting the same realization always produces the same
    /// partition. Arrival times and session parameters are untouched —
    /// a region's workload is simply the subsequence routed to it.
    ///
    /// `regions == 0` is treated as 1 (the degenerate single-shard
    /// split, which returns the full workload).
    pub fn regional_workloads(&self, regions: usize) -> Vec<Workload> {
        let regions = regions.max(1);
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (regions as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut buckets: Vec<Vec<SessionRequest>> = vec![Vec::new(); regions];
        for request in &self.arrivals {
            let region = rng.gen_range(0..regions);
            buckets[region].push(request.clone());
        }
        buckets.into_iter().map(Workload::replay).collect()
    }

    /// Phase marks quantized to a fleet's epoch grid, for
    /// `FleetSim::set_phase_marks`: a phase starting mid-epoch is
    /// attributed to the next boundary, matching how the fleet admits
    /// arrivals (quantized up, never early).
    pub fn phase_marks(&self, epoch_s: f64) -> Vec<(u64, String)> {
        let epoch_s = epoch_s.max(1e-9);
        self.marks
            .iter()
            .map(|(t, label)| ((t / epoch_s).ceil() as u64, label.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::MixProfile;

    fn two_phase() -> Scenario {
        Scenario::new("test", 7)
            .then(Phase::Steady {
                duration_s: 30.0,
                rate_hz: 1.0,
                mix: MixProfile::vod_heavy(),
            })
            .then(Phase::FlashCrowd {
                duration_s: 40.0,
                base_rate_hz: 0.5,
                peak_rate_hz: 4.0,
                event_at_s: 10.0,
                ramp_s: 5.0,
                decay_s: 8.0,
                mix: MixProfile::live_heavy(),
            })
    }

    #[test]
    fn realization_is_deterministic_and_sorted() {
        let s = two_phase();
        let a = s.realize().unwrap();
        let b = s.realize().unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for pair in a.arrivals.windows(2) {
            assert!(pair[0].arrival_s <= pair[1].arrival_s);
        }
        for (i, r) in a.arrivals.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.arrival_s < s.horizon_s());
        }
        // A different seed yields a different trace.
        assert_ne!(a, s.clone().with_seed(8).realize().unwrap());
    }

    #[test]
    fn realized_counts_track_the_rate_integral() {
        // ∫λ over phase 1 is 30; a realization within ±50 % of that is
        // evidence the thinning is at the right scale (seeded, so this
        // is a fixed check, not a flaky statistical one).
        let s = Scenario::new("steady", 3).then(Phase::Steady {
            duration_s: 30.0,
            rate_hz: 1.0,
            mix: MixProfile::vod_heavy(),
        });
        let n = s.realize().unwrap().len();
        assert!((15..=45).contains(&n), "got {n} arrivals for ∫λ = 30");
    }

    #[test]
    fn thinning_concentrates_arrivals_at_the_peak() {
        let s = Scenario::new("diurnal", 5).then(Phase::Diurnal {
            duration_s: 200.0,
            mean_rate_hz: 1.0,
            amplitude: 1.0,
            period_s: 200.0,
            phase_offset_s: 150.0, // trough at t = 0, peak at t = 100
            mix: MixProfile::vod_heavy(),
        });
        let r = s.realize().unwrap();
        let in_window = |lo: f64, hi: f64| {
            r.arrivals
                .iter()
                .filter(|a| a.arrival_s >= lo && a.arrival_s < hi)
                .count()
        };
        // Same-width windows around the trough edges and the peak: the
        // peak 40 s must carry several times the arrivals of either
        // trough-side 40 s.
        let trough = in_window(0.0, 20.0) + in_window(180.0, 200.0);
        let peak = in_window(80.0, 120.0);
        assert!(
            peak > 3 * trough.max(1),
            "peak window {peak} vs trough windows {trough}"
        );
    }

    #[test]
    fn evolving_mix_shows_up_across_one_phase() {
        let s = Scenario::new("shift", 11).then(Phase::RegionalShift {
            duration_s: 400.0,
            rate_hz: 1.0,
            from: MixProfile {
                live_ratio: 0.0,
                ..MixProfile::vod_heavy()
            },
            to: MixProfile {
                live_ratio: 1.0,
                ..MixProfile::live_heavy()
            },
        });
        let r = s.realize().unwrap();
        let live_share = |lo: f64, hi: f64| {
            let (live, all) = r
                .arrivals
                .iter()
                .filter(|a| a.arrival_s >= lo && a.arrival_s < hi)
                .fold((0usize, 0usize), |(l, n), a| (l + a.live as usize, n + 1));
            live as f64 / all.max(1) as f64
        };
        assert!(live_share(0.0, 100.0) < 0.4);
        assert!(live_share(300.0, 400.0) > 0.6);
    }

    #[test]
    fn workload_and_marks_feed_the_fleet() {
        let r = two_phase().realize().unwrap();
        let w = r.workload();
        assert_eq!(w.len(), r.len());
        assert_eq!(r.marks.len(), 2);
        assert_eq!(r.marks[0], (0.0, "steady".to_owned()));
        assert_eq!(r.marks[1], (30.0, "flash-crowd".to_owned()));
        assert_eq!(
            r.phase_marks(4.0),
            vec![(0, "steady".to_owned()), (8, "flash-crowd".to_owned())]
        );
    }

    #[test]
    fn regional_split_partitions_every_arrival_deterministically() {
        let r = two_phase().realize().unwrap();
        let regions = r.regional_workloads(3);
        assert_eq!(regions.len(), 3);
        // A partition: every arrival lands in exactly one region.
        let total: usize = regions.iter().map(Workload::len).sum();
        assert_eq!(total, r.len());
        let mut ids: Vec<u64> = regions
            .iter()
            .flat_map(|w| w.arrivals().iter().map(|a| a.id))
            .collect();
        ids.sort_unstable();
        let mut expected: Vec<u64> = r.arrivals.iter().map(|a| a.id).collect();
        expected.sort_unstable();
        assert_eq!(ids, expected);
        // Within a region, arrival order (and times) are preserved.
        for w in &regions {
            assert!(w
                .arrivals()
                .windows(2)
                .all(|p| p[0].arrival_s <= p[1].arrival_s));
        }
        // Deterministic: the same realization splits identically.
        let again = r.regional_workloads(3);
        for (a, b) in regions.iter().zip(&again) {
            assert_eq!(a.arrivals(), b.arrivals());
        }
        // Different region counts draw from distinct streams but still
        // partition; 0 degrades to the single-shard split.
        assert_eq!(
            r.regional_workloads(1)[0].arrivals(),
            &r.arrivals[..],
            "single region is the whole trace"
        );
        assert_eq!(r.regional_workloads(0).len(), 1);
        // With enough arrivals the draw actually spreads load.
        assert!(
            regions.iter().filter(|w| !w.is_empty()).count() > 1,
            "split never used more than one region"
        );
    }

    #[test]
    fn invalid_scenarios_are_rejected_with_typed_errors() {
        assert_eq!(
            Scenario::new("empty", 1).realize().unwrap_err(),
            ScenarioError::NoPhases
        );
        let bad_rate = Scenario::new("bad", 1).then(Phase::Steady {
            duration_s: 10.0,
            rate_hz: f64::NAN,
            mix: MixProfile::vod_heavy(),
        });
        assert!(matches!(
            bad_rate.realize().unwrap_err(),
            ScenarioError::InvalidPhase {
                phase: 0,
                what: "rate_hz",
                ..
            }
        ));
        let bad_amplitude = Scenario::new("bad", 1).then(Phase::Diurnal {
            duration_s: 10.0,
            mean_rate_hz: 1.0,
            amplitude: 1.5,
            period_s: 10.0,
            phase_offset_s: 0.0,
            mix: MixProfile::vod_heavy(),
        });
        assert!(matches!(
            bad_amplitude.realize().unwrap_err(),
            ScenarioError::InvalidPhase {
                what: "amplitude",
                ..
            }
        ));
        let bad_mix = Scenario::new("bad", 1).then(Phase::Steady {
            duration_s: 10.0,
            rate_hz: 1.0,
            mix: MixProfile {
                vod_frames: (0, 10),
                ..MixProfile::vod_heavy()
            },
        });
        assert!(matches!(
            bad_mix.realize().unwrap_err(),
            ScenarioError::InvalidPhase {
                what: "vod_frames",
                ..
            }
        ));
        let zero_duration = Scenario::new("bad", 1).then(Phase::Steady {
            duration_s: 0.0,
            rate_hz: 1.0,
            mix: MixProfile::vod_heavy(),
        });
        assert!(matches!(
            zero_duration.realize().unwrap_err(),
            ScenarioError::InvalidPhase {
                what: "duration_s",
                ..
            }
        ));
    }

    #[test]
    fn zero_rate_phases_realize_empty_but_still_mark() {
        let s = Scenario::new("silence", 1).then(Phase::Steady {
            duration_s: 10.0,
            rate_hz: 0.0,
            mix: MixProfile::vod_heavy(),
        });
        let r = s.realize().unwrap();
        assert!(r.is_empty());
        assert_eq!(r.marks.len(), 1);
        assert_eq!(r.horizon_s, 10.0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ScenarioError::InvalidPhase {
            phase: 2,
            what: "amplitude",
            value: 9.0,
        };
        assert!(e.to_string().contains("phase 2"));
        assert!(e.to_string().contains("amplitude"));
        assert!(ScenarioError::NoPhases.to_string().contains("no phases"));
    }
}
