//! Composable workload scenarios and seasonal forecasting for the
//! MAMUT fleet.
//!
//! The fleet's base [`Workload`](mamut_fleet::Workload) generator
//! churns one shape of traffic: seeded Poisson-ish arrivals at a fixed
//! mean rate. Real deployments face *time-varying* load — diurnal
//! cycles, flash crowds around live events, content mixes drifting
//! between regions — the dynamics that motivate time-varying multi-user
//! video optimization (Fu & van der Schaar) and live-streaming viewer
//! surges (digital-twin collaborative transcoding). This crate models
//! them in three layers:
//!
//! 1. **A composable scenario DSL** — a [`Scenario`] is a seeded,
//!    deterministic chain of arrival [`Phase`]s ([`Phase::Steady`],
//!    [`Phase::Diurnal`], [`Phase::FlashCrowd`],
//!    [`Phase::RegionalShift`], [`Phase::ContentDrift`]), realized into
//!    the fleet's `Workload`/`SessionRequest` stream by thinning a
//!    non-homogeneous arrival process. A [`catalog`] of named presets
//!    (`daily_vod`, `live_final`, `flash_mob`,
//!    `regional_follow_the_sun`) covers the standard shapes.
//! 2. **Forecasting** — the fleet's [`Forecaster`] trait with
//!    [`SeasonalNaive`] and [`HoltWinters`] (additive trend + seasonal)
//!    predictors, re-exported here next to the scenarios they are
//!    evaluated on; a [`ForecastScaler`] feeds either through Little's
//!    law to provision *ahead* of predicted load (compare against the
//!    EWMA [`PredictiveScaler`](mamut_fleet::PredictiveScaler) on the
//!    same presets — `examples/scenario_sweep.rs`).
//! 3. **Persistence** — realized traces encode through the same
//!    std-only binary codec as policy snapshots
//!    ([`RealizedScenario::to_bytes`] /
//!    [`RealizedScenario::from_bytes`], module [`trace`]), and
//!    forecaster state travels via
//!    [`Forecaster::snapshot_state`] — so whole sweeps are replayable
//!    byte-for-byte across process restarts.
//!
//! # Example
//!
//! ```
//! use mamut_scenario::{catalog, HoltWinters, Phase, MixProfile, Scenario};
//! use mamut_fleet::ForecastScaler;
//!
//! // A preset, realized deterministically:
//! let realized = catalog::daily_vod().realize().unwrap();
//! assert!(!realized.is_empty());
//!
//! // Or composed by hand:
//! let custom = Scenario::new("launch_day", 7)
//!     .then(Phase::Steady {
//!         duration_s: 60.0,
//!         rate_hz: 0.5,
//!         mix: MixProfile::vod_heavy(),
//!     })
//!     .then(Phase::FlashCrowd {
//!         duration_s: 90.0,
//!         base_rate_hz: 0.5,
//!         peak_rate_hz: 3.0,
//!         event_at_s: 20.0,
//!         ramp_s: 10.0,
//!         decay_s: 15.0,
//!         mix: MixProfile::live_heavy(),
//!     });
//! let workload = custom.realize().unwrap().workload();
//! assert!(workload.horizon_s() < 150.0);
//!
//! // The seasonal scaler that provisions ahead of the diurnal rise:
//! let _scaler = ForecastScaler::new(Box::new(HoltWinters::new(32)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod phase;
mod scenario;
pub mod sizing;
pub mod trace;

pub use phase::{MixProfile, Phase};
pub use scenario::{RealizedScenario, Scenario, ScenarioError};
pub use trace::TRACE_VERSION;

// The forecasting layer lives in `mamut-fleet` (the `ForecastScaler`
// consumes it inside the autoscaler), but it is evaluated against the
// scenarios defined here — re-exported so scenario-driven code needs
// one import.
pub use mamut_fleet::{ForecastScaler, Forecaster, HoltWinters, SeasonalNaive};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_resolve() {
        let mut f = HoltWinters::new(8);
        f.observe(4, 1.0);
        assert!(f.forecast_hz(1) > 0.0);
        assert_eq!(catalog::all().len(), 4);
    }
}
