//! The scenario building blocks: session-class mixes and arrival
//! phases.
//!
//! A [`Phase`] is a time-limited shape of traffic — a rate curve
//! `λ(t)` plus a (possibly time-varying) session-class [`MixProfile`].
//! Phases compose back-to-back into a
//! [`Scenario`](crate::Scenario); each knows its own peak rate, so the
//! realization can thin a homogeneous arrival process against the
//! instantaneous curve.

/// The session-class mix arrivals are drawn from at one instant:
/// HR/LR split, live/VOD split, and the length profiles of each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixProfile {
    /// Fraction of arrivals that are HR (1080p).
    pub hr_ratio: f64,
    /// Fraction of arrivals that are live streams (long profile).
    pub live_ratio: f64,
    /// VOD session length, uniform in `[min, max]` frames.
    pub vod_frames: (u64, u64),
    /// Live session length, uniform in `[min, max]` frames.
    pub live_frames: (u64, u64),
}

impl MixProfile {
    /// A VOD-heavy mix: mostly short on-demand clips, few live events.
    pub fn vod_heavy() -> MixProfile {
        MixProfile {
            hr_ratio: 0.35,
            live_ratio: 0.1,
            vod_frames: (96, 240),
            live_frames: (300, 600),
        }
    }

    /// A live-heavy mix: long HR event streams dominate.
    pub fn live_heavy() -> MixProfile {
        MixProfile {
            hr_ratio: 0.6,
            live_ratio: 0.7,
            vod_frames: (96, 240),
            live_frames: (300, 600),
        }
    }

    /// Linear blend toward `other` by weight `w ∈ [0, 1]` (ratios and
    /// frame bounds interpolate; bounds round to whole frames, never
    /// below one).
    pub fn blend(&self, other: &MixProfile, w: f64) -> MixProfile {
        let w = w.clamp(0.0, 1.0);
        let lerp = |a: f64, b: f64| a + (b - a) * w;
        let lerp_u = |a: u64, b: u64| lerp(a as f64, b as f64).round().max(1.0) as u64;
        MixProfile {
            hr_ratio: lerp(self.hr_ratio, other.hr_ratio),
            live_ratio: lerp(self.live_ratio, other.live_ratio),
            vod_frames: (
                lerp_u(self.vod_frames.0, other.vod_frames.0),
                lerp_u(self.vod_frames.1, other.vod_frames.1),
            ),
            live_frames: (
                lerp_u(self.live_frames.0, other.live_frames.0),
                lerp_u(self.live_frames.1, other.live_frames.1),
            ),
        }
    }

    /// Scales both length profiles by `factor` (rounded, floored at one
    /// frame).
    pub fn with_length_scale(&self, factor: f64) -> MixProfile {
        let scale = |v: u64| ((v as f64) * factor).round().max(1.0) as u64;
        MixProfile {
            vod_frames: (scale(self.vod_frames.0), scale(self.vod_frames.1)),
            live_frames: (scale(self.live_frames.0), scale(self.live_frames.1)),
            ..*self
        }
    }

    pub(crate) fn validate(&self, phase: usize) -> Result<(), crate::ScenarioError> {
        use crate::ScenarioError::InvalidPhase;
        for (what, v) in [("hr_ratio", self.hr_ratio), ("live_ratio", self.live_ratio)] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(InvalidPhase {
                    phase,
                    what,
                    value: v,
                });
            }
        }
        for (what, (lo, hi)) in [
            ("vod_frames", self.vod_frames),
            ("live_frames", self.live_frames),
        ] {
            if lo == 0 || hi < lo {
                return Err(InvalidPhase {
                    phase,
                    what,
                    value: lo as f64,
                });
            }
        }
        Ok(())
    }
}

/// One composable arrival phase: a rate curve over its duration plus a
/// session-class mix (fixed or evolving).
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Constant-rate arrivals with a fixed mix.
    Steady {
        /// Phase length (virtual seconds).
        duration_s: f64,
        /// Arrival rate (Hz).
        rate_hz: f64,
        /// Session-class mix.
        mix: MixProfile,
    },
    /// A sinusoidal daily cycle:
    /// `λ(t) = mean · (1 + amplitude · sin(2π (t + phase_offset_s) / period_s))`,
    /// clamped at zero.
    Diurnal {
        /// Phase length (virtual seconds) — typically a whole number of
        /// periods.
        duration_s: f64,
        /// Mean arrival rate (Hz).
        mean_rate_hz: f64,
        /// Relative swing in `[0, 1]`: 0 is flat, 1 swings between 0
        /// and twice the mean.
        amplitude: f64,
        /// The "day" length (virtual seconds).
        period_s: f64,
        /// Shifts where in the cycle the phase starts (e.g.
        /// `0.75 · period_s` starts at the trough).
        phase_offset_s: f64,
        /// Session-class mix.
        mix: MixProfile,
    },
    /// A flash crowd around a scheduled instant: base rate, a linear
    /// ramp over `ramp_s` up to `peak_rate_hz` at `event_at_s`, then an
    /// exponential decay back toward base with time constant `decay_s`.
    FlashCrowd {
        /// Phase length (virtual seconds).
        duration_s: f64,
        /// Rate before the ramp and the decay's asymptote (Hz).
        base_rate_hz: f64,
        /// Rate at the event instant (Hz).
        peak_rate_hz: f64,
        /// When the event fires, relative to the phase start (seconds).
        event_at_s: f64,
        /// Length of the linear pre-event ramp (0 for a step).
        ramp_s: f64,
        /// Post-event exponential decay time constant (seconds).
        decay_s: f64,
        /// Session-class mix.
        mix: MixProfile,
    },
    /// Rate mass moving between session-class mixes: total rate is
    /// constant while the mix blends linearly from one region's profile
    /// to another's over the phase — daylight handing traffic between
    /// regions.
    RegionalShift {
        /// Phase length (virtual seconds).
        duration_s: f64,
        /// Arrival rate (Hz), constant over the shift.
        rate_hz: f64,
        /// Mix at the phase start.
        from: MixProfile,
        /// Mix at the phase end.
        to: MixProfile,
    },
    /// The content itself drifting: the HR share moves from
    /// `hr_from` to `hr_to` and session lengths scale from
    /// `length_scale_from` to `length_scale_to` over the phase, on top
    /// of the base mix — resolutions and clip lengths evolving with the
    /// catalog.
    ContentDrift {
        /// Phase length (virtual seconds).
        duration_s: f64,
        /// Arrival rate (Hz).
        rate_hz: f64,
        /// Base session-class mix (its `hr_ratio` is overridden by the
        /// drift).
        mix: MixProfile,
        /// HR share at the phase start.
        hr_from: f64,
        /// HR share at the phase end.
        hr_to: f64,
        /// Session-length scale factor at the phase start.
        length_scale_from: f64,
        /// Session-length scale factor at the phase end.
        length_scale_to: f64,
    },
}

impl Phase {
    /// The phase's length (virtual seconds).
    pub fn duration_s(&self) -> f64 {
        match *self {
            Phase::Steady { duration_s, .. }
            | Phase::Diurnal { duration_s, .. }
            | Phase::FlashCrowd { duration_s, .. }
            | Phase::RegionalShift { duration_s, .. }
            | Phase::ContentDrift { duration_s, .. } => duration_s,
        }
    }

    /// A short label for reports and pool-timeline annotations.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Steady { .. } => "steady",
            Phase::Diurnal { .. } => "diurnal",
            Phase::FlashCrowd { .. } => "flash-crowd",
            Phase::RegionalShift { .. } => "regional-shift",
            Phase::ContentDrift { .. } => "content-drift",
        }
    }

    /// The instantaneous arrival rate `t` seconds into the phase (Hz).
    pub fn rate_hz_at(&self, t: f64) -> f64 {
        match *self {
            Phase::Steady { rate_hz, .. }
            | Phase::RegionalShift { rate_hz, .. }
            | Phase::ContentDrift { rate_hz, .. } => rate_hz,
            Phase::Diurnal {
                mean_rate_hz,
                amplitude,
                period_s,
                phase_offset_s,
                ..
            } => {
                let angle = std::f64::consts::TAU * (t + phase_offset_s) / period_s;
                (mean_rate_hz * (1.0 + amplitude * angle.sin())).max(0.0)
            }
            Phase::FlashCrowd {
                base_rate_hz,
                peak_rate_hz,
                event_at_s,
                ramp_s,
                decay_s,
                ..
            } => {
                if t >= event_at_s {
                    base_rate_hz
                        + (peak_rate_hz - base_rate_hz) * (-(t - event_at_s) / decay_s).exp()
                } else if t >= event_at_s - ramp_s {
                    base_rate_hz
                        + (peak_rate_hz - base_rate_hz) * (t - (event_at_s - ramp_s)) / ramp_s
                } else {
                    base_rate_hz
                }
            }
        }
    }

    /// The phase's peak rate — the thinning envelope `λ_max ≥ λ(t)`.
    pub fn peak_rate_hz(&self) -> f64 {
        match *self {
            Phase::Steady { rate_hz, .. }
            | Phase::RegionalShift { rate_hz, .. }
            | Phase::ContentDrift { rate_hz, .. } => rate_hz,
            Phase::Diurnal {
                mean_rate_hz,
                amplitude,
                ..
            } => mean_rate_hz * (1.0 + amplitude),
            Phase::FlashCrowd {
                base_rate_hz,
                peak_rate_hz,
                ..
            } => base_rate_hz.max(peak_rate_hz),
        }
    }

    /// The session-class mix in force `t` seconds into the phase.
    pub fn mix_at(&self, t: f64) -> MixProfile {
        match *self {
            Phase::Steady { ref mix, .. }
            | Phase::Diurnal { ref mix, .. }
            | Phase::FlashCrowd { ref mix, .. } => *mix,
            Phase::RegionalShift {
                duration_s,
                ref from,
                ref to,
                ..
            } => from.blend(to, t / duration_s),
            Phase::ContentDrift {
                duration_s,
                ref mix,
                hr_from,
                hr_to,
                length_scale_from,
                length_scale_to,
                ..
            } => {
                let w = (t / duration_s).clamp(0.0, 1.0);
                let mut m = mix.with_length_scale(
                    length_scale_from + (length_scale_to - length_scale_from) * w,
                );
                m.hr_ratio = hr_from + (hr_to - hr_from) * w;
                m
            }
        }
    }

    pub(crate) fn validate(&self, phase: usize) -> Result<(), crate::ScenarioError> {
        use crate::ScenarioError::InvalidPhase;
        let positive = |what, value: f64| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(InvalidPhase { phase, what, value })
            }
        };
        let non_negative = |what, value: f64| {
            if value.is_finite() && value >= 0.0 {
                Ok(())
            } else {
                Err(InvalidPhase { phase, what, value })
            }
        };
        positive("duration_s", self.duration_s())?;
        match *self {
            Phase::Steady {
                rate_hz, ref mix, ..
            } => {
                non_negative("rate_hz", rate_hz)?;
                mix.validate(phase)
            }
            Phase::Diurnal {
                mean_rate_hz,
                amplitude,
                period_s,
                phase_offset_s,
                ref mix,
                ..
            } => {
                non_negative("mean_rate_hz", mean_rate_hz)?;
                if !(amplitude.is_finite() && (0.0..=1.0).contains(&amplitude)) {
                    return Err(InvalidPhase {
                        phase,
                        what: "amplitude",
                        value: amplitude,
                    });
                }
                positive("period_s", period_s)?;
                if !phase_offset_s.is_finite() {
                    return Err(InvalidPhase {
                        phase,
                        what: "phase_offset_s",
                        value: phase_offset_s,
                    });
                }
                mix.validate(phase)
            }
            Phase::FlashCrowd {
                base_rate_hz,
                peak_rate_hz,
                event_at_s,
                ramp_s,
                decay_s,
                ref mix,
                ..
            } => {
                non_negative("base_rate_hz", base_rate_hz)?;
                non_negative("peak_rate_hz", peak_rate_hz)?;
                if peak_rate_hz < base_rate_hz {
                    return Err(InvalidPhase {
                        phase,
                        what: "peak_rate_hz below base_rate_hz",
                        value: peak_rate_hz,
                    });
                }
                non_negative("event_at_s", event_at_s)?;
                non_negative("ramp_s", ramp_s)?;
                positive("decay_s", decay_s)?;
                mix.validate(phase)
            }
            Phase::RegionalShift {
                rate_hz,
                ref from,
                ref to,
                ..
            } => {
                non_negative("rate_hz", rate_hz)?;
                from.validate(phase)?;
                to.validate(phase)
            }
            Phase::ContentDrift {
                rate_hz,
                ref mix,
                hr_from,
                hr_to,
                length_scale_from,
                length_scale_to,
                ..
            } => {
                non_negative("rate_hz", rate_hz)?;
                mix.validate(phase)?;
                for (what, v) in [("hr_from", hr_from), ("hr_to", hr_to)] {
                    if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                        return Err(InvalidPhase {
                            phase,
                            what,
                            value: v,
                        });
                    }
                }
                positive("length_scale_from", length_scale_from)?;
                positive("length_scale_to", length_scale_to)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_rate_cycles_and_never_goes_negative() {
        let p = Phase::Diurnal {
            duration_s: 100.0,
            mean_rate_hz: 2.0,
            amplitude: 1.0,
            period_s: 100.0,
            phase_offset_s: 75.0, // start at the trough
            mix: MixProfile::vod_heavy(),
        };
        assert!(p.rate_hz_at(0.0) < 1e-9, "trough start");
        assert!((p.rate_hz_at(50.0) - 4.0).abs() < 1e-9, "peak mid-phase");
        for i in 0..100 {
            let r = p.rate_hz_at(i as f64);
            assert!(r >= 0.0 && r <= p.peak_rate_hz() + 1e-12);
        }
    }

    #[test]
    fn flash_crowd_ramps_spikes_and_decays() {
        let p = Phase::FlashCrowd {
            duration_s: 60.0,
            base_rate_hz: 0.5,
            peak_rate_hz: 4.5,
            event_at_s: 20.0,
            ramp_s: 10.0,
            decay_s: 5.0,
            mix: MixProfile::live_heavy(),
        };
        assert_eq!(p.rate_hz_at(0.0), 0.5);
        assert!((p.rate_hz_at(15.0) - 2.5).abs() < 1e-9, "mid-ramp");
        assert!((p.rate_hz_at(20.0) - 4.5).abs() < 1e-9, "event instant");
        let after = p.rate_hz_at(25.0);
        assert!(after > 0.5 && after < 4.5, "decaying: {after}");
        assert!(p.rate_hz_at(59.0) < 0.51 + 0.01);
        assert_eq!(p.peak_rate_hz(), 4.5);
    }

    #[test]
    fn regional_shift_blends_the_mixes() {
        let p = Phase::RegionalShift {
            duration_s: 10.0,
            rate_hz: 1.0,
            from: MixProfile::vod_heavy(),
            to: MixProfile::live_heavy(),
        };
        assert_eq!(p.mix_at(0.0), MixProfile::vod_heavy());
        assert_eq!(p.mix_at(10.0), MixProfile::live_heavy());
        let mid = p.mix_at(5.0);
        assert!((mid.live_ratio - 0.4).abs() < 1e-9);
        assert!(mid.hr_ratio > 0.35 && mid.hr_ratio < 0.6);
    }

    #[test]
    fn content_drift_moves_hr_share_and_lengths() {
        let p = Phase::ContentDrift {
            duration_s: 10.0,
            rate_hz: 1.0,
            mix: MixProfile::vod_heavy(),
            hr_from: 0.1,
            hr_to: 0.9,
            length_scale_from: 1.0,
            length_scale_to: 2.0,
        };
        assert!((p.mix_at(0.0).hr_ratio - 0.1).abs() < 1e-9);
        assert!((p.mix_at(10.0).hr_ratio - 0.9).abs() < 1e-9);
        let end = p.mix_at(10.0);
        assert_eq!(end.vod_frames, (192, 480));
    }

    #[test]
    fn blend_floors_frame_bounds_at_one() {
        let tiny = MixProfile {
            vod_frames: (1, 1),
            live_frames: (1, 1),
            ..MixProfile::vod_heavy()
        };
        let m = tiny.blend(&tiny, 0.5).with_length_scale(0.01);
        assert_eq!(m.vod_frames, (1, 1));
        assert_eq!(m.live_frames, (1, 1));
    }
}
