//! Scenario-trace persistence: a versioned, std-only binary codec for
//! realized scenarios, built on the same writer/reader primitives as
//! `mamut_core::snapshot`.
//!
//! A [`RealizedScenario`] is the unit of replay: persisting it (rather
//! than the generating description) pins the *exact* arrival instants
//! and session draws, so a sweep re-run months later — or on a machine
//! with a different libm — replays byte-for-byte. Arrival times and
//! the horizon are encoded as IEEE-754 bit patterns; encode → decode →
//! encode is byte-identical.

use mamut_core::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use mamut_fleet::SessionRequest;

use crate::scenario::RealizedScenario;

/// Magic bytes opening every encoded scenario trace.
const TRACE_MAGIC: &[u8; 8] = b"MAMUTSC\0";

/// Current trace codec version. Decoders reject anything newer.
pub const TRACE_VERSION: u16 = 1;

impl RealizedScenario {
    /// Encodes the realized trace — name, seed, horizon, phase marks
    /// and every arrival — into the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        for &b in TRACE_MAGIC {
            w.put_u8(b);
        }
        w.put_u16(TRACE_VERSION);
        w.put_str(&self.name);
        w.put_u64(self.seed);
        w.put_f64(self.horizon_s);
        w.put_u32(self.marks.len() as u32);
        for (t, label) in &self.marks {
            w.put_f64(*t);
            w.put_str(label);
        }
        w.put_u32(self.arrivals.len() as u32);
        for r in &self.arrivals {
            w.put_u64(r.id);
            w.put_f64(r.arrival_s);
            w.put_bool(r.hr);
            w.put_bool(r.live);
            w.put_u64(r.frames);
            w.put_u64(r.seed);
        }
        w.into_bytes()
    }

    /// Decodes a trace produced by [`RealizedScenario::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] for a stream this codec cannot accept: bad
    /// magic, a newer version, truncation, non-finite or unsorted
    /// arrival times, or zero-length sessions.
    pub fn from_bytes(bytes: &[u8]) -> Result<RealizedScenario, SnapshotError> {
        if bytes.len() < TRACE_MAGIC.len() || &bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = SnapshotReader::new(&bytes[TRACE_MAGIC.len()..]);
        let version = r.get_u16()?;
        if version > TRACE_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let name = r.get_str()?;
        let seed = r.get_u64()?;
        let horizon_s = r.get_f64()?;
        if !(horizon_s.is_finite() && horizon_s >= 0.0) {
            return Err(SnapshotError::Corrupt("invalid scenario horizon"));
        }
        let n_marks = r.get_u32()? as usize;
        if n_marks > r.remaining() / 12 {
            return Err(SnapshotError::Truncated);
        }
        let mut marks = Vec::with_capacity(n_marks);
        for _ in 0..n_marks {
            let t = r.get_f64()?;
            if !t.is_finite() {
                return Err(SnapshotError::Corrupt("non-finite phase mark"));
            }
            marks.push((t, r.get_str()?));
        }
        let n_arrivals = r.get_u32()? as usize;
        // Every arrival costs 34 encoded bytes; a count beyond the
        // remaining input is a truncation, not an allocation request.
        if n_arrivals > r.remaining() / 34 {
            return Err(SnapshotError::Truncated);
        }
        let mut arrivals: Vec<SessionRequest> = Vec::with_capacity(n_arrivals);
        for _ in 0..n_arrivals {
            let request = SessionRequest {
                id: r.get_u64()?,
                arrival_s: r.get_f64()?,
                hr: r.get_bool()?,
                live: r.get_bool()?,
                frames: r.get_u64()?,
                seed: r.get_u64()?,
            };
            if !request.arrival_s.is_finite() {
                return Err(SnapshotError::Corrupt("non-finite arrival time"));
            }
            if request.frames == 0 {
                return Err(SnapshotError::Corrupt("zero-length session"));
            }
            if arrivals
                .last()
                .is_some_and(|prev| prev.arrival_s > request.arrival_s)
            {
                return Err(SnapshotError::Corrupt("arrivals out of order"));
            }
            arrivals.push(request);
        }
        r.expect_end()?;
        Ok(RealizedScenario {
            name,
            seed,
            horizon_s,
            arrivals,
            marks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn sample() -> RealizedScenario {
        catalog::flash_mob().realize().unwrap()
    }

    #[test]
    fn round_trip_preserves_the_trace_exactly() {
        let trace = sample();
        let bytes = trace.to_bytes();
        let back = RealizedScenario::from_bytes(&bytes).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_bytes(), bytes, "re-encoding is byte-identical");
        // The decoded trace replays through the same fleet entry point.
        assert_eq!(back.workload().len(), trace.len());
    }

    #[test]
    fn bad_magic_version_and_truncation_are_rejected() {
        let bytes = sample().to_bytes();
        assert_eq!(
            RealizedScenario::from_bytes(b"NOTATRACE...."),
            Err(SnapshotError::BadMagic)
        );
        let mut newer = bytes.clone();
        newer[TRACE_MAGIC.len()] = 0xFF;
        assert!(matches!(
            RealizedScenario::from_bytes(&newer),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        for cut in TRACE_MAGIC.len()..bytes.len() {
            assert!(
                RealizedScenario::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} slipped through"
            );
        }
        let mut trailing = bytes;
        trailing.push(7);
        assert!(RealizedScenario::from_bytes(&trailing).is_err());
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let mut trace = sample();
        trace.arrivals[0].arrival_s = f64::NAN;
        assert_eq!(
            RealizedScenario::from_bytes(&trace.to_bytes()),
            Err(SnapshotError::Corrupt("non-finite arrival time"))
        );
        let mut trace = sample();
        trace.arrivals[1].frames = 0;
        assert_eq!(
            RealizedScenario::from_bytes(&trace.to_bytes()),
            Err(SnapshotError::Corrupt("zero-length session"))
        );
        let mut trace = sample();
        trace.arrivals.swap(0, 1);
        assert_eq!(
            RealizedScenario::from_bytes(&trace.to_bytes()),
            Err(SnapshotError::Corrupt("arrivals out of order"))
        );
    }
}
