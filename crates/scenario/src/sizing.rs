//! Canonical elastic-fleet sizing for the preset catalog: the epoch
//! grid, Little's-law constants and scaler builders shared by
//! `examples/scenario_sweep.rs`, `benches/scenario_forecast.rs` and
//! `tests/scenario_determinism.rs`.
//!
//! The exact-gated bench counters (`scenario_diurnal_node_epochs`) and
//! the sweep's asserted seasonal-vs-EWMA win both depend on this
//! configuration, so it lives in one place: retune it here and every
//! consumer — example assertion, bench canary, determinism matrix —
//! moves together instead of drifting apart behind copy-pasted
//! constants.

use mamut_fleet::{ForecastScaler, HoltWinters, PredictiveScaler};

use crate::catalog;
use crate::scenario::RealizedScenario;

/// Fleet epoch length (virtual seconds): long enough that per-epoch
/// arrival counts carry the seasonal signal over Poisson noise.
pub const SWEEP_EPOCH_S: f64 = 8.0;

/// Concurrent sessions one node is provisioned for — near capacity at
/// the catalog's thread mix, so a scaler that mistimes the pool
/// actually hurts QoS.
pub const SWEEP_SESSIONS_PER_NODE: f64 = 3.5;

/// Contention margin on the trace-derived mean residence: sessions run
/// below the nominal frame rate when nodes fill up, so they stay
/// resident longer than `frames / target_fps` says.
pub const RESIDENCE_MARGIN: f64 = 1.5;

/// Pool limits shared by both scalers.
pub const SWEEP_POOL: (usize, usize) = (1, 32);

/// Cooldown between scaling events, shared by both scalers.
pub const SWEEP_COOLDOWN_EPOCHS: u64 = 2;

/// Epochs of lead the forecast scaler provisions ahead by.
pub const SWEEP_LEAD_EPOCHS: u64 = 1;

/// Holt-Winters smoothing (α, β, γ) tuned for the catalog's noisy
/// per-epoch counts: smooth level, near-dormant trend, slow seasonal
/// updates.
pub const SWEEP_SMOOTHING: (f64, f64, f64) = (0.25, 0.02, 0.2);

/// Epochs per catalog "day" on the sweep's epoch grid — the season
/// length the seasonal predictors are configured with.
pub fn season_epochs() -> usize {
    (catalog::DAY_S / SWEEP_EPOCH_S) as usize
}

/// Expected session residence for a realized trace: the mean session
/// length at the paper's 24 FPS target, padded by [`RESIDENCE_MARGIN`].
/// Both scalers get the same value — it is workload knowledge, not
/// policy.
pub fn trace_mean_session_s(realized: &RealizedScenario) -> f64 {
    let frames: u64 = realized.arrivals.iter().map(|r| r.frames).sum();
    frames as f64 / realized.len().max(1) as f64 / 24.0 * RESIDENCE_MARGIN
}

/// The seasonal contender: a [`ForecastScaler`] around Holt-Winters
/// with the canonical sweep sizing for `realized`.
pub fn seasonal_sweep_scaler(realized: &RealizedScenario) -> ForecastScaler {
    let (alpha, beta, gamma) = SWEEP_SMOOTHING;
    ForecastScaler::new(Box::new(
        HoltWinters::new(season_epochs()).with_smoothing(alpha, beta, gamma),
    ))
    .with_lead_epochs(SWEEP_LEAD_EPOCHS)
    .with_mean_session_s(trace_mean_session_s(realized))
    .with_sessions_per_node(SWEEP_SESSIONS_PER_NODE)
    .with_limits(SWEEP_POOL.0, SWEEP_POOL.1)
    .with_cooldown(SWEEP_COOLDOWN_EPOCHS)
}

/// The reactive baseline: the EWMA [`PredictiveScaler`] with the same
/// sizing constants, so a sweep isolates *what the scaler believes
/// about the future*.
pub fn ewma_sweep_scaler(realized: &RealizedScenario) -> PredictiveScaler {
    PredictiveScaler::new()
        .with_mean_session_s(trace_mean_session_s(realized))
        .with_sessions_per_node(SWEEP_SESSIONS_PER_NODE)
        .with_limits(SWEEP_POOL.0, SWEEP_POOL.1)
        .with_cooldown(SWEEP_COOLDOWN_EPOCHS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn season_divides_the_day_exactly() {
        assert!(season_epochs() >= 2);
        assert_eq!(season_epochs() as f64 * SWEEP_EPOCH_S, catalog::DAY_S);
    }

    #[test]
    fn residence_derives_from_the_trace() {
        let realized = catalog::daily_vod().realize().unwrap();
        let w = trace_mean_session_s(&realized);
        // VOD-heavy mix: ~4–10 s clips plus margin lands near 12 s.
        assert!((8.0..=18.0).contains(&w), "implausible residence {w}");
        let scaler = seasonal_sweep_scaler(&realized);
        assert_eq!(scaler.lead_epochs, SWEEP_LEAD_EPOCHS);
        assert!((scaler.mean_session_s - w).abs() < 1e-12);
        let ewma = ewma_sweep_scaler(&realized);
        assert!((ewma.mean_session_s - w).abs() < 1e-12);
    }
}
