//! Named scenario presets: the shapes of traffic a transcoding fleet
//! actually faces, sized so a full sweep stays CI-friendly.
//!
//! | preset | shape | stresses |
//! |---|---|---|
//! | [`daily_vod`] | three diurnal "days" of VOD traffic | seasonal forecasting, shed-ahead |
//! | [`live_final`] | quiet → ramped flash crowd at a final → tail | provision-ahead, drain-after |
//! | [`flash_mob`] | near-step surge with fast decay | reactive headroom, cooldown tuning |
//! | [`regional_follow_the_sun`] | rate mass shifting between regional mixes | class-mix drift, knowledge reuse |
//!
//! Every preset is an ordinary [`Scenario`] value — reseed it with
//! [`Scenario::with_seed`], extend it with [`Scenario::then`], or use
//! it as a starting point for a custom composition.

use crate::phase::{MixProfile, Phase};
use crate::scenario::Scenario;

/// The simulated "day" length used by the periodic presets (virtual
/// seconds). Short enough that a multi-day sweep finishes in CI, long
/// enough that a cycle spans many fleet epochs.
pub const DAY_S: f64 = 128.0;

/// Three diurnal days of VOD-heavy traffic: the canonical seasonal
/// workload. Starts at the overnight trough, peaks mid-"day", repeats —
/// one day to prime a seasonal predictor, two to profit from it.
pub fn daily_vod() -> Scenario {
    Scenario::new("daily_vod", 101).then(Phase::Diurnal {
        duration_s: 3.0 * DAY_S,
        mean_rate_hz: 6.0,
        amplitude: 0.85,
        period_s: DAY_S,
        phase_offset_s: 0.75 * DAY_S, // start at the trough
        mix: MixProfile::vod_heavy(),
    })
}

/// A championship final: steady background, a ramped flash crowd of
/// live HR viewers around the whistle, then a quiet tail as the crowd
/// drifts off.
pub fn live_final() -> Scenario {
    Scenario::new("live_final", 202)
        .then(Phase::Steady {
            duration_s: 32.0,
            rate_hz: 2.0,
            mix: MixProfile::vod_heavy(),
        })
        .then(Phase::FlashCrowd {
            duration_s: 72.0,
            base_rate_hz: 2.0,
            peak_rate_hz: 6.0,
            event_at_s: 24.0,
            ramp_s: 16.0,
            decay_s: 12.0,
            mix: MixProfile::live_heavy(),
        })
        .then(Phase::Steady {
            duration_s: 32.0,
            rate_hz: 1.5,
            mix: MixProfile::vod_heavy(),
        })
}

/// An unscheduled viral surge: near-zero warning (2 s ramp), a high
/// peak, fast decay — the worst case for purely reactive scaling.
pub fn flash_mob() -> Scenario {
    Scenario::new("flash_mob", 303)
        .then(Phase::Steady {
            duration_s: 24.0,
            rate_hz: 1.2,
            mix: MixProfile::vod_heavy(),
        })
        .then(Phase::FlashCrowd {
            duration_s: 56.0,
            base_rate_hz: 1.2,
            peak_rate_hz: 9.0,
            event_at_s: 8.0,
            ramp_s: 2.0,
            decay_s: 7.0,
            mix: MixProfile {
                hr_ratio: 0.5,
                live_ratio: 0.4,
                ..MixProfile::vod_heavy()
            },
        })
}

/// Follow-the-sun: total demand stays level while the session-class
/// mix hands over from a VOD-heavy region to a live-heavy one and
/// back, with the content catalog drifting HR-ward in between.
pub fn regional_follow_the_sun() -> Scenario {
    Scenario::new("regional_follow_the_sun", 404)
        .then(Phase::RegionalShift {
            duration_s: DAY_S / 2.0,
            rate_hz: 5.0,
            from: MixProfile::vod_heavy(),
            to: MixProfile::live_heavy(),
        })
        .then(Phase::ContentDrift {
            duration_s: DAY_S / 4.0,
            rate_hz: 5.0,
            mix: MixProfile::live_heavy(),
            hr_from: 0.6,
            hr_to: 0.8,
            length_scale_from: 1.0,
            length_scale_to: 1.25,
        })
        .then(Phase::RegionalShift {
            duration_s: DAY_S / 2.0,
            rate_hz: 5.0,
            from: MixProfile::live_heavy(),
            to: MixProfile::vod_heavy(),
        })
}

/// Every preset, in catalog order.
pub fn all() -> Vec<Scenario> {
    vec![
        daily_vod(),
        live_final(),
        flash_mob(),
        regional_follow_the_sun(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_validates_and_realizes() {
        for scenario in all() {
            let realized = scenario
                .realize()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", scenario.name()));
            assert!(
                realized.len() >= 150,
                "{} realized only {} arrivals",
                scenario.name(),
                realized.len()
            );
            assert!(
                realized.len() <= 3000,
                "{} realized {} arrivals — too big for CI sweeps",
                scenario.name(),
                realized.len()
            );
            assert_eq!(realized.name, scenario.name());
            assert_eq!(realized.marks.len(), scenario.phases().len());
        }
    }

    #[test]
    fn preset_names_are_unique_and_stable() {
        let names: Vec<&str> = vec![
            "daily_vod",
            "live_final",
            "flash_mob",
            "regional_follow_the_sun",
        ];
        let got: Vec<String> = all().iter().map(|s| s.name().to_owned()).collect();
        assert_eq!(got, names);
    }

    #[test]
    fn daily_vod_starts_quiet_and_peaks_mid_day() {
        let s = daily_vod();
        assert!(
            s.rate_hz_at(0.0) < 1.2,
            "trough start: {}",
            s.rate_hz_at(0.0)
        );
        let peak = s.rate_hz_at(DAY_S / 2.0);
        assert!((peak - 6.0 * 1.85).abs() < 1e-9, "mid-day peak off: {peak}");
    }

    #[test]
    fn follow_the_sun_keeps_total_rate_level() {
        let s = regional_follow_the_sun();
        for t in [1.0, 40.0, 80.0, 120.0, 150.0] {
            assert!((s.rate_hz_at(t) - 5.0).abs() < 1e-12, "rate moved at {t}");
        }
    }
}
