//! PSNR model: quality as a function of QP, preset, resolution and content.
//!
//! For typical content and mid-range QPs, HEVC PSNR falls nearly linearly
//! with QP at ≈0.4–0.5 dB per QP step. Busy content (high motion/texture)
//! loses quality at a given QP; smaller frames gain a little (less spatial
//! redundancy per pixel has already been spent by downscaling). These shapes
//! match the paper's Fig. 2 RD curves (≈32–40 dB for 1080p across QP 22–37)
//! and the reported operating points (≈34 dB HR, 36–41 dB LR).

use mamut_video::Resolution;

use crate::Preset;

/// Reference pixel count used as the anchor for resolution effects (1080p).
const REF_PIXELS: f64 = 1920.0 * 1080.0;

/// Constants of the PSNR model, exposed through
/// [`EncoderModelParams`](crate::EncoderModelParams).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PsnrParams {
    /// PSNR at QP 32, `Medium` preset, unit complexity, 1080p.
    pub base_db: f64,
    /// dB lost per QP step above 32 (and gained below).
    pub qp_slope: f64,
    /// dB lost per unit of content complexity above 1.0.
    pub content_penalty: f64,
    /// dB gained per halving of the pixel count below 1080p.
    pub resolution_bonus_per_octave: f64,
    /// Hard clamp range.
    pub floor_db: f64,
    /// Hard clamp range.
    pub ceil_db: f64,
}

impl Default for PsnrParams {
    fn default() -> Self {
        PsnrParams {
            base_db: 37.6,
            qp_slope: 0.45,
            content_penalty: 1.2,
            resolution_bonus_per_octave: 0.43,
            floor_db: 25.0,
            ceil_db: 55.0,
        }
    }
}

/// Computes frame PSNR in dB.
pub(crate) fn psnr_db(
    p: &PsnrParams,
    resolution: Resolution,
    preset: Preset,
    qp: u8,
    complexity: f64,
) -> f64 {
    let pixels = resolution.pixel_count() as f64;
    let octaves_smaller = (REF_PIXELS / pixels).log2().max(0.0);
    let value =
        p.base_db + preset.psnr_offset_db() + p.resolution_bonus_per_octave * octaves_smaller
            - p.qp_slope * (f64::from(qp) - 32.0)
            - p.content_penalty * (complexity - 1.0);
    value.clamp(p.floor_db, p.ceil_db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PsnrParams {
        PsnrParams::default()
    }

    #[test]
    fn psnr_decreases_with_qp() {
        let p = params();
        let mut last = f64::INFINITY;
        for qp in [22u8, 25, 27, 29, 32, 35, 37] {
            let v = psnr_db(&p, Resolution::FULL_HD, Preset::Ultrafast, qp, 1.0);
            assert!(v < last, "qp={qp}");
            last = v;
        }
    }

    #[test]
    fn hr_ultrafast_matches_fig2_range() {
        // Fig. 2: 1080p RD curve spans roughly 32–40 dB over QP 22–37.
        let p = params();
        let hi = psnr_db(&p, Resolution::FULL_HD, Preset::Ultrafast, 22, 1.0);
        let lo = psnr_db(&p, Resolution::FULL_HD, Preset::Ultrafast, 37, 1.0);
        assert!((38.5..=42.0).contains(&hi), "hi = {hi}");
        assert!((31.0..=35.0).contains(&lo), "lo = {lo}");
    }

    #[test]
    fn lr_slow_is_higher_quality_than_hr_ultrafast() {
        // Paper §V-B: LR streams land at 36–41 dB vs ≈34 dB for HR.
        let p = params();
        let lr = psnr_db(&p, Resolution::WVGA, Preset::Slow, 32, 1.0);
        let hr = psnr_db(&p, Resolution::FULL_HD, Preset::Ultrafast, 32, 1.0);
        assert!(lr > hr + 2.0, "lr = {lr}, hr = {hr}");
    }

    #[test]
    fn busy_content_loses_quality() {
        let p = params();
        let calm = psnr_db(&p, Resolution::FULL_HD, Preset::Ultrafast, 32, 0.7);
        let busy = psnr_db(&p, Resolution::FULL_HD, Preset::Ultrafast, 32, 1.6);
        assert!(calm > busy + 0.5);
    }

    #[test]
    fn clamped_to_floor_and_ceiling() {
        let p = PsnrParams {
            floor_db: 30.0,
            ceil_db: 40.0,
            ..PsnrParams::default()
        };
        let floor = psnr_db(&p, Resolution::FULL_HD, Preset::Ultrafast, 51, 3.0);
        assert_eq!(floor, p.floor_db);
        let ceil = psnr_db(&p, Resolution::WVGA, Preset::Slow, 0, 0.25);
        assert_eq!(ceil, p.ceil_db);
    }

    #[test]
    fn resolution_bonus_never_negative_for_large_frames() {
        let p = params();
        let uhd = Resolution::new(3840, 2160).unwrap();
        let v = psnr_db(&p, uhd, Preset::Medium, 32, 1.0);
        // Larger-than-reference frames get no bonus, not a penalty.
        assert!((v - p.base_db).abs() < 1e-9);
    }
}
