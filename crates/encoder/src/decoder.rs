use mamut_video::{FrameInfo, Resolution};

/// Analytic model of the decode half of a transcoder.
///
/// The paper motivates focusing on the encoder: HEVC encoding is ≈100×
/// more complex than decoding (§I, citing Bossen et al.). The simulator
/// still charges decode work so the pipeline is complete — a transcoder
/// decodes the source bitstream before re-encoding every frame.
///
/// # Example
///
/// ```
/// use mamut_encoder::{HevcDecoder, HevcEncoder, Preset};
/// use mamut_video::{FrameInfo, Resolution};
///
/// let dec = HevcDecoder::new(Resolution::FULL_HD);
/// let enc = HevcEncoder::new(Resolution::FULL_HD, Preset::Ultrafast);
/// let frame = FrameInfo { index: 0, complexity: 1.0, scene_cut: false };
/// let decode = dec.decode_cycles(&frame);
/// let encode = enc.encode(32, &frame).unwrap().cycles;
/// assert!(encode / decode > 50.0); // encoder dominates
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HevcDecoder {
    resolution: Resolution,
    cycles_per_pixel: f64,
}

/// Default decode effort: ≈1 % of the ultrafast encode effort, keeping the
/// paper's ~100× encoder/decoder complexity ratio.
const DEFAULT_DECODE_CYCLES_PER_PIXEL: f64 = 3.0;

impl HevcDecoder {
    /// Creates a decoder for the given source resolution.
    pub fn new(resolution: Resolution) -> Self {
        HevcDecoder {
            resolution,
            cycles_per_pixel: DEFAULT_DECODE_CYCLES_PER_PIXEL,
        }
    }

    /// Creates a decoder with explicit per-pixel effort (clamped to ≥ 0).
    pub fn with_cycles_per_pixel(resolution: Resolution, cycles_per_pixel: f64) -> Self {
        HevcDecoder {
            resolution,
            cycles_per_pixel: cycles_per_pixel.max(0.0),
        }
    }

    /// Source resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Decode work for one frame, in cycles. Scene cuts (intra frames)
    /// decode slightly faster per pixel (no motion compensation), which we
    /// fold into the same constant — content complexity matters much less
    /// for decoding than encoding, so only a mild scaling is applied.
    pub fn decode_cycles(&self, frame: &FrameInfo) -> f64 {
        let pixels = self.resolution.pixel_count() as f64;
        let content_factor = 0.8 + 0.2 * frame.complexity;
        pixels * self.cycles_per_pixel * content_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HevcEncoder, Preset};

    fn frame() -> FrameInfo {
        FrameInfo {
            index: 0,
            complexity: 1.0,
            scene_cut: false,
        }
    }

    #[test]
    fn decode_is_about_one_percent_of_encode() {
        let dec = HevcDecoder::new(Resolution::FULL_HD);
        let enc = HevcEncoder::new(Resolution::FULL_HD, Preset::Ultrafast);
        let ratio = enc.encode(32, &frame()).unwrap().cycles / dec.decode_cycles(&frame());
        assert!((50.0..=200.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn decode_scales_with_resolution() {
        let hr = HevcDecoder::new(Resolution::FULL_HD).decode_cycles(&frame());
        let lr = HevcDecoder::new(Resolution::WVGA).decode_cycles(&frame());
        assert!(hr > lr * 4.0);
    }

    #[test]
    fn busier_content_decodes_slower() {
        let dec = HevcDecoder::new(Resolution::WVGA);
        let calm = dec.decode_cycles(&FrameInfo {
            index: 0,
            complexity: 0.5,
            scene_cut: false,
        });
        let busy = dec.decode_cycles(&FrameInfo {
            index: 0,
            complexity: 2.0,
            scene_cut: false,
        });
        assert!(busy > calm);
    }

    #[test]
    fn negative_effort_clamped() {
        let dec = HevcDecoder::with_cycles_per_pixel(Resolution::WVGA, -5.0);
        assert_eq!(dec.decode_cycles(&frame()), 0.0);
    }
}
