//! Analytic HEVC encoder/decoder model for the MAMUT simulator.
//!
//! The paper transcodes with [Kvazaar], an open-source HEVC encoder, using
//! the `ultrafast` preset for 1080p ("HR") streams and `slow` for 832×480
//! ("LR") streams. The MAMUT control loop never inspects pixels — it
//! observes four outputs (throughput, PSNR, bitrate, power) and actuates
//! three knobs (QP, threads, frequency). This crate models exactly that
//! surface:
//!
//! * [`wpp`] — Wavefront Parallel Processing speedup from the CTU-row
//!   makespan formula. Saturation emerges at ≈12 threads for 1080p and
//!   ≈5 threads for 832×480, the two limits the paper reports (§V-A);
//! * [`Preset`] — Kvazaar-like effort presets scaling cycles, quality and
//!   compression;
//! * [`HevcEncoder`] — per-frame `cycles / PSNR / bitrate` from
//!   `(QP, content complexity)`, following standard rate-distortion shapes
//!   (PSNR ≈ linear in QP, bitrate ≈ exponential in QP);
//! * [`HevcDecoder`] — the cheap half of a transcoder (the paper cites a
//!   ≈100× encoder/decoder complexity ratio).
//!
//! Calibration anchors are taken from the paper's Fig. 2 (RD curves, power
//! and FPS for 1080p at 3.2 GHz) and the Table I/II operating points; tests
//! in each module pin those shapes.
//!
//! [Kvazaar]: https://github.com/ultravideo/kvazaar
//!
//! # Example
//!
//! ```
//! use mamut_encoder::{HevcEncoder, Preset};
//! use mamut_video::{FrameInfo, Resolution};
//!
//! let enc = HevcEncoder::new(Resolution::FULL_HD, Preset::Ultrafast);
//! let frame = FrameInfo { index: 0, complexity: 1.0, scene_cut: false };
//! let out = enc.encode(32, &frame).unwrap();
//! assert!(out.cycles > 0.0);
//! assert!(out.psnr_db > 30.0 && out.psnr_db < 45.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decoder;
mod encoder;
mod error;
mod preset;
mod quality;
mod ratecontrol;

pub mod wpp;

pub use decoder::HevcDecoder;
pub use encoder::{EncodeOutcome, EncoderModelParams, HevcEncoder};
pub use error::EncoderError;
pub use preset::Preset;

/// Valid HEVC quantization-parameter range (H.265 spec, 8-bit).
pub const QP_RANGE: std::ops::RangeInclusive<u8> = 0..=51;

/// The QP action set used by MAMUT's `AGqp` agent (paper §III-B).
pub const PAPER_QP_VALUES: [u8; 7] = [22, 25, 27, 29, 32, 35, 37];
