//! Bitrate model: compressed output rate as a function of QP, preset,
//! resolution and content.
//!
//! HEVC bitrate falls exponentially with QP — roughly halving every 5–6 QP
//! steps — and scales with content complexity (more motion → more residual
//! bits). Bits per pixel *rise* for smaller frames (downscaling already
//! removed the easy redundancy). The defaults put a 1080p stream at QP 22
//! near 1.5 MB/s and QP 37 near 0.25 MB/s, matching the bandwidth axis of
//! the paper's Fig. 2, and straddle the paper's 3 Mb/s and 6 Mb/s bitrate
//! state boundaries across the QP action set.

use mamut_video::Resolution;

use crate::Preset;

/// Reference pixel count anchoring the bits-per-pixel model (1080p).
const REF_PIXELS: f64 = 1920.0 * 1080.0;

/// Constants of the bitrate model, exposed through
/// [`EncoderModelParams`](crate::EncoderModelParams).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RateParams {
    /// Bits per pixel at QP 32, `Medium` preset, unit complexity, 1080p.
    pub base_bits_per_pixel: f64,
    /// Exponential decay per QP step (ln 2 / 5.5 halves rate every 5.5 QP).
    pub qp_decay: f64,
    /// Bits-per-pixel growth exponent as frames shrink below 1080p.
    pub resolution_exponent: f64,
    /// Content complexity exponent.
    pub content_exponent: f64,
    /// Playback frame rate the bitstream is timed against (fps).
    pub playback_fps: f64,
}

impl Default for RateParams {
    fn default() -> Self {
        RateParams {
            base_bits_per_pixel: 0.072,
            qp_decay: std::f64::consts::LN_2 / 5.5,
            resolution_exponent: 0.30,
            content_exponent: 0.80,
            playback_fps: 24.0,
        }
    }
}

/// Computes output bitrate in Mb/s.
pub(crate) fn bitrate_mbps(
    p: &RateParams,
    resolution: Resolution,
    preset: Preset,
    qp: u8,
    complexity: f64,
) -> f64 {
    let pixels = resolution.pixel_count() as f64;
    let res_scale = (REF_PIXELS / pixels).powf(p.resolution_exponent).max(1.0);
    let bpp = p.base_bits_per_pixel
        * res_scale
        * preset.bitrate_factor()
        * complexity.powf(p.content_exponent)
        * (-p.qp_decay * (f64::from(qp) - 32.0)).exp();
    bpp * pixels * p.playback_fps / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RateParams {
        RateParams::default()
    }

    #[test]
    fn bitrate_decreases_with_qp() {
        let p = params();
        let mut last = f64::INFINITY;
        for qp in [22u8, 25, 27, 29, 32, 35, 37] {
            let r = bitrate_mbps(&p, Resolution::FULL_HD, Preset::Ultrafast, qp, 1.0);
            assert!(r < last, "qp={qp}");
            last = r;
        }
    }

    #[test]
    fn hr_range_matches_fig2_bandwidth_axis() {
        // Fig. 2 plots bandwidth up to ≈1.5 MB/s (12 Mb/s) at QP 22 and a
        // fraction of that at QP 37.
        let p = params();
        let hi = bitrate_mbps(&p, Resolution::FULL_HD, Preset::Ultrafast, 22, 1.0);
        let lo = bitrate_mbps(&p, Resolution::FULL_HD, Preset::Ultrafast, 37, 1.0);
        assert!((9.0..=15.0).contains(&hi), "hi = {hi} Mb/s");
        assert!((1.2..=3.5).contains(&lo), "lo = {lo} Mb/s");
    }

    #[test]
    fn qp_action_set_straddles_the_state_boundaries() {
        // The paper's bitrate states split at 3 and 6 Mb/s; the QP action
        // set must be able to land an HR stream in each band.
        let p = params();
        let rate = |qp| bitrate_mbps(&p, Resolution::FULL_HD, Preset::Ultrafast, qp, 1.0);
        assert!(rate(22) > 6.0);
        assert!(rate(32) > 3.0 && rate(32) < 6.0);
        assert!(rate(37) < 3.0);
    }

    #[test]
    fn halving_period_is_about_five_and_a_half_qp() {
        let p = params();
        let r32 = bitrate_mbps(&p, Resolution::FULL_HD, Preset::Medium, 32, 1.0);
        let r37 = bitrate_mbps(&p, Resolution::FULL_HD, Preset::Medium, 37, 1.0);
        let ratio = r32 / r37;
        assert!((1.7..=2.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn smaller_frames_use_fewer_absolute_bits() {
        let p = params();
        let hr = bitrate_mbps(&p, Resolution::FULL_HD, Preset::Medium, 32, 1.0);
        let lr = bitrate_mbps(&p, Resolution::WVGA, Preset::Medium, 32, 1.0);
        assert!(lr < hr / 2.0);
    }

    #[test]
    fn smaller_frames_use_more_bits_per_pixel() {
        let p = params();
        let hr = bitrate_mbps(&p, Resolution::FULL_HD, Preset::Medium, 32, 1.0)
            / Resolution::FULL_HD.pixel_count() as f64;
        let lr = bitrate_mbps(&p, Resolution::WVGA, Preset::Medium, 32, 1.0)
            / Resolution::WVGA.pixel_count() as f64;
        assert!(lr > hr);
    }

    #[test]
    fn busy_content_needs_more_bits() {
        let p = params();
        let calm = bitrate_mbps(&p, Resolution::FULL_HD, Preset::Medium, 32, 0.7);
        let busy = bitrate_mbps(&p, Resolution::FULL_HD, Preset::Medium, 32, 1.6);
        assert!(busy > calm * 1.5);
    }

    #[test]
    fn slow_preset_compresses_better_than_ultrafast() {
        let p = params();
        let uf = bitrate_mbps(&p, Resolution::WVGA, Preset::Ultrafast, 32, 1.0);
        let slow = bitrate_mbps(&p, Resolution::WVGA, Preset::Slow, 32, 1.0);
        assert!(slow < uf);
    }
}
