use std::error::Error;
use std::fmt;

/// Errors produced by the encoder model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EncoderError {
    /// QP outside the H.265 range 0..=51.
    QpOutOfRange(u8),
    /// A model parameter was invalid.
    InvalidParam {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Zero threads requested for an encode.
    ZeroThreads,
}

impl fmt::Display for EncoderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncoderError::QpOutOfRange(qp) => {
                write!(f, "quantization parameter {qp} outside valid range 0..=51")
            }
            EncoderError::InvalidParam { name, value } => {
                write!(f, "encoder parameter {name} has invalid value {value}")
            }
            EncoderError::ZeroThreads => write!(f, "at least one encoding thread is required"),
        }
    }
}

impl Error for EncoderError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_offender() {
        assert!(EncoderError::QpOutOfRange(60).to_string().contains("60"));
        assert!(EncoderError::InvalidParam {
            name: "cycles_per_pixel",
            value: -1.0
        }
        .to_string()
        .contains("cycles_per_pixel"));
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<T: Error + Send + Sync>() {}
        assert_bounds::<EncoderError>();
    }
}
