use mamut_video::{FrameInfo, Resolution};

use crate::quality::{self, PsnrParams};
use crate::ratecontrol::{self, RateParams};
use crate::{EncoderError, Preset, QP_RANGE};

/// Everything one encoded frame tells the control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeOutcome {
    /// CPU work of the frame in cycles (to be divided by the session's
    /// effective compute rate to obtain wall time).
    pub cycles: f64,
    /// Output quality in dB.
    pub psnr_db: f64,
    /// Output bitrate in Mb/s (at playback speed).
    pub bitrate_mbps: f64,
}

/// Tunable constants of the analytic encoder model.
///
/// The defaults reproduce the shapes of the paper's Fig. 2 (see the module
/// tests of [`crate::wpp`], `quality` and `ratecontrol`); change them only
/// to model a different encoder or platform generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderModelParams {
    /// Cycles multiplier per QP step below 32 (RDO searches more modes at
    /// low QP; Fig. 2 shows QP 22 visibly slower than QP 37).
    pub qp_cycles_slope: f64,
    /// Weight of content complexity in the cycles model:
    /// `factor = (1 - w) + w·complexity`.
    pub content_cycles_weight: f64,
    /// Extra cycles factor for scene-cut (intra) frames.
    pub scene_cut_cycles_factor: f64,
    pub(crate) psnr: PsnrParams,
    pub(crate) rate: RateParams,
}

impl Default for EncoderModelParams {
    fn default() -> Self {
        EncoderModelParams {
            qp_cycles_slope: 0.035,
            content_cycles_weight: 0.45,
            scene_cut_cycles_factor: 1.25,
            psnr: PsnrParams::default(),
            rate: RateParams::default(),
        }
    }
}

/// Analytic model of a Kvazaar-style HEVC encoder bound to one stream.
///
/// One encoder instance models one transcoding session's encode half: it is
/// configured with the stream's [`Resolution`] and [`Preset`] and then maps
/// `(QP, frame)` to an [`EncodeOutcome`] — cycles, PSNR and bitrate. Thread
/// count and frequency do not change the *work*; they change how fast the
/// work is retired, which is the simulator's job (cycles ÷ rate).
///
/// # Example
///
/// ```
/// use mamut_encoder::{HevcEncoder, Preset};
/// use mamut_video::{FrameInfo, Resolution};
///
/// let enc = HevcEncoder::new(Resolution::WVGA, Preset::Slow);
/// let frame = FrameInfo { index: 0, complexity: 1.2, scene_cut: false };
/// let out = enc.encode(27, &frame).unwrap();
/// // 832×480 at slow preset: modest bitrate, high quality.
/// assert!(out.bitrate_mbps < 4.0);
/// assert!(out.psnr_db > 36.0);
/// ```
#[derive(Debug, Clone)]
pub struct HevcEncoder {
    resolution: Resolution,
    preset: Preset,
    params: EncoderModelParams,
}

impl HevcEncoder {
    /// Creates an encoder with default model parameters.
    pub fn new(resolution: Resolution, preset: Preset) -> Self {
        HevcEncoder {
            resolution,
            preset,
            params: EncoderModelParams::default(),
        }
    }

    /// Creates an encoder with explicit model parameters.
    pub fn with_params(resolution: Resolution, preset: Preset, params: EncoderModelParams) -> Self {
        HevcEncoder {
            resolution,
            preset,
            params,
        }
    }

    /// Stream resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Effort preset.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// Model parameters.
    pub fn params(&self) -> &EncoderModelParams {
        &self.params
    }

    /// Encodes one frame at the given QP.
    ///
    /// # Errors
    ///
    /// Returns [`EncoderError::QpOutOfRange`] for QP outside `0..=51`.
    pub fn encode(&self, qp: u8, frame: &FrameInfo) -> Result<EncodeOutcome, EncoderError> {
        if !QP_RANGE.contains(&qp) {
            return Err(EncoderError::QpOutOfRange(qp));
        }
        Ok(EncodeOutcome {
            cycles: self.frame_cycles(qp, frame),
            psnr_db: quality::psnr_db(
                &self.params.psnr,
                self.resolution,
                self.preset,
                qp,
                frame.complexity,
            ),
            bitrate_mbps: ratecontrol::bitrate_mbps(
                &self.params.rate,
                self.resolution,
                self.preset,
                qp,
                frame.complexity,
            ),
        })
    }

    /// CPU work of one frame, in cycles.
    fn frame_cycles(&self, qp: u8, frame: &FrameInfo) -> f64 {
        let p = &self.params;
        let pixels = self.resolution.pixel_count() as f64;
        let qp_factor = (-p.qp_cycles_slope * (f64::from(qp) - 32.0)).exp();
        let content_factor =
            (1.0 - p.content_cycles_weight) + p.content_cycles_weight * frame.complexity;
        let cut_factor = if frame.scene_cut {
            p.scene_cut_cycles_factor
        } else {
            1.0
        };
        pixels * self.preset.cycles_per_pixel() * qp_factor * content_factor * cut_factor
    }

    /// Convenience: frames per second this encoder achieves at the given
    /// knob settings on an uncontended machine.
    ///
    /// `rate = freq·threads·wpp_efficiency`; used by the Fig. 2
    /// characterization bench and by capacity planning in examples.
    pub fn throughput_fps(
        &self,
        qp: u8,
        frame: &FrameInfo,
        threads: u32,
        freq_ghz: f64,
    ) -> Result<f64, EncoderError> {
        if threads == 0 {
            return Err(EncoderError::ZeroThreads);
        }
        if !(freq_ghz.is_finite() && freq_ghz > 0.0) {
            return Err(EncoderError::InvalidParam {
                name: "freq_ghz",
                value: freq_ghz,
            });
        }
        let outcome = self.encode(qp, frame)?;
        let speedup = crate::wpp::speedup_at(self.resolution, threads);
        Ok(freq_ghz * 1e9 * speedup / outcome.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(complexity: f64) -> FrameInfo {
        FrameInfo {
            index: 0,
            complexity,
            scene_cut: false,
        }
    }

    fn hr() -> HevcEncoder {
        HevcEncoder::new(Resolution::FULL_HD, Preset::Ultrafast)
    }

    fn lr() -> HevcEncoder {
        HevcEncoder::new(Resolution::WVGA, Preset::Slow)
    }

    #[test]
    fn qp_out_of_range_rejected() {
        assert_eq!(
            hr().encode(52, &frame(1.0)).unwrap_err(),
            EncoderError::QpOutOfRange(52)
        );
    }

    #[test]
    fn low_qp_costs_more_cycles() {
        let e = hr();
        let c22 = e.encode(22, &frame(1.0)).unwrap().cycles;
        let c37 = e.encode(37, &frame(1.0)).unwrap().cycles;
        assert!(c22 > c37 * 1.3, "c22 = {c22}, c37 = {c37}");
    }

    #[test]
    fn scene_cuts_cost_more_cycles() {
        let e = hr();
        let normal = e.encode(32, &frame(1.0)).unwrap().cycles;
        let cut = e
            .encode(
                32,
                &FrameInfo {
                    index: 0,
                    complexity: 1.0,
                    scene_cut: true,
                },
            )
            .unwrap()
            .cycles;
        assert!((cut / normal - 1.25).abs() < 1e-9);
    }

    #[test]
    fn busy_content_costs_more_cycles() {
        let e = hr();
        let calm = e.encode(32, &frame(0.7)).unwrap().cycles;
        let busy = e.encode(32, &frame(1.6)).unwrap().cycles;
        assert!(busy > calm * 1.2);
    }

    #[test]
    fn fig2_hr_throughput_envelope() {
        // Paper Fig. 2: 1080p ultrafast at 3.2 GHz spans ≈5 FPS (1 thread,
        // QP 22) to ≈40+ FPS (10 threads, QP 37).
        let e = hr();
        let slow_corner = e.throughput_fps(22, &frame(1.0), 1, 3.2).unwrap();
        let fast_corner = e.throughput_fps(37, &frame(1.0), 10, 3.2).unwrap();
        assert!((2.5..=7.0).contains(&slow_corner), "slow = {slow_corner}");
        assert!((32.0..=55.0).contains(&fast_corner), "fast = {fast_corner}");
    }

    #[test]
    fn hr_real_time_feasible_only_with_parallelism() {
        // 24 FPS at 1080p needs several threads even at max frequency.
        let e = hr();
        assert!(e.throughput_fps(32, &frame(1.0), 1, 3.2).unwrap() < 24.0);
        assert!(e.throughput_fps(32, &frame(1.0), 10, 3.2).unwrap() > 24.0);
    }

    #[test]
    fn lr_real_time_feasible_within_five_threads() {
        // The paper transcodes LR streams with the slow preset in real time
        // using at most 5 threads.
        let e = lr();
        let fps = e.throughput_fps(32, &frame(1.0), 4, 2.9).unwrap();
        assert!(fps > 24.0, "fps = {fps}");
    }

    #[test]
    fn lr_below_real_time_at_dvfs_floor() {
        // §III-B(c): below 1.6 GHz real time is out of reach even relaxed —
        // at 1.2 GHz a busy LR frame cannot hit 24 FPS with every thread.
        let e = lr();
        let fps = e.throughput_fps(22, &frame(1.6), 5, 1.2).unwrap();
        assert!(fps < 24.0, "fps = {fps}");
    }

    #[test]
    fn throughput_rejects_bad_inputs() {
        let e = hr();
        assert!(matches!(
            e.throughput_fps(32, &frame(1.0), 0, 3.2),
            Err(EncoderError::ZeroThreads)
        ));
        assert!(e.throughput_fps(32, &frame(1.0), 4, 0.0).is_err());
        assert!(e.throughput_fps(32, &frame(1.0), 4, f64::NAN).is_err());
    }

    #[test]
    fn outcome_fields_are_finite_and_positive() {
        for qp in crate::PAPER_QP_VALUES {
            for c in [0.25, 1.0, 3.0] {
                let out = hr().encode(qp, &frame(c)).unwrap();
                assert!(out.cycles.is_finite() && out.cycles > 0.0);
                assert!(out.psnr_db.is_finite() && out.psnr_db > 0.0);
                assert!(out.bitrate_mbps.is_finite() && out.bitrate_mbps > 0.0);
            }
        }
    }

    #[test]
    fn accessors() {
        let e = lr();
        assert_eq!(e.resolution(), Resolution::WVGA);
        assert_eq!(e.preset(), Preset::Slow);
        let custom = EncoderModelParams {
            qp_cycles_slope: 0.02,
            ..EncoderModelParams::default()
        };
        let e2 = HevcEncoder::with_params(Resolution::WVGA, Preset::Fast, custom);
        assert_eq!(e2.params().qp_cycles_slope, 0.02);
    }
}
