use std::fmt;
use std::str::FromStr;

use crate::EncoderError;

/// Kvazaar-like effort preset.
///
/// Presets trade encoding cycles for compression efficiency and quality.
/// The paper uses `ultrafast` for HR (1080p) streams — the only way to
/// reach real time at that resolution — and `slow` for LR streams, which
/// have cycles to spare (§V-A).
///
/// The numeric factors are *calibrated* rather than measured: they are
/// chosen so the paper's operating points are reachable on the simulated
/// platform (1 HR stream ≈ 25–45 FPS across the knob space at 3.2 GHz;
/// an LR stream sustains 24 FPS with ≤5 threads), preserving the decision
/// landscape the controllers explore rather than Kvazaar's absolute timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Preset {
    /// Fastest, least efficient.
    Ultrafast,
    /// Faster than veryfast, slower than ultrafast.
    Superfast,
    /// Moderate speed/efficiency trade-off.
    Veryfast,
    /// Between veryfast and medium.
    Fast,
    /// Kvazaar's default effort.
    Medium,
    /// High compression efficiency, expensive.
    Slow,
}

impl Preset {
    /// All presets, fastest first.
    pub const ALL: [Preset; 6] = [
        Preset::Ultrafast,
        Preset::Superfast,
        Preset::Veryfast,
        Preset::Fast,
        Preset::Medium,
        Preset::Slow,
    ];

    /// Encoding effort in cycles per pixel at QP 32 and unit content
    /// complexity.
    ///
    /// Calibrated so that, as on the paper's platform, LR (832×480)
    /// streams under the `slow` preset stay real-time-feasible across the
    /// whole QP action set within 5 threads (Table I reports LR at 3.7
    /// threads / 2.8 GHz), while 1080p `ultrafast` spans 5–45 FPS (Fig. 2).
    pub fn cycles_per_pixel(self) -> f64 {
        match self {
            Preset::Ultrafast => 300.0,
            Preset::Superfast => 360.0,
            Preset::Veryfast => 440.0,
            Preset::Fast => 530.0,
            Preset::Medium => 640.0,
            Preset::Slow => 760.0,
        }
    }

    /// PSNR adjustment relative to `Medium` (dB). Faster presets skip RDO
    /// work and lose quality.
    pub fn psnr_offset_db(self) -> f64 {
        match self {
            Preset::Ultrafast => -1.6,
            Preset::Superfast => -1.2,
            Preset::Veryfast => -0.8,
            Preset::Fast => -0.4,
            Preset::Medium => 0.0,
            Preset::Slow => 0.4,
        }
    }

    /// Bitrate multiplier relative to `Medium`. Faster presets compress
    /// less efficiently.
    pub fn bitrate_factor(self) -> f64 {
        match self {
            Preset::Ultrafast => 1.12,
            Preset::Superfast => 1.08,
            Preset::Veryfast => 1.05,
            Preset::Fast => 1.02,
            Preset::Medium => 1.00,
            Preset::Slow => 0.95,
        }
    }

    /// The preset the paper assigns to a stream of the given resolution:
    /// `Ultrafast` for HR, `Slow` for LR (§V-A).
    pub fn for_resolution(resolution: mamut_video::Resolution) -> Preset {
        if resolution.is_high_resolution() {
            Preset::Ultrafast
        } else {
            Preset::Slow
        }
    }
}

impl fmt::Display for Preset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Preset::Ultrafast => "ultrafast",
            Preset::Superfast => "superfast",
            Preset::Veryfast => "veryfast",
            Preset::Fast => "fast",
            Preset::Medium => "medium",
            Preset::Slow => "slow",
        };
        f.write_str(name)
    }
}

impl FromStr for Preset {
    type Err = EncoderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ultrafast" => Ok(Preset::Ultrafast),
            "superfast" => Ok(Preset::Superfast),
            "veryfast" => Ok(Preset::Veryfast),
            "fast" => Ok(Preset::Fast),
            "medium" => Ok(Preset::Medium),
            "slow" => Ok(Preset::Slow),
            _ => Err(EncoderError::InvalidParam {
                name: "preset",
                value: f64::NAN,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamut_video::Resolution;

    #[test]
    fn cycles_increase_with_effort() {
        let mut last = 0.0;
        for p in Preset::ALL {
            assert!(p.cycles_per_pixel() > last);
            last = p.cycles_per_pixel();
        }
    }

    #[test]
    fn quality_increases_with_effort() {
        let mut last = f64::NEG_INFINITY;
        for p in Preset::ALL {
            assert!(p.psnr_offset_db() > last);
            last = p.psnr_offset_db();
        }
    }

    #[test]
    fn compression_improves_with_effort() {
        let mut last = f64::INFINITY;
        for p in Preset::ALL {
            assert!(p.bitrate_factor() < last);
            last = p.bitrate_factor();
        }
    }

    #[test]
    fn paper_resolution_mapping() {
        assert_eq!(
            Preset::for_resolution(Resolution::FULL_HD),
            Preset::Ultrafast
        );
        assert_eq!(Preset::for_resolution(Resolution::WVGA), Preset::Slow);
    }

    #[test]
    fn display_from_str_round_trip() {
        for p in Preset::ALL {
            let parsed: Preset = p.to_string().parse().unwrap();
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn from_str_rejects_unknown() {
        assert!("turbo".parse::<Preset>().is_err());
    }
}
