//! Wavefront Parallel Processing (WPP) speedup model.
//!
//! Kvazaar parallelises a frame by assigning CTU rows to threads; a row may
//! start only after the row above has finished its first two CTUs (the
//! wavefront dependency). With `R` rows of `W` CTUs each and `T` threads,
//! the classic makespan approximation in CTU units is
//!
//! ```text
//! makespan(T) = (R / T) · W + 2 · (min(T, R) − 1)
//! speedup(T)  = (R · W) / makespan(T)
//! ```
//!
//! The first term is the work each thread carries; the second is the ramp-up
//! lag of the wavefront. Speedup therefore saturates as `T` approaches `R`:
//! for 1080p (17 CTU rows) the knee sits at ≈12 threads and for 832×480
//! (8 rows) at ≈5 threads — exactly the per-resolution thread limits the
//! paper reports for its platform (§V-A).

use mamut_video::Resolution;

/// Parallel-efficiency floor used to declare saturation.
const SATURATION_EFFICIENCY: f64 = 0.65;

/// WPP speedup for a frame of `rows`×`cols` CTUs encoded with `threads`
/// threads.
///
/// Returns 0.0 for zero rows/cols and clamps `threads` to at least 1.
/// Threads beyond the row count contribute nothing (there is no work for
/// them in a wavefront), so the curve is flat there.
///
/// # Example
///
/// ```
/// use mamut_encoder::wpp::speedup;
///
/// let s1 = speedup(17, 30, 1);
/// let s12 = speedup(17, 30, 12);
/// assert!((s1 - 1.0).abs() < 1e-12);
/// assert!(s12 > 7.0 && s12 < 9.0);
/// ```
pub fn speedup(rows: u32, cols: u32, threads: u32) -> f64 {
    if rows == 0 || cols == 0 {
        return 0.0;
    }
    let r = f64::from(rows);
    let w = f64::from(cols);
    let t = f64::from(threads.clamp(1, rows));
    let serial = r * w;
    let makespan = (r / t) * w + 2.0 * (t - 1.0);
    serial / makespan
}

/// WPP speedup for a frame at `resolution` (64-pixel CTUs).
pub fn speedup_at(resolution: Resolution, threads: u32) -> f64 {
    speedup(resolution.ctu_rows(), resolution.ctu_cols(), threads)
}

/// Largest thread count whose parallel efficiency (`speedup / threads`)
/// stays at or above 65 %.
///
/// Beyond this point extra threads mostly idle in the wavefront ramp, so a
/// deployment would cap thread pools here. This reproduces the paper's
/// observed saturation points: 12 threads for 1080p and 5 for 832×480.
pub fn saturation_threads(resolution: Resolution) -> u32 {
    let rows = resolution.ctu_rows();
    let cols = resolution.ctu_cols();
    let mut best = 1;
    for t in 1..=rows.max(1) {
        if speedup(rows, cols, t) / f64::from(t) >= SATURATION_EFFICIENCY {
            best = t;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_is_unit_speedup() {
        assert!((speedup(17, 30, 1) - 1.0).abs() < 1e-12);
        assert!((speedup(8, 13, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_monotone_until_near_row_limit() {
        // At exactly t = rows the ramp-up lag can cost slightly more than
        // the extra thread gains, so monotonicity is asserted up to rows−1.
        for (rows, cols) in [(17u32, 30u32), (8, 13)] {
            let mut last = 0.0;
            for t in 1..rows {
                let s = speedup(rows, cols, t);
                assert!(s > last, "rows={rows} t={t}");
                last = s;
            }
        }
    }

    #[test]
    fn threads_beyond_rows_add_nothing() {
        let at_rows = speedup(8, 13, 8);
        assert_eq!(speedup(8, 13, 20), at_rows);
    }

    #[test]
    fn hr_saturates_at_twelve_threads_as_in_the_paper() {
        assert_eq!(saturation_threads(Resolution::FULL_HD), 12);
    }

    #[test]
    fn lr_saturates_at_five_threads_as_in_the_paper() {
        assert_eq!(saturation_threads(Resolution::WVGA), 5);
    }

    #[test]
    fn efficiency_decreases_with_threads() {
        // speedup/threads (parallel efficiency) must fall monotonically:
        // that inefficiency is what DVFS trades against.
        let mut last = f64::INFINITY;
        for t in 1..=17 {
            let eff = speedup(17, 30, t) / f64::from(t);
            assert!(eff <= last + 1e-12);
            last = eff;
        }
    }

    #[test]
    fn degenerate_frames_yield_zero() {
        assert_eq!(speedup(0, 30, 4), 0.0);
        assert_eq!(speedup(17, 0, 4), 0.0);
    }

    #[test]
    fn zero_threads_treated_as_one() {
        assert_eq!(speedup(17, 30, 0), speedup(17, 30, 1));
    }

    #[test]
    fn hr_speedup_at_ten_threads_matches_hand_computation() {
        // (17/10)*30 + 2*9 = 69; 510/69 = 7.391…
        let s = speedup(17, 30, 10);
        assert!((s - 510.0 / 69.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_at_uses_ctu_grid() {
        assert_eq!(speedup_at(Resolution::FULL_HD, 10), speedup(17, 30, 10));
        assert_eq!(speedup_at(Resolution::WVGA, 4), speedup(8, 13, 4));
    }
}
