use std::fmt;
use std::str::FromStr;

use crate::VideoError;

/// Size of an HEVC Coding Tree Unit edge in pixels.
///
/// Kvazaar (the encoder MAMUT controls) uses 64×64 CTUs; Wavefront Parallel
/// Processing operates on rows of CTUs, so the number of CTU rows bounds the
/// useful encoding parallelism of a frame.
pub const CTU_SIZE: u32 = 64;

/// A video frame resolution in pixels.
///
/// The MAMUT paper uses two operating points:
/// [`Resolution::FULL_HD`] (1920×1080, "HR") and [`Resolution::WVGA`]
/// (832×480, "LR" — JCT-VC class C).
///
/// # Example
///
/// ```
/// use mamut_video::Resolution;
///
/// let hr = Resolution::FULL_HD;
/// assert_eq!(hr.pixel_count(), 1920 * 1080);
/// assert_eq!(hr.ctu_rows(), 17);
/// assert!(hr.is_high_resolution());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Resolution {
    width: u32,
    height: u32,
}

impl Resolution {
    /// 1920×1080 ("HR" in the paper, JCT-VC class B).
    pub const FULL_HD: Resolution = Resolution {
        width: 1920,
        height: 1080,
    };

    /// 832×480 ("LR" in the paper, JCT-VC class C).
    pub const WVGA: Resolution = Resolution {
        width: 832,
        height: 480,
    };

    /// Creates a resolution from explicit dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::ZeroDimension`] if either dimension is zero.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), mamut_video::VideoError> {
    /// let r = mamut_video::Resolution::new(1280, 720)?;
    /// assert_eq!(r.width(), 1280);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(width: u32, height: u32) -> Result<Self, VideoError> {
        if width == 0 || height == 0 {
            return Err(VideoError::ZeroDimension);
        }
        Ok(Resolution { width, height })
    }

    /// Frame width in pixels.
    pub fn width(self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(self) -> u32 {
        self.height
    }

    /// Total luma samples per frame.
    pub fn pixel_count(self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Number of CTU rows (64-pixel rows, rounded up).
    ///
    /// This bounds WPP parallelism: 17 rows for 1080p, 8 for 832×480.
    pub fn ctu_rows(self) -> u32 {
        self.height.div_ceil(CTU_SIZE)
    }

    /// Number of CTU columns (64-pixel columns, rounded up).
    pub fn ctu_cols(self) -> u32 {
        self.width.div_ceil(CTU_SIZE)
    }

    /// Whether this counts as "high resolution" in the paper's taxonomy.
    ///
    /// The paper treats 1080p streams as HR and 832×480 streams as LR; we
    /// use a 1280×720 pixel-count threshold so intermediate resolutions
    /// classify sensibly.
    pub fn is_high_resolution(self) -> bool {
        self.pixel_count() >= 1280 * 720
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

impl FromStr for Resolution {
    type Err = VideoError;

    /// Parses `"WIDTHxHEIGHT"` (e.g. `"1920x1080"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let malformed = || VideoError::MalformedResolution(s.to_owned());
        let (w, h) = s.split_once(['x', 'X']).ok_or_else(malformed)?;
        let width: u32 = w.trim().parse().map_err(|_| malformed())?;
        let height: u32 = h.trim().parse().map_err(|_| malformed())?;
        Resolution::new(width, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_hd_dimensions() {
        assert_eq!(Resolution::FULL_HD.width(), 1920);
        assert_eq!(Resolution::FULL_HD.height(), 1080);
        assert_eq!(Resolution::FULL_HD.pixel_count(), 2_073_600);
    }

    #[test]
    fn wvga_dimensions() {
        assert_eq!(Resolution::WVGA.width(), 832);
        assert_eq!(Resolution::WVGA.height(), 480);
        assert_eq!(Resolution::WVGA.pixel_count(), 399_360);
    }

    #[test]
    fn ctu_rows_match_paper_parallelism_bounds() {
        // 1080/64 = 16.875 -> 17 rows; 480/64 = 7.5 -> 8 rows.
        assert_eq!(Resolution::FULL_HD.ctu_rows(), 17);
        assert_eq!(Resolution::WVGA.ctu_rows(), 8);
    }

    #[test]
    fn ctu_cols() {
        assert_eq!(Resolution::FULL_HD.ctu_cols(), 30);
        assert_eq!(Resolution::WVGA.ctu_cols(), 13);
    }

    #[test]
    fn hr_lr_classification() {
        assert!(Resolution::FULL_HD.is_high_resolution());
        assert!(!Resolution::WVGA.is_high_resolution());
        let hd720 = Resolution::new(1280, 720).unwrap();
        assert!(hd720.is_high_resolution());
    }

    #[test]
    fn zero_dimension_rejected() {
        assert_eq!(Resolution::new(0, 1080), Err(VideoError::ZeroDimension));
        assert_eq!(Resolution::new(1920, 0), Err(VideoError::ZeroDimension));
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let r = Resolution::new(640, 360).unwrap();
        let parsed: Resolution = r.to_string().parse().unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn from_str_accepts_upper_case_separator() {
        let r: Resolution = "832X480".parse().unwrap();
        assert_eq!(r, Resolution::WVGA);
    }

    #[test]
    fn from_str_rejects_garbage() {
        assert!("1920".parse::<Resolution>().is_err());
        assert!("ax b".parse::<Resolution>().is_err());
        assert!("1920x".parse::<Resolution>().is_err());
        assert!("0x480".parse::<Resolution>().is_err());
    }

    #[test]
    fn ordering_is_derived_consistently() {
        assert!(Resolution::WVGA < Resolution::FULL_HD);
    }
}
