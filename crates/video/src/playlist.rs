use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{SequenceSpec, VideoError};

/// An ordered list of sequences transcoded back to back by one session.
///
/// Scenario II of the paper serves "batches" of requests: each user's
/// initial video is followed by four randomly selected videos of the same
/// resolution. [`Playlist::scenario_ii`] builds exactly that shape.
///
/// # Example
///
/// ```
/// use mamut_video::{catalog, Playlist};
///
/// let initial = catalog::by_name("Cactus").unwrap();
/// let pl = Playlist::scenario_ii(&initial, &catalog::all(), 4, 99).unwrap();
/// assert_eq!(pl.len(), 5);
/// // every follower shares the initial video's resolution
/// assert!(pl.iter().all(|s| s.resolution() == initial.resolution()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Playlist {
    items: Vec<SequenceSpec>,
}

impl Playlist {
    /// Creates a playlist from explicit items.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::EmptySequence`] for an empty playlist.
    pub fn new(items: Vec<SequenceSpec>) -> Result<Self, VideoError> {
        if items.is_empty() {
            return Err(VideoError::EmptySequence);
        }
        Ok(Playlist { items })
    }

    /// A playlist holding a single sequence.
    pub fn single(spec: SequenceSpec) -> Self {
        Playlist { items: vec![spec] }
    }

    /// Builds a Scenario-II playlist: `initial` followed by `followers`
    /// sequences drawn uniformly (with replacement) from the same-resolution
    /// subset of `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::EmptySequence`] when the same-resolution subset
    /// of `pool` is empty while `followers > 0`.
    pub fn scenario_ii(
        initial: &SequenceSpec,
        pool: &[SequenceSpec],
        followers: usize,
        seed: u64,
    ) -> Result<Self, VideoError> {
        let same_res: Vec<&SequenceSpec> = pool
            .iter()
            .filter(|s| s.resolution() == initial.resolution())
            .collect();
        if followers > 0 && same_res.is_empty() {
            return Err(VideoError::EmptySequence);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut items = Vec::with_capacity(followers + 1);
        items.push(initial.clone());
        for _ in 0..followers {
            let pick = rng.gen_range(0..same_res.len());
            items.push(same_res[pick].clone());
        }
        Ok(Playlist { items })
    }

    /// Number of sequences in the playlist.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the playlist is empty (never true for constructed playlists).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the sequences in play order.
    pub fn iter(&self) -> std::slice::Iter<'_, SequenceSpec> {
        self.items.iter()
    }

    /// The sequence at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&SequenceSpec> {
        self.items.get(index)
    }

    /// Total frames across all sequences.
    pub fn total_frames(&self) -> u64 {
        self.items.iter().map(SequenceSpec::frame_count).sum()
    }
}

impl<'a> IntoIterator for &'a Playlist {
    type Item = &'a SequenceSpec;
    type IntoIter = std::slice::Iter<'a, SequenceSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn empty_playlist_rejected() {
        assert_eq!(
            Playlist::new(vec![]).unwrap_err(),
            VideoError::EmptySequence
        );
    }

    #[test]
    fn single_has_len_one() {
        let p = Playlist::single(catalog::by_name("Kimono").unwrap());
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn scenario_ii_shape() {
        let initial = catalog::by_name("BQMall").unwrap();
        let p = Playlist::scenario_ii(&initial, &catalog::all(), 4, 5).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.get(0).unwrap().name(), "BQMall");
        for s in p.iter().skip(1) {
            assert_eq!(s.resolution(), initial.resolution());
        }
    }

    #[test]
    fn scenario_ii_is_deterministic_per_seed() {
        let initial = catalog::by_name("Cactus").unwrap();
        let a = Playlist::scenario_ii(&initial, &catalog::all(), 4, 11).unwrap();
        let b = Playlist::scenario_ii(&initial, &catalog::all(), 4, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_ii_differs_across_seeds() {
        let initial = catalog::by_name("Cactus").unwrap();
        let differs = (0..20).any(|s| {
            let a = Playlist::scenario_ii(&initial, &catalog::all(), 4, s).unwrap();
            let b = Playlist::scenario_ii(&initial, &catalog::all(), 4, s + 100).unwrap();
            a != b
        });
        assert!(differs);
    }

    #[test]
    fn scenario_ii_without_followers_needs_no_pool() {
        let initial = catalog::by_name("Cactus").unwrap();
        let p = Playlist::scenario_ii(&initial, &[], 0, 0).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn scenario_ii_empty_pool_with_followers_errors() {
        let initial = catalog::by_name("Cactus").unwrap();
        assert!(Playlist::scenario_ii(&initial, &[], 2, 0).is_err());
    }

    #[test]
    fn total_frames_sums_items() {
        let initial = catalog::by_name("Kimono").unwrap();
        let p = Playlist::scenario_ii(&initial, &catalog::all(), 4, 1).unwrap();
        assert_eq!(p.total_frames(), 5 * catalog::DEFAULT_FRAME_COUNT);
    }

    #[test]
    fn into_iterator_for_reference_works() {
        let p = Playlist::single(catalog::by_name("Kimono").unwrap());
        let mut count = 0;
        for s in &p {
            assert_eq!(s.name(), "Kimono");
            count += 1;
        }
        assert_eq!(count, 1);
    }
}
