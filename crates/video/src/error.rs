use std::error::Error;
use std::fmt;

/// Errors produced when constructing video-model types from invalid input.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VideoError {
    /// A resolution dimension was zero.
    ZeroDimension,
    /// A resolution string could not be parsed (expected `WIDTHxHEIGHT`).
    MalformedResolution(String),
    /// A content parameter was outside its valid range.
    InvalidContentParam {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A sequence was requested with zero frames.
    EmptySequence,
    /// A catalog lookup failed.
    UnknownSequence(String),
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::ZeroDimension => write!(f, "resolution dimensions must be non-zero"),
            VideoError::MalformedResolution(s) => {
                write!(
                    f,
                    "malformed resolution string {s:?}, expected WIDTHxHEIGHT"
                )
            }
            VideoError::InvalidContentParam { name, value } => {
                write!(f, "content parameter {name} has invalid value {value}")
            }
            VideoError::EmptySequence => write!(f, "sequence must contain at least one frame"),
            VideoError::UnknownSequence(name) => {
                write!(f, "no catalog sequence named {name:?}")
            }
        }
    }
}

impl Error for VideoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let variants = [
            VideoError::ZeroDimension,
            VideoError::MalformedResolution("1080".into()),
            VideoError::InvalidContentParam {
                name: "mean_complexity",
                value: -1.0,
            },
            VideoError::EmptySequence,
            VideoError::UnknownSequence("Nope".into()),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<VideoError>();
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VideoError>();
    }
}
