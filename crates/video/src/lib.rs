//! Synthetic video content models for the MAMUT transcoding simulator.
//!
//! The MAMUT paper (Costero et al., DATE 2019) evaluates on JCT-VC common
//! test sequences: class B (1080p, "HR") and class C (832×480, "LR") videos.
//! Those bitstreams are not redistributable, so this crate models what the
//! rest of the system actually consumes from them: a **per-frame coding
//! complexity process**. Encoding effort, output quality and output bitrate
//! all depend on how "hard" a frame is (motion, texture, scene changes);
//! everything else about the pixels is irrelevant to the control loop.
//!
//! Each catalog entry mirrors a JCT-VC sequence by name and carries
//! per-sequence [`ContentParams`]: a long-run mean complexity, an AR(1)
//! autocorrelation that produces smooth content drift, and a scene-cut rate
//! that produces the abrupt non-stationarity reinforcement-learning
//! controllers must adapt to.
//!
//! # Example
//!
//! ```
//! use mamut_video::{catalog, VideoSource};
//!
//! let spec = catalog::by_name("BasketballDrive").expect("catalog entry");
//! let mut source = VideoSource::new(&spec, 42);
//! let frame = source.next_frame().expect("sequence is non-empty");
//! assert_eq!(frame.index, 0);
//! assert!(frame.complexity > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod content;
mod error;
mod playlist;
mod resolution;
mod sequence;

pub mod catalog;

pub use content::{
    ContentModel, ContentParams, ContentState, FrameInfo, MAX_COMPLEXITY, MIN_COMPLEXITY,
};
pub use error::VideoError;
pub use playlist::Playlist;
pub use resolution::Resolution;
pub use sequence::{SequenceSpec, SourceState, VideoSource};
