//! Catalog of sequences mirroring the JCT-VC common test conditions.
//!
//! The MAMUT paper extracts its inputs from the JCT-VC benchmark: class B
//! (1920×1080, "HR") and class C (832×480, "LR"). Each function here builds
//! [`SequenceSpec`]s whose content parameters reflect the well-known
//! character of the original clips (e.g. `Kimono` is slow and smooth,
//! `RaceHorses` is fast and erratic). Frame counts default to 500, the
//! horizon shown in the paper's execution traces (Fig. 5).

use crate::{ContentParams, Resolution, SequenceSpec, VideoError};

/// Default frame count for catalog entries (matches Fig. 5's 500-frame x-axis).
pub const DEFAULT_FRAME_COUNT: u64 = 500;

fn entry(
    name: &str,
    resolution: Resolution,
    mean: f64,
    ar: f64,
    sigma: f64,
    cut_rate: f64,
) -> SequenceSpec {
    let content = ContentParams::new(mean, ar, sigma, cut_rate, 1.35)
        .expect("catalog content parameters are valid");
    SequenceSpec::new(name, resolution, DEFAULT_FRAME_COUNT, 24.0, content)
        .expect("catalog specs are valid")
}

/// JCT-VC class B lookalikes: 1920×1080 ("HR" workload in the paper).
pub fn class_b() -> Vec<SequenceSpec> {
    vec![
        entry(
            "Kimono",
            Resolution::FULL_HD,
            0.75,
            0.95,
            0.030,
            1.0 / 450.0,
        ),
        entry(
            "ParkScene",
            Resolution::FULL_HD,
            0.90,
            0.94,
            0.040,
            1.0 / 400.0,
        ),
        entry(
            "Cactus",
            Resolution::FULL_HD,
            1.10,
            0.92,
            0.050,
            1.0 / 300.0,
        ),
        entry(
            "BQTerrace",
            Resolution::FULL_HD,
            1.25,
            0.90,
            0.060,
            1.0 / 250.0,
        ),
        entry(
            "BasketballDrive",
            Resolution::FULL_HD,
            1.45,
            0.88,
            0.085,
            1.0 / 180.0,
        ),
    ]
}

/// JCT-VC class C lookalikes: 832×480 ("LR" workload in the paper).
pub fn class_c() -> Vec<SequenceSpec> {
    vec![
        entry(
            "BasketballDrill",
            Resolution::WVGA,
            1.15,
            0.90,
            0.060,
            1.0 / 250.0,
        ),
        entry("BQMall", Resolution::WVGA, 1.05, 0.92, 0.050, 1.0 / 300.0),
        entry(
            "PartyScene",
            Resolution::WVGA,
            1.40,
            0.88,
            0.080,
            1.0 / 200.0,
        ),
        entry(
            "RaceHorses",
            Resolution::WVGA,
            1.50,
            0.86,
            0.095,
            1.0 / 170.0,
        ),
    ]
}

/// Every catalog sequence (class B followed by class C).
pub fn all() -> Vec<SequenceSpec> {
    let mut v = class_b();
    v.extend(class_c());
    v
}

/// Looks a sequence up by its (case-sensitive) name.
///
/// # Errors
///
/// Returns [`VideoError::UnknownSequence`] when no entry matches.
///
/// # Example
///
/// ```
/// let kimono = mamut_video::catalog::by_name("Kimono").unwrap();
/// assert!(kimono.resolution().is_high_resolution());
/// ```
pub fn by_name(name: &str) -> Result<SequenceSpec, VideoError> {
    all()
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| VideoError::UnknownSequence(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_b_is_all_full_hd() {
        for s in class_b() {
            assert_eq!(s.resolution(), Resolution::FULL_HD, "{}", s.name());
            assert_eq!(s.frame_count(), DEFAULT_FRAME_COUNT);
        }
    }

    #[test]
    fn class_c_is_all_wvga() {
        for s in class_c() {
            assert_eq!(s.resolution(), Resolution::WVGA, "{}", s.name());
        }
    }

    #[test]
    fn all_contains_both_classes_without_duplicates() {
        let names: Vec<_> = all().iter().map(|s| s.name().to_owned()).collect();
        assert_eq!(names.len(), 9);
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate catalog names");
    }

    #[test]
    fn by_name_finds_known_sequences() {
        assert!(by_name("Cactus").is_ok());
        assert!(by_name("RaceHorses").is_ok());
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert_eq!(
            by_name("NotAClip").unwrap_err(),
            VideoError::UnknownSequence("NotAClip".into())
        );
    }

    #[test]
    fn catalog_spans_a_range_of_complexities() {
        let means: Vec<f64> = all().iter().map(|s| s.content().mean_complexity).collect();
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 0.8, "calmest sequence too busy: {min}");
        assert!(max > 1.4, "busiest sequence too calm: {max}");
    }
}
