use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::VideoError;

/// Lower clamp for per-frame complexity (a nearly static scene).
pub const MIN_COMPLEXITY: f64 = 0.25;

/// Upper clamp for per-frame complexity (extreme motion / texture).
pub const MAX_COMPLEXITY: f64 = 3.0;

/// Per-frame description of video content, as consumed by the encoder model.
///
/// `complexity` is a dimensionless multiplier around 1.0 capturing how much
/// coding effort (motion estimation, residual energy) the frame demands.
/// It scales encoding cycles and bitrate up and quality down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameInfo {
    /// Zero-based index of the frame within its sequence.
    pub index: u64,
    /// Coding complexity multiplier, in `[MIN_COMPLEXITY, MAX_COMPLEXITY]`.
    pub complexity: f64,
    /// Whether this frame starts a new scene (intra-coded spike).
    pub scene_cut: bool,
}

/// Parameters of the stochastic content process of one video sequence.
///
/// Complexity follows a mean-reverting AR(1) process
/// `c[t+1] = mean + phi * (c[t] - mean) + sigma * eps[t]`, punctuated by
/// scene cuts that re-draw the level and spike the cut frame itself
/// (intra frames are expensive). This mimics the frame-by-frame content
/// variation the paper calls out as the reason encoding parameters must be
/// adapted at run time (§II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentParams {
    /// Long-run mean complexity of the sequence (≈0.7 calm, ≈1.5 busy).
    pub mean_complexity: f64,
    /// AR(1) autocorrelation coefficient in `[0, 1)`; higher = smoother.
    pub ar_coefficient: f64,
    /// Standard deviation of the per-frame innovation.
    pub noise_sigma: f64,
    /// Probability that any given frame starts a new scene.
    pub scene_cut_rate: f64,
    /// Extra complexity multiplier applied to the scene-cut frame itself.
    pub cut_spike: f64,
}

impl ContentParams {
    /// Creates content parameters, validating every field.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::InvalidContentParam`] when a field is outside
    /// its valid range (see field docs).
    pub fn new(
        mean_complexity: f64,
        ar_coefficient: f64,
        noise_sigma: f64,
        scene_cut_rate: f64,
        cut_spike: f64,
    ) -> Result<Self, VideoError> {
        let check = |ok: bool, name: &'static str, value: f64| {
            if ok {
                Ok(())
            } else {
                Err(VideoError::InvalidContentParam { name, value })
            }
        };
        check(
            (MIN_COMPLEXITY..=MAX_COMPLEXITY).contains(&mean_complexity),
            "mean_complexity",
            mean_complexity,
        )?;
        check(
            (0.0..1.0).contains(&ar_coefficient),
            "ar_coefficient",
            ar_coefficient,
        )?;
        check(
            noise_sigma.is_finite() && noise_sigma >= 0.0,
            "noise_sigma",
            noise_sigma,
        )?;
        check(
            (0.0..=1.0).contains(&scene_cut_rate),
            "scene_cut_rate",
            scene_cut_rate,
        )?;
        check(
            cut_spike.is_finite() && cut_spike >= 1.0,
            "cut_spike",
            cut_spike,
        )?;
        Ok(ContentParams {
            mean_complexity,
            ar_coefficient,
            noise_sigma,
            scene_cut_rate,
            cut_spike,
        })
    }

    /// A moderate default: mean 1.0, smooth drift, a cut every ~300 frames.
    pub fn moderate() -> Self {
        ContentParams::new(1.0, 0.92, 0.05, 1.0 / 300.0, 1.35).expect("moderate defaults are valid")
    }

    /// Calm, low-motion content (e.g. `Kimono`-like).
    pub fn calm() -> Self {
        ContentParams::new(0.75, 0.95, 0.03, 1.0 / 450.0, 1.25).expect("calm defaults are valid")
    }

    /// Busy, high-motion content (e.g. `BasketballDrive`-like).
    pub fn busy() -> Self {
        ContentParams::new(1.45, 0.88, 0.09, 1.0 / 180.0, 1.45).expect("busy defaults are valid")
    }
}

impl Default for ContentParams {
    fn default() -> Self {
        ContentParams::moderate()
    }
}

/// Deterministic, seeded generator of per-frame [`FrameInfo`].
///
/// Two models with the same parameters and seed generate identical frame
/// streams, which keeps every experiment in the workspace reproducible.
///
/// # Example
///
/// ```
/// use mamut_video::{ContentModel, ContentParams};
///
/// let mut a = ContentModel::new(ContentParams::moderate(), 7);
/// let mut b = ContentModel::new(ContentParams::moderate(), 7);
/// for _ in 0..100 {
///     assert_eq!(a.next_frame(), b.next_frame());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ContentModel {
    params: ContentParams,
    rng: StdRng,
    /// Current mean-reverting level (moves on scene cuts).
    level: f64,
    /// Current instantaneous complexity.
    current: f64,
    next_index: u64,
}

impl ContentModel {
    /// Creates a content model with the given parameters and RNG seed.
    pub fn new(params: ContentParams, seed: u64) -> Self {
        ContentModel {
            params,
            rng: StdRng::seed_from_u64(seed),
            level: params.mean_complexity,
            current: params.mean_complexity,
            next_index: 0,
        }
    }

    /// The parameters this model was created with.
    pub fn params(&self) -> &ContentParams {
        &self.params
    }

    /// The model's dynamic state: RNG words, scene level, instantaneous
    /// complexity and the next frame index. Together with the
    /// construction parameters this is everything [`ContentModel::new`]
    /// plus N calls to [`ContentModel::next_frame`] accumulate, so a
    /// checkpointed model can be rebuilt mid-stream bit-exactly.
    pub fn state(&self) -> ContentState {
        ContentState {
            rng: self.rng.state(),
            level: self.level,
            current: self.current,
            next_index: self.next_index,
        }
    }

    /// Overwrites the model's dynamic state with a previously captured
    /// [`ContentState`]. The frame stream continues bit-exactly from the
    /// capture point (same params assumed — they are construction-time
    /// data, not state).
    pub fn restore_state(&mut self, state: &ContentState) {
        self.rng = StdRng::from_state(state.rng);
        self.level = state.level;
        self.current = state.current;
        self.next_index = state.next_index;
    }

    /// Generates the next frame of the content process.
    pub fn next_frame(&mut self) -> FrameInfo {
        let index = self.next_index;
        self.next_index += 1;

        let scene_cut = index > 0 && self.rng.gen_bool(self.params.scene_cut_rate);
        if scene_cut {
            // A new scene re-draws the level around the sequence mean.
            let factor = self.rng.gen_range(0.7..1.4);
            self.level = clamp_complexity(self.params.mean_complexity * factor);
            self.current = self.level;
        }

        // Mean-reverting AR(1) step around the current scene level.
        let eps: f64 = self.rng.gen_range(-1.0..1.0);
        let p = &self.params;
        let next =
            self.level + p.ar_coefficient * (self.current - self.level) + p.noise_sigma * eps;
        self.current = clamp_complexity(next);

        let complexity = if scene_cut {
            clamp_complexity(self.current * p.cut_spike)
        } else {
            self.current
        };

        FrameInfo {
            index,
            complexity,
            scene_cut,
        }
    }
}

fn clamp_complexity(c: f64) -> f64 {
    c.clamp(MIN_COMPLEXITY, MAX_COMPLEXITY)
}

/// Snapshot of a [`ContentModel`]'s dynamic state, as captured by
/// [`ContentModel::state`] — the substrate for mid-stream session
/// checkpoints (the fleet's crash-recovery path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentState {
    /// The xoshiro256** RNG state words.
    pub rng: [u64; 4],
    /// Current mean-reverting scene level.
    pub level: f64,
    /// Current instantaneous complexity.
    pub current: f64,
    /// Index the next generated frame will carry.
    pub next_index: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_indexed_sequentially() {
        let mut m = ContentModel::new(ContentParams::moderate(), 1);
        for i in 0..50 {
            assert_eq!(m.next_frame().index, i);
        }
    }

    #[test]
    fn complexity_stays_in_bounds() {
        let mut m = ContentModel::new(ContentParams::busy(), 2);
        for _ in 0..5_000 {
            let f = m.next_frame();
            assert!(f.complexity >= MIN_COMPLEXITY, "too low: {}", f.complexity);
            assert!(f.complexity <= MAX_COMPLEXITY, "too high: {}", f.complexity);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ContentModel::new(ContentParams::busy(), 99);
        let mut b = ContentModel::new(ContentParams::busy(), 99);
        for _ in 0..500 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ContentModel::new(ContentParams::moderate(), 1);
        let mut b = ContentModel::new(ContentParams::moderate(), 2);
        let differs = (0..200).any(|_| a.next_frame().complexity != b.next_frame().complexity);
        assert!(differs);
    }

    #[test]
    fn busy_content_is_more_complex_than_calm_on_average() {
        let avg = |params: ContentParams, seed| {
            let mut m = ContentModel::new(params, seed);
            (0..2_000).map(|_| m.next_frame().complexity).sum::<f64>() / 2_000.0
        };
        assert!(avg(ContentParams::busy(), 5) > avg(ContentParams::calm(), 5) + 0.3);
    }

    #[test]
    fn scene_cuts_occur_at_roughly_the_configured_rate() {
        let params = ContentParams::new(1.0, 0.9, 0.05, 0.02, 1.3).unwrap();
        let mut m = ContentModel::new(params, 11);
        let cuts = (0..20_000).filter(|_| m.next_frame().scene_cut).count();
        // Expected 400; allow generous tolerance for a seeded run.
        assert!((250..=550).contains(&cuts), "cuts = {cuts}");
    }

    #[test]
    fn first_frame_is_never_a_scene_cut() {
        for seed in 0..20 {
            let mut m = ContentModel::new(ContentParams::busy(), seed);
            assert!(!m.next_frame().scene_cut);
        }
    }

    #[test]
    fn zero_cut_rate_never_cuts() {
        let params = ContentParams::new(1.0, 0.9, 0.05, 0.0, 1.3).unwrap();
        let mut m = ContentModel::new(params, 3);
        assert!((0..2_000).all(|_| !m.next_frame().scene_cut));
    }

    #[test]
    fn invalid_params_are_rejected() {
        assert!(ContentParams::new(0.0, 0.9, 0.05, 0.01, 1.3).is_err());
        assert!(ContentParams::new(1.0, 1.0, 0.05, 0.01, 1.3).is_err());
        assert!(ContentParams::new(1.0, 0.9, -0.1, 0.01, 1.3).is_err());
        assert!(ContentParams::new(1.0, 0.9, 0.05, 1.5, 1.3).is_err());
        assert!(ContentParams::new(1.0, 0.9, 0.05, 0.01, 0.5).is_err());
        assert!(ContentParams::new(1.0, 0.9, f64::NAN, 0.01, 1.3).is_err());
    }

    #[test]
    fn state_round_trip_resumes_bit_exactly() {
        let mut m = ContentModel::new(ContentParams::busy(), 42);
        for _ in 0..137 {
            m.next_frame();
        }
        let state = m.state();
        let reference: Vec<FrameInfo> = (0..300).map(|_| m.next_frame()).collect();
        let mut resumed = ContentModel::new(ContentParams::busy(), 9999);
        resumed.restore_state(&state);
        let replayed: Vec<FrameInfo> = (0..300).map(|_| resumed.next_frame()).collect();
        assert_eq!(reference, replayed);
    }

    #[test]
    fn mean_tracks_configured_mean() {
        let params = ContentParams::new(1.2, 0.9, 0.04, 0.005, 1.3).unwrap();
        let mut m = ContentModel::new(params, 17);
        let mean = (0..10_000).map(|_| m.next_frame().complexity).sum::<f64>() / 10_000.0;
        assert!((mean - 1.2).abs() < 0.15, "mean = {mean}");
    }
}
