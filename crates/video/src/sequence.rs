use crate::{ContentModel, ContentParams, ContentState, FrameInfo, Resolution, VideoError};

/// Static description of one video sequence (a catalog entry).
///
/// A spec is cheap to clone and carries everything needed to instantiate a
/// deterministic [`VideoSource`]. Specs mirror JCT-VC common test sequences
/// in name, resolution and content character; see [`crate::catalog`].
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceSpec {
    name: String,
    resolution: Resolution,
    frame_count: u64,
    nominal_fps: f64,
    content: ContentParams,
}

impl SequenceSpec {
    /// Creates a sequence spec.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::EmptySequence`] if `frame_count` is zero, or
    /// [`VideoError::InvalidContentParam`] if `nominal_fps` is not positive.
    pub fn new(
        name: impl Into<String>,
        resolution: Resolution,
        frame_count: u64,
        nominal_fps: f64,
        content: ContentParams,
    ) -> Result<Self, VideoError> {
        if frame_count == 0 {
            return Err(VideoError::EmptySequence);
        }
        if !(nominal_fps.is_finite() && nominal_fps > 0.0) {
            return Err(VideoError::InvalidContentParam {
                name: "nominal_fps",
                value: nominal_fps,
            });
        }
        Ok(SequenceSpec {
            name: name.into(),
            resolution,
            frame_count,
            nominal_fps,
            content,
        })
    }

    /// Sequence name (mirrors the JCT-VC name for catalog entries).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Frame resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Total number of frames.
    pub fn frame_count(&self) -> u64 {
        self.frame_count
    }

    /// Native frame rate of the source material (frames per second).
    pub fn nominal_fps(&self) -> f64 {
        self.nominal_fps
    }

    /// Content process parameters.
    pub fn content(&self) -> &ContentParams {
        &self.content
    }

    /// Returns a copy of this spec truncated/extended to `frame_count` frames.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::EmptySequence`] if `frame_count` is zero.
    pub fn with_frame_count(&self, frame_count: u64) -> Result<Self, VideoError> {
        SequenceSpec::new(
            self.name.clone(),
            self.resolution,
            frame_count,
            self.nominal_fps,
            self.content,
        )
    }
}

/// A deterministic stream of frames generated from a [`SequenceSpec`].
///
/// Implements [`Iterator`] over [`FrameInfo`]; iteration ends after
/// `spec.frame_count()` frames.
///
/// # Example
///
/// ```
/// use mamut_video::{catalog, VideoSource};
///
/// let spec = catalog::by_name("RaceHorses").unwrap().with_frame_count(10).unwrap();
/// let frames: Vec<_> = VideoSource::new(&spec, 1).collect();
/// assert_eq!(frames.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct VideoSource {
    model: ContentModel,
    remaining: u64,
    resolution: Resolution,
    name: String,
}

impl VideoSource {
    /// Creates a source for `spec`, seeding the content process with `seed`.
    pub fn new(spec: &SequenceSpec, seed: u64) -> Self {
        VideoSource {
            model: ContentModel::new(*spec.content(), seed),
            remaining: spec.frame_count(),
            resolution: spec.resolution(),
            name: spec.name().to_owned(),
        }
    }

    /// Name of the underlying sequence.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resolution of the frames produced.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Frames left to produce.
    pub fn frames_remaining(&self) -> u64 {
        self.remaining
    }

    /// The source's dynamic state — the content process plus the frame
    /// budget left. Rebuilding the source from its spec and restoring
    /// this state resumes the stream bit-exactly (the checkpoint path).
    pub fn state(&self) -> SourceState {
        SourceState {
            content: self.model.state(),
            remaining: self.remaining,
        }
    }

    /// Overwrites the source's dynamic state with a captured
    /// [`SourceState`]. Resolution and name are construction-time data
    /// and stay as built from the spec.
    pub fn restore_state(&mut self, state: &SourceState) {
        self.model.restore_state(&state.content);
        self.remaining = state.remaining;
    }

    /// Produces the next frame, or `None` when the sequence is exhausted.
    pub fn next_frame(&mut self) -> Option<FrameInfo> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.model.next_frame())
    }
}

/// Snapshot of a [`VideoSource`]'s dynamic state, as captured by
/// [`VideoSource::state`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceState {
    /// The content process state.
    pub content: ContentState,
    /// Frames left to produce.
    pub remaining: u64,
}

impl Iterator for VideoSource {
    type Item = FrameInfo;

    fn next(&mut self) -> Option<FrameInfo> {
        self.next_frame()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl ExactSizeIterator for VideoSource {}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(frames: u64) -> SequenceSpec {
        SequenceSpec::new(
            "Test",
            Resolution::FULL_HD,
            frames,
            24.0,
            ContentParams::moderate(),
        )
        .unwrap()
    }

    #[test]
    fn source_produces_exactly_frame_count_frames() {
        let s = VideoSource::new(&spec(123), 0);
        assert_eq!(s.count(), 123);
    }

    #[test]
    fn exact_size_iterator_contract() {
        let mut s = VideoSource::new(&spec(10), 0);
        assert_eq!(s.len(), 10);
        s.next();
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn next_frame_returns_none_when_exhausted() {
        let mut s = VideoSource::new(&spec(1), 0);
        assert!(s.next_frame().is_some());
        assert!(s.next_frame().is_none());
        assert!(s.next_frame().is_none());
    }

    #[test]
    fn zero_frames_rejected() {
        let err = SequenceSpec::new(
            "Empty",
            Resolution::WVGA,
            0,
            24.0,
            ContentParams::moderate(),
        );
        assert_eq!(err.unwrap_err(), VideoError::EmptySequence);
    }

    #[test]
    fn bad_fps_rejected() {
        for fps in [0.0, -24.0, f64::NAN, f64::INFINITY] {
            assert!(
                SequenceSpec::new("Bad", Resolution::WVGA, 10, fps, ContentParams::moderate())
                    .is_err()
            );
        }
    }

    #[test]
    fn with_frame_count_truncates() {
        let s = spec(500).with_frame_count(20).unwrap();
        assert_eq!(s.frame_count(), 20);
        assert_eq!(s.name(), "Test");
        assert!(spec(500).with_frame_count(0).is_err());
    }

    #[test]
    fn same_seed_reproduces_stream() {
        let s = spec(200);
        let a: Vec<_> = VideoSource::new(&s, 7).collect();
        let b: Vec<_> = VideoSource::new(&s, 7).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn source_state_round_trip_resumes_bit_exactly() {
        let s = spec(400);
        let mut original = VideoSource::new(&s, 7);
        for _ in 0..150 {
            original.next_frame();
        }
        let state = original.state();
        let mut resumed = VideoSource::new(&s, 7);
        resumed.restore_state(&state);
        assert_eq!(resumed.frames_remaining(), original.frames_remaining());
        let a: Vec<_> = original.collect();
        let b: Vec<_> = resumed.collect();
        assert_eq!(a, b);
    }

    #[test]
    fn accessors_report_spec_values() {
        let s = spec(42);
        let src = VideoSource::new(&s, 0);
        assert_eq!(src.name(), "Test");
        assert_eq!(src.resolution(), Resolution::FULL_HD);
        assert_eq!(src.frames_remaining(), 42);
    }
}
